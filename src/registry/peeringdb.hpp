// A PeeringDB-like registry of self-reported network facts.
//
// The paper pulls three things from PeeringDB: self-reported peering
// policies (figures 9 and 11), geographic scope (figure 13), and looking
// glass addresses for validation (section 5.1). Records are voluntary, so
// fields can be undisclosed -- the analyses must tolerate that.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/asn.hpp"

namespace mlp::registry {

using bgp::Asn;

/// Self-reported peering policy (paper section 5.2: 72% open, 24%
/// selective, 4% restrictive among disclosed).
enum class PeeringPolicy : std::uint8_t { Open, Selective, Restrictive };

std::string to_string(PeeringPolicy policy);
std::optional<PeeringPolicy> parse_policy(std::string_view text);

/// Self-reported geographic scope (figure 13 buckets).
enum class GeoScope : std::uint8_t { Global, Europe, Regional, NotDisclosed };

std::string to_string(GeoScope scope);
std::optional<GeoScope> parse_scope(std::string_view text);

/// One network record.
struct NetworkRecord {
  Asn asn = 0;
  std::string name;
  /// nullopt when the operator did not disclose a policy.
  std::optional<PeeringPolicy> policy;
  GeoScope scope = GeoScope::NotDisclosed;
  /// Looking glass URL, empty if none registered.
  std::string looking_glass;
  /// IXP names the network reports presence at.
  std::vector<std::string> ixps;

  bool has_looking_glass() const { return !looking_glass.empty(); }
};

/// The registry: keyed by ASN, with the aggregate queries the figures use.
class PeeringDb {
 public:
  /// Insert or replace a record.
  void upsert(NetworkRecord record);

  const NetworkRecord* find(Asn asn) const;
  std::size_t size() const { return records_.size(); }

  std::vector<Asn> asns() const;

  /// Networks that disclose a policy.
  std::vector<const NetworkRecord*> with_policy() const;

  /// Networks registering a looking glass.
  std::vector<const NetworkRecord*> with_looking_glass() const;

  /// Serialise to a pipe-separated text table (one record per line) and
  /// parse it back; the shape of a PeeringDB CSV export.
  std::string dump() const;
  static PeeringDb parse(std::string_view text);

 private:
  std::map<Asn, NetworkRecord> records_;
};

}  // namespace mlp::registry
