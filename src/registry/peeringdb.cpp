#include "registry/peeringdb.hpp"

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace mlp::registry {

std::string to_string(PeeringPolicy policy) {
  switch (policy) {
    case PeeringPolicy::Open:
      return "Open";
    case PeeringPolicy::Selective:
      return "Selective";
    case PeeringPolicy::Restrictive:
      return "Restrictive";
  }
  return "unknown";
}

std::optional<PeeringPolicy> parse_policy(std::string_view text) {
  if (mlp::iequals(text, "open")) return PeeringPolicy::Open;
  if (mlp::iequals(text, "selective")) return PeeringPolicy::Selective;
  if (mlp::iequals(text, "restrictive")) return PeeringPolicy::Restrictive;
  return std::nullopt;
}

std::string to_string(GeoScope scope) {
  switch (scope) {
    case GeoScope::Global:
      return "Global";
    case GeoScope::Europe:
      return "Europe";
    case GeoScope::Regional:
      return "Regional";
    case GeoScope::NotDisclosed:
      return "N/A";
  }
  return "unknown";
}

std::optional<GeoScope> parse_scope(std::string_view text) {
  if (mlp::iequals(text, "global")) return GeoScope::Global;
  if (mlp::iequals(text, "europe")) return GeoScope::Europe;
  if (mlp::iequals(text, "regional")) return GeoScope::Regional;
  if (mlp::iequals(text, "n/a")) return GeoScope::NotDisclosed;
  return std::nullopt;
}

void PeeringDb::upsert(NetworkRecord record) {
  records_[record.asn] = std::move(record);
}

const NetworkRecord* PeeringDb::find(Asn asn) const {
  auto it = records_.find(asn);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<Asn> PeeringDb::asns() const {
  std::vector<Asn> out;
  out.reserve(records_.size());
  for (const auto& [asn, record] : records_) out.push_back(asn);
  return out;
}

std::vector<const NetworkRecord*> PeeringDb::with_policy() const {
  std::vector<const NetworkRecord*> out;
  for (const auto& [asn, record] : records_)
    if (record.policy) out.push_back(&record);
  return out;
}

std::vector<const NetworkRecord*> PeeringDb::with_looking_glass() const {
  std::vector<const NetworkRecord*> out;
  for (const auto& [asn, record] : records_)
    if (record.has_looking_glass()) out.push_back(&record);
  return out;
}

std::string PeeringDb::dump() const {
  // asn|name|policy|scope|lg|ixp1;ixp2;...
  std::string out;
  for (const auto& [asn, r] : records_) {
    out += std::to_string(asn);
    out += '|';
    out += r.name;
    out += '|';
    out += r.policy ? to_string(*r.policy) : "";
    out += '|';
    out += to_string(r.scope);
    out += '|';
    out += r.looking_glass;
    out += '|';
    out += mlp::join(r.ixps, ";");
    out += '\n';
  }
  return out;
}

PeeringDb PeeringDb::parse(std::string_view text) {
  PeeringDb db;
  for (const auto& line : mlp::split(text, '\n')) {
    if (mlp::trim(line).empty()) continue;
    const auto fields = mlp::split(line, '|');
    if (fields.size() != 6)
      throw ParseError("PeeringDb::parse: expected 6 fields, got " +
                       std::to_string(fields.size()) + " in: " + line);
    NetworkRecord r;
    auto asn = mlp::parse_u32(fields[0]);
    if (!asn) throw ParseError("PeeringDb::parse: bad ASN in: " + line);
    r.asn = *asn;
    r.name = fields[1];
    if (!fields[2].empty()) {
      r.policy = parse_policy(fields[2]);
      if (!r.policy)
        throw ParseError("PeeringDb::parse: bad policy in: " + line);
    }
    auto scope = parse_scope(fields[3]);
    if (!scope) throw ParseError("PeeringDb::parse: bad scope in: " + line);
    r.scope = *scope;
    r.looking_glass = fields[4];
    if (!fields[5].empty()) {
      for (auto& ixp : mlp::split(fields[5], ';'))
        if (!ixp.empty()) r.ixps.push_back(std::move(ixp));
    }
    db.upsert(std::move(r));
  }
  return db;
}

}  // namespace mlp::registry
