#include "propagation/routing.hpp"

#include <queue>
#include <tuple>
#include <vector>

#include "util/errors.hpp"

namespace mlp::propagation {

using topology::AsGraph;
using topology::Neighbor;
using Rel = bgp::Rel;

bool RoutingTree::reachable(Asn asn) const {
  auto it = entries_.find(asn);
  return it != entries_.end() && it->second.via != Via::None;
}

Via RoutingTree::via(Asn asn) const {
  auto it = entries_.find(asn);
  return it == entries_.end() ? Via::None : it->second.via;
}

std::optional<AsPath> RoutingTree::path_from(Asn vantage) const {
  if (!reachable(vantage)) return std::nullopt;
  std::vector<Asn> asns;
  Asn current = vantage;
  while (true) {
    asns.push_back(current);
    if (current == origin_) break;
    auto it = entries_.find(current);
    if (it == entries_.end() || it->second.via == Via::None)
      return std::nullopt;  // defensive: broken chain
    current = it->second.next;
    if (asns.size() > entries_.size())
      throw InvalidArgument("RoutingTree: next-hop cycle detected");
  }
  return AsPath(std::move(asns));
}

namespace {

using Entry = RoutingTree::Entry;

/// Priority-queue item: (length, next-hop asn, node). Lower is better, so
/// ties resolve to the lowest next-hop ASN deterministically.
using PqItem = std::tuple<std::uint32_t, Asn, Asn>;

/// Dijkstra-like expansion within one stage. `sources` carry their already
/// assigned entries; expansion follows `follow` edges and assigns `stage`
/// to newly reached nodes (only nodes whose current via == Via::None).
void expand(const AsGraph& graph, std::unordered_map<Asn, Entry>& entries,
            std::priority_queue<PqItem, std::vector<PqItem>,
                                std::greater<PqItem>>& pq,
            Via stage, bool follow_providers, bool follow_customers) {
  while (!pq.empty()) {
    auto [length, next, node] = pq.top();
    pq.pop();
    Entry& entry = entries[node];
    if (entry.via != Via::None) continue;  // already settled this stage/earlier
    entry.via = stage;
    entry.length = length;
    entry.next = next;
    for (const Neighbor& n : graph.neighbors(node)) {
      const bool traverse =
          n.rel == Rel::Sibling ||
          (follow_providers && n.rel == Rel::C2P) ||
          (follow_customers && n.rel == Rel::P2C);
      if (!traverse) continue;
      if (entries[n.asn].via == Via::None)
        pq.emplace(length + 1, node, n.asn);
    }
  }
}

}  // namespace

RoutingTree compute_routes(const AsGraph& graph, Asn origin) {
  if (!graph.has_as(origin))
    throw InvalidArgument("compute_routes: unknown origin AS" +
                          std::to_string(origin));

  std::unordered_map<Asn, Entry> entries;
  entries.reserve(graph.as_count());

  // Stage 1: customer routes. The origin's announcement climbs provider
  // and sibling edges; every AS reached prefers these routes.
  std::priority_queue<PqItem, std::vector<PqItem>, std::greater<PqItem>> pq;
  pq.emplace(1, origin, origin);
  expand(graph, entries, pq, Via::Customer, /*follow_providers=*/true,
         /*follow_customers=*/false);
  // Mark the origin itself.
  entries[origin] = Entry{Via::Origin, 1, origin};

  // Stage 2: peer routes. Any AS holding a customer route (or the origin)
  // exports across p2p links; peer routes are not re-exported except to
  // customers/siblings (handled by stage 3).
  std::vector<std::pair<Asn, Entry>> peer_candidates;
  for (const auto& [asn, entry] : entries) {
    if (entry.via != Via::Customer && entry.via != Via::Origin) continue;
    for (const Neighbor& n : graph.neighbors(asn)) {
      if (n.rel != Rel::P2P) continue;
      auto it = entries.find(n.asn);
      if (it != entries.end() && it->second.via != Via::None) continue;
      peer_candidates.emplace_back(
          n.asn, Entry{Via::Peer, entry.length + 1, asn});
    }
  }
  for (const auto& [asn, candidate] : peer_candidates) {
    Entry& entry = entries[asn];
    if (entry.via == Via::None || candidate.length < entry.length ||
        (candidate.length == entry.length && candidate.next < entry.next)) {
      if (entry.via == Via::None || entry.via == Via::Peer) entry = candidate;
    }
  }
  // Peer routes reach siblings of the peer too (sibling export keeps the
  // route usable); seed stage 3 with every settled AS.

  // Stage 3: provider routes. Everything settled so far is exported down
  // customer (and sibling) edges, repeatedly.
  std::priority_queue<PqItem, std::vector<PqItem>, std::greater<PqItem>> down;
  for (const auto& [asn, entry] : entries) {
    if (entry.via == Via::None) continue;
    for (const Neighbor& n : graph.neighbors(asn)) {
      const bool traverse = n.rel == Rel::P2C || n.rel == Rel::Sibling;
      if (!traverse) continue;
      auto it = entries.find(n.asn);
      if (it != entries.end() && it->second.via != Via::None) continue;
      down.emplace(entry.length + 1, asn, n.asn);
    }
  }
  expand(graph, entries, down, Via::Provider, /*follow_providers=*/false,
         /*follow_customers=*/true);

  // Drop unreachable placeholder entries created during expansion.
  for (auto it = entries.begin(); it != entries.end();) {
    it = it->second.via == Via::None ? entries.erase(it) : std::next(it);
  }
  return RoutingTree(origin, std::move(entries));
}

const RoutingTree& RoutingModel::tree(Asn origin) {
  auto it = cache_.find(origin);
  if (it == cache_.end()) {
    if (cache_.size() >= capacity_) {
      cache_.erase(order_.front());
      order_.erase(order_.begin());
    }
    it = cache_
             .emplace(origin, std::make_unique<RoutingTree>(
                                  compute_routes(*graph_, origin)))
             .first;
    order_.push_back(origin);
    ++computed_;
  }
  return *it->second;
}

}  // namespace mlp::propagation
