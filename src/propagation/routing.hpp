// Valley-free (Gao-Rexford) route propagation over an AsGraph.
//
// For one origin AS, computes the route every other AS selects under the
// standard policy model: prefer customer routes over peer routes over
// provider routes, then shorter AS paths, then a deterministic next-hop
// tie-break. Sibling edges exchange routes freely and keep the stage of
// the route they carry.
//
// The resulting per-origin tree is the substrate for everything the paper
// observes: collector feeds, looking-glass tables, and traceroute paths.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "bgp/aspath.hpp"
#include "topology/as_graph.hpp"

namespace mlp::propagation {

using bgp::Asn;
using bgp::AsPath;

/// How an AS learned its best route toward the origin.
enum class Via : std::uint8_t {
  None,      // unreachable
  Origin,    // the AS is the origin itself
  Customer,  // learned from a customer (or sibling carrying such a route)
  Peer,      // learned across one p2p link
  Provider,  // learned from a provider
};

/// Best-route tree for one origin.
class RoutingTree {
 public:
  struct Entry {
    Via via = Via::None;
    std::uint32_t length = 0;  // AS-path length including the origin
    Asn next = 0;              // next hop toward the origin
  };

  Asn origin() const { return origin_; }

  bool reachable(Asn asn) const;
  Via via(Asn asn) const;

  /// AS path in BGP order (vantage first, origin last); nullopt if the
  /// vantage has no route.
  std::optional<AsPath> path_from(Asn vantage) const;

  const std::unordered_map<Asn, Entry>& entries() const { return entries_; }

  // Used by compute_routes.
  RoutingTree(Asn origin, std::unordered_map<Asn, Entry> entries)
      : origin_(origin), entries_(std::move(entries)) {}

 private:
  Asn origin_ = 0;
  std::unordered_map<Asn, Entry> entries_;
};

/// Compute the best-route tree for `origin`. Throws InvalidArgument if the
/// origin is not in the graph.
RoutingTree compute_routes(const topology::AsGraph& graph, Asn origin);

/// Caches RoutingTrees per origin over a fixed graph, with FIFO eviction
/// so sweeping every origin stays within a bounded memory footprint.
/// The reference returned by tree() is invalidated once `capacity` newer
/// origins have been requested -- iterate origins grouped by origin AS.
class RoutingModel {
 public:
  explicit RoutingModel(const topology::AsGraph& graph,
                        std::size_t capacity = 64)
      : graph_(&graph), capacity_(capacity == 0 ? 1 : capacity) {}

  /// The tree for `origin`, computed on first use.
  const RoutingTree& tree(Asn origin);

  std::size_t cached() const { return cache_.size(); }
  std::size_t computed() const { return computed_; }

 private:
  const topology::AsGraph* graph_;
  std::size_t capacity_;
  std::size_t computed_ = 0;
  std::unordered_map<Asn, std::unique_ptr<RoutingTree>> cache_;
  std::vector<Asn> order_;  // FIFO of cached origins
};

}  // namespace mlp::propagation
