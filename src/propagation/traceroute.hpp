// Simulated traceroute campaigns (Ark / DIMES analogues).
//
// Traceroute-derived AS links suffer a specific artifact at IXPs: the hop
// inside the IXP peering LAN maps to the IXP's own ASN, so a peering link
// between members A and B appears as A-IXP and IXP-B rather than A-B
// (paper section 5: "both Ark and DIMES do not infer links across IXP
// Route Servers, but report them as links between the RS members and the
// Route Servers"). The campaign reproduces that mechanism.
#pragma once

#include <functional>
#include <optional>
#include <set>

#include "propagation/collector.hpp"
#include "propagation/routing.hpp"

namespace mlp::propagation {

/// IXP LAN oracle: if the forwarding step from `a` to `b` crosses an IXP
/// peering fabric, returns the ASN that the LAN's address space maps to
/// (the IXP/route-server ASN); otherwise nullopt.
using IxpLanFn = std::function<std::optional<Asn>(Asn a, Asn b)>;

struct TracerouteResult {
  /// AS links derived from IP->AS mapping of the traced paths.
  std::set<bgp::AsLink> links;
  /// Number of (monitor, target) traces that produced a path.
  std::size_t traces = 0;
  /// Number of hops remapped to an IXP ASN.
  std::size_t ixp_artifacts = 0;
};

/// Trace from every monitor to every target prefix along BGP forwarding
/// paths, applying the IXP LAN artifact, and extract AS links.
TracerouteResult run_traceroute_campaign(
    RoutingModel& model, const std::vector<PrefixOrigin>& targets,
    const std::vector<Asn>& monitors, const IxpLanFn& ixp_lan);

}  // namespace mlp::propagation
