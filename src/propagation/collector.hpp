// Simulated public BGP collectors (Route Views / RIPE RIS).
//
// A collector holds BGP sessions with volunteer "feeder" ASes and archives
// what they export. Two-thirds of real feeders treat the collector session
// like a peer and export only customer routes (paper section 2.3); the
// `full_feed` flag models that distinction. The archived table is emitted
// as genuine MRT TABLE_DUMP_V2 bytes so the passive pipeline consumes the
// same wire format as with real Route Views data.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bgp/prefix.hpp"
#include "bgp/rib.hpp"
#include "propagation/routing.hpp"

namespace mlp::propagation {

/// A prefix and the AS that originates it.
struct PrefixOrigin {
  bgp::IpPrefix prefix;
  Asn origin = 0;
};

/// One BGP feed into a collector.
struct FeedSpec {
  Asn feeder = 0;
  std::uint32_t feeder_ip = 0;
  /// Full table vs customer-routes-only (peer-type session).
  bool full_feed = false;
};

/// Decorates the attributes of a route as exported by `feeder`; the
/// scenario layer uses this to attach route-server communities to paths
/// that crossed an IXP route server, and to model community scrubbing.
using PathDecorator =
    std::function<void(const bgp::AsPath& path, bgp::PathAttributes& attrs)>;

/// A passive route collector.
class Collector {
 public:
  Collector(std::string name, Asn collector_asn, std::uint32_t collector_ip)
      : name_(std::move(name)),
        asn_(collector_asn),
        ip_(collector_ip) {}

  const std::string& name() const { return name_; }
  Asn asn() const { return asn_; }

  void add_feed(const FeedSpec& feed) { feeds_.push_back(feed); }
  const std::vector<FeedSpec>& feeds() const { return feeds_; }

  /// Populate the collector RIB: for every (prefix, origin) pair, each
  /// feeder contributes its best path subject to its feed type. `decorate`
  /// may be null.
  void collect(RoutingModel& model, const std::vector<PrefixOrigin>& origins,
               const PathDecorator& decorate);

  const bgp::Rib& rib() const { return rib_; }

  /// Archive the current RIB as an MRT TABLE_DUMP_V2 byte stream.
  std::vector<std::uint8_t> table_dump(std::uint32_t timestamp) const;

  /// Archive the current RIB as a BGP4MP update stream (one announcement
  /// per RIB entry), as if replaying the session establishment.
  std::vector<std::uint8_t> update_dump(std::uint32_t timestamp) const;

 private:
  std::string name_;
  Asn asn_ = 0;
  std::uint32_t ip_ = 0;
  std::vector<FeedSpec> feeds_;
  bgp::Rib rib_;
};

}  // namespace mlp::propagation
