#include "propagation/traceroute.hpp"

#include <vector>

namespace mlp::propagation {

TracerouteResult run_traceroute_campaign(
    RoutingModel& model, const std::vector<PrefixOrigin>& targets,
    const std::vector<Asn>& monitors, const IxpLanFn& ixp_lan) {
  TracerouteResult result;
  for (const auto& [prefix, origin] : targets) {
    const RoutingTree& tree = model.tree(origin);
    for (const Asn monitor : monitors) {
      auto path = tree.path_from(monitor);
      if (!path) continue;
      ++result.traces;

      // Convert the AS path to the observed ASN sequence: hops that land
      // on an IXP peering LAN map to the IXP ASN instead of the far
      // member's ASN.
      std::vector<Asn> observed;
      const auto& asns = path->asns();
      for (std::size_t i = 0; i < asns.size(); ++i) {
        observed.push_back(asns[i]);
        if (i + 1 < asns.size() && ixp_lan) {
          if (auto lan_asn = ixp_lan(asns[i], asns[i + 1])) {
            observed.push_back(*lan_asn);
            ++result.ixp_artifacts;
          }
        }
      }
      for (std::size_t i = 0; i + 1 < observed.size(); ++i) {
        if (observed[i] != observed[i + 1])
          result.links.insert(bgp::AsLink(observed[i], observed[i + 1]));
      }
    }
  }
  return result;
}

}  // namespace mlp::propagation
