#include "propagation/collector.hpp"

#include "mrt/table_dump.hpp"

namespace mlp::propagation {

void Collector::collect(RoutingModel& model,
                        const std::vector<PrefixOrigin>& origins,
                        const PathDecorator& decorate) {
  for (const auto& [prefix, origin] : origins) {
    const RoutingTree& tree = model.tree(origin);
    for (const FeedSpec& feed : feeds_) {
      if (!tree.reachable(feed.feeder)) continue;
      const Via via = tree.via(feed.feeder);
      if (!feed.full_feed && via != Via::Customer && via != Via::Origin)
        continue;  // peer-type session: only customer routes are exported
      auto path = tree.path_from(feed.feeder);
      if (!path) continue;
      bgp::Route route;
      route.prefix = prefix;
      route.attrs.as_path = *path;
      route.attrs.next_hop = feed.feeder_ip;
      if (decorate) decorate(*path, route.attrs);
      rib_.announce(feed.feeder, feed.feeder_ip, std::move(route));
    }
  }
}

std::vector<std::uint8_t> Collector::table_dump(
    std::uint32_t timestamp) const {
  return mrt::dump_rib(rib_, timestamp, ip_, name_);
}

std::vector<std::uint8_t> Collector::update_dump(
    std::uint32_t timestamp) const {
  std::vector<mrt::ObservedUpdate> updates;
  for (const auto& prefix : rib_.prefixes()) {
    for (const auto& entry : rib_.paths(prefix)) {
      mrt::ObservedUpdate u;
      u.timestamp = timestamp;
      u.peer_asn = entry.peer_asn;
      u.peer_ip = entry.peer_ip;
      u.update.nlri = {prefix};
      u.update.attrs = entry.route.attrs;
      updates.push_back(std::move(u));
    }
  }
  return mrt::dump_updates(updates, asn_, ip_);
}

}  // namespace mlp::propagation
