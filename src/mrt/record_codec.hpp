// Internal record-body decoders shared between the materializing
// MrtReader (mrt.cpp), the streaming MrtCursor (cursor.cpp) and the
// incremental stream framer (stream/framer.cpp). Not part of the public
// MRT surface.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "bgp/asn.hpp"
#include "mrt/mrt.hpp"
#include "util/bytes.hpp"

namespace mlp::mrt::detail {

/// Byte size of the common MRT record header (timestamp, type, subtype,
/// length).
inline constexpr std::size_t kMrtHeaderBytes = 12;

/// The fields of a common MRT header, read without consuming input.
struct HeaderPeek {
  std::uint32_t timestamp = 0;
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::uint32_t length = 0;  // body bytes following the header
};

/// Decode the 12-byte header at the front of `data`; nullopt when fewer
/// than 12 bytes are available. Does not consume the caller's span.
inline std::optional<HeaderPeek> peek_header(
    std::span<const std::uint8_t> data) {
  if (data.size() < kMrtHeaderBytes) return std::nullopt;
  ByteReader reader(data.first(kMrtHeaderBytes));
  HeaderPeek peek;
  peek.timestamp = reader.u32();
  peek.type = reader.u16();
  peek.subtype = reader.u16();
  peek.length = reader.u32();
  return peek;
}

/// True for the (type, subtype) pairs this codec decodes. Used as the
/// resync anchor: tolerant consumers scan for one of these after a
/// malformed record, which keeps random garbage from being mistaken for
/// a record boundary.
inline bool known_record_kind(std::uint16_t type, std::uint16_t subtype) {
  if (type == static_cast<std::uint16_t>(MrtType::TableDumpV2))
    return subtype ==
               static_cast<std::uint16_t>(
                   TableDumpV2Subtype::PeerIndexTable) ||
           subtype ==
               static_cast<std::uint16_t>(TableDumpV2Subtype::RibIpv4Unicast);
  if (type == static_cast<std::uint16_t>(MrtType::Bgp4mp))
    return subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::Message) ||
           subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::MessageAs4);
  return false;
}

/// Decode a PEER_INDEX_TABLE body; throws ParseError on trailing bytes.
PeerIndexTable decode_peer_index(ByteReader& r);

/// The fixed-size BGP4MP_MESSAGE prelude (everything before the embedded
/// BGP message).
struct Bgp4mpHeader {
  bgp::Asn peer_asn = 0;
  bgp::Asn local_asn = 0;
  std::uint16_t interface_index = 0;
  /// 1 (IPv4) or 2 (IPv6). The u32 peer_ip/local_ip fields are only
  /// meaningful for AFI 1 (they stay 0 for IPv6); the 16-byte forms below
  /// always hold the addresses, v4-mapped when afi == 1.
  std::uint16_t afi = 1;
  std::uint32_t peer_ip = 0;
  std::uint32_t local_ip = 0;
  std::uint8_t peer_addr[16] = {};
  std::uint8_t local_addr[16] = {};
};

/// Decode the BGP4MP prelude, leaving `r` positioned at the raw BGP
/// message bytes. Accepts AFI 1 (IPv4, 4-byte addresses) and AFI 2
/// (IPv6, 16-byte addresses); throws ParseError for anything else.
Bgp4mpHeader decode_bgp4mp_header(ByteReader& r, bool four_octet_as);

}  // namespace mlp::mrt::detail
