// Internal record-body decoders shared between the materializing
// MrtReader (mrt.cpp) and the streaming MrtCursor (cursor.cpp). Not part
// of the public MRT surface.
#pragma once

#include <cstdint>

#include "bgp/asn.hpp"
#include "mrt/mrt.hpp"
#include "util/bytes.hpp"

namespace mlp::mrt::detail {

/// Decode a PEER_INDEX_TABLE body; throws ParseError on trailing bytes.
PeerIndexTable decode_peer_index(ByteReader& r);

/// The fixed-size BGP4MP_MESSAGE prelude (everything before the embedded
/// BGP message).
struct Bgp4mpHeader {
  bgp::Asn peer_asn = 0;
  bgp::Asn local_asn = 0;
  std::uint16_t interface_index = 0;
  std::uint32_t peer_ip = 0;
  std::uint32_t local_ip = 0;
};

/// Decode the BGP4MP prelude, leaving `r` positioned at the raw BGP
/// message bytes. Throws ParseError for non-IPv4 AFIs.
Bgp4mpHeader decode_bgp4mp_header(ByteReader& r, bool four_octet_as);

}  // namespace mlp::mrt::detail
