#include "mrt/table_dump.hpp"

#include <map>
#include <utility>

#include "util/errors.hpp"

namespace mlp::mrt {

std::vector<std::uint8_t> dump_rib(const bgp::Rib& rib,
                                   std::uint32_t timestamp,
                                   std::uint32_t collector_bgp_id,
                                   const std::string& view_name) {
  // Assign a peer index to every (asn, ip) session present in the RIB.
  std::map<std::pair<bgp::Asn, std::uint32_t>, std::uint16_t> index_of;
  PeerIndexTable table;
  table.collector_bgp_id = collector_bgp_id;
  table.view_name = view_name;
  for (const auto& prefix : rib.prefixes()) {
    for (const auto& entry : rib.paths(prefix)) {
      const auto key = std::make_pair(entry.peer_asn, entry.peer_ip);
      if (index_of.count(key)) continue;
      index_of[key] = static_cast<std::uint16_t>(table.peers.size());
      table.peers.push_back(PeerEntry{/*bgp_id=*/entry.peer_ip, entry.peer_ip,
                                      entry.peer_asn,
                                      /*four_octet_as=*/true});
    }
  }

  MrtWriter writer;
  writer.write_peer_index(timestamp, table);
  std::uint32_t sequence = 0;
  for (const auto& prefix : rib.prefixes()) {
    RibRecord record;
    record.sequence = sequence++;
    record.prefix = prefix;
    for (const auto& entry : rib.paths(prefix)) {
      RibEntryRecord e;
      e.peer_index = index_of.at({entry.peer_asn, entry.peer_ip});
      e.originated_time = timestamp;
      e.attrs = entry.route.attrs;
      record.entries.push_back(std::move(e));
    }
    writer.write_rib(timestamp, record);
  }
  return writer.take();
}

bgp::Rib parse_rib(std::span<const std::uint8_t> data) {
  bgp::Rib rib;
  MrtReader reader(data);
  const PeerIndexTable* peers = nullptr;
  PeerIndexTable table;
  while (auto record = reader.next()) {
    if (auto* pit = std::get_if<PeerIndexTable>(&record->body)) {
      table = std::move(*pit);
      peers = &table;
      continue;
    }
    auto* rib_record = std::get_if<RibRecord>(&record->body);
    if (!rib_record) continue;  // BGP4MP in a mixed stream: not a RIB entry
    if (!peers)
      throw ParseError("TABLE_DUMP_V2: RIB record before PEER_INDEX_TABLE");
    for (auto& entry : rib_record->entries) {
      if (entry.peer_index >= peers->peers.size())
        throw ParseError("TABLE_DUMP_V2: peer index " +
                         std::to_string(entry.peer_index) + " out of range");
      const PeerEntry& peer = peers->peers[entry.peer_index];
      bgp::Route route;
      route.prefix = rib_record->prefix;
      route.attrs = std::move(entry.attrs);
      rib.announce(peer.asn, peer.ip, std::move(route));
    }
  }
  return rib;
}

std::vector<std::uint8_t> dump_updates(
    const std::vector<ObservedUpdate>& updates, bgp::Asn collector_asn,
    std::uint32_t collector_ip) {
  MrtWriter writer;
  for (const auto& observed : updates) {
    Bgp4mpMessage message;
    message.peer_asn = observed.peer_asn;
    message.local_asn = collector_asn;
    message.peer_ip = observed.peer_ip;
    message.local_ip = collector_ip;
    message.four_octet_as = true;
    message.update = observed.update;
    writer.write_bgp4mp(observed.timestamp, message);
  }
  return writer.take();
}

std::vector<ObservedUpdate> parse_updates(
    std::span<const std::uint8_t> data) {
  std::vector<ObservedUpdate> out;
  MrtReader reader(data);
  while (auto record = reader.next()) {
    auto* message = std::get_if<Bgp4mpMessage>(&record->body);
    if (!message) continue;
    ObservedUpdate observed;
    observed.timestamp = record->timestamp;
    observed.peer_asn = message->peer_asn;
    observed.peer_ip = message->peer_ip;
    observed.update = std::move(message->update);
    out.push_back(std::move(observed));
  }
  return out;
}

}  // namespace mlp::mrt
