#include "mrt/mrt.hpp"

#include <algorithm>
#include <fstream>

#include "mrt/record_codec.hpp"
#include "util/errors.hpp"

namespace mlp::mrt {

namespace {

constexpr std::uint8_t kPeerTypeAs4 = 0x02;  // bit 1: AS is 4 bytes
// bit 0 (0x01) would flag an IPv6 peer address; this codec is IPv4-only.

std::vector<std::uint8_t> encode_peer_index(const PeerIndexTable& table) {
  ByteWriter w;
  w.u32(table.collector_bgp_id);
  if (table.view_name.size() > 0xffff)
    throw InvalidArgument("PEER_INDEX_TABLE: view name too long");
  w.u16(static_cast<std::uint16_t>(table.view_name.size()));
  w.bytes(table.view_name);
  if (table.peers.size() > 0xffff)
    throw InvalidArgument("PEER_INDEX_TABLE: too many peers");
  w.u16(static_cast<std::uint16_t>(table.peers.size()));
  for (const auto& peer : table.peers) {
    w.u8(peer.four_octet_as ? kPeerTypeAs4 : 0);
    w.u32(peer.bgp_id);
    w.u32(peer.ip);
    if (peer.four_octet_as) {
      w.u32(peer.asn);
    } else {
      if (!bgp::is_16bit(peer.asn))
        throw InvalidArgument("PEER_INDEX_TABLE: 32-bit ASN needs AS4 peer");
      w.u16(static_cast<std::uint16_t>(peer.asn));
    }
  }
  return w.take();
}

std::vector<std::uint8_t> encode_rib(const RibRecord& record) {
  ByteWriter w;
  w.u32(record.sequence);
  bgp::encode_nlri_prefix(w, record.prefix);
  if (record.entries.size() > 0xffff)
    throw InvalidArgument("RIB record: too many entries");
  w.u16(static_cast<std::uint16_t>(record.entries.size()));
  for (const auto& entry : record.entries) {
    w.u16(entry.peer_index);
    w.u32(entry.originated_time);
    ByteWriter attrs;
    // RFC 6396 4.3.4: TABLE_DUMP_V2 attribute blocks always use 4-byte ASNs.
    bgp::encode_path_attributes(attrs, entry.attrs, /*four_octet_as=*/true);
    if (attrs.size() > 0xffff)
      throw InvalidArgument("RIB record: attribute block too long");
    w.u16(static_cast<std::uint16_t>(attrs.size()));
    w.bytes(attrs.data());
  }
  return w.take();
}

RibRecord decode_rib(ByteReader& r) {
  RibRecord record;
  record.sequence = r.u32();
  record.prefix = bgp::decode_nlri_prefix(r);
  const std::uint16_t count = r.u16();
  record.entries.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    RibEntryRecord entry;
    entry.peer_index = r.u16();
    entry.originated_time = r.u32();
    ByteReader attrs = r.sub(r.u16());
    entry.attrs = bgp::decode_path_attributes(attrs, /*four_octet_as=*/true);
    record.entries.push_back(std::move(entry));
  }
  if (!r.done()) throw ParseError("RIB record: trailing bytes");
  return record;
}

std::vector<std::uint8_t> encode_bgp4mp(const Bgp4mpMessage& message) {
  ByteWriter w;
  if (message.four_octet_as) {
    w.u32(message.peer_asn);
    w.u32(message.local_asn);
  } else {
    if (!bgp::is_16bit(message.peer_asn) || !bgp::is_16bit(message.local_asn))
      throw InvalidArgument("BGP4MP_MESSAGE: 32-bit ASN needs AS4 subtype");
    w.u16(static_cast<std::uint16_t>(message.peer_asn));
    w.u16(static_cast<std::uint16_t>(message.local_asn));
  }
  w.u16(message.interface_index);
  w.u16(1);  // AFI: IPv4
  w.u32(message.peer_ip);
  w.u32(message.local_ip);
  auto update = bgp::encode_update(message.update, message.four_octet_as);
  w.bytes(update);
  return w.take();
}

Bgp4mpMessage decode_bgp4mp(ByteReader& r, bool four_octet_as) {
  Bgp4mpMessage message;
  message.four_octet_as = four_octet_as;
  const auto header = detail::decode_bgp4mp_header(r, four_octet_as);
  message.peer_asn = header.peer_asn;
  message.local_asn = header.local_asn;
  message.interface_index = header.interface_index;
  message.peer_ip = header.peer_ip;
  message.local_ip = header.local_ip;
  auto raw = r.bytes(r.remaining());
  message.update = bgp::decode_update(raw, four_octet_as);
  return message;
}

}  // namespace

namespace detail {

PeerIndexTable decode_peer_index(ByteReader& r) {
  PeerIndexTable table;
  table.collector_bgp_id = r.u32();
  const std::uint16_t name_len = r.u16();
  auto name = r.bytes(name_len);
  table.view_name.assign(name.begin(), name.end());
  const std::uint16_t count = r.u16();
  table.peers.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    PeerEntry peer;
    const std::uint8_t type = r.u8();
    if (type & 0x01)
      throw ParseError("PEER_INDEX_TABLE: IPv6 peers not supported");
    peer.four_octet_as = (type & kPeerTypeAs4) != 0;
    peer.bgp_id = r.u32();
    peer.ip = r.u32();
    peer.asn = peer.four_octet_as ? r.u32() : r.u16();
    table.peers.push_back(peer);
  }
  if (!r.done()) throw ParseError("PEER_INDEX_TABLE: trailing bytes");
  return table;
}

Bgp4mpHeader decode_bgp4mp_header(ByteReader& r, bool four_octet_as) {
  Bgp4mpHeader header;
  if (four_octet_as) {
    header.peer_asn = r.u32();
    header.local_asn = r.u32();
  } else {
    header.peer_asn = r.u16();
    header.local_asn = r.u16();
  }
  header.interface_index = r.u16();
  header.afi = r.u16();
  if (header.afi == 1) {
    header.peer_ip = r.u32();
    header.local_ip = r.u32();
    // v4-mapped form (::ffff:a.b.c.d) so the 16-byte fields are uniform.
    header.peer_addr[10] = header.peer_addr[11] = 0xff;
    header.local_addr[10] = header.local_addr[11] = 0xff;
    for (int i = 0; i < 4; ++i) {
      header.peer_addr[12 + i] =
          static_cast<std::uint8_t>(header.peer_ip >> (8 * (3 - i)));
      header.local_addr[12 + i] =
          static_cast<std::uint8_t>(header.local_ip >> (8 * (3 - i)));
    }
  } else if (header.afi == 2) {
    auto peer = r.bytes(16);
    auto local = r.bytes(16);
    std::copy(peer.begin(), peer.end(), header.peer_addr);
    std::copy(local.begin(), local.end(), header.local_addr);
  } else {
    throw ParseError("BGP4MP: unsupported AFI (want 1 or 2)");
  }
  return header;
}

}  // namespace detail

void MrtWriter::header(std::uint32_t timestamp, MrtType type,
                       std::uint16_t subtype,
                       std::span<const std::uint8_t> body) {
  writer_.u32(timestamp);
  writer_.u16(static_cast<std::uint16_t>(type));
  writer_.u16(subtype);
  writer_.u32(static_cast<std::uint32_t>(body.size()));
  writer_.bytes(body);
}

void MrtWriter::write_peer_index(std::uint32_t timestamp,
                                 const PeerIndexTable& table) {
  header(timestamp, MrtType::TableDumpV2,
         static_cast<std::uint16_t>(TableDumpV2Subtype::PeerIndexTable),
         encode_peer_index(table));
}

void MrtWriter::write_rib(std::uint32_t timestamp, const RibRecord& record) {
  header(timestamp, MrtType::TableDumpV2,
         static_cast<std::uint16_t>(TableDumpV2Subtype::RibIpv4Unicast),
         encode_rib(record));
}

void MrtWriter::write_bgp4mp(std::uint32_t timestamp,
                             const Bgp4mpMessage& message) {
  header(timestamp, MrtType::Bgp4mp,
         static_cast<std::uint16_t>(message.four_octet_as
                                        ? Bgp4mpSubtype::MessageAs4
                                        : Bgp4mpSubtype::Message),
         encode_bgp4mp(message));
}

std::optional<MrtRecord> MrtReader::next() {
  while (!reader_.done()) {
    const std::uint32_t timestamp = reader_.u32();
    const std::uint16_t type = reader_.u16();
    const std::uint16_t subtype = reader_.u16();
    const std::uint32_t length = reader_.u32();
    ByteReader body = reader_.sub(length);

    if (type == static_cast<std::uint16_t>(MrtType::TableDumpV2)) {
      if (subtype ==
          static_cast<std::uint16_t>(TableDumpV2Subtype::PeerIndexTable))
        return MrtRecord{timestamp, detail::decode_peer_index(body)};
      if (subtype ==
          static_cast<std::uint16_t>(TableDumpV2Subtype::RibIpv4Unicast))
        return MrtRecord{timestamp, decode_rib(body)};
    } else if (type == static_cast<std::uint16_t>(MrtType::Bgp4mp)) {
      if (subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::Message))
        return MrtRecord{timestamp, decode_bgp4mp(body, false)};
      if (subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::MessageAs4))
        return MrtRecord{timestamp, decode_bgp4mp(body, true)};
    }
    ++skipped_;  // unknown type/subtype: skip the body and continue
  }
  return std::nullopt;
}

std::vector<MrtRecord> decode_all(std::span<const std::uint8_t> data) {
  MrtReader reader(data);
  std::vector<MrtRecord> out;
  while (auto record = reader.next()) out.push_back(std::move(*record));
  return out;
}

void save_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw InvalidArgument("save_file: cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw InvalidArgument("save_file: write failed for " + path);
}

std::vector<std::uint8_t> load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw InvalidArgument("load_file: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) throw InvalidArgument("load_file: read failed for " + path);
  return data;
}

}  // namespace mlp::mrt
