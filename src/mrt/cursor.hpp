// Streaming MRT decode: walk an archive in place, one logical event at a
// time, without materializing a whole-archive record vector or RIB.
//
// The materializing helpers (decode_all / parse_rib / parse_updates) hold
// O(archive) decoded state; MrtCursor holds O(1) scratch (plus the peer
// index table, which is O(peers)) and re-decodes each event into reusable
// buffers. The passive-extraction front end of the paper's pipeline runs
// on this cursor so MRT decode overlaps inference instead of completing
// before it starts.
#pragma once

#include <cstdint>
#include <span>

#include "bgp/asn.hpp"
#include "bgp/prefix.hpp"
#include "bgp/route.hpp"
#include "bgp/wire.hpp"
#include "mrt/mrt.hpp"
#include "util/annotations.hpp"
#include "util/bytes.hpp"

namespace mlp::mrt {

/// Borrowed view of one TABLE_DUMP_V2 RIB entry (one peer's path for one
/// prefix). The pointed-to data lives in the cursor's scratch buffers and
/// is valid only until the next call to MrtCursor::next().
struct RibEntryView {
  std::uint32_t timestamp = 0;  // MRT header timestamp of the record
  std::uint32_t sequence = 0;
  std::uint32_t originated_time = 0;
  bgp::Asn peer_asn = 0;
  std::uint32_t peer_ip = 0;
  const bgp::IpPrefix* prefix = nullptr;
  const bgp::PathAttributes* attrs = nullptr;
};

/// Borrowed view of one BGP4MP update message; same lifetime contract as
/// RibEntryView.
struct UpdateView {
  std::uint32_t timestamp = 0;
  bgp::Asn peer_asn = 0;
  std::uint32_t peer_ip = 0;
  const bgp::UpdateMessage* update = nullptr;
};

/// Incremental walk over the known record types of an MRT byte stream.
/// TABLE_DUMP_V2 RIB records are flattened to one RibEntry event per
/// (prefix, peer) pair with the peer resolved through the preceding
/// PEER_INDEX_TABLE, exactly like parse_rib; BGP4MP messages yield Update
/// events; unknown record types are skipped and counted. Throws ParseError
/// on structurally invalid input, naming the offending record's byte
/// offset; a tolerant caller can then resync() past it.
class MrtCursor {
 public:
  enum class Event : std::uint8_t { RibEntry, Update, End };

  /// Record families an update-only (or RIB-only) consumer can have the
  /// cursor step over without decoding, matching the tolerance of the
  /// materializing parse_updates (which never resolved RIB records and
  /// so accepted streams with a stray or orphaned TABLE_DUMP_V2 record).
  enum class Skip : std::uint8_t { None, TableDumpV2 };

  explicit MrtCursor(std::span<const std::uint8_t> data,
                     Skip skip = Skip::None)
      : data_(data), reader_(data), skip_(skip) {}

  /// Advance to the next event. Views returned by rib_entry()/update()
  /// are invalidated by this call.
  Event next();

  /// After next() threw: abandon the record it choked on and scan forward
  /// for the next plausible record header (a known type/subtype whose
  /// length fits the remaining stream). Returns false when no such header
  /// exists; the cursor is then positioned at end of stream, so the next
  /// call to next() returns End. Calling this on a healthy cursor skips
  /// the record most recently started.
  [[nodiscard]] bool resync();

  /// Byte offset of the header of the record the cursor is currently
  /// positioned in (the record named by strict-mode errors).
  std::size_t record_offset() const { return record_offset_; }

  /// Valid after next() returned RibEntry / Update respectively; the view
  /// borrows the cursor's scratch buffers (lifetimebound) and dies at the
  /// next call to next().
  const RibEntryView& rib_entry() const MLP_LIFETIMEBOUND {
    return rib_view_;
  }
  const UpdateView& update() const MLP_LIFETIMEBOUND {
    return update_view_;
  }

  /// The most recent PEER_INDEX_TABLE (empty until one is seen).
  const PeerIndexTable& peer_index() const MLP_LIFETIMEBOUND {
    return peers_;
  }

  /// Number of unknown-type records skipped so far.
  std::size_t skipped() const { return skipped_; }

 private:
  /// Decode the next entry of the current RIB record into the scratch
  /// buffers and fill rib_view_.
  void decode_rib_entry();

  /// next() without the record-offset error context.
  Event next_impl();

  std::span<const std::uint8_t> data_;
  ByteReader reader_;
  Skip skip_ = Skip::None;
  ByteReader record_{std::span<const std::uint8_t>{}};  // current RIB body
  std::uint16_t entries_left_ = 0;
  std::uint32_t record_timestamp_ = 0;
  std::uint32_t sequence_ = 0;
  std::size_t record_offset_ = 0;  // header offset of the current record

  PeerIndexTable peers_;
  bool have_peers_ = false;

  // Reusable scratch: decoded in place, overwritten per event.
  bgp::IpPrefix prefix_;
  bgp::PathAttributes attrs_;
  bgp::UpdateMessage update_msg_;

  RibEntryView rib_view_;
  UpdateView update_view_;
  std::size_t skipped_ = 0;
};

}  // namespace mlp::mrt
