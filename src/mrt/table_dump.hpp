// High-level conversions between in-memory RIBs and MRT archives, the glue
// used by the simulated Route Views / RIPE RIS collectors.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bgp/rib.hpp"
#include "mrt/mrt.hpp"

namespace mlp::mrt {

/// Serialise a full RIB snapshot as PEER_INDEX_TABLE + one RIB_IPV4_UNICAST
/// record per prefix, exactly as a collector writes its periodic `bview`.
std::vector<std::uint8_t> dump_rib(const bgp::Rib& rib,
                                   std::uint32_t timestamp,
                                   std::uint32_t collector_bgp_id,
                                   const std::string& view_name);

/// Rebuild a RIB from an archive produced by dump_rib (or any TABLE_DUMP_V2
/// stream). Throws ParseError on malformed input or on a RIB entry whose
/// peer index is not covered by a preceding PEER_INDEX_TABLE.
bgp::Rib parse_rib(std::span<const std::uint8_t> data);

/// One route as seen in an update stream.
struct ObservedUpdate {
  std::uint32_t timestamp = 0;
  bgp::Asn peer_asn = 0;
  std::uint32_t peer_ip = 0;
  bgp::UpdateMessage update;
};

/// Serialise an update stream as BGP4MP_MESSAGE_AS4 records.
std::vector<std::uint8_t> dump_updates(
    const std::vector<ObservedUpdate>& updates, bgp::Asn collector_asn,
    std::uint32_t collector_ip);

/// Parse the BGP4MP records of an archive into observed updates;
/// TABLE_DUMP_V2 records in the same stream are ignored.
std::vector<ObservedUpdate> parse_updates(std::span<const std::uint8_t> data);

}  // namespace mlp::mrt
