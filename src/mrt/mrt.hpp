// MRT (Multi-Threaded Routing Toolkit) export format, RFC 6396.
//
// Route Views and RIPE RIS publish BGP table snapshots as TABLE_DUMP_V2
// records and update streams as BGP4MP records. The paper's passive
// pipeline consumes both; this codec implements the subset needed:
//
//   TABLE_DUMP_V2 / PEER_INDEX_TABLE   (13, 1)
//   TABLE_DUMP_V2 / RIB_IPV4_UNICAST   (13, 2)
//   BGP4MP        / BGP4MP_MESSAGE     (16, 1)   2-byte peer ASNs
//   BGP4MP        / BGP4MP_MESSAGE_AS4 (16, 4)   4-byte peer ASNs
//
// Per RFC 6396 section 4.3.4, AS numbers inside TABLE_DUMP_V2 attribute
// blocks are always 4 bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "bgp/asn.hpp"
#include "bgp/prefix.hpp"
#include "bgp/route.hpp"
#include "bgp/wire.hpp"
#include "util/bytes.hpp"

namespace mlp::mrt {

enum class MrtType : std::uint16_t {
  TableDumpV2 = 13,
  Bgp4mp = 16,
};

enum class TableDumpV2Subtype : std::uint16_t {
  PeerIndexTable = 1,
  RibIpv4Unicast = 2,
};

enum class Bgp4mpSubtype : std::uint16_t {
  Message = 1,
  MessageAs4 = 4,
};

/// One peer in a PEER_INDEX_TABLE.
struct PeerEntry {
  std::uint32_t bgp_id = 0;
  std::uint32_t ip = 0;  // IPv4 only in this reproduction
  bgp::Asn asn = 0;
  bool four_octet_as = true;

  friend bool operator==(const PeerEntry&, const PeerEntry&) = default;
};

/// TABLE_DUMP_V2 PEER_INDEX_TABLE record.
struct PeerIndexTable {
  std::uint32_t collector_bgp_id = 0;
  std::string view_name;
  std::vector<PeerEntry> peers;

  friend bool operator==(const PeerIndexTable&,
                         const PeerIndexTable&) = default;
};

/// One (peer, attributes) pair of a RIB_IPV4_UNICAST record.
struct RibEntryRecord {
  std::uint16_t peer_index = 0;
  std::uint32_t originated_time = 0;
  bgp::PathAttributes attrs;

  friend bool operator==(const RibEntryRecord&,
                         const RibEntryRecord&) = default;
};

/// TABLE_DUMP_V2 RIB_IPV4_UNICAST record: all paths for one prefix.
struct RibRecord {
  std::uint32_t sequence = 0;
  bgp::IpPrefix prefix;
  std::vector<RibEntryRecord> entries;

  friend bool operator==(const RibRecord&, const RibRecord&) = default;
};

/// BGP4MP_MESSAGE / BGP4MP_MESSAGE_AS4 record carrying one BGP UPDATE.
struct Bgp4mpMessage {
  bgp::Asn peer_asn = 0;
  bgp::Asn local_asn = 0;
  std::uint16_t interface_index = 0;
  std::uint32_t peer_ip = 0;
  std::uint32_t local_ip = 0;
  bool four_octet_as = true;
  bgp::UpdateMessage update;

  friend bool operator==(const Bgp4mpMessage&, const Bgp4mpMessage&) = default;
};

/// A decoded MRT record with its header timestamp.
struct MrtRecord {
  std::uint32_t timestamp = 0;
  std::variant<PeerIndexTable, RibRecord, Bgp4mpMessage> body;
};

/// Serialises MRT records into a byte stream (one archive file).
class MrtWriter {
 public:
  void write_peer_index(std::uint32_t timestamp, const PeerIndexTable& table);
  void write_rib(std::uint32_t timestamp, const RibRecord& record);
  void write_bgp4mp(std::uint32_t timestamp, const Bgp4mpMessage& message);

  const std::vector<std::uint8_t>& data() const { return writer_.data(); }
  std::vector<std::uint8_t> take() { return writer_.take(); }

 private:
  void header(std::uint32_t timestamp, MrtType type, std::uint16_t subtype,
              std::span<const std::uint8_t> body);
  ByteWriter writer_;
};

/// Streams MRT records out of a byte buffer. Unknown record types are
/// skipped (their length field is honoured), matching how MRT consumers
/// tolerate records they do not understand.
class MrtReader {
 public:
  explicit MrtReader(std::span<const std::uint8_t> data) : reader_(data) {}

  /// Next known record, or nullopt at end of stream. Throws ParseError on
  /// structurally invalid input.
  std::optional<MrtRecord> next();

  /// Number of unknown-type records skipped so far.
  std::size_t skipped() const { return skipped_; }

 private:
  ByteReader reader_;
  std::size_t skipped_ = 0;
};

/// Decode every known record in a buffer.
std::vector<MrtRecord> decode_all(std::span<const std::uint8_t> data);

/// File helpers (binary read/write of whole archives).
void save_file(const std::string& path, std::span<const std::uint8_t> data);
std::vector<std::uint8_t> load_file(const std::string& path);

}  // namespace mlp::mrt
