#include "mrt/cursor.hpp"

#include <algorithm>
#include <string>

#include "mrt/record_codec.hpp"
#include "util/errors.hpp"

namespace mlp::mrt {

void MrtCursor::decode_rib_entry() {
  const std::uint16_t peer_index = record_.u16();
  const std::uint32_t originated = record_.u32();
  ByteReader attrs = record_.sub(record_.u16());
  bgp::decode_path_attributes_into(attrs, /*four_octet_as=*/true, attrs_);
  if (peer_index >= peers_.peers.size())
    throw ParseError("TABLE_DUMP_V2: peer index " +
                     std::to_string(peer_index) + " out of range");
  const PeerEntry& peer = peers_.peers[peer_index];
  rib_view_.timestamp = record_timestamp_;
  rib_view_.sequence = sequence_;
  rib_view_.originated_time = originated;
  rib_view_.peer_asn = peer.asn;
  rib_view_.peer_ip = peer.ip;
  rib_view_.prefix = &prefix_;
  rib_view_.attrs = &attrs_;
  --entries_left_;
  if (entries_left_ == 0 && !record_.done())
    throw ParseError("RIB record: trailing bytes");
}

MrtCursor::Event MrtCursor::next() {
  try {
    return next_impl();
  } catch (const ParseError& e) {
    throw ParseError(std::string(e.what()) + " (record at byte offset " +
                     std::to_string(record_offset_) + ")");
  }
}

bool MrtCursor::resync() {
  // Abandon whatever the cursor was mid-way through.
  entries_left_ = 0;
  record_ = ByteReader(std::span<const std::uint8_t>{});
  // The bad record's header itself may be the lie (a corrupt length
  // field), so the scan restarts one byte past its start -- never
  // backwards from wherever decoding got to.
  std::size_t from = std::max(record_offset_ + 1, reader_.position());
  if (reader_.position() > record_offset_ &&
      reader_.position() <= record_offset_ + detail::kMrtHeaderBytes)
    from = record_offset_ + 1;  // died inside the header: distrust it all
  for (; from + detail::kMrtHeaderBytes <= data_.size(); ++from) {
    const auto peek = detail::peek_header(data_.subspan(from));
    if (!peek || !detail::known_record_kind(peek->type, peek->subtype))
      continue;
    if (peek->length >
        data_.size() - from - detail::kMrtHeaderBytes)
      continue;  // claims more body than the stream holds
    reader_.seek(from);
    record_offset_ = from;
    return true;
  }
  reader_.seek(data_.size());
  return false;
}

MrtCursor::Event MrtCursor::next_impl() {
  if (entries_left_ > 0) {
    decode_rib_entry();
    return Event::RibEntry;
  }
  while (!reader_.done()) {
    record_offset_ = reader_.position();
    const std::uint32_t timestamp = reader_.u32();
    const std::uint16_t type = reader_.u16();
    const std::uint16_t subtype = reader_.u16();
    const std::uint32_t length = reader_.u32();
    ByteReader body = reader_.sub(length);

    if (type == static_cast<std::uint16_t>(MrtType::TableDumpV2)) {
      if (skip_ == Skip::TableDumpV2) continue;  // stepped over, undecoded
      if (subtype ==
          static_cast<std::uint16_t>(TableDumpV2Subtype::PeerIndexTable)) {
        peers_ = detail::decode_peer_index(body);
        have_peers_ = true;
        continue;
      }
      if (subtype ==
          static_cast<std::uint16_t>(TableDumpV2Subtype::RibIpv4Unicast)) {
        if (!have_peers_)
          throw ParseError(
              "TABLE_DUMP_V2: RIB record before PEER_INDEX_TABLE");
        record_timestamp_ = timestamp;
        sequence_ = body.u32();
        prefix_ = bgp::decode_nlri_prefix(body);
        entries_left_ = body.u16();
        record_ = body;
        if (entries_left_ == 0) {
          if (!record_.done()) throw ParseError("RIB record: trailing bytes");
          continue;  // prefix with no paths: nothing to emit
        }
        decode_rib_entry();
        return Event::RibEntry;
      }
    } else if (type == static_cast<std::uint16_t>(MrtType::Bgp4mp)) {
      const bool as4 =
          subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::MessageAs4);
      if (as4 ||
          subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::Message)) {
        const auto header = detail::decode_bgp4mp_header(body, as4);
        bgp::decode_update_into(body.bytes(body.remaining()), as4,
                                update_msg_);
        update_view_.timestamp = timestamp;
        update_view_.peer_asn = header.peer_asn;
        update_view_.peer_ip = header.peer_ip;
        update_view_.update = &update_msg_;
        return Event::Update;
      }
    }
    ++skipped_;  // unknown type/subtype: skip the body and continue
  }
  return Event::End;
}

}  // namespace mlp::mrt
