#include "topology/as_graph.hpp"

#include <algorithm>

#include "util/errors.hpp"

namespace mlp::topology {

namespace {
const std::vector<Neighbor> kNoNeighbors;
}

void AsGraph::add_as(Asn asn) { adj_.try_emplace(asn); }

void AsGraph::add_edge(Asn a, Asn b, Rel rel) {
  if (a == b) throw InvalidArgument("AsGraph: self-loop on AS" +
                                    std::to_string(a));
  add_as(a);
  add_as(b);
  auto upsert = [this](Asn from, Asn to, Rel r) {
    auto& nbrs = adj_[from];
    for (auto& n : nbrs) {
      if (n.asn == to) {
        n.rel = r;
        return;
      }
    }
    nbrs.push_back(Neighbor{to, r});
  };
  upsert(a, b, rel);
  upsert(b, a, bgp::invert(rel));
}

std::size_t AsGraph::link_count() const {
  std::size_t total = 0;
  for (const auto& [asn, nbrs] : adj_) total += nbrs.size();
  return total / 2;
}

std::optional<Rel> AsGraph::rel(Asn a, Asn b) const {
  auto it = adj_.find(a);
  if (it == adj_.end()) return std::nullopt;
  for (const auto& n : it->second)
    if (n.asn == b) return n.rel;
  return std::nullopt;
}

bgp::RelFn AsGraph::rel_fn() const {
  return [this](Asn from, Asn to) { return rel(from, to); };
}

const std::vector<Neighbor>& AsGraph::neighbors(Asn asn) const {
  auto it = adj_.find(asn);
  return it == adj_.end() ? kNoNeighbors : it->second;
}

std::vector<Asn> AsGraph::customers(Asn asn) const {
  std::vector<Asn> out;
  for (const auto& n : neighbors(asn))
    if (n.rel == Rel::P2C) out.push_back(n.asn);
  return out;
}

std::vector<Asn> AsGraph::providers(Asn asn) const {
  std::vector<Asn> out;
  for (const auto& n : neighbors(asn))
    if (n.rel == Rel::C2P) out.push_back(n.asn);
  return out;
}

std::vector<Asn> AsGraph::peers(Asn asn) const {
  std::vector<Asn> out;
  for (const auto& n : neighbors(asn))
    if (n.rel == Rel::P2P) out.push_back(n.asn);
  return out;
}

std::vector<Asn> AsGraph::siblings(Asn asn) const {
  std::vector<Asn> out;
  for (const auto& n : neighbors(asn))
    if (n.rel == Rel::Sibling) out.push_back(n.asn);
  return out;
}

std::size_t AsGraph::customer_degree(Asn asn) const {
  std::size_t n = 0;
  for (const auto& nb : neighbors(asn))
    if (nb.rel == Rel::P2C) ++n;
  return n;
}

std::set<Asn> AsGraph::customer_cone(Asn asn) const {
  std::set<Asn> cone;
  std::vector<Asn> stack = {asn};
  while (!stack.empty()) {
    const Asn current = stack.back();
    stack.pop_back();
    if (!cone.insert(current).second) continue;
    for (const auto& n : neighbors(current))
      if (n.rel == Rel::P2C && !cone.count(n.asn)) stack.push_back(n.asn);
  }
  return cone;
}

std::vector<Asn> AsGraph::ases() const {
  std::vector<Asn> out;
  out.reserve(adj_.size());
  for (const auto& [asn, nbrs] : adj_) out.push_back(asn);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<AsLink, Rel>> AsGraph::links() const {
  std::vector<std::pair<AsLink, Rel>> out;
  for (const auto& [asn, nbrs] : adj_) {
    for (const auto& n : nbrs) {
      if (asn < n.asn) out.emplace_back(AsLink(asn, n.asn), n.rel);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  return out;
}

}  // namespace mlp::topology
