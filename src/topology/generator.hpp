// Synthetic AS-level topology generation.
//
// Substitutes for the real May-2013 Internet (see DESIGN.md): a tiered
// customer-provider hierarchy with a full-mesh top clique, regional transit
// providers, a large stub edge, a handful of content-heavy networks, and
// occasional sibling sets. IXP peering edges are NOT created here — the
// scenario layer adds them from route-server ground truth, mirroring how
// multilateral peering overlays the transit hierarchy.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "topology/as_graph.hpp"
#include "util/rng.hpp"

namespace mlp::topology {

/// Coarse geography, used for IXP membership locality and the paper's
/// geographic-scope analyses (figure 13).
enum class Region : std::uint8_t {
  WesternEurope,
  EasternEurope,
  NorthAmerica,
  AsiaPacific,
  LatinAmerica,
  Africa,
};

inline constexpr std::size_t kRegionCount = 6;
std::string to_string(Region region);

/// Structural role of an AS in the generated hierarchy.
enum class Tier : std::uint8_t { Clique, Transit, Stub };

/// Static per-AS facts produced by the generator.
struct AsProfile {
  Asn asn = 0;
  Tier tier = Tier::Stub;
  Region home_region = Region::WesternEurope;
  /// Regions where the AS has PoPs (home region always included).
  std::vector<Region> presence;
  /// Content-heavy networks (Google/Akamai analogues): attractive peers
  /// that are often also reachable via private interconnects (section 5.5).
  bool content_heavy = false;

  bool present_in(Region r) const;
};

struct TopologyParams {
  std::size_t n_ases = 3000;
  std::size_t n_clique = 10;
  /// Fraction of non-clique ASes that provide transit.
  double transit_fraction = 0.15;
  /// Number of content-heavy networks.
  std::size_t n_content = 8;
  /// Probability that a transit AS has a sibling.
  double sibling_prob = 0.02;
  /// Fraction of ASes numbered above 16 bits (RFC 6793 adoption ~2013).
  double asn32_fraction = 0.08;
  /// Bilateral/private p2p links between transit ASes, as a fraction of
  /// the number of transit ASes.
  double private_peering_factor = 0.8;
  /// Weights for the home region draw (Europe-heavy by default, matching
  /// the paper's focus).
  std::vector<double> region_weights = {0.34, 0.22, 0.18, 0.14, 0.07, 0.05};
};

/// A generated topology: relationship graph plus per-AS profiles.
struct Topology {
  AsGraph graph;
  std::map<Asn, AsProfile> profiles;
  std::vector<Asn> clique;
  std::vector<Asn> transits;
  std::vector<Asn> stubs;
  std::vector<Asn> content;

  const AsProfile& profile(Asn asn) const;
  /// All ASes with a PoP in `region`.
  std::vector<Asn> ases_in(Region region) const;
};

/// Deterministic generator: the same params+seed yield the same topology.
Topology generate_topology(const TopologyParams& params, Rng& rng);

}  // namespace mlp::topology
