// The AS-level business-relationship graph.
//
// Nodes are ASNs; edges carry a Gao-Rexford relationship (c2p, p2p or
// sibling). This graph is the ground truth the synthetic ecosystem routes
// over; the inference side only ever sees AS paths derived from it.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/valley.hpp"

namespace mlp::topology {

using bgp::Asn;
using bgp::AsLink;
using bgp::Rel;

/// Directed neighbor record: our relationship toward that neighbor.
struct Neighbor {
  Asn asn = 0;
  Rel rel = Rel::P2P;  // relationship of the owning AS toward `asn`
};

/// Mutable AS relationship graph with cone/degree queries.
class AsGraph {
 public:
  /// Adds an AS with no edges; idempotent.
  void add_as(Asn asn);

  /// Adds an undirected relationship edge. `rel` is the relationship of `a`
  /// toward `b` (Rel::C2P means a is b's customer). Re-adding an existing
  /// pair replaces the relationship. Self-loops are rejected.
  void add_edge(Asn a, Asn b, Rel rel);

  bool has_as(Asn asn) const { return adj_.count(asn) != 0; }
  std::size_t as_count() const { return adj_.size(); }
  std::size_t link_count() const;

  /// Relationship of `a` toward `b`, or nullopt if not adjacent.
  std::optional<Rel> rel(Asn a, Asn b) const;

  /// Adapter for bgp::check_valley_free.
  bgp::RelFn rel_fn() const;

  const std::vector<Neighbor>& neighbors(Asn asn) const;
  std::vector<Asn> customers(Asn asn) const;
  std::vector<Asn> providers(Asn asn) const;
  std::vector<Asn> peers(Asn asn) const;
  std::vector<Asn> siblings(Asn asn) const;

  /// Number of direct customers (the paper's "customer degree", fig. 7).
  std::size_t customer_degree(Asn asn) const;

  /// An AS with no customers is a stub (paper section 5).
  bool is_stub(Asn asn) const { return customer_degree(asn) == 0; }

  /// Total neighbor count.
  std::size_t degree(Asn asn) const { return neighbors(asn).size(); }

  /// The customer cone of `asn`: itself plus everything reachable by
  /// repeatedly descending provider->customer edges (paper section 5.5,
  /// following [32]). Sibling edges are not descended.
  std::set<Asn> customer_cone(Asn asn) const;

  /// All ASNs, sorted.
  std::vector<Asn> ases() const;

  /// All undirected links with the relationship seen from link.a's side.
  std::vector<std::pair<AsLink, Rel>> links() const;

 private:
  std::unordered_map<Asn, std::vector<Neighbor>> adj_;
};

}  // namespace mlp::topology
