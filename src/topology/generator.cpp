#include "topology/generator.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/errors.hpp"

namespace mlp::topology {

std::string to_string(Region region) {
  switch (region) {
    case Region::WesternEurope:
      return "Western Europe";
    case Region::EasternEurope:
      return "Eastern Europe";
    case Region::NorthAmerica:
      return "North America";
    case Region::AsiaPacific:
      return "Asia/Pacific";
    case Region::LatinAmerica:
      return "Latin America";
    case Region::Africa:
      return "Africa";
  }
  return "unknown";
}

bool AsProfile::present_in(Region r) const {
  return std::find(presence.begin(), presence.end(), r) != presence.end();
}

const AsProfile& Topology::profile(Asn asn) const {
  auto it = profiles.find(asn);
  if (it == profiles.end())
    throw InvalidArgument("Topology::profile: unknown AS" +
                          std::to_string(asn));
  return it->second;
}

std::vector<Asn> Topology::ases_in(Region region) const {
  std::vector<Asn> out;
  for (const auto& [asn, profile] : profiles)
    if (profile.present_in(region)) out.push_back(asn);
  return out;
}

namespace {

/// Draw `count` distinct ASNs: mostly 16-bit, a slice from the 32-bit space.
std::vector<Asn> draw_asns(std::size_t count, double asn32_fraction,
                           Rng& rng) {
  std::unordered_set<Asn> used;
  std::vector<Asn> out;
  out.reserve(count);
  while (out.size() < count) {
    Asn asn;
    if (rng.chance(asn32_fraction)) {
      asn = static_cast<Asn>(rng.uniform(196608, 400000));  // 32-bit only
    } else {
      asn = static_cast<Asn>(rng.uniform(1000, 62000));
    }
    if (bgp::is_reserved_or_unassigned(asn) || bgp::is_private(asn)) continue;
    if (used.insert(asn).second) out.push_back(asn);
  }
  return out;
}

Region draw_region(const std::vector<double>& weights, Rng& rng) {
  if (weights.size() != kRegionCount)
    throw InvalidArgument("TopologyParams: region_weights must have 6 items");
  return static_cast<Region>(rng.weighted_index(weights));
}

}  // namespace

Topology generate_topology(const TopologyParams& params, Rng& rng) {
  if (params.n_ases < params.n_clique + 10)
    throw InvalidArgument("generate_topology: n_ases too small");

  Topology topo;
  const std::vector<Asn> asns =
      draw_asns(params.n_ases, params.asn32_fraction, rng);

  const std::size_t n_clique = params.n_clique;
  const std::size_t n_transit = static_cast<std::size_t>(
      static_cast<double>(params.n_ases - n_clique) * params.transit_fraction);

  // --- Assign roles and regions. Clique members are globally present.
  for (std::size_t i = 0; i < asns.size(); ++i) {
    AsProfile profile;
    profile.asn = asns[i];
    profile.home_region = draw_region(params.region_weights, rng);
    profile.presence = {profile.home_region};
    if (i < n_clique) {
      profile.tier = Tier::Clique;
      for (std::size_t r = 0; r < kRegionCount; ++r) {
        const Region region = static_cast<Region>(r);
        if (!profile.present_in(region)) profile.presence.push_back(region);
      }
      topo.clique.push_back(profile.asn);
    } else if (i < n_clique + n_transit) {
      profile.tier = Tier::Transit;
      // Transit providers reach 1-3 extra regions.
      const std::size_t extra = rng.uniform(0, 2);
      for (std::size_t k = 0; k < extra; ++k) {
        const Region r = draw_region(params.region_weights, rng);
        if (!profile.present_in(r)) profile.presence.push_back(r);
      }
      topo.transits.push_back(profile.asn);
    } else {
      profile.tier = Tier::Stub;
      topo.stubs.push_back(profile.asn);
    }
    topo.profiles[profile.asn] = std::move(profile);
    topo.graph.add_as(asns[i]);
  }

  // --- Content-heavy networks: drawn from the stub pool, promoted to a
  // multi-region presence (they peer widely but buy little transit).
  for (std::size_t i = 0; i < params.n_content && i < topo.stubs.size(); ++i) {
    const Asn asn = topo.stubs[i];
    AsProfile& profile = topo.profiles[asn];
    profile.content_heavy = true;
    for (std::size_t r = 0; r < kRegionCount; ++r) {
      const Region region = static_cast<Region>(r);
      if (!profile.present_in(region) && rng.chance(0.7))
        profile.presence.push_back(region);
    }
    topo.content.push_back(asn);
  }

  // --- Clique: full p2p mesh.
  for (std::size_t i = 0; i < topo.clique.size(); ++i)
    for (std::size_t j = i + 1; j < topo.clique.size(); ++j)
      topo.graph.add_edge(topo.clique[i], topo.clique[j], Rel::P2P);

  // --- Transit layer: each transit AS buys from 1-3 providers drawn from
  // the clique and earlier transits, preferentially by current customer
  // degree (rich get richer) and biased toward shared regions.
  std::vector<Asn> provider_pool = topo.clique;
  for (const Asn asn : topo.transits) {
    const AsProfile& profile = topo.profiles[asn];
    const std::size_t want = rng.uniform(1, 3);
    std::unordered_set<Asn> chosen;
    for (std::size_t k = 0; k < want; ++k) {
      std::vector<double> weights(provider_pool.size());
      for (std::size_t p = 0; p < provider_pool.size(); ++p) {
        const Asn cand = provider_pool[p];
        if (chosen.count(cand)) {
          weights[p] = 0.0;
          continue;
        }
        double w =
            1.0 + static_cast<double>(topo.graph.customer_degree(cand));
        const AsProfile& cand_profile = topo.profiles[cand];
        bool shares_region = false;
        for (const Region r : profile.presence)
          if (cand_profile.present_in(r)) shares_region = true;
        if (shares_region) w *= 3.0;
        weights[p] = w;
      }
      const Asn provider = provider_pool[rng.weighted_index(weights)];
      if (chosen.insert(provider).second)
        topo.graph.add_edge(asn, provider, Rel::C2P);
    }
    provider_pool.push_back(asn);
  }

  // --- Stubs: 1-2 providers, strongly biased toward transit ASes present
  // in the stub's home region; content-heavy stubs multihome more.
  for (const Asn asn : topo.stubs) {
    const AsProfile& profile = topo.profiles[asn];
    const std::size_t want =
        profile.content_heavy ? rng.uniform(2, 4) : rng.uniform(1, 2);
    std::unordered_set<Asn> chosen;
    for (std::size_t k = 0; k < want; ++k) {
      std::vector<double> weights(provider_pool.size());
      for (std::size_t p = 0; p < provider_pool.size(); ++p) {
        const Asn cand = provider_pool[p];
        if (chosen.count(cand)) {
          weights[p] = 0.0;
          continue;
        }
        double w =
            1.0 + static_cast<double>(topo.graph.customer_degree(cand));
        if (topo.profiles[cand].present_in(profile.home_region)) w *= 6.0;
        weights[p] = w;
      }
      const Asn provider = provider_pool[rng.weighted_index(weights)];
      if (chosen.insert(provider).second)
        topo.graph.add_edge(asn, provider, Rel::C2P);
    }
  }

  // --- Siblings: occasional pairs among transit ASes (same organisation).
  for (const Asn asn : topo.transits) {
    if (!rng.chance(params.sibling_prob)) continue;
    const Asn other = rng.pick(topo.transits);
    if (other != asn && !topo.graph.rel(asn, other))
      topo.graph.add_edge(asn, other, Rel::Sibling);
  }

  // --- Private (bilateral, non-IXP) peering between transit providers:
  // the part of the peering ecosystem the paper's method does NOT see.
  const std::size_t n_private = static_cast<std::size_t>(
      static_cast<double>(topo.transits.size()) *
      params.private_peering_factor);
  for (std::size_t k = 0; k < n_private && topo.transits.size() >= 2; ++k) {
    const Asn a = rng.pick(topo.transits);
    const Asn b = rng.pick(topo.transits);
    if (a == b || topo.graph.rel(a, b)) continue;
    topo.graph.add_edge(a, b, Rel::P2P);
  }

  // --- Content networks privately peer with several transits (the
  // "prefers direct peering over the route server" behaviour of fig. 13).
  for (const Asn asn : topo.content) {
    const std::size_t n_peers = rng.uniform(3, 8);
    for (std::size_t k = 0; k < n_peers; ++k) {
      const Asn peer = rng.pick(topo.transits);
      if (peer != asn && !topo.graph.rel(asn, peer))
        topo.graph.add_edge(asn, peer, Rel::P2P);
    }
  }

  return topo;
}

}  // namespace mlp::topology
