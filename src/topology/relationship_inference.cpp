#include "topology/relationship_inference.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mlp::topology {

std::optional<Rel> InferredRelationships::rel(Asn a, Asn b) const {
  auto it = rels_.find(AsLink(a, b));
  if (it == rels_.end()) return std::nullopt;
  // Stored relative to link.a; flip if the caller asked from the b side.
  return a <= b ? it->second : bgp::invert(it->second);
}

bgp::RelFn InferredRelationships::rel_fn() const {
  return [this](Asn from, Asn to) { return rel(from, to); };
}

void InferredRelationships::set_link(AsLink link, Rel rel_a_to_b) {
  rels_[link] = rel_a_to_b;
  if (rel_a_to_b == Rel::C2P) {
    customers_[link.b].push_back(link.a);
  } else if (rel_a_to_b == Rel::P2C) {
    customers_[link.a].push_back(link.b);
  }
}

std::set<Asn> InferredRelationships::customer_cone(Asn asn) const {
  std::set<Asn> cone;
  std::vector<Asn> stack = {asn};
  while (!stack.empty()) {
    const Asn current = stack.back();
    stack.pop_back();
    if (!cone.insert(current).second) continue;
    auto it = customers_.find(current);
    if (it == customers_.end()) continue;
    for (const Asn customer : it->second)
      if (!cone.count(customer)) stack.push_back(customer);
  }
  return cone;
}

std::size_t InferredRelationships::customer_degree(Asn asn) const {
  auto it = customers_.find(asn);
  if (it == customers_.end()) return 0;
  std::unordered_set<Asn> distinct(it->second.begin(), it->second.end());
  return distinct.size();
}

namespace {

/// Transit degree: number of distinct neighbors an AS has in paths where
/// it appears in a non-terminal position (it forwarded the route).
std::unordered_map<Asn, std::size_t> transit_degrees(
    const std::vector<bgp::AsPath>& paths) {
  std::unordered_map<Asn, std::unordered_set<Asn>> neighbors;
  for (const auto& path : paths) {
    const auto& asns = path.asns();
    for (std::size_t i = 1; i + 1 < asns.size(); ++i) {
      neighbors[asns[i]].insert(asns[i - 1]);
      neighbors[asns[i]].insert(asns[i + 1]);
    }
  }
  std::unordered_map<Asn, std::size_t> out;
  for (const auto& [asn, set] : neighbors) out[asn] = set.size();
  return out;
}

struct Votes {
  std::size_t toward_b = 0;  // votes for "a is customer of b"
  std::size_t toward_a = 0;  // votes for "b is customer of a"
  std::size_t peer = 0;
};

}  // namespace

InferredRelationships infer_relationships(
    const std::vector<bgp::AsPath>& paths,
    const RelationshipInferenceParams& params) {
  // Data cleaning, as in the paper: collapse prepending, drop cycles and
  // reserved ASNs.
  std::vector<bgp::AsPath> clean;
  clean.reserve(paths.size());
  for (const auto& path : paths) {
    if (path.has_cycle() || path.has_reserved_asn()) continue;
    bgp::AsPath flat = path.deduplicated();
    if (flat.length() >= 2) clean.push_back(std::move(flat));
  }

  const auto degrees = transit_degrees(clean);
  auto degree_of = [&](Asn asn) -> std::size_t {
    auto it = degrees.find(asn);
    return it == degrees.end() ? 0 : it->second;
  };

  // Clique: the top-N ASes by transit degree.
  std::vector<Asn> ranked;
  ranked.reserve(degrees.size());
  for (const auto& [asn, degree] : degrees) ranked.push_back(asn);
  std::sort(ranked.begin(), ranked.end(), [&](Asn a, Asn b) {
    if (degree_of(a) != degree_of(b)) return degree_of(a) > degree_of(b);
    return a < b;
  });
  std::set<Asn> clique(ranked.begin(),
                       ranked.begin() + std::min(params.clique_size,
                                                 ranked.size()));

  // Vote per path relative to its summit (maximum transit degree).
  std::map<AsLink, Votes> votes;
  for (const auto& path : clean) {
    const auto& asns = path.asns();
    std::size_t summit = 0;
    for (std::size_t i = 1; i < asns.size(); ++i)
      if (degree_of(asns[i]) > degree_of(asns[summit])) summit = i;

    for (std::size_t i = 0; i + 1 < asns.size(); ++i) {
      const AsLink link(asns[i], asns[i + 1]);
      Votes& v = votes[link];
      const bool both_clique =
          clique.count(asns[i]) && clique.count(asns[i + 1]);
      // Summit-adjacent pair with comparable transit degree: likely p2p.
      const bool at_summit = (i + 1 == summit) || (i == summit);
      const double da = static_cast<double>(degree_of(asns[i]));
      const double db = static_cast<double>(degree_of(asns[i + 1]));
      const double hi = std::max(da, db);
      const double lo = std::max(1.0, std::min(da, db));
      const bool high_degree_pair =
          std::min(da, db) >= static_cast<double>(params.min_peer_degree);
      if (both_clique || (at_summit && high_degree_pair &&
                          hi / lo <= params.peer_degree_ratio)) {
        ++v.peer;
        continue;
      }
      if (i + 1 <= summit) {
        // Vantage side of the summit: route descended, so the AS closer to
        // the summit is the provider: asns[i] is customer of asns[i+1].
        if (link.a == asns[i])
          ++v.toward_b;
        else
          ++v.toward_a;
      } else {
        // Origin side: the AS closer to the summit is the provider:
        // asns[i+1] is customer of asns[i].
        if (link.a == asns[i + 1])
          ++v.toward_b;
        else
          ++v.toward_a;
      }
    }
  }

  InferredRelationships out;
  out.set_clique(clique);
  for (const auto& [link, v] : votes) {
    const std::size_t directional = v.toward_a + v.toward_b;
    if (v.peer >= directional) {
      out.set_link(link, Rel::P2P);
      continue;
    }
    const double hi = static_cast<double>(std::max(v.toward_a, v.toward_b));
    const double lo = static_cast<double>(std::min(v.toward_a, v.toward_b));
    if (lo > 0.0 && hi / lo < params.dominance) {
      out.set_link(link, Rel::P2P);  // conflicting directions: call it p2p
    } else if (v.toward_b >= v.toward_a) {
      out.set_link(link, Rel::C2P);  // link.a is customer of link.b
    } else {
      out.set_link(link, Rel::P2C);
    }
  }
  return out;
}

}  // namespace mlp::topology
