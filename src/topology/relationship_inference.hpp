// AS relationship inference from observed AS paths.
//
// A simplified reimplementation of the CAIDA AS-Rank approach the paper
// relies on ([32], "AS Relationships, Customer Cones, and Validation"):
// infer a top clique by transit degree, vote link directions per path
// relative to the path's summit, and derive customer cones from the
// inferred c2p edges. The paper uses these relationships (a) to identify
// the RS setter in AS paths with more than two IXP members (section 4.2,
// case 3) and (b) for the customer-cone analyses of sections 5.5-5.6.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/valley.hpp"

namespace mlp::topology {

using bgp::Asn;
using bgp::AsLink;
using bgp::Rel;

/// Inferred relationship set over the links observed in the input paths.
class InferredRelationships {
 public:
  /// Relationship of `a` toward `b`, or nullopt if the link was never
  /// observed.
  std::optional<Rel> rel(Asn a, Asn b) const;

  /// Adapter for bgp::check_valley_free.
  bgp::RelFn rel_fn() const;

  /// Customer cone of `asn` over the inferred c2p edges: the AS itself
  /// plus every AS reachable by descending provider->customer links.
  std::set<Asn> customer_cone(Asn asn) const;

  /// Direct customers under the inferred graph.
  std::size_t customer_degree(Asn asn) const;

  /// The inferred top clique (by transit degree).
  const std::set<Asn>& clique() const { return clique_; }

  /// All inferred links with rel(link.a -> link.b).
  const std::map<AsLink, Rel>& links() const { return rels_; }

  std::size_t link_count() const { return rels_.size(); }

  // Construction interface used by infer_relationships().
  void set_clique(std::set<Asn> clique) { clique_ = std::move(clique); }
  void set_link(AsLink link, Rel rel_a_to_b);

 private:
  std::map<AsLink, Rel> rels_;
  std::set<Asn> clique_;
  std::map<Asn, std::vector<Asn>> customers_;  // provider -> customers
};

struct RelationshipInferenceParams {
  /// Size of the inferred top clique.
  std::size_t clique_size = 10;
  /// Two summit-adjacent ASes whose transit degrees are within this ratio
  /// are assumed to peer rather than to have a c2p relationship.
  double peer_degree_ratio = 2.5;
  /// The ratio heuristic only applies when both sides have at least this
  /// transit degree; low-degree summits are kept directional.
  std::size_t min_peer_degree = 10;
  /// A direction needs at least this multiple of opposing votes to win;
  /// otherwise the link is classified p2p.
  double dominance = 2.0;
};

/// Run the inference over a set of AS paths (vantage point first, origin
/// last). Paths with cycles or reserved ASNs are ignored, as in the paper's
/// data cleaning step.
InferredRelationships infer_relationships(
    const std::vector<bgp::AsPath>& paths,
    const RelationshipInferenceParams& params = {});

}  // namespace mlp::topology
