// Immutable, shareable view of one engine's inference state at a
// publication instant (an "epoch").
//
// The live pipeline's reader/writer split: the writer side
// (MlpInferenceEngine) stays confined to its one consumer task and
// mutates freely; whenever it reaches a publishable point it freeze()s
// an EngineSnapshot -- a self-contained copy of the member index, the
// reciprocity bitset and the derived stats -- and swaps it behind an
// atomic shared_ptr. Readers (LiveSession::epoch_snapshot, the
// `mlp_infer query` server, benchmarks) load that pointer lock-free and
// answer every query from the copy, never touching the engine, a lane
// mutex or the session lock.
//
// Ownership: an EngineSnapshot OWNS everything it exposes (participant
// set, observed set, reciprocal bitset, stats). It borrows nothing from
// the engine that froze it, so it stays valid for as long as any reader
// holds the shared_ptr -- including across engine mutation, session
// restore and session destruction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/types.hpp"

namespace mlp::core {

/// One frozen epoch of a route server's inference state. Immutable after
/// construction; every accessor is const and safe to call concurrently
/// from any number of threads without synchronization.
class EngineSnapshot {
 public:
  /// Publication sequence number assigned by the publisher (1-based,
  /// monotone per shard; survives checkpoint/restore).
  std::uint64_t epoch() const { return epoch_; }

  /// The engine's mutation generation at freeze time: two snapshots with
  /// equal generation describe identical accumulated state.
  std::uint64_t generation() const { return generation_; }

  /// The IXP this snapshot describes (IxpContext::name).
  const std::string& ixp() const { return ixp_; }

  /// Whether unobserved A_RS members participated with the default-open
  /// policy when this snapshot was frozen (the flag the whole snapshot
  /// was computed under).
  bool assume_open_for_unobserved() const { return assume_open_; }

  /// Full engine stats at freeze time; `stats().links` is the link count
  /// under the snapshot's flag.
  const EngineStats& stats() const { return stats_; }
  std::size_t link_count() const { return stats_.links; }

  std::size_t rejected_observations() const { return rejected_; }

  /// A_RS, sorted (the reciprocity universe).
  const FlatAsnSet& participants() const { return participants_; }
  /// Members with at least one observation, sorted.
  const FlatAsnSet& observed_members() const { return observed_; }

  bool is_member(Asn asn) const { return participants_.contains(asn); }
  bool is_observed(Asn asn) const { return observed_.contains(asn); }

  /// Whether the snapshot infers a p2p link between `a` and `b` (order
  /// irrelevant). False for non-members, self-pairs and -- unless the
  /// snapshot was frozen with assume_open_for_unobserved -- unobserved
  /// members.
  bool has_link(Asn a, Asn b) const;

  /// All link partners of `member`, ascending. Empty for non-members.
  std::vector<Asn> links_of(Asn member) const;

  /// Materialize the full link set (infer_links equivalent). O(links)
  /// allocation; prefer link_count()/has_link()/links_of() on the query
  /// path.
  std::set<AsLink> links() const;

 private:
  friend class MlpInferenceEngine;  // the only producer (freeze())

  EngineSnapshot() = default;

  /// True when dense participant index `i` takes part in link queries
  /// under the snapshot's flag.
  bool participates(std::size_t i) const {
    return assume_open_ ||
           (observed_mask_[i / 64] >> (i % 64) & std::uint64_t{1}) != 0;
  }
  const std::uint64_t* reciprocal_row(std::size_t i) const {
    return reciprocal_.data() + i * words_;
  }

  std::uint64_t epoch_ = 0;
  std::uint64_t generation_ = 0;
  std::string ixp_;
  bool assume_open_ = false;
  FlatAsnSet participants_;
  FlatAsnSet observed_;
  std::size_t words_ = 0;
  /// Row-major participants x words; bit (i, j) says the reciprocity
  /// test holds both ways between dense indices i and j (diagonal
  /// clear). Symmetric. NOT masked by observation status -- queries mask
  /// with observed_mask_ when the flag is off.
  std::vector<std::uint64_t> reciprocal_;
  /// Column bitmask of observed participants.
  std::vector<std::uint64_t> observed_mask_;
  EngineStats stats_;
  std::size_t rejected_ = 0;
};

}  // namespace mlp::core
