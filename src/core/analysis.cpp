#include "core/analysis.hpp"

#include <algorithm>

namespace mlp::core {

namespace {

std::map<Asn, std::size_t> links_per_member(const std::set<AsLink>& links) {
  std::map<Asn, std::size_t> out;
  for (const AsLink& link : links) {
    ++out[link.a];
    ++out[link.b];
  }
  return out;
}

}  // namespace

VisibilityComparison compare_visibility(const std::set<AsLink>& mlp,
                                        const std::set<AsLink>& passive,
                                        const std::set<AsLink>& active) {
  VisibilityComparison out;
  out.mlp_links = mlp.size();

  // Members are the endpoints of the MLP set (the ranked x-axis of fig 6).
  std::set<Asn> members;
  for (const AsLink& link : mlp) {
    members.insert(link.a);
    members.insert(link.b);
  }
  const auto mlp_counts = links_per_member(mlp);

  std::map<Asn, std::size_t> passive_counts;
  std::map<Asn, std::size_t> active_counts;
  for (const AsLink& link : passive) {
    if (members.count(link.a)) ++passive_counts[link.a];
    if (members.count(link.b)) ++passive_counts[link.b];
    if (members.count(link.a) && members.count(link.b))
      ++out.passive_p2p_links;
  }
  for (const AsLink& link : active) {
    if (members.count(link.a)) ++active_counts[link.a];
    if (members.count(link.b)) ++active_counts[link.b];
  }
  for (const AsLink& link : mlp) {
    if (passive.count(link)) ++out.overlap_mlp_passive;
    if (active.count(link)) ++out.overlap_mlp_active;
  }

  for (const Asn member : members) {
    VisibilityRow row;
    row.member = member;
    auto get = [](const std::map<Asn, std::size_t>& counts, Asn asn) {
      auto it = counts.find(asn);
      return it == counts.end() ? std::size_t{0} : it->second;
    };
    row.mlp = get(mlp_counts, member);
    row.passive = get(passive_counts, member);
    row.active = get(active_counts, member);
    out.rows.push_back(row);
  }
  std::sort(out.rows.begin(), out.rows.end(),
            [](const VisibilityRow& a, const VisibilityRow& b) {
              if (a.mlp != b.mlp) return a.mlp > b.mlp;
              return a.member < b.member;
            });
  return out;
}

DegreeAnalysis analyze_link_degrees(const std::set<AsLink>& links,
                                    const DegreeFn& customer_degree) {
  DegreeAnalysis out;
  std::size_t stub_stub = 0;
  std::size_t one_stub = 0;
  std::size_t small = 0;
  for (const AsLink& link : links) {
    const std::size_t da = customer_degree(link.a);
    const std::size_t db = customer_degree(link.b);
    const std::size_t lo = std::min(da, db);
    const std::size_t hi = std::max(da, db);
    out.smallest.push_back(lo);
    out.largest.push_back(hi);
    if (hi == 0) ++stub_stub;
    if (lo == 0) ++one_stub;
    if (lo <= 10) ++small;
  }
  const double n = links.empty() ? 1.0 : static_cast<double>(links.size());
  out.frac_stub_stub = static_cast<double>(stub_stub) / n;
  out.frac_one_stub = static_cast<double>(one_stub) / n;
  out.frac_small = static_cast<double>(small) / n;
  return out;
}

DensityAnalysis peering_density(const std::set<AsLink>& links,
                                const FlatAsnSet& rs_members) {
  DensityAnalysis out;
  if (rs_members.size() < 2) return out;
  const auto counts = links_per_member(links);
  const double possible = static_cast<double>(rs_members.size() - 1);
  double sum = 0.0;
  for (const Asn member : rs_members) {
    auto it = counts.find(member);
    const double mine =
        it == counts.end() ? 0.0 : static_cast<double>(it->second);
    const double density = mine / possible;
    out.per_member.push_back(density);
    sum += density;
  }
  out.mean = sum / static_cast<double>(rs_members.size());
  return out;
}

RepellerReport analyze_repellers(
    const std::vector<const MlpInferenceEngine*>& engines,
    const std::function<std::set<Asn>(Asn)>& cone,
    const std::function<bool(Asn, Asn)>& is_customer) {
  RepellerReport report;
  for (const MlpInferenceEngine* engine : engines) {
    for (const Asn setter : engine->observed_members()) {
      const auto policy = engine->policy_of(setter);
      if (!policy ||
          policy->mode() != routeserver::ExportPolicy::Mode::AllExcept)
        continue;
      std::set<Asn> setter_cone;
      if (cone) setter_cone = cone(setter);
      for (const Asn target : policy->peers()) {
        if (!engine->context().is_member(target)) continue;
        ++report.exclude_applications;
        ++report.blocked_count[target];
        if (cone && setter_cone.count(target)) ++report.cone_blocks;
        if (is_customer && is_customer(setter, target))
          ++report.provider_blocks_customer;
      }
    }
  }
  report.repelled_members = report.blocked_count.size();
  return report;
}

HybridReport find_hybrid_relationships(const std::set<AsLink>& mlp_links,
                                       const std::set<AsLink>& passive_links,
                                       const bgp::RelFn& inferred_rel) {
  HybridReport report;
  for (const AsLink& link : mlp_links) {
    if (!passive_links.count(link)) continue;
    const auto rel = inferred_rel(link.a, link.b);
    if (!rel) continue;
    if (*rel == bgp::Rel::C2P || *rel == bgp::Rel::P2C) {
      ++report.candidates;
      report.links.push_back(link);
    }
  }
  return report;
}

}  // namespace mlp::core
