#include "core/passive.hpp"

#include <iterator>
#include <utility>

#include "core/state_codec.hpp"
#include "mrt/cursor.hpp"
#include "util/errors.hpp"

namespace mlp::core {

PassiveStats& operator+=(PassiveStats& lhs, const PassiveStats& rhs) {
  lhs.paths_seen += rhs.paths_seen;
  lhs.paths_dirty += rhs.paths_dirty;
  lhs.paths_transient += rhs.paths_transient;
  lhs.paths_no_rs_values += rhs.paths_no_rs_values;
  lhs.paths_ambiguous_ixp += rhs.paths_ambiguous_ixp;
  lhs.paths_no_setter += rhs.paths_no_setter;
  lhs.observations += rhs.observations;
  lhs.records_malformed += rhs.records_malformed;
  lhs.peer_session_resets += rhs.peer_session_resets;
  lhs.pending_torn_down += rhs.pending_torn_down;
  return lhs;
}

PassiveExtractor::PassiveExtractor(std::vector<IxpContext> ixps,
                                   bgp::RelFn relationships,
                                   PassiveConfig config)
    : PassiveExtractor(
          std::make_shared<const std::vector<IxpContext>>(std::move(ixps)),
          std::move(relationships), config) {}

PassiveExtractor::PassiveExtractor(
    std::shared_ptr<const std::vector<IxpContext>> ixps,
    bgp::RelFn relationships, PassiveConfig config)
    : ixps_(std::move(ixps)),
      relationships_(std::move(relationships)),
      config_(config),
      by_ixp_(ixps_->size()) {}

void PassiveExtractor::set_sink(ObservationSink sink,
                                std::size_t batch_size) {
  if (stats_.paths_seen != 0 || stats_.observations != 0)
    throw InvalidArgument("passive: set_sink after input was consumed");
  sink_ = std::move(sink);
  sink_batch_ = batch_size == 0 ? 1 : batch_size;
}

std::size_t PassiveExtractor::attribute_ixps(
    const std::vector<Community>& communities) {
  attr_scratch_.clear();
  comm_scratch_.clear();
  std::size_t strong = 0;  // attributions where a value encodes the RS ASN
  for (std::size_t index = 0; index < ixps_->size(); ++index) {
    const IxpContext& ixp = (*ixps_)[index];
    Attribution attribution;
    attribution.ixp_index = index;
    attribution.comm_begin = static_cast<std::uint32_t>(comm_scratch_.size());
    bool peers_are_members = true;
    for (const Community community : communities) {
      Asn peer = 0;
      const auto tag = ixp.scheme.classify(community, &peer);
      if (tag == routeserver::CommunityTag::Unrelated) continue;
      comm_scratch_.push_back(community);
      if (ixp.scheme.encodes_rs_asn(community)) attribution.rs_encoded = true;
      if ((tag == routeserver::CommunityTag::Exclude ||
           tag == routeserver::CommunityTag::Include) &&
          !ixp.is_member(peer))
        peers_are_members = false;
    }
    attribution.comm_end = static_cast<std::uint32_t>(comm_scratch_.size());
    if (attribution.comm_end == attribution.comm_begin) continue;
    // The combination of targeted ASes must all be members of the IXP
    // (section 4.2's disambiguation rule).
    if (!peers_are_members) {
      comm_scratch_.resize(attribution.comm_begin);
      continue;
    }
    if (attribution.rs_encoded) ++strong;
    attr_scratch_.push_back(attribution);
  }
  return strong;
}

Asn PassiveExtractor::identify_setter(const AsPath& path,
                                      const IxpContext& ixp) {
  // Collapse prepending in place (the scratch equivalent of
  // path.deduplicated()) and record the member positions as we go.
  flat_scratch_.clear();
  member_pos_scratch_.clear();
  for (const Asn asn : path.asns()) {
    if (!flat_scratch_.empty() && flat_scratch_.back() == asn) continue;
    if (ixp.is_member(asn))
      member_pos_scratch_.push_back(
          static_cast<std::uint32_t>(flat_scratch_.size()));
    flat_scratch_.push_back(asn);
  }
  const auto& asns = flat_scratch_;
  const auto& member_positions = member_pos_scratch_;

  // Case 1: fewer than two members -- the RS crossing is not in the path.
  if (member_positions.size() < 2) return 0;

  // Case 2: exactly two members -- the setter is the one closest to the
  // origin (the prefix side).
  if (member_positions.size() == 2) {
    const std::size_t a = member_positions[0];
    const std::size_t b = member_positions[1];
    // The crossing must be a direct adjacency; members separated by other
    // ASes did not exchange this route over the route server.
    if (b != a + 1) return 0;
    return asns[b];
  }

  // Case 3: more than two members -- locate the single p2p step among the
  // adjacent member pairs using AS relationships, then take the side of
  // that step closest to the prefix.
  if (!relationships_) return 0;
  Asn setter = 0;
  for (std::size_t k = 0; k + 1 < member_positions.size(); ++k) {
    const std::size_t i = member_positions[k];
    const std::size_t j = member_positions[k + 1];
    if (j != i + 1) continue;  // not adjacent: not an RS crossing
    const auto rel = relationships_(asns[i], asns[j]);
    if (!rel || *rel != bgp::Rel::P2P) continue;
    if (setter != 0) return 0;  // two p2p candidates: cannot pinpoint
    setter = asns[j];
  }
  return setter;
}

void PassiveExtractor::emit(std::size_t index, Observation observation) {
  // Stamp with the stream clock, not the record that settled it: the
  // clock is a running max, so per-extractor emission timestamps are
  // monotone -- the invariant the live watermark merge sorts by.
  observation.timestamp = clock_;
  auto& bucket = by_ixp_[index];
  bucket.push_back(std::move(observation));
  ++stats_.observations;
  if (sink_) {
    if (bucket.size() >= sink_batch_) {
      sink_(index, std::move(bucket));
      bucket = {};
      bucket.reserve(sink_batch_);
    }
  } else {
    view_dirty_ = true;
  }
}

void PassiveExtractor::consume_path(const AsPath& path,
                                    const IpPrefix& prefix,
                                    const std::vector<Community>& communities,
                                    Source source) {
  ++stats_.paths_seen;
  if (path.has_cycle() || path.has_reserved_asn()) {
    ++stats_.paths_dirty;
    return;
  }
  const std::size_t strong = attribute_ixps(communities);
  if (attr_scratch_.empty()) {
    ++stats_.paths_no_rs_values;
    return;
  }
  if (strong == 0 && attr_scratch_.size() > 1) {
    // Multiple weak (EXCLUDE-only) candidates: the excluded-AS combination
    // exists at more than one IXP. Unresolvable.
    ++stats_.paths_ambiguous_ixp;
    return;
  }
  bool attributed = false;
  for (const Attribution& attribution : attr_scratch_) {
    // With any strong candidate present, the weak ones are superseded.
    if (strong > 0 && !attribution.rs_encoded) continue;
    const Asn setter =
        identify_setter(path, (*ixps_)[attribution.ixp_index]);
    if (setter == 0) continue;
    Observation observation;
    observation.setter = setter;
    observation.prefix = prefix;
    observation.communities.assign(
        comm_scratch_.begin() + attribution.comm_begin,
        comm_scratch_.begin() + attribution.comm_end);
    observation.source = source;
    emit(attribution.ixp_index, std::move(observation));
    attributed = true;
  }
  if (!attributed) ++stats_.paths_no_setter;
}

namespace {

/// Advance `cursor`, resyncing past malformed records when tolerated.
/// Returns End once the stream is exhausted (or abandoned).
mrt::MrtCursor::Event advance(mrt::MrtCursor& cursor,
                              const PassiveConfig& config,
                              PassiveStats& stats) {
  for (;;) {
    try {
      return cursor.next();
    } catch (const ParseError&) {
      if (!config.tolerate_malformed) throw;
      ++stats.records_malformed;
      if (!cursor.resync()) return mrt::MrtCursor::Event::End;
    }
  }
}

}  // namespace

void PassiveExtractor::consume_table_dump(
    std::span<const std::uint8_t> archive) {
  mrt::MrtCursor cursor(archive);
  for (;;) {
    const auto event = advance(cursor, config_, stats_);
    if (event == mrt::MrtCursor::Event::End) break;
    if (event != mrt::MrtCursor::Event::RibEntry)
      continue;  // BGP4MP in a mixed stream: not a RIB entry
    const mrt::RibEntryView& entry = cursor.rib_entry();
    consume_path(entry.attrs->as_path, *entry.prefix,
                 entry.attrs->communities, Source::Passive);
  }
}

void PassiveExtractor::settle(const PendingKey& key, const Pending& entry,
                              std::uint32_t now) {
  const std::uint32_t age = now - entry.announced_at;
  if (age < config_.min_duration_s) {
    ++stats_.paths_transient;  // short-lived: likely misconfiguration
  } else {
    consume_path(entry.path, key.second, entry.communities,
                 Source::Passive);
  }
}

void PassiveExtractor::evict_pending(std::uint32_t now) {
  // Drop stale FIFO fronts (their announcement was withdrawn or replaced)
  // so the deque stays proportional to the live window.
  auto stale = [this](const std::pair<PendingKey, std::uint32_t>& front) {
    const auto it = pending_.find(front.first);
    return it == pending_.end() ||
           it->second.announced_at != front.second;
  };
  while (!pending_fifo_.empty() && stale(pending_fifo_.front()))
    pending_fifo_.pop_front();
  // A long-lived announcement stuck at the front shields stale entries
  // behind it from the pop loop; once they are the majority, compact in
  // place (order-preserving, amortized O(1) per update since at most
  // pending_.size() entries survive).
  if (pending_fifo_.size() > 2 * pending_.size() + 16) {
    std::deque<std::pair<PendingKey, std::uint32_t>> live;
    for (auto& entry : pending_fifo_)
      if (!stale(entry)) live.push_back(std::move(entry));
    pending_fifo_ = std::move(live);
  }
  if (config_.max_pending_announcements == 0) return;
  while (pending_.size() > config_.max_pending_announcements) {
    // The window is full: the oldest standing announcement is settled
    // as if the observation period ended for it now.
    const auto [key, announced_at] = pending_fifo_.front();
    pending_fifo_.pop_front();
    const auto it = pending_.find(key);
    if (it == pending_.end() || it->second.announced_at != announced_at)
      continue;  // stale entry
    settle(key, it->second, now);
    pending_.erase(it);
    while (!pending_fifo_.empty() && stale(pending_fifo_.front()))
      pending_fifo_.pop_front();
  }
}

void PassiveExtractor::consume_update(std::uint32_t timestamp, Asn peer_asn,
                                      const bgp::UpdateMessage& update) {
  if (timestamp > clock_) clock_ = timestamp;
  for (const auto& prefix : update.withdrawn) {
    const auto key = std::make_pair(peer_asn, prefix);
    auto it = pending_.find(key);
    if (it == pending_.end()) continue;
    settle(key, it->second, timestamp);
    pending_.erase(it);
  }
  for (const auto& prefix : update.nlri) {
    const auto key = std::make_pair(peer_asn, prefix);
    auto it = pending_.find(key);
    if (it != pending_.end()) {
      // Re-announcement: the earlier version lived long enough only if
      // it aged past the threshold.
      settle(key, it->second, timestamp);
      it->second.announced_at = timestamp;
      it->second.path = update.attrs.as_path;
      it->second.communities = update.attrs.communities;
    } else {
      pending_.emplace(key, Pending{timestamp, update.attrs.as_path,
                                    update.attrs.communities});
    }
    pending_fifo_.emplace_back(key, timestamp);
  }
  evict_pending(timestamp);
}

void PassiveExtractor::peer_session_reset(Asn peer_asn,
                                          std::uint32_t timestamp) {
  if (timestamp > clock_) clock_ = timestamp;
  ++stats_.peer_session_resets;
  // pending_ is ordered by (peer, prefix), so the peer's announcements
  // form one contiguous range; a default IpPrefix (0.0.0.0/0) is the
  // minimum, making this the range's first entry.
  auto it = pending_.lower_bound(std::make_pair(peer_asn, IpPrefix{}));
  while (it != pending_.end() && it->first.first == peer_asn) {
    // Same semantics as a withdrawal arriving at the session boundary:
    // announcements that aged past min_duration settle as stable, the
    // rest count as transient. Stale FIFO entries are pruned lazily.
    settle(it->first, it->second, clock_);
    ++stats_.pending_torn_down;
    it = pending_.erase(it);
  }
}

void PassiveExtractor::flush_pending() {
  // Announcements still standing at the end of the window are stable.
  for (const auto& [key, entry] : pending_)
    consume_path(entry.path, key.second, entry.communities,
                 Source::Passive);
  pending_.clear();
  pending_fifo_.clear();
}

void PassiveExtractor::consume_update_stream(
    std::span<const std::uint8_t> archive) {
  // TABLE_DUMP_V2 records in a mixed stream are stepped over without
  // being decoded (parse_updates tolerance: even an orphaned RIB record
  // must not abort an update ingest).
  mrt::MrtCursor cursor(archive, mrt::MrtCursor::Skip::TableDumpV2);
  for (;;) {
    const auto event = advance(cursor, config_, stats_);
    if (event == mrt::MrtCursor::Event::End) break;
    if (event != mrt::MrtCursor::Event::Update) continue;
    const mrt::UpdateView& view = cursor.update();
    consume_update(view.timestamp, view.peer_asn, *view.update);
  }
  flush_pending();
}

void PassiveExtractor::flush_batches() {
  if (!sink_) return;
  for (std::size_t index = 0; index < by_ixp_.size(); ++index) {
    if (by_ixp_[index].empty()) continue;
    sink_(index, std::move(by_ixp_[index]));
    by_ixp_[index] = {};
  }
}

void PassiveExtractor::finish() {
  flush_pending();
  flush_batches();
}

const std::map<std::string, std::vector<Observation>>&
PassiveExtractor::observations() {
  if (sink_)
    throw InvalidArgument(
        "passive: observations() unavailable in streaming mode");
  if (view_dirty_) {
    // Fold the dense buckets into the name-keyed view by move (appending
    // after an earlier fold preserves attribution order), so the product
    // is never held twice.
    for (std::size_t index = 0; index < by_ixp_.size(); ++index) {
      auto& bucket = by_ixp_[index];
      if (bucket.empty()) continue;
      auto& dst = observations_view_[(*ixps_)[index].name];
      if (dst.empty()) {
        dst = std::move(bucket);
      } else {
        dst.insert(dst.end(), std::make_move_iterator(bucket.begin()),
                   std::make_move_iterator(bucket.end()));
      }
      bucket.clear();
    }
    view_dirty_ = false;
  }
  return observations_view_;
}

std::map<std::string, std::vector<Observation>>
PassiveExtractor::take_observations() {
  observations();  // folds any un-viewed buckets (throws in sink mode)
  auto out = std::move(observations_view_);
  observations_view_ = {};
  return out;
}

void PassiveExtractor::serialize_state(ByteWriter& writer) const {
  for (const auto& bucket : by_ixp_)
    if (!bucket.empty())
      throw InvalidArgument(
          "passive: serialize_state with unflushed batches (call "
          "flush_batches first)");
  writer.u32(clock_);
  writer.u64(stats_.paths_seen);
  writer.u64(stats_.paths_dirty);
  writer.u64(stats_.paths_transient);
  writer.u64(stats_.paths_no_rs_values);
  writer.u64(stats_.paths_ambiguous_ixp);
  writer.u64(stats_.paths_no_setter);
  writer.u64(stats_.observations);
  writer.u64(stats_.records_malformed);
  writer.u64(stats_.peer_session_resets);
  writer.u64(stats_.pending_torn_down);
  writer.u32(static_cast<std::uint32_t>(pending_.size()));
  for (const auto& [key, entry] : pending_) {
    writer.u32(key.first);
    codec::write_prefix(writer, key.second);
    writer.u32(entry.announced_at);
    codec::write_path(writer, entry.path);
    codec::write_communities(writer, entry.communities);
  }
  writer.u32(static_cast<std::uint32_t>(pending_fifo_.size()));
  for (const auto& [key, announced_at] : pending_fifo_) {
    writer.u32(key.first);
    codec::write_prefix(writer, key.second);
    writer.u32(announced_at);
  }
}

void PassiveExtractor::restore_state(ByteReader& reader) {
  // Parse the full image into locals first: a ParseError anywhere must
  // leave the extractor exactly as it was.
  const std::uint32_t clock = reader.u32();
  PassiveStats stats;
  stats.paths_seen = reader.u64();
  stats.paths_dirty = reader.u64();
  stats.paths_transient = reader.u64();
  stats.paths_no_rs_values = reader.u64();
  stats.paths_ambiguous_ixp = reader.u64();
  stats.paths_no_setter = reader.u64();
  stats.observations = reader.u64();
  stats.records_malformed = reader.u64();
  stats.peer_session_resets = reader.u64();
  stats.pending_torn_down = reader.u64();
  const std::size_t pending_count =
      codec::read_count(reader, 21, "announce-window entry");
  std::map<PendingKey, Pending> pending;
  auto hint = pending.end();
  for (std::size_t i = 0; i < pending_count; ++i) {
    PendingKey key;
    key.first = reader.u32();
    key.second = codec::read_prefix(reader);
    if (!pending.empty() && !(std::prev(pending.end())->first < key))
      throw ParseError("checkpoint: announce-window keys not sorted");
    Pending entry;
    entry.announced_at = reader.u32();
    entry.path = codec::read_path(reader);
    entry.communities = codec::read_communities(reader);
    hint = pending.emplace_hint(hint, std::move(key), std::move(entry));
  }
  const std::size_t fifo_count =
      codec::read_count(reader, 13, "announce-window FIFO entry");
  std::deque<std::pair<PendingKey, std::uint32_t>> fifo;
  for (std::size_t i = 0; i < fifo_count; ++i) {
    PendingKey key;
    key.first = reader.u32();
    key.second = codec::read_prefix(reader);
    const std::uint32_t announced_at = reader.u32();
    fifo.emplace_back(std::move(key), announced_at);
  }

  clock_ = clock;
  stats_ = stats;
  pending_ = std::move(pending);
  pending_fifo_ = std::move(fifo);
}

}  // namespace mlp::core
