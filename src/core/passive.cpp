#include "core/passive.hpp"

#include <utility>

#include "mrt/table_dump.hpp"

namespace mlp::core {

PassiveStats& operator+=(PassiveStats& lhs, const PassiveStats& rhs) {
  lhs.paths_seen += rhs.paths_seen;
  lhs.paths_dirty += rhs.paths_dirty;
  lhs.paths_transient += rhs.paths_transient;
  lhs.paths_no_rs_values += rhs.paths_no_rs_values;
  lhs.paths_ambiguous_ixp += rhs.paths_ambiguous_ixp;
  lhs.paths_no_setter += rhs.paths_no_setter;
  lhs.observations += rhs.observations;
  return lhs;
}

PassiveExtractor::PassiveExtractor(std::vector<IxpContext> ixps,
                                   bgp::RelFn relationships,
                                   PassiveConfig config)
    : PassiveExtractor(
          std::make_shared<const std::vector<IxpContext>>(std::move(ixps)),
          std::move(relationships), config) {}

PassiveExtractor::PassiveExtractor(
    std::shared_ptr<const std::vector<IxpContext>> ixps,
    bgp::RelFn relationships, PassiveConfig config)
    : ixps_(std::move(ixps)),
      relationships_(std::move(relationships)),
      config_(config) {}

std::vector<PassiveExtractor::Attribution> PassiveExtractor::attribute_ixps(
    const std::vector<Community>& communities) const {
  std::vector<Attribution> strong;  // a value encodes the RS ASN
  std::vector<Attribution> weak;    // peer-targeted values only
  for (const IxpContext& ixp : *ixps_) {
    Attribution attribution;
    attribution.ixp = &ixp;
    bool peers_are_members = true;
    for (const Community community : communities) {
      Asn peer = 0;
      const auto tag = ixp.scheme.classify(community, &peer);
      if (tag == routeserver::CommunityTag::Unrelated) continue;
      attribution.rs_communities.push_back(community);
      if (ixp.scheme.encodes_rs_asn(community)) attribution.rs_encoded = true;
      if ((tag == routeserver::CommunityTag::Exclude ||
           tag == routeserver::CommunityTag::Include) &&
          !ixp.is_member(peer))
        peers_are_members = false;
    }
    if (attribution.rs_communities.empty()) continue;
    // The combination of targeted ASes must all be members of the IXP
    // (section 4.2's disambiguation rule).
    if (!peers_are_members) continue;
    (attribution.rs_encoded ? strong : weak)
        .push_back(std::move(attribution));
  }
  if (!strong.empty()) return strong;
  return weak;  // caller treats size()>1 as ambiguous
}

Asn PassiveExtractor::identify_setter(const AsPath& path,
                                      const IxpContext& ixp) const {
  const AsPath flat = path.deduplicated();
  const auto& asns = flat.asns();

  std::vector<std::size_t> member_positions;
  for (std::size_t i = 0; i < asns.size(); ++i)
    if (ixp.is_member(asns[i])) member_positions.push_back(i);

  // Case 1: fewer than two members -- the RS crossing is not in the path.
  if (member_positions.size() < 2) return 0;

  // Case 2: exactly two members -- the setter is the one closest to the
  // origin (the prefix side).
  if (member_positions.size() == 2) {
    const std::size_t a = member_positions[0];
    const std::size_t b = member_positions[1];
    // The crossing must be a direct adjacency; members separated by other
    // ASes did not exchange this route over the route server.
    if (b != a + 1) return 0;
    return asns[b];
  }

  // Case 3: more than two members -- locate the single p2p step among the
  // adjacent member pairs using AS relationships, then take the side of
  // that step closest to the prefix.
  if (!relationships_) return 0;
  Asn setter = 0;
  for (std::size_t k = 0; k + 1 < member_positions.size(); ++k) {
    const std::size_t i = member_positions[k];
    const std::size_t j = member_positions[k + 1];
    if (j != i + 1) continue;  // not adjacent: not an RS crossing
    const auto rel = relationships_(asns[i], asns[j]);
    if (!rel || *rel != bgp::Rel::P2P) continue;
    if (setter != 0) return 0;  // two p2p candidates: cannot pinpoint
    setter = asns[j];
  }
  return setter;
}

void PassiveExtractor::consume_path(const AsPath& path,
                                    const IpPrefix& prefix,
                                    const std::vector<Community>& communities,
                                    Source source) {
  ++stats_.paths_seen;
  if (path.has_cycle() || path.has_reserved_asn()) {
    ++stats_.paths_dirty;
    return;
  }
  auto attributions = attribute_ixps(communities);
  if (attributions.empty()) {
    ++stats_.paths_no_rs_values;
    return;
  }
  if (attributions.size() > 1 && !attributions.front().rs_encoded) {
    // Multiple weak (EXCLUDE-only) candidates: the excluded-AS combination
    // exists at more than one IXP. Unresolvable.
    ++stats_.paths_ambiguous_ixp;
    return;
  }
  bool attributed = false;
  for (const Attribution& attribution : attributions) {
    const Asn setter = identify_setter(path, *attribution.ixp);
    if (setter == 0) continue;
    Observation observation;
    observation.setter = setter;
    observation.prefix = prefix;
    observation.communities = attribution.rs_communities;
    observation.source = source;
    observations_[attribution.ixp->name].push_back(std::move(observation));
    ++stats_.observations;
    attributed = true;
  }
  if (!attributed) ++stats_.paths_no_setter;
}

void PassiveExtractor::consume_table_dump(
    std::span<const std::uint8_t> archive) {
  const bgp::Rib rib = mrt::parse_rib(archive);
  for (const auto& prefix : rib.prefixes()) {
    for (const auto& entry : rib.paths(prefix)) {
      consume_path(entry.route.attrs.as_path, prefix,
                   entry.route.attrs.communities, Source::Passive);
    }
  }
}

void PassiveExtractor::consume_update_stream(
    std::span<const std::uint8_t> archive) {
  const auto updates = mrt::parse_updates(archive);

  struct Pending {
    std::uint32_t announced_at = 0;
    AsPath path;
    std::vector<Community> communities;
  };
  std::map<std::pair<Asn, IpPrefix>, Pending> pending;

  auto flush = [&](const std::pair<Asn, IpPrefix>& key,
                   const Pending& entry) {
    consume_path(entry.path, key.second, entry.communities, Source::Passive);
  };

  for (const auto& update : updates) {
    for (const auto& prefix : update.update.withdrawn) {
      const auto key = std::make_pair(update.peer_asn, prefix);
      auto it = pending.find(key);
      if (it == pending.end()) continue;
      const std::uint32_t age =
          update.timestamp - it->second.announced_at;
      if (age < config_.min_duration_s) {
        ++stats_.paths_transient;  // short-lived: likely misconfiguration
      } else {
        flush(key, it->second);
      }
      pending.erase(it);
    }
    for (const auto& prefix : update.update.nlri) {
      const auto key = std::make_pair(update.peer_asn, prefix);
      auto it = pending.find(key);
      if (it != pending.end()) {
        // Re-announcement: the earlier version lived long enough only if
        // it aged past the threshold.
        const std::uint32_t age =
            update.timestamp - it->second.announced_at;
        if (age >= config_.min_duration_s)
          flush(key, it->second);
        else
          ++stats_.paths_transient;
      }
      pending[key] = Pending{update.timestamp, update.update.attrs.as_path,
                             update.update.attrs.communities};
    }
  }
  // Announcements still standing at the end of the window are stable.
  for (const auto& [key, entry] : pending) flush(key, entry);
}

}  // namespace mlp::core
