// Topological analyses over the inferred link sets (paper section 5).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "bgp/valley.hpp"
#include "core/engine.hpp"
#include "core/types.hpp"
#include "registry/peeringdb.hpp"

namespace mlp::core {

/// Figure 6: per-member link counts under the MLP, passive-BGP and
/// traceroute datasets, ranked by MLP count.
struct VisibilityRow {
  Asn member = 0;
  std::size_t mlp = 0;
  std::size_t passive = 0;
  std::size_t active = 0;
};

struct VisibilityComparison {
  std::vector<VisibilityRow> rows;  // sorted by mlp desc
  std::size_t mlp_links = 0;
  std::size_t passive_p2p_links = 0;   // restricted to the same members
  std::size_t overlap_mlp_passive = 0;
  std::size_t overlap_mlp_active = 0;
};

VisibilityComparison compare_visibility(const std::set<AsLink>& mlp,
                                        const std::set<AsLink>& passive,
                                        const std::set<AsLink>& active);

/// Figure 7: customer-degree structure of the inferred links.
using DegreeFn = std::function<std::size_t(Asn)>;

struct DegreeAnalysis {
  std::vector<std::size_t> smallest;  // per link, min customer degree
  std::vector<std::size_t> largest;   // per link, max customer degree
  double frac_stub_stub = 0.0;        // both endpoints degree 0 (12.4%)
  double frac_one_stub = 0.0;         // at least one stub (55.6%)
  double frac_small = 0.0;            // smaller side < 10 (58.1%... <=10)
};

DegreeAnalysis analyze_link_degrees(const std::set<AsLink>& links,
                                    const DegreeFn& customer_degree);

/// Figure 12: per-member peering density at one route server.
struct DensityAnalysis {
  std::vector<double> per_member;  // links(member) / (|RS|-1)
  double mean = 0.0;
};

DensityAnalysis peering_density(const std::set<AsLink>& links,
                                const FlatAsnSet& rs_members);

/// Figure 13 / section 5.5: repeller analysis over EXCLUDE usage.
struct RepellerReport {
  /// Number of distinct (setter, target) EXCLUDE applications per target.
  std::map<Asn, std::size_t> blocked_count;
  std::size_t exclude_applications = 0;
  std::size_t repelled_members = 0;     // targets blocked at least once
  /// EXCLUDEs where the target is inside the setter's customer cone.
  std::size_t cone_blocks = 0;
  /// EXCLUDEs where the setter is a provider blocking a direct customer.
  std::size_t provider_blocks_customer = 0;
};

/// `engines` holds one inference engine per route server.  `cone` returns
/// the customer cone of an AS; `is_customer(p, c)` whether c is a direct
/// customer of p. Either may be null to skip those counters.
RepellerReport analyze_repellers(
    const std::vector<const MlpInferenceEngine*>& engines,
    const std::function<std::set<Asn>(Asn)>& cone,
    const std::function<bool(Asn, Asn)>& is_customer);

/// Section 5.6: links also carried in passive BGP data that a relationship
/// inference labels provider-customer -- hybrid p2p/p2c candidates.
struct HybridReport {
  std::size_t candidates = 0;
  std::vector<AsLink> links;
};

HybridReport find_hybrid_relationships(const std::set<AsLink>& mlp_links,
                                       const std::set<AsLink>& passive_links,
                                       const bgp::RelFn& inferred_rel);

}  // namespace mlp::core
