#include "core/active.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace mlp::core {

ActiveSurveyResult run_active_survey(lg::LookingGlassServer& lg,
                                     const ActiveConfig& config,
                                     const std::set<Asn>& skip) {
  ActiveSurveyResult result;
  lg::LookingGlassClient client(lg);

  // Step 1: connectivity (one query).
  const auto neighbors = client.neighbors();
  result.queries = 1;
  std::map<Asn, std::uint32_t> member_ip;
  for (const auto& neighbor : neighbors) {
    result.rs_members.insert(neighbor.asn);
    member_ip.emplace(neighbor.asn, neighbor.ip);
  }
  result.naive_queries = 1 + result.rs_members.size();

  // Step 2: per-member advertised prefixes.
  std::map<Asn, std::vector<IpPrefix>> prefixes_of;
  std::map<IpPrefix, std::size_t> multiplicity;
  for (const auto& [asn, ip] : member_ip) {
    if (skip.count(asn)) continue;
    auto prefixes = client.neighbor_routes(ip);
    ++result.member_queries;
    for (const auto& prefix : prefixes) ++multiplicity[prefix];
    prefixes_of[asn] = std::move(prefixes);
  }
  result.queries += result.member_queries;
  for (const auto& [asn, prefixes] : prefixes_of)
    result.naive_queries += prefixes.size();
  // Skipped members would each have contributed ~their prefix count to the
  // naive cost; they are simply absent from both sums here, which keeps
  // the comparison within the surveyed set.

  // Step 3: prefix-information queries. Per member, sample
  // ceil(fraction * |P_a|) prefixes (capped), preferring prefixes many
  // members advertise so a single query covers several members.
  std::set<IpPrefix> queried;
  std::map<Asn, std::size_t> covered;  // per-member covered sample count
  for (auto& [asn, prefixes] : prefixes_of) {
    if (prefixes.empty()) continue;
    std::size_t want = static_cast<std::size_t>(std::ceil(
        config.prefix_sample_fraction * static_cast<double>(prefixes.size())));
    want = std::clamp<std::size_t>(want, 1, config.prefix_sample_cap);

    std::vector<IpPrefix> order = prefixes;
    if (config.multiplicity_sort) {
      std::stable_sort(order.begin(), order.end(),
                       [&](const IpPrefix& a, const IpPrefix& b) {
                         return multiplicity[a] > multiplicity[b];
                       });
    }

    std::size_t have = covered[asn];
    for (const auto& prefix : order) {
      if (have >= want) break;
      if (config.share_prefix_queries && queried.count(prefix)) {
        ++have;  // an earlier query already captured this member's paths
        continue;
      }
      // Issue the query and capture every advertiser's communities.
      const auto paths = client.prefix_detail(prefix);
      queried.insert(prefix);
      ++result.prefix_queries;
      for (const auto& path : paths) {
        // On a route-server LG the "from" AS of each path block is the
        // member that announced the route (the setter).
        const Asn setter =
            path.from_asn != 0
                ? path.from_asn
                : (path.as_path.empty() ? 0 : path.as_path.head());
        if (setter == 0) continue;
        Observation observation;
        observation.setter = setter;
        observation.prefix = prefix;
        observation.communities = path.communities;
        observation.source = Source::ActiveLg;
        result.observations.push_back(std::move(observation));
        if (config.share_prefix_queries) ++covered[setter];
      }
      ++have;
      covered[asn] = std::max(covered[asn], have);
    }
    covered[asn] = std::max(covered[asn], have);
  }
  result.queries += result.prefix_queries;
  return result;
}

}  // namespace mlp::core
