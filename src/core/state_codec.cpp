#include "core/state_codec.hpp"

#include <algorithm>
#include <utility>

#include "util/errors.hpp"

namespace mlp::core::codec {

std::size_t read_count(ByteReader& reader, std::size_t min_element_bytes,
                       const char* what) {
  const std::uint32_t count = reader.u32();
  const std::size_t floor = std::max<std::size_t>(1, min_element_bytes);
  if (count > reader.remaining() / floor)
    throw ParseError(std::string("checkpoint: ") + what + " count " +
                     std::to_string(count) + " exceeds the payload");
  return count;
}

void write_string(ByteWriter& writer, const std::string& value) {
  if (value.size() > 0xffff)
    throw InvalidArgument("checkpoint: string too long to serialize");
  writer.u16(static_cast<std::uint16_t>(value.size()));
  writer.bytes(value);
}

std::string read_string(ByteReader& reader) {
  const std::uint16_t size = reader.u16();
  const auto data = reader.bytes(size);
  return std::string(data.begin(), data.end());
}

void write_prefix(ByteWriter& writer, const bgp::IpPrefix& prefix) {
  writer.u32(prefix.address());
  writer.u8(prefix.length());
}

bgp::IpPrefix read_prefix(ByteReader& reader) {
  const std::uint32_t address = reader.u32();
  const std::uint8_t length = reader.u8();
  if (length > 32)
    throw ParseError("checkpoint: prefix length " + std::to_string(length));
  const bgp::IpPrefix prefix(address, length);
  // A canonical (masked) prefix was written; anything else is corruption.
  if (prefix.address() != address)
    throw ParseError("checkpoint: prefix has host bits set");
  return prefix;
}

void write_communities(ByteWriter& writer,
                       const std::vector<Community>& communities) {
  writer.u32(static_cast<std::uint32_t>(communities.size()));
  for (const Community community : communities)
    writer.u32(community.value());
}

std::vector<Community> read_communities(ByteReader& reader) {
  const std::size_t count = read_count(reader, 4, "community");
  std::vector<Community> communities;
  communities.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    communities.push_back(Community::from_value(reader.u32()));
  return communities;
}

void write_path(ByteWriter& writer, const AsPath& path) {
  writer.u32(static_cast<std::uint32_t>(path.asns().size()));
  for (const Asn asn : path.asns()) writer.u32(asn);
}

AsPath read_path(ByteReader& reader) {
  const std::size_t count = read_count(reader, 4, "path hop");
  std::vector<Asn> asns;
  asns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) asns.push_back(reader.u32());
  return AsPath(std::move(asns));
}

void write_asn_set(ByteWriter& writer, const FlatAsnSet& set) {
  writer.u32(static_cast<std::uint32_t>(set.size()));
  for (const Asn asn : set) writer.u32(asn);
}

FlatAsnSet read_asn_set(ByteReader& reader) {
  const std::size_t count = read_count(reader, 4, "ASN set element");
  std::vector<std::uint32_t> values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t value = reader.u32();
    // Strictly increasing order is the invariant the flat data plane
    // rests on; the normalizing constructor would paper over corruption.
    if (!values.empty() && value <= values.back())
      throw ParseError("checkpoint: ASN set not strictly increasing");
    values.push_back(value);
  }
  return FlatAsnSet(std::move(values));
}

void write_policy(ByteWriter& writer,
                  const routeserver::ExportPolicy& policy) {
  writer.u8(static_cast<std::uint8_t>(policy.mode()));
  write_asn_set(writer, policy.peers());
}

routeserver::ExportPolicy read_policy(ByteReader& reader) {
  const std::uint8_t mode = reader.u8();
  if (mode > static_cast<std::uint8_t>(
                 routeserver::ExportPolicy::Mode::NoneExcept))
    throw ParseError("checkpoint: export policy mode " +
                     std::to_string(mode));
  FlatAsnSet peers = read_asn_set(reader);
  return routeserver::ExportPolicy(
      static_cast<routeserver::ExportPolicy::Mode>(mode), std::move(peers));
}

void write_observation(ByteWriter& writer, const Observation& observation) {
  writer.u32(observation.setter);
  write_prefix(writer, observation.prefix);
  write_communities(writer, observation.communities);
  writer.u8(static_cast<std::uint8_t>(observation.source));
  writer.u32(observation.timestamp);
}

Observation read_observation(ByteReader& reader) {
  Observation observation;
  observation.setter = reader.u32();
  observation.prefix = read_prefix(reader);
  observation.communities = read_communities(reader);
  const std::uint8_t source = reader.u8();
  if (source > static_cast<std::uint8_t>(Source::ThirdPartyLg))
    throw ParseError("checkpoint: observation source " +
                     std::to_string(source));
  observation.source = static_cast<Source>(source);
  observation.timestamp = reader.u32();
  return observation;
}

}  // namespace mlp::core::codec
