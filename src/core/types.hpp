// Shared data model of the MLP inference framework (paper section 4).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"
#include "bgp/prefix.hpp"
#include "routeserver/scheme.hpp"
#include "util/flat_set.hpp"

namespace mlp::core {

using bgp::Asn;
using bgp::AsLink;
using bgp::AsPath;
using bgp::Community;
using bgp::IpPrefix;
using util::FlatAsnSet;

static_assert(std::is_same_v<Asn, FlatAsnSet::value_type>,
              "FlatAsnSet is defined over raw std::uint32_t so util stays "
              "below bgp in the module order; the types must agree");

/// Where a reachability observation came from (table 2's Pasv/Active
/// split).
enum class Source : std::uint8_t { Passive, ActiveLg, ThirdPartyLg };

std::string to_string(Source source);

/// Everything the inference needs to know about one IXP route server:
/// its community dialect and the connectivity data A_RS (from an LG, an
/// IRR AS-SET or the IXP website -- section 4).
///
/// A_RS is a flat sorted vector: membership tests (the passive
/// extractor's per-community check is the hottest of them) are binary
/// searches over contiguous memory, and its sorted order doubles as the
/// dense row index of the reciprocity bitset.
struct IxpContext {
  std::string name;
  routeserver::IxpCommunityScheme scheme;
  FlatAsnSet rs_members;

  bool is_member(Asn asn) const { return rs_members.contains(asn); }
};

/// One reachability observation: RS communities applied by `setter` on its
/// announcement of `prefix` toward one route server.
struct Observation {
  Asn setter = 0;
  IpPrefix prefix;
  std::vector<Community> communities;
  Source source = Source::Passive;
  /// Stream time at which the observation settled (the extractor's
  /// running-max record clock; 0 for timeless inputs such as RIB dumps).
  /// Monotone non-decreasing per extractor, which is what lets the live
  /// cross-feed watermark merge order observations deterministically.
  std::uint32_t timestamp = 0;
};

}  // namespace mlp::core
