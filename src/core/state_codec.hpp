// Value-type codecs shared by the checkpoint serialization hooks.
//
// The crash-safe checkpoint (pipeline/checkpoint.hpp) persists live
// session state across process restarts. Its payload is composed from
// the per-component serialize/restore hooks (engine, extractor, queue,
// supervisor); this header provides the codecs for the value types those
// components share -- prefixes, communities, paths, observations, export
// policies, ASN sets -- over the same big-endian ByteWriter/ByteReader
// substrate as the MRT/BGP wire codecs.
//
// Every read_* validates as it parses and throws ParseError on malformed
// input: checkpoint payloads are untrusted bytes (a torn write, a fuzzer)
// until proven otherwise. Counts are length-checked against the bytes
// actually remaining, so a corrupt count field cannot make a loader
// allocate unbounded memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "routeserver/export_policy.hpp"
#include "util/bytes.hpp"

namespace mlp::core::codec {

/// Read a u32 element count, rejecting (ParseError) any count that could
/// not possibly fit in the reader's remaining bytes at
/// `min_element_bytes` apiece. `what` names the field in the error.
std::size_t read_count(ByteReader& reader, std::size_t min_element_bytes,
                       const char* what);

void write_string(ByteWriter& writer, const std::string& value);
std::string read_string(ByteReader& reader);

void write_prefix(ByteWriter& writer, const bgp::IpPrefix& prefix);
bgp::IpPrefix read_prefix(ByteReader& reader);

void write_communities(ByteWriter& writer,
                       const std::vector<Community>& communities);
std::vector<Community> read_communities(ByteReader& reader);

void write_path(ByteWriter& writer, const AsPath& path);
AsPath read_path(ByteReader& reader);

void write_asn_set(ByteWriter& writer, const FlatAsnSet& set);
FlatAsnSet read_asn_set(ByteReader& reader);

void write_policy(ByteWriter& writer, const routeserver::ExportPolicy& policy);
routeserver::ExportPolicy read_policy(ByteReader& reader);

void write_observation(ByteWriter& writer, const Observation& observation);
Observation read_observation(ByteReader& reader);

}  // namespace mlp::core::codec
