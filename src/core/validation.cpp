#include "core/validation.hpp"

namespace mlp::core {

bool path_confirms_link(const AsPath& path, const AsLink& link,
                        const std::set<Asn>& rs_asns) {
  const AsPath flat = path.deduplicated();
  const auto& asns = flat.asns();
  for (std::size_t i = 0; i + 1 < asns.size(); ++i) {
    Asn left = asns[i];
    std::size_t j = i + 1;
    // Skip one interposed route-server ASN ("artificially longer" paths).
    if (rs_asns.count(asns[j]) && j + 1 < asns.size()) ++j;
    if (AsLink(left, asns[j]) == link) return true;
  }
  return false;
}

ValidationReport validate_links(const std::set<AsLink>& links,
                                std::vector<ValidationLg>& lgs,
                                const RelevanceFn& relevant,
                                const PrefixSupply& prefixes,
                                const ValidationConfig& config) {
  ValidationReport report;
  std::map<std::string, LgOutcome> outcomes;
  for (const auto& lg : lgs) {
    LgOutcome outcome;
    outcome.name = lg.name;
    outcome.operator_asn = lg.operator_asn;
    outcome.shows_all_paths = lg.server->config().show_all_paths;
    outcomes[lg.name] = outcome;
  }

  for (const AsLink& link : links) {
    bool tested = false;
    bool confirmed = false;
    for (auto& lg : lgs) {
      if (!relevant(lg, link)) continue;
      lg::LookingGlassClient client(*lg.server);
      // The far endpoint is the link side that is not the LG operator's
      // own AS; when the operator is a customer of one endpoint, both
      // sides are "far" -- test toward both, nearest-origin first.
      std::vector<Asn> far_sides;
      if (lg.operator_asn == link.a) {
        far_sides = {link.b};
      } else if (lg.operator_asn == link.b) {
        far_sides = {link.a};
      } else {
        far_sides = {link.a, link.b};
      }
      bool lg_confirmed = false;
      bool lg_tested = false;
      for (const Asn far : far_sides) {
        auto candidate_prefixes = prefixes(far);
        std::size_t used = 0;
        for (const auto& prefix : candidate_prefixes) {
          if (used >= config.prefixes_per_link) break;
          ++used;
          ++report.queries;
          lg_tested = true;
          for (const auto& path : client.prefix_detail(prefix)) {
            // Displayed paths start at the neighbor the route was learned
            // from; the LG's own AS is the implicit first hop.
            bgp::AsPath full = path.as_path;
            if (full.empty() || full.head() != lg.operator_asn)
              full.prepend(lg.operator_asn);
            if (path_confirms_link(full, link,
                                   config.route_server_asns)) {
              lg_confirmed = true;
              break;
            }
          }
          if (lg_confirmed) break;
        }
        if (lg_confirmed) break;
      }
      if (lg_tested) {
        tested = true;
        auto& outcome = outcomes[lg.name];
        ++outcome.tested;
        if (lg_confirmed) ++outcome.confirmed;
      }
      if (lg_confirmed) {
        confirmed = true;
        break;  // one confirmation suffices for the link
      }
    }
    if (tested) {
      ++report.links_tested;
      if (confirmed) {
        ++report.links_confirmed;
        report.confirmed_links.insert(link);
      } else {
        report.unconfirmed_links.insert(link);
      }
    }
  }

  for (auto& [name, outcome] : outcomes) report.per_lg.push_back(outcome);
  return report;
}

}  // namespace mlp::core
