// Link validation against third-party looking glasses (paper section 5.1).
//
// For every inferred link relevant to a looking glass, query up to six
// prefixes originated behind the far endpoint and confirm the link when
// an adjacent pair in a returned AS path matches (route-server ASNs left
// in the path by non-transparent RSes are tolerated). Links that only
// appear on less-preferred paths cannot be confirmed through LGs that
// display the best path only -- the figure 8 effect.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "lg/lg_client.hpp"

namespace mlp::core {

/// One looking glass available for validation.
struct ValidationLg {
  std::string name;
  Asn operator_asn = 0;
  lg::LookingGlassServer* server = nullptr;
};

struct ValidationConfig {
  /// Maximum prefixes queried per (link, LG) pair; the paper uses six
  /// geographically distant prefixes.
  std::size_t prefixes_per_link = 6;
  /// ASNs of route servers; paths like "a RS b" still confirm link a-b
  /// (three validation LGs in the paper did not strip the RS ASN).
  std::set<Asn> route_server_asns;
};

struct LgOutcome {
  std::string name;
  Asn operator_asn = 0;
  bool shows_all_paths = true;
  std::size_t tested = 0;
  std::size_t confirmed = 0;

  double confirm_rate() const {
    return tested == 0 ? 1.0
                       : static_cast<double>(confirmed) /
                             static_cast<double>(tested);
  }
};

struct ValidationReport {
  std::size_t links_tested = 0;
  std::size_t links_confirmed = 0;
  std::size_t queries = 0;
  std::vector<LgOutcome> per_lg;
  std::set<AsLink> confirmed_links;
  std::set<AsLink> unconfirmed_links;

  double confirm_rate() const {
    return links_tested == 0 ? 1.0
                             : static_cast<double>(links_confirmed) /
                                   static_cast<double>(links_tested);
  }
};

/// Maps a link endpoint to prefixes originated by it or inside its
/// customer cone, most-distant first (the caller implements the
/// geographic spread; the validator just takes the first N).
using PrefixSupply = std::function<std::vector<IpPrefix>(Asn endpoint)>;

/// Decides whether a looking glass is relevant to a link (the paper: the
/// LG belongs to an RS member on the link or one of its customers).
using RelevanceFn =
    std::function<bool(const ValidationLg& lg, const AsLink& link)>;

/// Validate `links` against the available looking glasses.
ValidationReport validate_links(const std::set<AsLink>& links,
                                std::vector<ValidationLg>& lgs,
                                const RelevanceFn& relevant,
                                const PrefixSupply& prefixes,
                                const ValidationConfig& config);

/// True if `path` contains `link.a` and `link.b` adjacently, allowing an
/// interposed route-server ASN from `rs_asns`.
bool path_confirms_link(const AsPath& path, const AsLink& link,
                        const std::set<Asn>& rs_asns);

}  // namespace mlp::core
