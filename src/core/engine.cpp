#include "core/engine.hpp"

#include <vector>

namespace mlp::core {

std::string to_string(Source source) {
  switch (source) {
    case Source::Passive:
      return "passive";
    case Source::ActiveLg:
      return "active-lg";
    case Source::ThirdPartyLg:
      return "third-party-lg";
  }
  return "unknown";
}

EngineStats& operator+=(EngineStats& lhs, const EngineStats& rhs) {
  lhs.rs_members += rhs.rs_members;
  lhs.observed_members += rhs.observed_members;
  lhs.passive_members += rhs.passive_members;
  lhs.active_members += rhs.active_members;
  lhs.observations += rhs.observations;
  lhs.inconsistent_members += rhs.inconsistent_members;
  lhs.links += rhs.links;
  return lhs;
}

void MlpInferenceEngine::add(const Observation& observation) {
  if (!context_.is_member(observation.setter)) {
    ++rejected_;
    return;
  }
  auto policy =
      ExportPolicy::from_communities(observation.communities, context_.scheme);
  MemberData& data = members_[observation.setter];
  ++data.observations;
  if (observation.source == Source::Passive)
    data.passive = true;
  else
    data.active = true;
  // No RS communities on the route: the default ALL behaviour.
  data.per_prefix[observation.prefix] =
      policy.value_or(ExportPolicy::open());
}

std::set<Asn> MlpInferenceEngine::observed_members() const {
  std::set<Asn> out;
  for (const auto& [asn, data] : members_) out.insert(asn);
  return out;
}

std::optional<ExportPolicy> MlpInferenceEngine::policy_of(Asn member) const {
  auto it = members_.find(member);
  if (it == members_.end()) return std::nullopt;
  const MemberData& data = it->second;
  std::optional<ExportPolicy> merged;
  for (const auto& [prefix, policy] : data.per_prefix) {
    if (!merged) {
      merged = policy;
    } else {
      merged = ExportPolicy::intersect(*merged, policy, context_.rs_members);
    }
  }
  return merged;
}

std::set<AsLink> MlpInferenceEngine::infer_links(
    bool assume_open_for_unobserved) const {
  // Materialise the policy of every participating member once.
  std::vector<std::pair<Asn, ExportPolicy>> policies;
  for (const Asn member : context_.rs_members) {
    auto policy = policy_of(member);
    if (!policy) {
      if (!assume_open_for_unobserved) continue;
      policy = ExportPolicy::open();
    }
    policies.emplace_back(member, std::move(*policy));
  }

  std::set<AsLink> links;
  for (std::size_t i = 0; i < policies.size(); ++i) {
    for (std::size_t j = i + 1; j < policies.size(); ++j) {
      const auto& [a, policy_a] = policies[i];
      const auto& [b, policy_b] = policies[j];
      if (policy_a.allows(b) && policy_b.allows(a))
        links.insert(AsLink(a, b));
    }
  }
  return links;
}

EngineStats MlpInferenceEngine::stats() const {
  return stats(infer_links().size());
}

EngineStats MlpInferenceEngine::stats(std::size_t precomputed_links) const {
  EngineStats stats;
  stats.rs_members = context_.rs_members.size();
  stats.observed_members = members_.size();
  for (const auto& [asn, data] : members_) {
    if (data.passive)
      ++stats.passive_members;
    else if (data.active)
      ++stats.active_members;
    stats.observations += data.observations;
    // A member is inconsistent if its per-prefix policies are not all equal
    // (section 4.3 reports < 0.5% of members).
    bool inconsistent = false;
    const ExportPolicy* first = nullptr;
    for (const auto& [prefix, policy] : data.per_prefix) {
      if (!first) {
        first = &policy;
      } else if (!(policy == *first)) {
        inconsistent = true;
        break;
      }
    }
    if (inconsistent) ++stats.inconsistent_members;
  }
  stats.links = precomputed_links;
  return stats;
}

}  // namespace mlp::core
