#include "core/engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "core/engine_snapshot.hpp"
#include "core/state_codec.hpp"
#include "util/errors.hpp"

namespace mlp::core {

std::string to_string(Source source) {
  switch (source) {
    case Source::Passive:
      return "passive";
    case Source::ActiveLg:
      return "active-lg";
    case Source::ThirdPartyLg:
      return "third-party-lg";
  }
  return "unknown";
}

EngineStats& operator+=(EngineStats& lhs, const EngineStats& rhs) {
  lhs.rs_members += rhs.rs_members;
  lhs.observed_members += rhs.observed_members;
  lhs.passive_members += rhs.passive_members;
  lhs.active_members += rhs.active_members;
  lhs.observations += rhs.observations;
  lhs.inconsistent_members += rhs.inconsistent_members;
  lhs.links += rhs.links;
  return lhs;
}

MlpInferenceEngine::MemberData& MlpInferenceEngine::member_slot(Asn member) {
  const bool inserted = member_ids_.insert(member);
  const std::size_t index = member_ids_.index_of(member);
  if (inserted)
    member_data_.insert(member_data_.begin() +
                            static_cast<std::ptrdiff_t>(index),
                        MemberData{});
  return member_data_[index];
}

const MlpInferenceEngine::MemberData* MlpInferenceEngine::find_member(
    Asn member) const {
  const std::size_t index = member_ids_.index_of(member);
  if (index == FlatAsnSet::npos) return nullptr;
  return &member_data_[index];
}

void MlpInferenceEngine::add(const Observation& observation) {
  if (!context_.is_member(observation.setter)) {
    ++rejected_;
    return;
  }
  auto policy =
      ExportPolicy::from_communities(observation.communities, context_.scheme);
  MemberData& data = member_slot(observation.setter);
  ++data.observations;
  if (observation.source == Source::Passive)
    data.passive = true;
  else
    data.active = true;
  // No RS communities on the route: the default ALL behaviour. A
  // re-announcement of a known prefix replaces its policy.
  ExportPolicy resolved = policy.value_or(ExportPolicy::open());
  const auto it = std::lower_bound(
      data.per_prefix.begin(), data.per_prefix.end(), observation.prefix,
      [](const auto& entry, const IpPrefix& prefix) {
        return entry.first < prefix;
      });
  bool policy_changed = true;
  if (it != data.per_prefix.end() && it->first == observation.prefix) {
    if (it->second == resolved) {
      // Re-announcement with the identical policy: N_a is unchanged.
      policy_changed = false;
    } else {
      // A replaced intersectand cannot be folded into the memoised
      // intersection; rebuild N_a from the (small) per-prefix vector.
      it->second = std::move(resolved);
      data.merged_valid = false;
    }
  } else if (data.per_prefix.empty()) {
    // First prefix: N_a is the policy itself.
    data.merged = resolved;
    data.merged_valid = true;
    data.per_prefix.emplace(it, observation.prefix, std::move(resolved));
  } else {
    // New prefix: N_a gains exactly one intersectand.
    if (data.merged_valid)
      data.merged =
          ExportPolicy::intersect(data.merged, resolved, context_.rs_members);
    data.per_prefix.emplace(it, observation.prefix, std::move(resolved));
  }
  ++generation_;
  // Delta-maintain the reciprocity bitset (if a query materialised it):
  // only the setter's allow-row and the changed transpose bits move.
  if (!derived_.valid) return;
  const std::size_t u = context_.rs_members.index_of(observation.setter);
  const bool was_observed =
      (derived_.observed[u / 64] >> (u % 64) & std::uint64_t{1}) != 0;
  derived_.observed[u / 64] |= std::uint64_t{1} << (u % 64);
  if (policy_changed || !was_observed)
    apply_row_delta(u, &merged_policy(data));
}

const std::vector<Asn>& MlpInferenceEngine::observed_members() const {
  return member_ids_.values();
}

const ExportPolicy& MlpInferenceEngine::merged_policy(
    const MemberData& data) const {
  if (!data.merged_valid) {
    ExportPolicy merged;
    bool first = true;
    for (const auto& [prefix, policy] : data.per_prefix) {
      if (first) {
        merged = policy;
        first = false;
      } else {
        merged = ExportPolicy::intersect(merged, policy, context_.rs_members);
      }
    }
    data.merged = std::move(merged);
    data.merged_valid = true;
  }
  return data.merged;
}

const ExportPolicy* MlpInferenceEngine::policy_of(Asn member) const {
  const MemberData* data = find_member(member);
  if (data == nullptr) return nullptr;
  return &merged_policy(*data);
}

void MlpInferenceEngine::compute_allow_row(std::size_t u,
                                           const ExportPolicy* policy,
                                           std::uint64_t* row) const {
  const std::size_t n = context_.rs_members.size();
  const std::uint64_t tail_mask =
      (n % 64) ? ((std::uint64_t{1} << (n % 64)) - 1) : ~std::uint64_t{0};
  const bool open_mode =
      policy == nullptr || policy->mode() == ExportPolicy::Mode::AllExcept;
  if (open_mode) {
    std::fill(row, row + derived_.words, ~std::uint64_t{0});
    row[derived_.words - 1] = tail_mask;
  }
  if (policy != nullptr) {
    for (const Asn peer : policy->peers()) {
      const std::size_t j = context_.rs_members.index_of(peer);
      if (j == FlatAsnSet::npos) continue;  // listed peer outside A_RS
      if (open_mode)
        row[j / 64] &= ~(std::uint64_t{1} << (j % 64));
      else
        row[j / 64] |= std::uint64_t{1} << (j % 64);
    }
  }
  // A member never links to itself.
  row[u / 64] &= ~(std::uint64_t{1} << (u % 64));
}

void MlpInferenceEngine::apply_row_delta(std::size_t u,
                                         const ExportPolicy* policy) const {
  Derived& d = derived_;
  d.scratch_row.assign(d.words, 0);
  compute_allow_row(u, policy, d.scratch_row.data());
  std::uint64_t* row = d.allows.data() + u * d.words;
  for (std::size_t w = 0; w < d.words; ++w) {
    std::uint64_t delta = row[w] ^ d.scratch_row[w];
    row[w] = d.scratch_row[w];
    // Patch the transpose: one bit flip per changed column.
    while (delta != 0) {
      const std::size_t j =
          w * 64 + static_cast<std::size_t>(std::countr_zero(delta));
      d.allowed_by[j * d.words + u / 64] ^= std::uint64_t{1} << (u % 64);
      delta &= delta - 1;
    }
  }
}

void MlpInferenceEngine::ensure_derived() const {
  Derived& d = derived_;
  if (d.valid) return;
  // The matrix spans the FULL A_RS universe so dense indices never shift
  // as members become observed; unobserved members hold the default-open
  // row and a clear observed-mask bit. Queries with
  // assume_open_for_unobserved unset mask unobserved rows/columns out,
  // which is exactly the observed-only submatrix.
  const std::size_t n = context_.rs_members.size();
  d.words = (n + 63) / 64;
  d.allows.assign(n * d.words, 0);
  d.allowed_by.assign(n * d.words, 0);
  d.observed.assign(d.words, 0);
  d.valid = true;
  if (n == 0) return;

  std::vector<const ExportPolicy*> policies(n, nullptr);  // null: open
  for (std::size_t i = 0; i < member_ids_.size(); ++i) {
    const std::size_t u =
        context_.rs_members.index_of(member_ids_.values()[i]);
    // add()/restore_state() only admit A_RS members, so u is never npos.
    d.observed[u / 64] |= std::uint64_t{1} << (u % 64);
    policies[u] = &merged_policy(member_data_[i]);
  }

  // Default-open rows (unobserved members, AllExcept policies) are runs
  // of ones, so the transpose starts from a per-word mask of the
  // open-mode columns and both matrices are then corrected with one bit
  // operation per listed peer.
  const std::uint64_t tail_mask =
      (n % 64) ? ((std::uint64_t{1} << (n % 64)) - 1) : ~std::uint64_t{0};
  std::vector<std::uint64_t> open_cols(d.words, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (policies[i] == nullptr ||
        policies[i]->mode() == ExportPolicy::Mode::AllExcept)
      open_cols[i / 64] |= std::uint64_t{1} << (i % 64);
  }

  auto row = [&](std::vector<std::uint64_t>& matrix, std::size_t i) {
    return matrix.data() + i * d.words;
  };
  auto clear_bit = [](std::uint64_t* r, std::size_t j) {
    r[j / 64] &= ~(std::uint64_t{1} << (j % 64));
  };
  auto set_bit = [](std::uint64_t* r, std::size_t j) {
    r[j / 64] |= std::uint64_t{1} << (j % 64);
  };

  for (std::size_t j = 0; j < n; ++j)
    std::copy(open_cols.begin(), open_cols.end(), row(d.allowed_by, j));

  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t* allows_row = row(d.allows, i);
    const bool open_mode =
        policies[i] == nullptr ||
        policies[i]->mode() == ExportPolicy::Mode::AllExcept;
    if (open_mode) {
      std::fill(allows_row, allows_row + d.words, ~std::uint64_t{0});
      allows_row[d.words - 1] = tail_mask;
    }
    if (policies[i] != nullptr) {
      for (const Asn peer : policies[i]->peers()) {
        const std::size_t j = context_.rs_members.index_of(peer);
        if (j == FlatAsnSet::npos) continue;  // listed peer outside A_RS
        if (open_mode) {
          clear_bit(allows_row, j);
          clear_bit(row(d.allowed_by, j), i);
        } else {
          set_bit(allows_row, j);
          set_bit(row(d.allowed_by, j), i);
        }
      }
    }
    // A member never links to itself.
    clear_bit(allows_row, i);
    clear_bit(row(d.allowed_by, i), i);
  }
}

std::set<AsLink> MlpInferenceEngine::infer_links(
    bool assume_open_for_unobserved) const {
  ensure_derived();
  links_generation_ = generation_;
  const Derived& d = derived_;
  const std::vector<Asn>& universe = context_.rs_members.values();
  const std::size_t n = universe.size();
  std::set<AsLink> links;
  for (std::size_t i = 0; i < n; ++i) {
    if (!assume_open_for_unobserved &&
        (d.observed[i / 64] >> (i % 64) & std::uint64_t{1}) == 0)
      continue;
    const std::uint64_t* allows_row = d.allows.data() + i * d.words;
    const std::uint64_t* allowed_row = d.allowed_by.data() + i * d.words;
    // Reciprocal pairs above the diagonal, in ascending order: the
    // end-hinted insert keeps the set build linear in the link count.
    for (std::size_t w = i / 64; w < d.words; ++w) {
      std::uint64_t reciprocal = allows_row[w] & allowed_row[w];
      if (!assume_open_for_unobserved) reciprocal &= d.observed[w];
      if (w == i / 64)
        reciprocal &= ~((std::uint64_t{2} << (i % 64)) - 1);  // j > i only
      while (reciprocal != 0) {
        const std::size_t j =
            w * 64 + static_cast<std::size_t>(std::countr_zero(reciprocal));
        links.insert(links.end(), AsLink(universe[i], universe[j]));
        reciprocal &= reciprocal - 1;
      }
    }
  }
  return links;
}

std::size_t MlpInferenceEngine::count_links_derived(
    bool assume_open_for_unobserved) const {
  ensure_derived();
  const Derived& d = derived_;
  const std::size_t n = context_.rs_members.size();
  std::size_t doubled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!assume_open_for_unobserved &&
        (d.observed[i / 64] >> (i % 64) & std::uint64_t{1}) == 0)
      continue;
    const std::uint64_t* allows_row = d.allows.data() + i * d.words;
    const std::uint64_t* allowed_row = d.allowed_by.data() + i * d.words;
    for (std::size_t w = 0; w < d.words; ++w) {
      std::uint64_t reciprocal = allows_row[w] & allowed_row[w];
      if (!assume_open_for_unobserved) reciprocal &= d.observed[w];
      doubled += static_cast<std::size_t>(std::popcount(reciprocal));
    }
  }
  // The matrix is zero on the diagonal and the reciprocal relation is
  // symmetric, so every link was counted once per direction.
  return doubled / 2;
}

std::size_t MlpInferenceEngine::count_links(
    bool assume_open_for_unobserved) const {
  const std::size_t links = count_links_derived(assume_open_for_unobserved);
  links_generation_ = generation_;
  return links;
}

EngineStats MlpInferenceEngine::stats() const {
  return stats(count_links());
}

EngineStats MlpInferenceEngine::stats(std::size_t precomputed_links) const {
  // Contract (see header): the precomputed link count must describe THIS
  // engine state. A mutation between infer_links/count_links and this
  // call would silently pair fresh member stats with a stale link count.
  assert(links_generation_.has_value() && *links_generation_ == generation_ &&
         "stats(precomputed_links): engine mutated since the link count "
         "was computed");
  EngineStats stats;
  stats.rs_members = context_.rs_members.size();
  stats.observed_members = member_ids_.size();
  for (const MemberData& data : member_data_) {
    if (data.passive)
      ++stats.passive_members;
    else if (data.active)
      ++stats.active_members;
    stats.observations += data.observations;
    // A member is inconsistent if its per-prefix policies are not all equal
    // (section 4.3 reports < 0.5% of members).
    bool inconsistent = false;
    const ExportPolicy* first = nullptr;
    for (const auto& [prefix, policy] : data.per_prefix) {
      if (!first) {
        first = &policy;
      } else if (!(policy == *first)) {
        inconsistent = true;
        break;
      }
    }
    if (inconsistent) ++stats.inconsistent_members;
  }
  stats.links = precomputed_links;
  return stats;
}

std::shared_ptr<const EngineSnapshot> MlpInferenceEngine::freeze(
    bool assume_open_for_unobserved, std::uint64_t epoch) const {
  ensure_derived();
  const Derived& d = derived_;
  // The snapshot's private constructor is reachable only from here (the
  // engine is a friend), so it goes through shared_ptr's pointer ctor
  // rather than make_shared.
  std::shared_ptr<EngineSnapshot> snap(new EngineSnapshot());
  snap->epoch_ = epoch;
  snap->generation_ = generation_;
  snap->ixp_ = context_.name;
  snap->assume_open_ = assume_open_for_unobserved;
  snap->participants_ = context_.rs_members;
  snap->observed_ = member_ids_;
  snap->words_ = d.words;
  snap->observed_mask_ = d.observed;
  snap->rejected_ = rejected_;
  // Readers only ever need the reciprocal relation, so the snapshot
  // stores allows & allowed_by pre-ANDed: half the memory of the writer's
  // matrix pair and a single bit test per has_link.
  snap->reciprocal_.resize(d.allows.size());
  for (std::size_t k = 0; k < d.allows.size(); ++k)
    snap->reciprocal_[k] = d.allows[k] & d.allowed_by[k];
  const std::size_t links = count_links_derived(assume_open_for_unobserved);
  links_generation_ = generation_;
  snap->stats_ = stats(links);
  return snap;
}

void MlpInferenceEngine::invalidate_derived() {
  derived_ = Derived{};
  links_generation_.reset();
  for (const MemberData& data : member_data_) data.merged_valid = false;
}

void MlpInferenceEngine::serialize_state(ByteWriter& writer) const {
  writer.u32(static_cast<std::uint32_t>(member_ids_.size()));
  for (std::size_t i = 0; i < member_ids_.size(); ++i) {
    const MemberData& data = member_data_[i];
    writer.u32(member_ids_.values()[i]);
    writer.u8(static_cast<std::uint8_t>((data.passive ? 1 : 0) |
                                        (data.active ? 2 : 0)));
    writer.u64(data.observations);
    writer.u32(static_cast<std::uint32_t>(data.per_prefix.size()));
    for (const auto& [prefix, policy] : data.per_prefix) {
      codec::write_prefix(writer, prefix);
      codec::write_policy(writer, policy);
    }
  }
  writer.u64(rejected_);
}

void MlpInferenceEngine::restore_state(ByteReader& reader) {
  // Parse the full image into locals first: a ParseError anywhere must
  // leave the engine exactly as it was.
  const std::size_t members =
      codec::read_count(reader, 17, "engine member");
  std::vector<Asn> ids;
  std::vector<MemberData> data;
  ids.reserve(members);
  data.reserve(members);
  for (std::size_t i = 0; i < members; ++i) {
    const Asn asn = reader.u32();
    if (!ids.empty() && asn <= ids.back())
      throw ParseError("checkpoint: engine members not strictly increasing");
    // add() never admits a non-member, so a legitimate image cannot
    // contain one -- and the incremental bitset indexes members into
    // A_RS, so one slipping through would corrupt the matrix.
    if (!context_.is_member(asn))
      throw ParseError("checkpoint: engine member " + std::to_string(asn) +
                       " not in A_RS");
    const std::uint8_t flags = reader.u8();
    if (flags > 3)
      throw ParseError("checkpoint: engine member flags " +
                       std::to_string(flags));
    MemberData slot;
    slot.passive = (flags & 1) != 0;
    slot.active = (flags & 2) != 0;
    slot.observations = reader.u64();
    const std::size_t prefixes =
        codec::read_count(reader, 10, "engine per-prefix policy");
    slot.per_prefix.reserve(prefixes);
    for (std::size_t p = 0; p < prefixes; ++p) {
      IpPrefix prefix = codec::read_prefix(reader);
      if (!slot.per_prefix.empty() && !(slot.per_prefix.back().first < prefix))
        throw ParseError(
            "checkpoint: engine per-prefix policies not sorted");
      slot.per_prefix.emplace_back(prefix, codec::read_policy(reader));
    }
    ids.push_back(asn);
    data.push_back(std::move(slot));
  }
  const std::size_t rejected = reader.u64();

  member_ids_ = FlatAsnSet(std::move(ids));
  member_data_ = std::move(data);
  rejected_ = rejected;
  // Every memoised/derived structure described the PRE-restore state;
  // drop it unconditionally (stale-N_a regression pinned in
  // core_engine_test) and advance the generation so precomputed link
  // counts from before the restore assert instead of misreporting.
  invalidate_derived();
  ++generation_;
}

}  // namespace mlp::core
