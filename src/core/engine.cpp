#include "core/engine.hpp"

#include <algorithm>
#include <bit>

#include "core/state_codec.hpp"
#include "util/errors.hpp"

namespace mlp::core {

std::string to_string(Source source) {
  switch (source) {
    case Source::Passive:
      return "passive";
    case Source::ActiveLg:
      return "active-lg";
    case Source::ThirdPartyLg:
      return "third-party-lg";
  }
  return "unknown";
}

EngineStats& operator+=(EngineStats& lhs, const EngineStats& rhs) {
  lhs.rs_members += rhs.rs_members;
  lhs.observed_members += rhs.observed_members;
  lhs.passive_members += rhs.passive_members;
  lhs.active_members += rhs.active_members;
  lhs.observations += rhs.observations;
  lhs.inconsistent_members += rhs.inconsistent_members;
  lhs.links += rhs.links;
  return lhs;
}

MlpInferenceEngine::MemberData& MlpInferenceEngine::member_slot(Asn member) {
  const bool inserted = member_ids_.insert(member);
  const std::size_t index = member_ids_.index_of(member);
  if (inserted)
    member_data_.insert(member_data_.begin() +
                            static_cast<std::ptrdiff_t>(index),
                        MemberData{});
  return member_data_[index];
}

const MlpInferenceEngine::MemberData* MlpInferenceEngine::find_member(
    Asn member) const {
  const std::size_t index = member_ids_.index_of(member);
  if (index == FlatAsnSet::npos) return nullptr;
  return &member_data_[index];
}

void MlpInferenceEngine::add(const Observation& observation) {
  if (!context_.is_member(observation.setter)) {
    ++rejected_;
    return;
  }
  auto policy =
      ExportPolicy::from_communities(observation.communities, context_.scheme);
  MemberData& data = member_slot(observation.setter);
  ++data.observations;
  if (observation.source == Source::Passive)
    data.passive = true;
  else
    data.active = true;
  // No RS communities on the route: the default ALL behaviour. A
  // re-announcement of a known prefix replaces its policy.
  ExportPolicy resolved = policy.value_or(ExportPolicy::open());
  const auto it = std::lower_bound(
      data.per_prefix.begin(), data.per_prefix.end(), observation.prefix,
      [](const auto& entry, const IpPrefix& prefix) {
        return entry.first < prefix;
      });
  if (it != data.per_prefix.end() && it->first == observation.prefix)
    it->second = std::move(resolved);
  else
    data.per_prefix.emplace(it, observation.prefix, std::move(resolved));
  data.merged_valid = false;
}

const std::vector<Asn>& MlpInferenceEngine::observed_members() const {
  return member_ids_.values();
}

const ExportPolicy& MlpInferenceEngine::merged_policy(
    const MemberData& data) const {
  if (!data.merged_valid) {
    ExportPolicy merged;
    bool first = true;
    for (const auto& [prefix, policy] : data.per_prefix) {
      if (first) {
        merged = policy;
        first = false;
      } else {
        merged = ExportPolicy::intersect(merged, policy, context_.rs_members);
      }
    }
    data.merged = std::move(merged);
    data.merged_valid = true;
  }
  return data.merged;
}

const ExportPolicy* MlpInferenceEngine::policy_of(Asn member) const {
  const MemberData* data = find_member(member);
  if (data == nullptr) return nullptr;
  return &merged_policy(*data);
}

MlpInferenceEngine::ReciprocityMatrix MlpInferenceEngine::build_matrix(
    bool assume_open_for_unobserved) const {
  ReciprocityMatrix m;
  // Participants stay sorted: observed members only, or all of A_RS when
  // unobserved members default to open.
  m.participants =
      assume_open_for_unobserved ? context_.rs_members : member_ids_;
  const std::size_t n = m.participants.size();
  m.words = (n + 63) / 64;
  if (n == 0) return m;
  m.allows.assign(n * m.words, 0);
  m.allowed_by.assign(n * m.words, 0);

  // Bit j of row i of `allows` says participant i exports to participant
  // j. `allowed_by` is the transpose, built in the same pass so the
  // reciprocity test is a word-wise AND of two rows. Default-open rows
  // (AllExcept) are runs of ones, so the transpose starts from a per-word
  // mask of the open-mode columns and both matrices are then corrected
  // with one bit operation per listed peer.
  const std::uint64_t tail_mask =
      (n % 64) ? ((std::uint64_t{1} << (n % 64)) - 1) : ~std::uint64_t{0};
  std::vector<const ExportPolicy*> policies(n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    const MemberData* data = find_member(m.participants.values()[i]);
    policies[i] = data ? &merged_policy(*data) : nullptr;  // null: open
  }

  std::vector<std::uint64_t> open_cols(m.words, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (policies[i] == nullptr ||
        policies[i]->mode() == ExportPolicy::Mode::AllExcept)
      open_cols[i / 64] |= std::uint64_t{1} << (i % 64);
  }

  auto row = [&](std::vector<std::uint64_t>& matrix, std::size_t i) {
    return matrix.data() + i * m.words;
  };
  auto clear_bit = [](std::uint64_t* r, std::size_t j) {
    r[j / 64] &= ~(std::uint64_t{1} << (j % 64));
  };
  auto set_bit = [](std::uint64_t* r, std::size_t j) {
    r[j / 64] |= std::uint64_t{1} << (j % 64);
  };

  for (std::size_t j = 0; j < n; ++j)
    std::copy(open_cols.begin(), open_cols.end(), row(m.allowed_by, j));

  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t* allows_row = row(m.allows, i);
    const bool open_mode =
        policies[i] == nullptr ||
        policies[i]->mode() == ExportPolicy::Mode::AllExcept;
    if (open_mode) {
      std::fill(allows_row, allows_row + m.words, ~std::uint64_t{0});
      allows_row[m.words - 1] = tail_mask;
    }
    if (policies[i] != nullptr) {
      for (const Asn peer : policies[i]->peers()) {
        const std::size_t j = m.participants.index_of(peer);
        if (j == FlatAsnSet::npos) continue;  // listed peer not present
        if (open_mode) {
          clear_bit(allows_row, j);
          clear_bit(row(m.allowed_by, j), i);
        } else {
          set_bit(allows_row, j);
          set_bit(row(m.allowed_by, j), i);
        }
      }
    }
    // A member never links to itself.
    clear_bit(allows_row, i);
    clear_bit(row(m.allowed_by, i), i);
  }
  return m;
}

std::set<AsLink> MlpInferenceEngine::infer_links(
    bool assume_open_for_unobserved) const {
  const ReciprocityMatrix m = build_matrix(assume_open_for_unobserved);
  const std::size_t n = m.participants.size();
  std::set<AsLink> links;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* allows_row = m.allows.data() + i * m.words;
    const std::uint64_t* allowed_row = m.allowed_by.data() + i * m.words;
    // Reciprocal pairs above the diagonal, in ascending order: the
    // end-hinted insert keeps the set build linear in the link count.
    for (std::size_t w = i / 64; w < m.words; ++w) {
      std::uint64_t reciprocal = allows_row[w] & allowed_row[w];
      if (w == i / 64)
        reciprocal &= ~((std::uint64_t{2} << (i % 64)) - 1);  // j > i only
      while (reciprocal != 0) {
        const std::size_t j =
            w * 64 + static_cast<std::size_t>(std::countr_zero(reciprocal));
        links.insert(links.end(),
                     AsLink(m.participants.values()[i],
                            m.participants.values()[j]));
        reciprocal &= reciprocal - 1;
      }
    }
  }
  return links;
}

std::size_t MlpInferenceEngine::count_links(
    bool assume_open_for_unobserved) const {
  const ReciprocityMatrix m = build_matrix(assume_open_for_unobserved);
  std::size_t doubled = 0;
  for (std::size_t k = 0; k < m.allows.size(); ++k)
    doubled += static_cast<std::size_t>(
        std::popcount(m.allows[k] & m.allowed_by[k]));
  // The matrix is zero on the diagonal and the reciprocal relation is
  // symmetric, so every link was counted once per direction.
  return doubled / 2;
}

EngineStats MlpInferenceEngine::stats() const {
  return stats(count_links());
}

EngineStats MlpInferenceEngine::stats(std::size_t precomputed_links) const {
  EngineStats stats;
  stats.rs_members = context_.rs_members.size();
  stats.observed_members = member_ids_.size();
  for (const MemberData& data : member_data_) {
    if (data.passive)
      ++stats.passive_members;
    else if (data.active)
      ++stats.active_members;
    stats.observations += data.observations;
    // A member is inconsistent if its per-prefix policies are not all equal
    // (section 4.3 reports < 0.5% of members).
    bool inconsistent = false;
    const ExportPolicy* first = nullptr;
    for (const auto& [prefix, policy] : data.per_prefix) {
      if (!first) {
        first = &policy;
      } else if (!(policy == *first)) {
        inconsistent = true;
        break;
      }
    }
    if (inconsistent) ++stats.inconsistent_members;
  }
  stats.links = precomputed_links;
  return stats;
}

void MlpInferenceEngine::serialize_state(ByteWriter& writer) const {
  writer.u32(static_cast<std::uint32_t>(member_ids_.size()));
  for (std::size_t i = 0; i < member_ids_.size(); ++i) {
    const MemberData& data = member_data_[i];
    writer.u32(member_ids_.values()[i]);
    writer.u8(static_cast<std::uint8_t>((data.passive ? 1 : 0) |
                                        (data.active ? 2 : 0)));
    writer.u64(data.observations);
    writer.u32(static_cast<std::uint32_t>(data.per_prefix.size()));
    for (const auto& [prefix, policy] : data.per_prefix) {
      codec::write_prefix(writer, prefix);
      codec::write_policy(writer, policy);
    }
  }
  writer.u64(rejected_);
}

void MlpInferenceEngine::restore_state(ByteReader& reader) {
  // Parse the full image into locals first: a ParseError anywhere must
  // leave the engine exactly as it was.
  const std::size_t members =
      codec::read_count(reader, 17, "engine member");
  std::vector<Asn> ids;
  std::vector<MemberData> data;
  ids.reserve(members);
  data.reserve(members);
  for (std::size_t i = 0; i < members; ++i) {
    const Asn asn = reader.u32();
    if (!ids.empty() && asn <= ids.back())
      throw ParseError("checkpoint: engine members not strictly increasing");
    const std::uint8_t flags = reader.u8();
    if (flags > 3)
      throw ParseError("checkpoint: engine member flags " +
                       std::to_string(flags));
    MemberData slot;
    slot.passive = (flags & 1) != 0;
    slot.active = (flags & 2) != 0;
    slot.observations = reader.u64();
    const std::size_t prefixes =
        codec::read_count(reader, 10, "engine per-prefix policy");
    slot.per_prefix.reserve(prefixes);
    for (std::size_t p = 0; p < prefixes; ++p) {
      IpPrefix prefix = codec::read_prefix(reader);
      if (!slot.per_prefix.empty() && !(slot.per_prefix.back().first < prefix))
        throw ParseError(
            "checkpoint: engine per-prefix policies not sorted");
      slot.per_prefix.emplace_back(prefix, codec::read_policy(reader));
    }
    ids.push_back(asn);
    data.push_back(std::move(slot));
  }
  const std::size_t rejected = reader.u64();

  member_ids_ = FlatAsnSet(std::move(ids));
  member_data_ = std::move(data);
  rejected_ = rejected;
}

}  // namespace mlp::core
