// Active inference through looking-glass queries (paper sections 4.1/4.3).
//
// Steps 1-3 of the algorithm against an LG that fronts a route server:
//   1. `show ip bgp summary`                -> A_RS (one query)
//   2. per member: `... neighbors X routes` -> P_a (|A_RS| queries)
//   3. per selected prefix: `show ip bgp P` -> communities C_{a,p}
//
// Step 3 carries the two cost optimisations of section 4.3: sample 10% of
// each member's prefixes (capped at 100) because policies are consistent
// across prefixes, and query multi-advertiser prefixes first so one query
// covers several members (equation 1 -> equation 2 when members already
// covered by passive data are skipped).
#pragma once

#include <cstddef>
#include <set>

#include "core/types.hpp"
#include "lg/lg_client.hpp"

namespace mlp::core {

struct ActiveConfig {
  /// Fraction of each member's prefixes queried in step 3.
  double prefix_sample_fraction = 0.10;
  /// Upper bound on sampled prefixes per member.
  std::size_t prefix_sample_cap = 100;
  /// Order step-3 queries by how many members advertise the prefix.
  bool multiplicity_sort = true;
  /// Let one prefix query cover every member advertising it.
  bool share_prefix_queries = true;
};

struct ActiveSurveyResult {
  /// A_RS as seen in step 1.
  FlatAsnSet rs_members;
  /// Communities observed, one per (setter, prefix) path block.
  std::vector<Observation> observations;
  /// Cost c: 1 + member queries + prefix queries (equation 1/2).
  std::size_t queries = 0;
  std::size_t member_queries = 0;
  std::size_t prefix_queries = 0;
  /// Cost without any optimisation: 1 + |A_RS| + sum |P_a|.
  std::size_t naive_queries = 0;

  /// Wall-clock a polite client would need at one query per
  /// `interval_s` seconds.
  double simulated_hours(double interval_s) const {
    return static_cast<double>(queries) * interval_s / 3600.0;
  }
};

/// Run the survey against `lg`. Members in `skip` already have passive
/// coverage and are excluded from steps 2-3 (equation 2); their prefixes
/// still count toward naive_queries.
ActiveSurveyResult run_active_survey(lg::LookingGlassServer& lg,
                                     const ActiveConfig& config = {},
                                     const std::set<Asn>& skip = {});

}  // namespace mlp::core
