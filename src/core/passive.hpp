// Passive inference from archived BGP data (paper section 4.2).
//
// The extractor consumes MRT archives (or raw AS paths with communities),
// filters dirty paths, attributes RS communities to an IXP -- directly
// when a community value encodes the route-server ASN, or by matching the
// combination of excluded ASes against the candidate IXPs' member lists --
// and pinpoints the RS setter using the membership cases 1-3, falling
// back to AS relationships when a path holds more than two members.
//
// Two consumption modes:
//
//   accumulate (default): observations collect internally, grouped per
//   IXP, and are read back via observations()/take_observations() once
//   the input is consumed.
//
//   streaming (set_sink): attributed observations are emitted to a
//   callback in bounded batches, keyed by dense IXP index (the position
//   in the IXP vector passed to the constructor), while MRT decode is
//   still in progress. Peak memory stays O(batch x IXPs) instead of
//   O(archive), and a downstream consumer can overlap inference with
//   decode. Call finish() after the last input to flush partial batches.
//
// MRT archives are walked with the streaming mrt::MrtCursor -- no
// whole-archive RIB or record vector is ever materialized. Update streams
// are filtered through a bounded announce-window keyed on (peer, prefix),
// so BGP4MP input can also be fed incrementally via consume_update.
//
// Like the inference engine, an extractor is deliberately NOT thread-safe
// (scratch buffers are reused across consume calls); confine each
// instance to one task.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "bgp/valley.hpp"
#include "bgp/wire.hpp"
#include "core/types.hpp"

namespace mlp {
class ByteWriter;
class ByteReader;
}  // namespace mlp

namespace mlp::core {

/// Counters describing how the input was consumed.
struct PassiveStats {
  std::size_t paths_seen = 0;
  std::size_t paths_dirty = 0;        // cycles / reserved ASNs
  std::size_t paths_transient = 0;    // announced for < min_duration
  std::size_t paths_no_rs_values = 0; // no candidate scheme matched
  std::size_t paths_ambiguous_ixp = 0;
  std::size_t paths_no_setter = 0;    // membership cases that fail
  std::size_t observations = 0;       // successfully attributed
  std::size_t records_malformed = 0;  // skipped in tolerant mode
  std::size_t peer_session_resets = 0;  // PeerUp/PeerDown teardowns applied
  std::size_t pending_torn_down = 0;  // announcements settled by a teardown
};

/// Field-wise sum, for merging the stats of parallel extraction passes.
PassiveStats& operator+=(PassiveStats& lhs, const PassiveStats& rhs);

/// Configuration of the passive pipeline.
struct PassiveConfig {
  /// Drop announcements visible for less than this long before being
  /// withdrawn (misconfiguration guard, section 5). 0 disables.
  std::uint32_t min_duration_s = 0;
  /// Cap on the (peer, prefix) announce-window used for transient
  /// filtering of update streams. When full, the oldest announcement is
  /// evicted through the same age test as a withdrawal at the current
  /// stream time. 0 means unbounded.
  std::size_t max_pending_announcements = 1u << 20;
  /// Survive malformed MRT records: instead of aborting the whole ingest
  /// (fatal for a live feed), skip forward to the next plausible record
  /// header and count the casualty in PassiveStats::records_malformed.
  /// Off by default: strict mode keeps erroring with the record's byte
  /// offset in the message.
  bool tolerate_malformed = false;
};

class PassiveExtractor {
 public:
  /// Streaming emission callback: one batch of attributed observations
  /// for the IXP at `ixp_index` (dense index into the constructor's IXP
  /// vector). Batches for one IXP arrive in attribution order.
  using ObservationSink = std::function<void(
      std::size_t ixp_index, std::vector<Observation>&& batch)>;

  /// `relationships` resolves setter case 3; it may be an inferred
  /// relationship set or a ground-truth oracle. May be null (case 3 then
  /// fails as "no setter").
  PassiveExtractor(std::vector<IxpContext> ixps, bgp::RelFn relationships,
                   PassiveConfig config = PassiveConfig{});

  /// Shared-context overload: parallel extractors (one per archive in the
  /// pipeline) reference one immutable IXP set instead of each copying it.
  PassiveExtractor(std::shared_ptr<const std::vector<IxpContext>> ixps,
                   bgp::RelFn relationships,
                   PassiveConfig config = PassiveConfig{});

  /// Switch to streaming mode: observations are emitted to `sink` in
  /// batches of at most `batch_size` per IXP instead of accumulating.
  /// Must be set before any input is consumed.
  void set_sink(ObservationSink sink, std::size_t batch_size = 256);

  /// Consume a TABLE_DUMP_V2 archive (a collector RIB snapshot),
  /// streaming entry by entry; BGP4MP records in a mixed stream are
  /// ignored, matching the materializing parse_rib behaviour.
  void consume_table_dump(std::span<const std::uint8_t> archive);

  /// Consume a BGP4MP update archive; withdrawals cancel announcements
  /// younger than min_duration_s (transient filtering). Announcements
  /// still standing at end of archive are flushed as stable.
  void consume_update_stream(std::span<const std::uint8_t> archive);

  /// Consume one already-decoded update message (incremental form of
  /// consume_update_stream; updates must arrive in timestamp order).
  /// Stable announcements surface once withdrawn, replaced, evicted from
  /// the bounded window, or flushed via flush_pending()/finish().
  void consume_update(std::uint32_t timestamp, Asn peer_asn,
                      const bgp::UpdateMessage& update);

  /// BGP session boundary for `peer_asn` at stream time `timestamp` (a
  /// BMP PeerDown, or a PeerUp that implies the previous session died
  /// without one): every announcement standing in that peer's announce-
  /// window is settled through the usual age test and evicted -- routes
  /// of a dead session must not linger as pending state. Advances the
  /// stream clock like consume_update.
  void peer_session_reset(Asn peer_asn, std::uint32_t timestamp);

  /// The extractor's stream clock: the running max of every record /
  /// peer-event timestamp consumed so far. Emitted observations carry
  /// this clock, so it doubles as the lane watermark of the live
  /// cross-feed merge.
  std::uint32_t stream_time() const { return clock_; }

  /// Consume one already-decoded path observation.
  void consume_path(const AsPath& path,
                    const IpPrefix& prefix,
                    const std::vector<Community>& communities,
                    Source source = Source::Passive);

  /// Flush announcements still standing in the announce-window (end of a
  /// live stream's observation period).
  void flush_pending();

  /// Streaming mode: emit the partially-filled per-IXP batches now, so a
  /// downstream snapshot reflects everything consumed so far. Does NOT
  /// touch the announce-window (unlike finish(), it is safe mid-stream);
  /// a no-op in accumulate mode.
  void flush_batches();

  /// End of input: flush the announce-window and, in streaming mode, the
  /// partial per-IXP batches.
  void finish();

  /// Count one malformed record skipped by a tolerant caller that frames
  /// and decodes outside the extractor (the live-session path), keeping
  /// records_malformed meaningful for every ingest front end.
  void note_malformed_record() { ++stats_.records_malformed; }

  /// Observations grouped by IXP name, ready for MlpInferenceEngine::add
  /// (accumulate mode only; the view is rebuilt lazily after new input).
  const std::map<std::string, std::vector<Observation>>& observations();

  /// Move the accumulated observations out (the extractor is spent
  /// afterwards); avoids copying the main data product per source.
  std::map<std::string, std::vector<Observation>> take_observations();

  const PassiveStats& stats() const { return stats_; }

  /// The shared IXP context set; a streaming sink's dense index is the
  /// position in this vector.
  const std::shared_ptr<const std::vector<IxpContext>>& contexts() const {
    return ixps_;
  }

  /// Checkpoint hook: persist the stream clock, the consumption counters
  /// and the standing announce-window (pending map + FIFO eviction
  /// order), exactly as they are -- entries are NOT flushed, so a
  /// restored extractor settles them through the same age tests the
  /// uninterrupted run would have applied. Requires the per-IXP batch
  /// buffers to be empty (call flush_batches() first in streaming mode);
  /// throws InvalidArgument otherwise -- unemitted observations must live
  /// in the downstream queues, not here.
  void serialize_state(ByteWriter& writer) const;

  /// Checkpoint hook: replace clock, stats and announce-window with a
  /// serialized image. Parses and validates the whole image before
  /// committing (a ParseError leaves the extractor untouched). The IXP
  /// contexts, relationships, config and sink are construction-time
  /// wiring and are not part of the image.
  void restore_state(ByteReader& reader);

 private:
  struct Attribution {
    std::size_t ixp_index = 0;
    /// Range of this IXP's RS communities inside comm_scratch_.
    std::uint32_t comm_begin = 0;
    std::uint32_t comm_end = 0;
    /// Some community value encodes the RS ASN (direct attribution);
    /// otherwise only peer-targeted values matched (EXCLUDE-only case).
    bool rs_encoded = false;
  };

  /// Attribute the RS communities on a route to candidate IXPs; fills
  /// attr_scratch_/comm_scratch_ and returns the number of strong
  /// (RS-encoded) attributions.
  std::size_t attribute_ixps(const std::vector<Community>& communities);

  /// Identify the RS setter in `path` for an IXP (cases 1-3). Returns 0
  /// when no setter can be pinpointed.
  Asn identify_setter(const AsPath& path, const IxpContext& ixp);

  /// Append one attributed observation for the IXP at `index`, emitting a
  /// batch in streaming mode when the bucket is full.
  void emit(std::size_t index, Observation observation);

  /// One standing announcement in the transient-filter window.
  struct Pending {
    std::uint32_t announced_at = 0;
    AsPath path;
    std::vector<Community> communities;
  };
  using PendingKey = std::pair<Asn, IpPrefix>;

  /// Age-test `entry` against `now` and either consume it as stable or
  /// count it transient.
  void settle(const PendingKey& key, const Pending& entry,
              std::uint32_t now);

  /// Enforce max_pending_announcements after an insertion.
  void evict_pending(std::uint32_t now);

  std::shared_ptr<const std::vector<IxpContext>> ixps_;
  bgp::RelFn relationships_;
  PassiveConfig config_;
  PassiveStats stats_;
  /// Stream clock: running max of consumed record/event timestamps.
  std::uint32_t clock_ = 0;

  /// Per-IXP observation buffers, dense-indexed in ixps_ order. In
  /// accumulate mode this is the full product; in streaming mode, the
  /// partial batches not yet emitted.
  std::vector<std::vector<Observation>> by_ixp_;
  ObservationSink sink_;
  std::size_t sink_batch_ = 256;

  /// Lazily materialized name-keyed view of by_ixp_ (accumulate mode).
  std::map<std::string, std::vector<Observation>> observations_view_;
  bool view_dirty_ = false;

  /// Transient-filter announce-window plus its FIFO eviction order
  /// (lazily pruned: replaced announcements leave stale FIFO entries
  /// behind, recognized by a mismatching announced_at).
  std::map<PendingKey, Pending> pending_;
  std::deque<std::pair<PendingKey, std::uint32_t>> pending_fifo_;

  // Reusable per-path scratch (why consume calls are not thread-safe).
  std::vector<Attribution> attr_scratch_;
  std::vector<Community> comm_scratch_;
  std::vector<Asn> flat_scratch_;           // deduplicated path
  std::vector<std::uint32_t> member_pos_scratch_;
};

}  // namespace mlp::core
