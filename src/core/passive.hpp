// Passive inference from archived BGP data (paper section 4.2).
//
// The extractor consumes MRT archives (or raw AS paths with communities),
// filters dirty paths, attributes RS communities to an IXP -- directly
// when a community value encodes the route-server ASN, or by matching the
// combination of excluded ASes against the candidate IXPs' member lists --
// and pinpoints the RS setter using the membership cases 1-3, falling
// back to AS relationships when a path holds more than two members.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "bgp/valley.hpp"
#include "core/types.hpp"

namespace mlp::core {

/// Counters describing how the input was consumed.
struct PassiveStats {
  std::size_t paths_seen = 0;
  std::size_t paths_dirty = 0;        // cycles / reserved ASNs
  std::size_t paths_transient = 0;    // announced for < min_duration
  std::size_t paths_no_rs_values = 0; // no candidate scheme matched
  std::size_t paths_ambiguous_ixp = 0;
  std::size_t paths_no_setter = 0;    // membership cases that fail
  std::size_t observations = 0;       // successfully attributed
};

/// Field-wise sum, for merging the stats of parallel extraction passes.
PassiveStats& operator+=(PassiveStats& lhs, const PassiveStats& rhs);

/// Configuration of the passive pipeline.
struct PassiveConfig {
  /// Drop announcements visible for less than this long before being
  /// withdrawn (misconfiguration guard, section 5). 0 disables.
  std::uint32_t min_duration_s = 0;
};

class PassiveExtractor {
 public:
  /// `relationships` resolves setter case 3; it may be an inferred
  /// relationship set or a ground-truth oracle. May be null (case 3 then
  /// fails as "no setter").
  PassiveExtractor(std::vector<IxpContext> ixps, bgp::RelFn relationships,
                   PassiveConfig config = PassiveConfig{});

  /// Shared-context overload: parallel extractors (one per archive in the
  /// pipeline) reference one immutable IXP set instead of each copying it.
  PassiveExtractor(std::shared_ptr<const std::vector<IxpContext>> ixps,
                   bgp::RelFn relationships,
                   PassiveConfig config = PassiveConfig{});

  /// Consume a TABLE_DUMP_V2 archive (a collector RIB snapshot).
  void consume_table_dump(std::span<const std::uint8_t> archive);

  /// Consume a BGP4MP update archive; withdrawals cancel announcements
  /// younger than min_duration_s (transient filtering).
  void consume_update_stream(std::span<const std::uint8_t> archive);

  /// Consume one already-decoded path observation.
  void consume_path(const AsPath& path,
                    const IpPrefix& prefix,
                    const std::vector<Community>& communities,
                    Source source = Source::Passive);

  /// Observations grouped by IXP name, ready for MlpInferenceEngine::add.
  const std::map<std::string, std::vector<Observation>>& observations()
      const {
    return observations_;
  }

  /// Move the accumulated observations out (the extractor is spent
  /// afterwards); avoids copying the main data product per source.
  std::map<std::string, std::vector<Observation>> take_observations() {
    return std::move(observations_);
  }

  const PassiveStats& stats() const { return stats_; }

 private:
  struct Attribution {
    const IxpContext* ixp = nullptr;
    std::vector<Community> rs_communities;
    /// Some community value encodes the RS ASN (direct attribution);
    /// otherwise only peer-targeted values matched (EXCLUDE-only case).
    bool rs_encoded = false;
  };

  /// Attribute the RS communities on a route to exactly one candidate IXP.
  std::vector<Attribution> attribute_ixps(
      const std::vector<Community>& communities) const;

  /// Identify the RS setter in `path` for an IXP (cases 1-3). Returns 0
  /// when no setter can be pinpointed.
  Asn identify_setter(const AsPath& path, const IxpContext& ixp) const;

  std::shared_ptr<const std::vector<IxpContext>> ixps_;
  bgp::RelFn relationships_;
  PassiveConfig config_;
  PassiveStats stats_;
  std::map<std::string, std::vector<Observation>> observations_;
};

}  // namespace mlp::core
