#include "core/reciprocity.hpp"

namespace mlp::core {

ReciprocityReport check_reciprocity(
    const irr::IrrDatabase& database, const util::FlatAsnSet& members,
    const util::FlatAsnSet& candidate_peers) {
  ReciprocityReport report;
  for (const bgp::Asn member : members) {
    const auto imports = database.import_filter(member);
    const auto exports = database.export_filter(member);
    if (!imports || !exports) {
      ++report.members_missing;
      continue;
    }
    ++report.members_checked;

    bool violated = false;
    bool import_extra = false;
    bool export_extra = false;
    for (const bgp::Asn peer : candidate_peers) {
      if (peer == member) continue;
      const bool exp = exports->allows(peer);
      const bool imp = imports->allows(peer);
      if (exp && !imp) violated = true;   // import blocks an exported peer
      if (imp && !exp) import_extra = true;
    }
    (void)export_extra;
    if (violated) {
      ++report.violations;
      report.violating_members.push_back(member);
    } else if (import_extra) {
      ++report.more_permissive_imports;
    } else {
      ++report.equal_filters;
    }
  }
  return report;
}

}  // namespace mlp::core
