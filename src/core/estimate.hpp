// Global IXP peering estimation (paper section 5.7).
//
// Given a census of IXPs (member counts or member lists, pricing model and
// route-server availability), apply the paper's density assumptions:
//   flat-fee pricing + route server      -> 70% peering density
//   usage-based pricing + route server   -> 60%
//   no route server                      -> 50%
//   North American (for-profit) IXPs     -> 40%
// and a conservative variant capping every density at 60%. Unique links
// are bounded from below with a maximum-overlap assignment over the
// co-location structure of the member lists.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "bgp/asn.hpp"

namespace mlp::core {

enum class PricingModel : std::uint8_t { FlatFee, UsageBased };

struct IxpCensusEntry {
  std::string name;
  bool north_american = false;
  bool has_route_server = true;
  PricingModel pricing = PricingModel::FlatFee;
  /// Member ASNs; used for the overlap computation.
  std::set<bgp::Asn> members;
};

struct EstimateAssumptions {
  double density_flat_rs = 0.70;
  double density_usage_rs = 0.60;
  double density_no_rs = 0.50;
  double density_north_america = 0.40;
  /// Conservative variant: cap all densities at this value (0 disables).
  double conservative_cap = 0.60;
};

struct GlobalEstimate {
  std::size_t ixps = 0;
  std::size_t distinct_ases = 0;
  /// Sum over IXPs of density * C(n, 2).
  std::size_t total_links = 0;
  /// Lower bound on unique AS pairs under maximum link overlap.
  std::size_t unique_links = 0;
  std::vector<std::pair<std::string, std::size_t>> per_ixp;
};

/// Density assigned to one IXP under the assumptions.
double assumed_density(const IxpCensusEntry& entry,
                       const EstimateAssumptions& assumptions,
                       bool conservative);

/// Run the estimate. With `conservative` set, densities are capped at
/// assumptions.conservative_cap.
GlobalEstimate estimate_global_peerings(
    const std::vector<IxpCensusEntry>& census,
    const EstimateAssumptions& assumptions, bool conservative = false);

}  // namespace mlp::core
