#include "core/estimate.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace mlp::core {

double assumed_density(const IxpCensusEntry& entry,
                       const EstimateAssumptions& assumptions,
                       bool conservative) {
  double density;
  if (entry.north_american) {
    density = assumptions.density_north_america;
  } else if (!entry.has_route_server) {
    density = assumptions.density_no_rs;
  } else if (entry.pricing == PricingModel::FlatFee) {
    density = assumptions.density_flat_rs;
  } else {
    density = assumptions.density_usage_rs;
  }
  if (conservative && assumptions.conservative_cap > 0.0)
    density = std::min(density, assumptions.conservative_cap);
  return density;
}

GlobalEstimate estimate_global_peerings(
    const std::vector<IxpCensusEntry>& census,
    const EstimateAssumptions& assumptions, bool conservative) {
  GlobalEstimate out;
  out.ixps = census.size();

  std::set<bgp::Asn> ases;
  std::vector<std::size_t> budgets(census.size(), 0);
  for (std::size_t i = 0; i < census.size(); ++i) {
    const auto& entry = census[i];
    ases.insert(entry.members.begin(), entry.members.end());
    const double n = static_cast<double>(entry.members.size());
    const double possible = n * (n - 1.0) / 2.0;
    budgets[i] = static_cast<std::size_t>(std::llround(
        possible * assumed_density(entry, assumptions, conservative)));
    out.total_links += budgets[i];
    out.per_ixp.emplace_back(entry.name, budgets[i]);
  }
  out.distinct_ases = ases.size();

  // Maximum-overlap (minimum-unique) assignment: pairs co-located at many
  // IXPs can absorb one link from each, so fill them first.
  std::map<std::pair<bgp::Asn, bgp::Asn>, std::vector<std::size_t>>
      pair_ixps;
  for (std::size_t i = 0; i < census.size(); ++i) {
    const auto& members = census[i].members;
    for (auto a = members.begin(); a != members.end(); ++a) {
      for (auto b = std::next(a); b != members.end(); ++b)
        pair_ixps[{*a, *b}].push_back(i);
    }
  }
  std::vector<const std::pair<const std::pair<bgp::Asn, bgp::Asn>,
                              std::vector<std::size_t>>*>
      pairs;
  pairs.reserve(pair_ixps.size());
  for (const auto& item : pair_ixps) pairs.push_back(&item);
  std::sort(pairs.begin(), pairs.end(), [](const auto* x, const auto* y) {
    return x->second.size() > y->second.size();
  });

  std::vector<std::size_t> remaining = budgets;
  std::size_t unique = 0;
  for (const auto* item : pairs) {
    bool used = false;
    for (const std::size_t i : item->second) {
      if (remaining[i] > 0) {
        --remaining[i];
        used = true;
      }
    }
    if (used) ++unique;
  }
  // Any leftover budget cannot exist (more links than pairs); clamp.
  out.unique_links = unique;
  return out;
}

}  // namespace mlp::core
