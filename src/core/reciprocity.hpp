// Validation of the reciprocity assumption against IRR filters
// (paper section 4.4).
//
// The inference assumes: if member i does not block member j on export,
// i also accepts j on import. The paper checked 230 AMS-IX members whose
// BGP configuration is generated from IRR objects and found import
// filters at most as restrictive as export filters, i.e. the assumption
// is conservative (no false positives, possible false negatives on
// asymmetric links).
#pragma once

#include <cstddef>
#include <vector>

#include "bgp/asn.hpp"
#include "irr/database.hpp"
#include "util/flat_set.hpp"

namespace mlp::core {

struct ReciprocityReport {
  std::size_t members_checked = 0;      // members with both filters in IRR
  std::size_t members_missing = 0;      // members lacking usable objects
  /// Members whose import filter blocks a peer the export filter allows:
  /// violations of the assumption.
  std::size_t violations = 0;
  std::vector<bgp::Asn> violating_members;
  /// Members whose import filter admits strictly more peers than their
  /// export filter (the "about half" finding).
  std::size_t more_permissive_imports = 0;
  /// Members with exactly matching filters.
  std::size_t equal_filters = 0;

  double violation_rate() const {
    return members_checked == 0
               ? 0.0
               : static_cast<double>(violations) /
                     static_cast<double>(members_checked);
  }
};

/// Check the assumption for `members` (e.g. the RS members of AMS-IX)
/// against IRR-registered filters. `candidate_peers` is the universe to
/// evaluate filters over (the other RS members).
ReciprocityReport check_reciprocity(const irr::IrrDatabase& database,
                                    const util::FlatAsnSet& members,
                                    const util::FlatAsnSet& candidate_peers);

}  // namespace mlp::core
