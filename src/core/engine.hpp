// The MLP link-inference engine: steps 4 and 5 of the paper's algorithm.
//
// Observations (RS communities per member per prefix, from passive and/or
// active measurement) accumulate per route server; each member's export
// policy is the intersection of its per-prefix policies (N_a), and a p2p
// link is inferred between members a and a' iff a in N_a' and a' in N_a
// (the reciprocity assumption validated in section 4.4).
//
// Data-plane layout: members live in a sorted flat vector (dense-index
// order), each member's per-prefix policies in a small sorted vector
// (section 4.3: members almost never carry more than one distinct
// policy), and the reciprocity pass materialises each participant's
// allow-set as a bitmask row so the pairwise test is an AND over
// 64-member words instead of n^2 tree lookups.
//
// The reciprocity bitset is maintained INCREMENTALLY over the full A_RS
// universe: once a query has materialised it, add() folds a new
// observation in as a delta -- recompute the one affected member's
// merged policy (N_a) and allow-row, XOR against the old row, and patch
// only the changed transpose bits -- instead of invalidating and
// re-memoising the whole table. Unobserved members hold the default-open
// row plus a clear bit in an observed-column mask, so both flag variants
// of infer_links/count_links read the same matrix (the conservative
// default just masks unobserved rows and columns out).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "routeserver/export_policy.hpp"
#include "util/annotations.hpp"

namespace mlp {
class ByteWriter;
class ByteReader;
}  // namespace mlp

namespace mlp::core {

class EngineSnapshot;

using routeserver::ExportPolicy;

/// Inference statistics for one route server (table 2 row material).
struct EngineStats {
  std::size_t rs_members = 0;          // |A_RS|
  std::size_t observed_members = 0;    // members with reachability data
  std::size_t passive_members = 0;     // covered by passive data
  std::size_t active_members = 0;      // covered only by active queries
  std::size_t observations = 0;
  std::size_t inconsistent_members = 0;  // differing per-prefix policies
  std::size_t links = 0;
};

/// Field-wise sum, for aggregating per-IXP stats into pipeline totals.
EngineStats& operator+=(EngineStats& lhs, const EngineStats& rhs);

/// Per-route-server accumulation and link inference.
///
/// Not thread-safe: the accessors memoise the merged per-member policy
/// and the incremental reciprocity bitset, so even const calls must not
/// race add() or each other. The pipeline confines each engine (the
/// WRITER side) to one consumer task; concurrent readers are served by
/// immutable EngineSnapshots published via freeze(), never by the engine
/// itself.
class MlpInferenceEngine {
 public:
  explicit MlpInferenceEngine(IxpContext context)
      : context_(std::move(context)) {}

  const IxpContext& context() const { return context_; }

  /// Record one observation. Observations whose setter is not in A_RS are
  /// ignored (counted as rejected): reachability without connectivity
  /// cannot form links. An accepted observation bumps generation() and,
  /// when the reciprocity bitset is materialised, folds in as an
  /// O(|A_RS|/64) row delta.
  void add(const Observation& observation);

  /// Members with at least one observation, in ascending ASN order (the
  /// engine's own member index); the reference stays valid until the next
  /// add().
  const std::vector<Asn>& observed_members() const MLP_LIFETIMEBOUND;

  /// N_a as an export policy: the per-prefix policies intersected
  /// (step 4). Null if the member was never observed; the pointer stays
  /// valid until the next add().
  const ExportPolicy* policy_of(Asn member) const MLP_LIFETIMEBOUND;

  /// Step 5: infer p2p links among observed members by reciprocity.
  /// If `assume_open_for_unobserved` is set, members of A_RS without
  /// observations participate with the default-open policy (the ALL
  /// behaviour); the paper's conservative default is off.
  std::set<AsLink> infer_links(bool assume_open_for_unobserved = false) const;

  /// The size of infer_links' result without materialising it: a popcount
  /// over the reciprocity bitset (the stats() fast path).
  std::size_t count_links(bool assume_open_for_unobserved = false) const;

  EngineStats stats() const;

  /// stats() with a link count the caller already computed via
  /// infer_links/count_links, skipping the second O(|A_RS|^2/64)
  /// counting pass.
  ///
  /// Contract: the engine must not have mutated (add()/restore_state())
  /// between the link computation and this call -- otherwise the
  /// precomputed count describes a different state than the rest of the
  /// stats and the row silently disagrees with itself. Debug builds
  /// assert on the memo-generation mismatch; pass the count in the same
  /// quiesced window that computed it.
  EngineStats stats(std::size_t precomputed_links) const;

  std::size_t rejected_observations() const { return rejected_; }

  /// Mutation counter: bumped by every accepted add() and by a committed
  /// restore_state(). Two equal generations mean identical accumulated
  /// state; the precomputed-stats assert and epoch publishing key off it.
  std::uint64_t generation() const { return generation_; }

  /// Freeze the current state as an immutable, self-contained
  /// EngineSnapshot computed under `assume_open_for_unobserved`, tagged
  /// with publication sequence number `epoch`. The snapshot copies the
  /// member index, the reciprocity bitset and the derived stats: it
  /// borrows nothing from the engine and may be read lock-free from any
  /// thread for any lifetime. The freeze itself is a writer-side call
  /// (same confinement rules as the other accessors).
  std::shared_ptr<const EngineSnapshot> freeze(bool assume_open_for_unobserved,
                                               std::uint64_t epoch) const;

  /// Drop every memoised/derived structure (merged per-member policies
  /// and the incremental reciprocity bitset); the next query rebuilds
  /// from scratch. Results are unaffected -- this exists to reclaim the
  /// O(|A_RS|^2) bitset of a cold engine and to let benchmarks price the
  /// pre-incremental full-rememoise path against the delta path.
  void invalidate_derived();

  /// Checkpoint hook: persist the accumulated state -- the sorted member
  /// vector with each member's per-prefix policies, flags and counters,
  /// plus the rejected counter. The reciprocity bitsets are derived state
  /// and are never serialized; a restored engine rebuilds them on demand.
  /// The IXP context is NOT serialized (it belongs to the session
  /// configuration, not the accumulated state).
  void serialize_state(ByteWriter& writer) const;

  /// Checkpoint hook: replace the accumulated state with a serialized
  /// image. Parses and validates the whole image (strictly increasing
  /// member ASNs in A_RS, sorted per-prefix vectors) before committing,
  /// so a ParseError leaves the engine untouched. Every memoised and
  /// derived structure (merged policies, reciprocity bitset, precomputed
  /// link-count generation) is invalidated unconditionally on commit and
  /// rebuilds on first use; generation() bumps.
  void restore_state(ByteReader& reader);

 private:
  struct MemberData {
    // Distinct policies seen per prefix, sorted by prefix; consistency
    // tracked for the section 4.3 claim that policies rarely differ
    // across prefixes (so this stays a one-element vector in practice).
    std::vector<std::pair<IpPrefix, ExportPolicy>> per_prefix;
    bool passive = false;
    bool active = false;
    std::size_t observations = 0;
    // Memoised intersection of per_prefix (N_a); maintained incrementally
    // by add() where possible, rebuilt on demand otherwise.
    mutable ExportPolicy merged;
    mutable bool merged_valid = false;
  };

  /// The member's slot, created on first use (keeps member_ids_ sorted).
  MemberData& member_slot(Asn member);
  const MemberData* find_member(Asn member) const;
  const ExportPolicy& merged_policy(const MemberData& data) const;

  /// Incrementally maintained reciprocity state over the FULL A_RS
  /// universe (dense index = position in context_.rs_members, which
  /// never shifts as members are observed). Row i bit j of `allows` says
  /// participant i exports to participant j; `allowed_by` is the
  /// transpose; `observed` is the column mask of members with data.
  /// Built lazily on first query, then patched by add() row deltas.
  struct Derived {
    bool valid = false;
    std::size_t words = 0;  // per-row word count over |A_RS|
    std::vector<std::uint64_t> allows;
    std::vector<std::uint64_t> allowed_by;
    std::vector<std::uint64_t> observed;
    std::vector<std::uint64_t> scratch_row;  // add()'s delta staging
  };

  /// Materialise derived_ from scratch if it is not valid.
  void ensure_derived() const;
  /// Fill `row` with participant u's allow-row under `policy` (null =
  /// default open), diagonal clear.
  void compute_allow_row(std::size_t u, const ExportPolicy* policy,
                         std::uint64_t* row) const;
  /// Replace derived_ row u with the row for `policy`, patching the
  /// changed transpose bits (O(|A_RS|/64) + O(changed bits)).
  void apply_row_delta(std::size_t u, const ExportPolicy* policy) const;
  /// count_links minus the generation bookkeeping (shared with freeze).
  std::size_t count_links_derived(bool assume_open_for_unobserved) const;

  IxpContext context_;
  // Sorted member ASNs with payloads in parallel (dense-index layout).
  FlatAsnSet member_ids_;
  std::vector<MemberData> member_data_;
  std::size_t rejected_ = 0;
  std::uint64_t generation_ = 0;
  // Generation at which a link count was last computed; stats(precomputed)
  // asserts it still matches (the memo-staleness contract above).
  mutable std::optional<std::uint64_t> links_generation_;
  mutable Derived derived_;
};

}  // namespace mlp::core
