// The MLP link-inference engine: steps 4 and 5 of the paper's algorithm.
//
// Observations (RS communities per member per prefix, from passive and/or
// active measurement) accumulate per route server; each member's export
// policy is the intersection of its per-prefix policies (N_a), and a p2p
// link is inferred between members a and a' iff a in N_a' and a' in N_a
// (the reciprocity assumption validated in section 4.4).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>

#include "core/types.hpp"
#include "routeserver/export_policy.hpp"

namespace mlp::core {

using routeserver::ExportPolicy;

/// Inference statistics for one route server (table 2 row material).
struct EngineStats {
  std::size_t rs_members = 0;          // |A_RS|
  std::size_t observed_members = 0;    // members with reachability data
  std::size_t passive_members = 0;     // covered by passive data
  std::size_t active_members = 0;      // covered only by active queries
  std::size_t observations = 0;
  std::size_t inconsistent_members = 0;  // differing per-prefix policies
  std::size_t links = 0;
};

/// Field-wise sum, for aggregating per-IXP stats into pipeline totals.
EngineStats& operator+=(EngineStats& lhs, const EngineStats& rhs);

/// Per-route-server accumulation and link inference.
class MlpInferenceEngine {
 public:
  explicit MlpInferenceEngine(IxpContext context)
      : context_(std::move(context)) {}

  const IxpContext& context() const { return context_; }

  /// Record one observation. Observations whose setter is not in A_RS are
  /// ignored (counted as rejected): reachability without connectivity
  /// cannot form links.
  void add(const Observation& observation);

  /// Members with at least one observation.
  std::set<Asn> observed_members() const;

  /// N_a as an export policy: the per-prefix policies intersected
  /// (step 4). Nullopt if the member was never observed.
  std::optional<ExportPolicy> policy_of(Asn member) const;

  /// Step 5: infer p2p links among observed members by reciprocity.
  /// If `assume_open_for_unobserved` is set, members of A_RS without
  /// observations participate with the default-open policy (the ALL
  /// behaviour); the paper's conservative default is off.
  std::set<AsLink> infer_links(bool assume_open_for_unobserved = false) const;

  EngineStats stats() const;

  /// stats() with a link count the caller already computed via
  /// infer_links, skipping the second O(|A_RS|^2) inference pass.
  EngineStats stats(std::size_t precomputed_links) const;

  std::size_t rejected_observations() const { return rejected_; }

 private:
  struct MemberData {
    // Distinct policies seen per prefix; consistency tracked for the
    // section 4.3 claim that policies rarely differ across prefixes.
    std::map<IpPrefix, ExportPolicy> per_prefix;
    bool passive = false;
    bool active = false;
    std::size_t observations = 0;
  };

  IxpContext context_;
  std::map<Asn, MemberData> members_;
  std::size_t rejected_ = 0;
};

}  // namespace mlp::core
