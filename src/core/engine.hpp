// The MLP link-inference engine: steps 4 and 5 of the paper's algorithm.
//
// Observations (RS communities per member per prefix, from passive and/or
// active measurement) accumulate per route server; each member's export
// policy is the intersection of its per-prefix policies (N_a), and a p2p
// link is inferred between members a and a' iff a in N_a' and a' in N_a
// (the reciprocity assumption validated in section 4.4).
//
// Data-plane layout: members live in a sorted flat vector (dense-index
// order), each member's per-prefix policies in a small sorted vector
// (section 4.3: members almost never carry more than one distinct
// policy), and the reciprocity pass materialises each participant's
// allow-set as a bitmask row so the pairwise test is an AND over
// 64-member words instead of n^2 tree lookups.
#pragma once

#include <cstddef>
#include <set>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "routeserver/export_policy.hpp"
#include "util/annotations.hpp"

namespace mlp {
class ByteWriter;
class ByteReader;
}  // namespace mlp

namespace mlp::core {

using routeserver::ExportPolicy;

/// Inference statistics for one route server (table 2 row material).
struct EngineStats {
  std::size_t rs_members = 0;          // |A_RS|
  std::size_t observed_members = 0;    // members with reachability data
  std::size_t passive_members = 0;     // covered by passive data
  std::size_t active_members = 0;      // covered only by active queries
  std::size_t observations = 0;
  std::size_t inconsistent_members = 0;  // differing per-prefix policies
  std::size_t links = 0;
};

/// Field-wise sum, for aggregating per-IXP stats into pipeline totals.
EngineStats& operator+=(EngineStats& lhs, const EngineStats& rhs);

/// Per-route-server accumulation and link inference.
///
/// Not thread-safe: the accessors memoise the merged per-member policy,
/// so even const calls must not race add() or each other. The pipeline
/// confines each engine to one consumer task.
class MlpInferenceEngine {
 public:
  explicit MlpInferenceEngine(IxpContext context)
      : context_(std::move(context)) {}

  const IxpContext& context() const { return context_; }

  /// Record one observation. Observations whose setter is not in A_RS are
  /// ignored (counted as rejected): reachability without connectivity
  /// cannot form links.
  void add(const Observation& observation);

  /// Members with at least one observation, in ascending ASN order (the
  /// engine's own member index); the reference stays valid until the next
  /// add().
  const std::vector<Asn>& observed_members() const MLP_LIFETIMEBOUND;

  /// N_a as an export policy: the per-prefix policies intersected
  /// (step 4). Null if the member was never observed; the pointer stays
  /// valid until the next add().
  const ExportPolicy* policy_of(Asn member) const MLP_LIFETIMEBOUND;

  /// Step 5: infer p2p links among observed members by reciprocity.
  /// If `assume_open_for_unobserved` is set, members of A_RS without
  /// observations participate with the default-open policy (the ALL
  /// behaviour); the paper's conservative default is off.
  std::set<AsLink> infer_links(bool assume_open_for_unobserved = false) const;

  /// The size of infer_links' result without materialising it: a popcount
  /// over the reciprocity bitset (the stats() fast path).
  std::size_t count_links(bool assume_open_for_unobserved = false) const;

  EngineStats stats() const;

  /// stats() with a link count the caller already computed via
  /// infer_links, skipping the second O(|A_RS|^2/64) counting pass.
  EngineStats stats(std::size_t precomputed_links) const;

  std::size_t rejected_observations() const { return rejected_; }

  /// Checkpoint hook: persist the accumulated state -- the sorted member
  /// vector with each member's per-prefix policies, flags and counters,
  /// plus the rejected counter. The reciprocity bitsets are derived per
  /// infer_links/count_links call and are never serialized; a restored
  /// engine rebuilds them on demand. The IXP context is NOT serialized
  /// (it belongs to the session configuration, not the accumulated state).
  void serialize_state(ByteWriter& writer) const;

  /// Checkpoint hook: replace the accumulated state with a serialized
  /// image. Parses and validates the whole image (strictly increasing
  /// member ASNs, sorted per-prefix vectors) before committing, so a
  /// ParseError leaves the engine untouched. Memoised merged policies
  /// restore invalidated and rebuild on first use.
  void restore_state(ByteReader& reader);

 private:
  struct MemberData {
    // Distinct policies seen per prefix, sorted by prefix; consistency
    // tracked for the section 4.3 claim that policies rarely differ
    // across prefixes (so this stays a one-element vector in practice).
    std::vector<std::pair<IpPrefix, ExportPolicy>> per_prefix;
    bool passive = false;
    bool active = false;
    std::size_t observations = 0;
    // Memoised intersection of per_prefix (N_a); rebuilt on demand after
    // an add() invalidates it.
    mutable ExportPolicy merged;
    mutable bool merged_valid = false;
  };

  /// The member's slot, created on first use (keeps member_ids_ sorted).
  MemberData& member_slot(Asn member);
  const MemberData* find_member(Asn member) const;
  const ExportPolicy& merged_policy(const MemberData& data) const;

  /// Participants of the reciprocity pass (sorted) and their bitmask
  /// rows over dense participant indices: row i bit j says i allows j.
  struct ReciprocityMatrix {
    FlatAsnSet participants;
    std::size_t words = 0;                // per-row word count
    std::vector<std::uint64_t> allows;    // row-major, participants x words
    std::vector<std::uint64_t> allowed_by;  // the transpose
  };
  ReciprocityMatrix build_matrix(bool assume_open_for_unobserved) const;

  IxpContext context_;
  // Sorted member ASNs with payloads in parallel (dense-index layout).
  FlatAsnSet member_ids_;
  std::vector<MemberData> member_data_;
  std::size_t rejected_ = 0;
};

}  // namespace mlp::core
