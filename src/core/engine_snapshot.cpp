#include "core/engine_snapshot.hpp"

#include <bit>

namespace mlp::core {

bool EngineSnapshot::has_link(Asn a, Asn b) const {
  const std::size_t i = participants_.index_of(a);
  const std::size_t j = participants_.index_of(b);
  if (i == FlatAsnSet::npos || j == FlatAsnSet::npos || i == j) return false;
  if (!participates(i) || !participates(j)) return false;
  return (reciprocal_row(i)[j / 64] >> (j % 64) & std::uint64_t{1}) != 0;
}

std::vector<Asn> EngineSnapshot::links_of(Asn member) const {
  std::vector<Asn> partners;
  const std::size_t i = participants_.index_of(member);
  if (i == FlatAsnSet::npos || !participates(i)) return partners;
  const std::uint64_t* row = reciprocal_row(i);
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t bits = row[w];
    if (!assume_open_) bits &= observed_mask_[w];
    while (bits != 0) {
      const std::size_t j =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      partners.push_back(participants_.values()[j]);
      bits &= bits - 1;
    }
  }
  return partners;
}

std::set<AsLink> EngineSnapshot::links() const {
  std::set<AsLink> out;
  const std::size_t n = participants_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!participates(i)) continue;
    const std::uint64_t* row = reciprocal_row(i);
    // Pairs above the diagonal in ascending order: the end-hinted insert
    // keeps the set build linear in the link count.
    for (std::size_t w = i / 64; w < words_; ++w) {
      std::uint64_t bits = row[w];
      if (!assume_open_) bits &= observed_mask_[w];
      if (w == i / 64) bits &= ~((std::uint64_t{2} << (i % 64)) - 1);
      while (bits != 0) {
        const std::size_t j =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        out.insert(out.end(), AsLink(participants_.values()[i],
                                     participants_.values()[j]));
        bits &= bits - 1;
      }
    }
  }
  return out;
}

}  // namespace mlp::core
