#include "stream/reconnect.hpp"

#include <thread>
#include <utility>

#include "stream/source.hpp"
#include "util/errors.hpp"

namespace mlp::stream {

ReconnectingSource::ReconnectingSource(Dial dial, ReconnectPolicy policy,
                                       Sleep sleep)
    : dial_(std::move(dial)), policy_(policy), sleep_(std::move(sleep)) {
  if (!dial_) throw InvalidArgument("ReconnectingSource: null dial");
  if (policy_.max_attempts == 0) policy_.max_attempts = 1;
  if (!sleep_)
    sleep_ = [](std::chrono::milliseconds d) {
      std::this_thread::sleep_for(d);
    };
}

bool ReconnectingSource::connect_with_backoff(bool delay_first) {
  std::chrono::milliseconds backoff = policy_.initial_backoff;
  if (delay_first) {
    // Redialing after a barren connection: the dial itself "works", so
    // the per-round backoff never engages -- throttle here instead,
    // escalating with the barren streak.
    for (std::size_t i = 1; i < barren_streak_; ++i)
      backoff = std::min(backoff * 2, policy_.max_backoff);
    sleep_(backoff);
    backoff = std::min(backoff * 2, policy_.max_backoff);
  }
  for (std::size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    // A graceful shutdown must not be held up by a redial loop: give up
    // immediately so read() reports a normal end of stream.
    if (interrupt_requested()) {
      last_error_ = "interrupted";
      return false;
    }
    if (attempt > 0) {
      sleep_(backoff);
      backoff = std::min(backoff * 2, policy_.max_backoff);
    }
    ++dial_attempts_;
    try {
      current_ = dial_();
      if (current_) return true;
      last_error_ = "dial returned no source";
    } catch (const InvalidArgument&) {
      // A precondition failure (bad address, bad fd) is permanent:
      // retrying with backoff would only delay the inevitable report.
      throw;
    } catch (const std::exception& e) {
      // Transient dial failure: remember it (exhausted() callers report
      // it) and fall through to the next backed-off attempt.
      last_error_ = e.what();
    }
  }
  return false;
}

std::size_t ReconnectingSource::read(std::span<std::uint8_t> out) {
  for (;;) {
    if (exhausted_) return 0;
    if (!current_) {
      if (barren_streak_ >= policy_.max_attempts) {
        // max_attempts connections in a row died without a byte: the
        // peer is up but broken (crash loop behind a live listen
        // queue). Treat like an exhausted dial budget.
        if (last_error_.empty())
          last_error_ = "peer keeps closing before serving any bytes";
        exhausted_ = true;
        return 0;
      }
      const bool redial = ever_connected_;
      if (!connect_with_backoff(/*delay_first=*/barren_streak_ > 0)) {
        exhausted_ = true;
        return 0;
      }
      ever_connected_ = true;
      current_served_ = false;
      if (redial) {
        ++reconnects_;
        if (on_reconnect_) on_reconnect_();
      }
    }
    std::size_t n = 0;
    bool failed = false;
    try {
      n = current_->read(out);
    } catch (const std::exception& e) {
      failed = true;  // hard read error: treated like a dropped connection
      last_error_ = e.what();
    }
    if (!failed && n > 0) {
      current_served_ = true;
      barren_streak_ = 0;
      return n;
    }
    ++disconnects_;
    if (!current_served_) ++barren_streak_;
    current_.reset();
    if (!failed && !policy_.reconnect_on_clean_eof) return 0;
  }
}

}  // namespace mlp::stream
