#include "stream/decoder.hpp"

#include "mrt/record_codec.hpp"
#include "util/bytes.hpp"
#include "util/errors.hpp"

namespace mlp::stream {

const UpdateRecordView* UpdateDecoder::decode(
    std::span<const std::uint8_t> record) {
  ByteReader reader(record);
  const std::uint32_t timestamp = reader.u32();
  const std::uint16_t type = reader.u16();
  const std::uint16_t subtype = reader.u16();
  const std::uint32_t length = reader.u32();
  ByteReader body = reader.sub(length);
  if (!reader.done())
    throw ParseError("update record: trailing bytes after framed body");

  if (type != static_cast<std::uint16_t>(mrt::MrtType::Bgp4mp)) {
    ++skipped_;  // TABLE_DUMP_V2 or unknown: stepped over, undecoded
    return nullptr;
  }
  const bool as4 =
      subtype == static_cast<std::uint16_t>(mrt::Bgp4mpSubtype::MessageAs4);
  if (!as4 &&
      subtype != static_cast<std::uint16_t>(mrt::Bgp4mpSubtype::Message)) {
    ++skipped_;
    return nullptr;
  }
  const auto header = mrt::detail::decode_bgp4mp_header(body, as4);
  bgp::decode_update_into(body.bytes(body.remaining()), as4, scratch_);
  view_.timestamp = timestamp;
  view_.peer_asn = header.peer_asn;
  view_.peer_ip = header.peer_ip;
  view_.update = &scratch_;
  return &view_;
}

}  // namespace mlp::stream
