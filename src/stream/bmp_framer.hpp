// BMP (RFC 7854) transport in front of the MRT update path.
//
// Route collectors increasingly export live feeds over the BGP Monitoring
// Protocol instead of raw MRT byte streams: each monitored BGP UPDATE
// arrives wrapped in a Route Monitoring message (common header + per-peer
// header + the verbatim BGP PDU). BmpFramer buffers arbitrary transport
// chunks, frames complete BMP messages, and surfaces the ones that carry
// session semantics as events:
//
//   Update   -- a Route Monitoring UPDATE, synthesized into an MRT
//               BGP4MP_MESSAGE[_AS4] record so the existing
//               MrtFramer/UpdateDecoder/PassiveExtractor chain consumes a
//               BMP feed unchanged (the two transports cannot diverge
//               semantically). IPv6 peers synthesize AFI-2 records.
//   PeerUp   -- RFC 7854 type 3: the monitored router (re)established a
//               BGP session with the peer. Consumers tear down any state
//               left from a previous session that died without a PeerDown.
//   PeerDown -- RFC 7854 type 2, with the reason code when present: the
//               peer's session ended; its pending announcements must not
//               linger.
//
// Every event carries the fully parsed per-peer header. Messages without
// session meaning to this pipeline (Initiation, Stats Reports,
// Termination, Route Mirroring) and Route Monitoring PDUs that are not
// UPDATEs are framed, counted in skipped() and stepped over.
//
// Memory contract mirrors MrtFramer: the buffer never holds more than one
// partial message after a drain, and the synthesized record scratch is
// reused across next() calls, so peak footprint is O(chunk + one message).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/annotations.hpp"

namespace mlp::stream {

/// The RFC 7854 section 4.2 per-peer header, fully parsed.
struct BmpPeerHeader {
  std::uint8_t peer_type = 0;
  std::uint8_t flags = 0;
  bool ipv6 = false;            // V flag: 16-byte address is IPv6
  bool legacy_as_path = false;  // A flag: PDU carries 2-octet AS_PATH
  std::uint64_t distinguisher = 0;
  std::uint8_t address[16] = {};  // verbatim 16-byte peer address field
  std::uint32_t peer_ip = 0;      // low 4 bytes when !ipv6; 0 otherwise
  std::uint32_t asn = 0;
  std::uint32_t bgp_id = 0;
  std::uint32_t timestamp = 0;     // seconds
  std::uint32_t timestamp_us = 0;  // microseconds
};

/// One framed BMP message with session meaning.
struct BmpEvent {
  enum class Kind : std::uint8_t { Update, PeerUp, PeerDown };
  Kind kind = Kind::Update;
  BmpPeerHeader peer;
  /// Update only: the synthesized MRT record (header + body). Borrows the
  /// framer's scratch buffer -- invalidated by the next feed()/next()/
  /// resync() call. Empty for PeerUp/PeerDown.
  std::span<const std::uint8_t> record;
  /// PeerDown only: the RFC 7854 reason code, 0 when the body is absent
  /// or truncated (parsed defensively -- a missing reason is not an
  /// error).
  std::uint8_t peer_down_reason = 0;
};

class BmpFramer {
 public:
  struct Config {
    /// Upper bound on one BMP message. A corrupt length field must not
    /// make the framer buffer forever; RFC 7854 messages carry one BGP
    /// PDU (<= 4 KiB) plus fixed headers, so even 64 KiB is generous.
    std::uint32_t max_message_bytes = 1u << 20;
  };

  BmpFramer() = default;
  explicit BmpFramer(Config config) : config_(config) {}

  /// Append one chunk of transport bytes.
  void feed(std::span<const std::uint8_t> chunk);

  /// The next session event (Update / PeerUp / PeerDown), or nullopt when
  /// the buffered bytes end mid-message and every complete message has
  /// been served. An Update event's record span borrows the framer's
  /// scratch (lifetimebound). Throws ParseError on a structurally invalid
  /// message (bad version, absurd length, truncated Route Monitoring
  /// payload), naming the message's byte offset in the stream.
  [[nodiscard]] std::optional<BmpEvent> next() MLP_LIFETIMEBOUND;

  /// Tolerant recovery: distrust the message at the front, drop one byte
  /// past its start and scan for the next plausible BMP header (version
  /// 3, known type, sane length). The scan continues across feeds.
  void resync();

  /// Transport-level resume (a reconnect): drop the buffered partial
  /// message and any pending resync scan, keeping the counters. Returns
  /// the number of bytes dropped.
  std::size_t reset();

  /// Transport bytes accepted so far.
  std::uint64_t bytes_fed() const { return bytes_fed_; }

  /// Complete BMP messages framed so far (all types).
  std::uint64_t messages() const { return messages_; }

  /// Messages stepped over without yielding an event: Initiation, Stats,
  /// Termination, Mirroring, and non-UPDATE PDUs.
  std::uint64_t skipped() const { return skipped_; }

  /// PeerUp / PeerDown events surfaced so far.
  std::uint64_t peer_ups() const { return peer_ups_; }
  std::uint64_t peer_downs() const { return peer_downs_; }

  /// Bytes currently buffered (the partial tail message, between drains).
  std::size_t buffered() const { return buf_.size() - pos_; }

  /// Absolute stream offset of the message most recently framed.
  std::uint64_t last_message_offset() const { return last_message_offset_; }

  /// True while a tolerant resync() scan is still hunting its anchor.
  bool resyncing() const { return resyncing_; }

  /// Checkpoint hook: resume at absolute transport offset `bytes_fed`
  /// (the acknowledged offset -- every byte before it framed into a
  /// complete message, or was stepped over by a finished resync scan).
  /// Drops any buffered bytes; the transport redelivers the tail.
  void restore_state(std::uint64_t bytes_fed, std::uint64_t messages,
                     std::uint64_t skipped, std::uint64_t peer_ups,
                     std::uint64_t peer_downs,
                     std::uint64_t last_message_offset, bool resyncing);

 private:
  void compact();

  Config config_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;              // start of the unconsumed region
  std::size_t last_message_pos_ = 0; // buffer pos of the last framed message
  std::uint64_t base_offset_ = 0;    // stream offset of buf_[0]
  std::uint64_t bytes_fed_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t peer_ups_ = 0;
  std::uint64_t peer_downs_ = 0;
  std::uint64_t last_message_offset_ = 0;
  bool resyncing_ = false;
  std::vector<std::uint8_t> record_;  // synthesized MRT record scratch
};

/// Encode one BMP Route Monitoring message wrapping `bgp_pdu` (a complete
/// BGP message, marker included) as seen from `peer_asn`/`peer_ip` at
/// `timestamp`. `legacy_as_path` sets the RFC 7854 A flag: the PDU's
/// AS_PATH uses 2-octet ASNs (unwrapped as subtype Message instead of
/// MessageAs4). Test/bench/replay helper -- the encode mirror of what
/// BmpFramer::next() unwraps.
std::vector<std::uint8_t> bmp_route_monitoring(
    std::uint32_t timestamp, std::uint32_t peer_asn, std::uint32_t peer_ip,
    std::span<const std::uint8_t> bgp_pdu, bool legacy_as_path = false);

/// IPv6-peer variant: `peer_addr` is the 16-byte address; sets the V flag.
std::vector<std::uint8_t> bmp_route_monitoring_v6(
    std::uint32_t timestamp, std::uint32_t peer_asn,
    std::span<const std::uint8_t> peer_addr,
    std::span<const std::uint8_t> bgp_pdu, bool legacy_as_path = false);

/// Encode a Peer Up (type 3) for `peer_asn`/`peer_ip`: per-peer header
/// plus the RFC 7854 body (local address/ports and two minimal OPEN
/// PDUs, which this pipeline does not parse).
std::vector<std::uint8_t> bmp_peer_up(std::uint32_t timestamp,
                                      std::uint32_t peer_asn,
                                      std::uint32_t peer_ip);

/// Encode a Peer Down (type 2) with `reason` (default 1: local system
/// closed, notification follows omitted -- the body past the reason code
/// is not parsed).
std::vector<std::uint8_t> bmp_peer_down(std::uint32_t timestamp,
                                        std::uint32_t peer_asn,
                                        std::uint32_t peer_ip,
                                        std::uint8_t reason = 1);

/// Encode a minimal Initiation (type 4) / Termination (type 5) message;
/// real collectors bracket a session with these, and the framer must step
/// over them.
std::vector<std::uint8_t> bmp_initiation();
std::vector<std::uint8_t> bmp_termination();

/// Re-wrap a BGP4MP update archive as a BMP session byte stream:
/// Initiation, a Peer Up per distinct peer on first sight, one Route
/// Monitoring message per update record (peer and timestamp carried
/// over), Termination. Non-update records are dropped. The replay-side
/// bridge used by tests, benchmarks and `mlp_infer serve --bmp`.
std::vector<std::uint8_t> bmp_wrap_updates(
    std::span<const std::uint8_t> mrt_updates);

}  // namespace mlp::stream
