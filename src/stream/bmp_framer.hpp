// BMP (RFC 7854) transport in front of the MRT update path.
//
// Route collectors increasingly export live feeds over the BGP Monitoring
// Protocol instead of raw MRT byte streams: each monitored BGP UPDATE
// arrives wrapped in a Route Monitoring message (common header + per-peer
// header + the verbatim BGP PDU). BmpFramer buffers arbitrary transport
// chunks, frames complete BMP messages, and unwraps each Route Monitoring
// message into a synthesized MRT BGP4MP_MESSAGE_AS4 record -- so the
// existing MrtFramer/UpdateDecoder/PassiveExtractor chain consumes a BMP
// feed unchanged, and the two transports cannot diverge semantically.
//
// Non-Route-Monitoring messages (Initiation, Peer Up/Down, Stats Reports,
// Termination) are framed, counted in skipped() and stepped over, as are
// Route Monitoring messages for IPv6 peers (this reproduction is
// IPv4-only) and PDUs that are not UPDATEs.
//
// Memory contract mirrors MrtFramer: the buffer never holds more than one
// partial message after a drain, and the synthesized record scratch is
// reused across next() calls, so peak footprint is O(chunk + one message).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mlp::stream {

class BmpFramer {
 public:
  struct Config {
    /// Upper bound on one BMP message. A corrupt length field must not
    /// make the framer buffer forever; RFC 7854 messages carry one BGP
    /// PDU (<= 4 KiB) plus fixed headers, so even 64 KiB is generous.
    std::uint32_t max_message_bytes = 1u << 20;
  };

  BmpFramer() = default;
  explicit BmpFramer(Config config) : config_(config) {}

  /// Append one chunk of transport bytes.
  void feed(std::span<const std::uint8_t> chunk);

  /// The next Route Monitoring update, synthesized as a complete MRT
  /// BGP4MP_MESSAGE_AS4 record (header + body), or nullopt when the
  /// buffered bytes end mid-message and every complete message has been
  /// served. The span borrows an internal scratch buffer: it is
  /// invalidated by the next call to feed(), next() or resync(). Throws
  /// ParseError on a structurally invalid message (bad version, absurd
  /// length, truncated Route Monitoring payload), naming the message's
  /// byte offset in the stream.
  std::optional<std::span<const std::uint8_t>> next();

  /// Tolerant recovery: distrust the message at the front, drop one byte
  /// past its start and scan for the next plausible BMP header (version
  /// 3, known type, sane length). The scan continues across feeds.
  void resync();

  /// Transport-level resume (a reconnect): drop the buffered partial
  /// message and any pending resync scan, keeping the counters. Returns
  /// the number of bytes dropped.
  std::size_t reset();

  /// Transport bytes accepted so far.
  std::uint64_t bytes_fed() const { return bytes_fed_; }

  /// Complete BMP messages framed so far (all types).
  std::uint64_t messages() const { return messages_; }

  /// Messages stepped over without yielding a record: non-Route-
  /// Monitoring types, IPv6 peers, non-UPDATE PDUs.
  std::uint64_t skipped() const { return skipped_; }

  /// Bytes currently buffered (the partial tail message, between drains).
  std::size_t buffered() const { return buf_.size() - pos_; }

  /// Absolute stream offset of the message most recently framed.
  std::uint64_t last_message_offset() const { return last_message_offset_; }

 private:
  void compact();

  Config config_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;              // start of the unconsumed region
  std::size_t last_message_pos_ = 0; // buffer pos of the last framed message
  std::uint64_t base_offset_ = 0;    // stream offset of buf_[0]
  std::uint64_t bytes_fed_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t last_message_offset_ = 0;
  bool resyncing_ = false;
  std::vector<std::uint8_t> record_;  // synthesized MRT record scratch
};

/// Encode one BMP Route Monitoring message wrapping `bgp_pdu` (a complete
/// BGP message, marker included) as seen from `peer_asn`/`peer_ip` at
/// `timestamp`. `legacy_as_path` sets the RFC 7854 A flag: the PDU's
/// AS_PATH uses 2-octet ASNs (unwrapped as subtype Message instead of
/// MessageAs4). Test/bench/replay helper -- the encode mirror of what
/// BmpFramer::next() unwraps.
std::vector<std::uint8_t> bmp_route_monitoring(
    std::uint32_t timestamp, std::uint32_t peer_asn, std::uint32_t peer_ip,
    std::span<const std::uint8_t> bgp_pdu, bool legacy_as_path = false);

/// Encode a minimal Initiation (type 4) / Termination (type 5) message;
/// real collectors bracket a session with these, and the framer must step
/// over them.
std::vector<std::uint8_t> bmp_initiation();
std::vector<std::uint8_t> bmp_termination();

/// Re-wrap a BGP4MP update archive as a BMP session byte stream:
/// Initiation, one Route Monitoring message per update record (peer and
/// timestamp carried over), Termination. Non-update records are dropped.
/// The replay-side bridge used by tests, benchmarks and `mlp_infer serve
/// --bmp`.
std::vector<std::uint8_t> bmp_wrap_updates(
    std::span<const std::uint8_t> mrt_updates);

}  // namespace mlp::stream
