#include "stream/framer.hpp"

#include <string>

#include "mrt/record_codec.hpp"
#include "util/errors.hpp"

namespace mlp::stream {

using mrt::detail::kMrtHeaderBytes;

void MrtFramer::compact() {
  if (pos_ == 0) return;
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
  base_offset_ += pos_;
  pos_ = 0;
  last_record_pos_ = 0;
}

void MrtFramer::feed(std::span<const std::uint8_t> chunk) {
  // Compacting before the append keeps the buffer at O(partial record +
  // chunk): the drained front never survives into the next cycle.
  compact();
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
  bytes_fed_ += chunk.size();
}

std::optional<std::span<const std::uint8_t>> MrtFramer::next() {
  const std::span<const std::uint8_t> all(buf_);
  if (resyncing_) {
    // Scan for the next plausible record header; the anchor check only
    // needs the 12 header bytes, so a partial candidate simply waits for
    // the next feed.
    while (buf_.size() - pos_ >= kMrtHeaderBytes) {
      const auto peek = mrt::detail::peek_header(all.subspan(pos_));
      if (mrt::detail::known_record_kind(peek->type, peek->subtype) &&
          peek->length <= config_.max_record_bytes) {
        resyncing_ = false;
        break;
      }
      ++pos_;
    }
    if (resyncing_) return std::nullopt;
  }
  const auto peek = mrt::detail::peek_header(all.subspan(pos_));
  if (!peek) return std::nullopt;
  last_record_pos_ = pos_;
  last_record_offset_ = base_offset_ + pos_;
  if (peek->length > config_.max_record_bytes)
    throw ParseError("MrtFramer: record claims " +
                     std::to_string(peek->length) +
                     " body bytes (cap " +
                     std::to_string(config_.max_record_bytes) +
                     ") at stream offset " +
                     std::to_string(last_record_offset_));
  const std::size_t total = kMrtHeaderBytes + peek->length;
  if (buf_.size() - pos_ < total) return std::nullopt;
  const auto record = all.subspan(pos_, total);
  pos_ += total;
  ++records_;
  return record;
}

std::size_t MrtFramer::reset() {
  const std::size_t dropped = buf_.size() - pos_;
  buf_.clear();
  pos_ = 0;
  last_record_pos_ = 0;
  // Offsets keep naming positions in the total fed stream: the next byte
  // fed is byte bytes_fed_ of the (logical) stream.
  base_offset_ = bytes_fed_;
  resyncing_ = false;
  return dropped;
}

void MrtFramer::resync() {
  // Rewind to one byte past the suspect record's start: its own header
  // (length field included) is what we no longer trust.
  pos_ = last_record_pos_ + 1;
  if (pos_ > buf_.size()) pos_ = buf_.size();
  resyncing_ = true;
}

void MrtFramer::restore_state(std::uint64_t bytes_fed, std::uint64_t records,
                              std::uint64_t last_record_offset,
                              bool resyncing) {
  buf_.clear();
  pos_ = 0;
  last_record_pos_ = 0;
  // Same convention as reset(): the next byte fed is byte bytes_fed_ of
  // the (logical) stream, which the caller rejoins at the acknowledged
  // offset.
  base_offset_ = bytes_fed;
  bytes_fed_ = bytes_fed;
  records_ = records;
  last_record_offset_ = last_record_offset;
  resyncing_ = resyncing;
}

}  // namespace mlp::stream
