// Injectable time source for the live front end.
//
// Wall-clock behaviour (idle-feed parking, the stall watchdog, chaos
// stall faults, reconnect backoff pacing) is untestable against the real
// clock: a test either sleeps for real or races the scheduler. Clock is
// the seam -- production code holds a Clock and asks it for milliseconds;
// tests substitute a VirtualClock they advance by hand, so a "feed went
// silent for 30 seconds" scenario replays in microseconds and
// byte-identically on every run.
//
//   SystemClock  -- monotonic wall time (std::chrono::steady_clock) and a
//                   real sleep; the default everywhere.
//   VirtualClock -- a manually advanced counter. sleep_ms() advances the
//                   clock itself instead of blocking, so a single-threaded
//                   soak replay runs at full speed while downstream
//                   watchdogs still observe the elapsed virtual time.
//
// Both are thread-safe: now_ms()/sleep_ms()/advance_ms() may be called
// from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace mlp::stream {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Milliseconds on this clock's monotone timeline. Only differences are
  /// meaningful; the epoch is unspecified.
  virtual std::uint64_t now_ms() = 0;

  /// Let `ms` milliseconds of this clock's time pass.
  virtual void sleep_ms(std::uint64_t ms) = 0;
};

/// Monotonic wall time; sleep_ms really sleeps.
class SystemClock final : public Clock {
 public:
  std::uint64_t now_ms() override;
  void sleep_ms(std::uint64_t ms) override;
};

/// Deterministic test/replay clock: time moves only when told to.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(std::uint64_t start_ms = 0) : now_(start_ms) {}

  std::uint64_t now_ms() override {
    return now_.load(std::memory_order_relaxed);
  }

  /// A virtual sleeper IS the advancer: the time it asks to wait for
  /// simply elapses, unblocking anything watching now_ms().
  void sleep_ms(std::uint64_t ms) override { advance_ms(ms); }

  void advance_ms(std::uint64_t ms) {
    now_.fetch_add(ms, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_;
};

/// The process-wide SystemClock instance components default to when no
/// clock is injected.
std::shared_ptr<Clock> system_clock();

}  // namespace mlp::stream
