// Byte-stream transports feeding the live update pipeline.
//
// StreamSource is the minimal pull interface the live session drains:
// read() fills a caller buffer and returns 0 at end of stream. The
// concrete transports cover the test matrix and the CLI:
//
//   MemorySource     -- an owned buffer replayed in bounded chunks
//                       (chunk-boundary determinism tests)
//   FdSource         -- any readable file descriptor: a pipe, one end of
//                       a socketpair, an accepted TCP connection, stdin
//
// The fd helpers build connected read/write pairs inside the process so
// tests exercise real kernel transports (pipe, AF_UNIX socketpair, TCP
// over loopback) without external infrastructure.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mlp::stream {

/// Graceful-shutdown hook for the blocking transports. Install a flag
/// (typically a static std::atomic<bool> set from a SIGINT/SIGTERM
/// handler registered WITHOUT SA_RESTART, so blocked syscalls wake with
/// EINTR): while it reads true, FdSource::read reports end of stream
/// instead of retrying the EINTR, tcp_accept returns -1, and
/// ReconnectingSource stops redialing -- every blocked reader unwinds
/// as a normal end of stream, letting the caller flush/summarize
/// instead of dying mid-operation. Pass nullptr to uninstall. The flag
/// must outlive its installation.
void set_interrupt_flag(const std::atomic<bool>* flag);
/// True when an installed interrupt flag currently reads true.
bool interrupt_requested();

class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Read up to out.size() bytes into `out`; returns the count read, or 0
  /// at end of stream. Blocks until at least one byte is available.
  virtual std::size_t read(std::span<std::uint8_t> out) = 0;
};

/// Replays an owned buffer, at most `max_chunk` bytes per read -- the
/// deterministic stand-in for a network feed.
class MemorySource final : public StreamSource {
 public:
  explicit MemorySource(std::vector<std::uint8_t> data,
                        std::size_t max_chunk = 65536);

  std::size_t read(std::span<std::uint8_t> out) override;

 private:
  std::vector<std::uint8_t> data_;
  std::size_t max_chunk_;
  std::size_t pos_ = 0;
};

/// Reads a POSIX file descriptor (pipe, socket, stdin). Retries EINTR;
/// throws mlp::ParseError on hard read errors.
class FdSource final : public StreamSource {
 public:
  /// Wrap `fd`; closes it on destruction when `owned`.
  explicit FdSource(int fd, bool owned = true);
  ~FdSource() override;

  FdSource(const FdSource&) = delete;
  FdSource& operator=(const FdSource&) = delete;

  std::size_t read(std::span<std::uint8_t> out) override;

  int fd() const { return fd_; }

 private:
  int fd_;
  bool owned_;
};

/// A connected unidirectional byte channel: bytes written to write_fd
/// arrive at read_fd; closing write_fd ends the stream.
struct FdPair {
  int read_fd = -1;
  int write_fd = -1;
};

/// pipe(2).
FdPair open_pipe();

/// socketpair(2), AF_UNIX stream.
FdPair open_socketpair();

/// A real TCP connection over 127.0.0.1: listen on an ephemeral port,
/// connect, accept, close the listener. read_fd is the accepted side.
FdPair open_tcp_loopback();

/// A bound, listening TCP socket on 127.0.0.1. Unlike tcp_listen_accept
/// it survives across accepts, so a flaky-server test (or a replay
/// server) can accept, drop and re-accept on one stable port.
struct TcpListener {
  int fd = -1;
  std::uint16_t port = 0;  // resolved port (ephemeral when 0 was asked)
};

/// Bind + listen on 127.0.0.1:`port` (0 picks an ephemeral port).
TcpListener open_tcp_listener(std::uint16_t port);

/// Accept one connection on a listener fd (blocking). Returns -1 when
/// an installed interrupt flag cut the wait short (see
/// set_interrupt_flag).
int tcp_accept(int listener_fd);

/// Listen on 127.0.0.1:`port` and accept one connection (blocking);
/// returns the connected descriptor. The CLI's socket-feed mode.
int tcp_listen_accept(std::uint16_t port);

/// Connect to `host`:`port` (IPv4 dotted quad); returns the connected
/// descriptor. The CLI's dial-out feed mode and the reconnect wrapper's
/// usual dial target.
int tcp_connect(const std::string& host, std::uint16_t port);

/// Write all of `data` to `fd` (test/CLI helper; retries short writes).
void write_all(int fd, std::span<const std::uint8_t> data);

/// close(2) wrapper so tests need not include platform headers.
void close_fd(int fd);

}  // namespace mlp::stream
