// Reconnect/resume wrapper for long-lived live feeds.
//
// A collector restart drops the TCP session; a long-running `mlp_infer
// follow` should redial and carry on instead of dying with the socket.
// ReconnectingSource wraps a dial function (anything producing a
// StreamSource) and presents one continuous byte stream: when the current
// connection ends -- a clean end-of-stream or a hard read error -- it
// redials with bounded exponential backoff and keeps reading.
//
// Resume protocol: the wrapper cannot splice byte streams (the new
// connection restarts at a record boundary, the old one may have died
// mid-record), so it notifies the consumer through on_reconnect BEFORE
// serving bytes from a new connection. The live-session lane resets its
// framers there (dropping at most one partial record) and carries its
// counters over -- the clean/dirty-disconnect distinction is exactly
// whether that reset found partial bytes to drop.
//
// The backoff sleep is injectable so tests can pin the exact delay
// sequence without waiting it out.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "stream/source.hpp"

namespace mlp::stream {

struct ReconnectPolicy {
  /// Consecutive failed dial attempts before the stream is declared over
  /// (read() then returns 0). A successful dial resets the budget.
  std::size_t max_attempts = 8;
  /// Delay before the 2nd, 3rd, ... attempt of one dial round; doubles
  /// per failure (bounded by max_backoff). The first attempt is
  /// immediate.
  std::chrono::milliseconds initial_backoff{100};
  std::chrono::milliseconds max_backoff{5000};
  /// Redial when the peer closes cleanly (a collector restart reads as
  /// EOF). Off means a clean EOF ends the stream, like a plain source.
  bool reconnect_on_clean_eof = true;
};

class ReconnectingSource final : public StreamSource {
 public:
  using Dial = std::function<std::unique_ptr<StreamSource>()>;
  using Sleep = std::function<void(std::chrono::milliseconds)>;

  /// `dial` opens one connection (throwing on failure). `sleep` defaults
  /// to std::this_thread::sleep_for.
  explicit ReconnectingSource(Dial dial,
                              ReconnectPolicy policy = ReconnectPolicy{},
                              Sleep sleep = Sleep{});

  /// Invoked after every successful REdial (not the first connect),
  /// before any byte of the new connection is served. The consumer
  /// resets its framing state here.
  void set_on_reconnect(std::function<void()> callback) {
    on_reconnect_ = std::move(callback);
  }

  /// One continuous stream across connections; returns 0 only when the
  /// stream is over (clean EOF without reconnect_on_clean_eof, or the
  /// dial budget is exhausted -- see exhausted()). A dial round that
  /// follows a barren connection (one that ended without serving a
  /// single byte) starts with a backoff sleep, and max_attempts barren
  /// connections in a row exhaust the stream -- a crash-looping peer
  /// whose accept queue keeps completing handshakes cannot spin this
  /// loop hot or keep it alive forever.
  std::size_t read(std::span<std::uint8_t> out) override;

  /// Connections that ended (EOF or read error), barren ones included.
  std::uint64_t disconnects() const { return disconnects_; }

  /// Successful redials after a disconnect.
  std::uint64_t reconnects() const { return reconnects_; }

  /// Total dial attempts, failures included.
  std::uint64_t dial_attempts() const { return dial_attempts_; }

  /// True when read() returned 0 because max_attempts dials in a row
  /// failed (as opposed to a clean end of stream).
  bool exhausted() const { return exhausted_; }

  /// The last transient dial failure's message (empty when every dial
  /// succeeded). Report it alongside exhausted(): an end of stream that
  /// spent the dial budget is only "clean" if the peer really finished.
  /// A permanent failure (InvalidArgument from the dial) is not
  /// recorded here -- it propagates out of read() immediately.
  const std::string& last_error() const { return last_error_; }

 private:
  /// Dial with backoff; false once the attempt budget is spent. With
  /// `delay_first`, the round opens with a sleep scaled by the barren
  /// streak instead of an immediate attempt.
  bool connect_with_backoff(bool delay_first);

  Dial dial_;
  ReconnectPolicy policy_;
  Sleep sleep_;
  std::function<void()> on_reconnect_;
  std::unique_ptr<StreamSource> current_;
  std::string last_error_;
  bool ever_connected_ = false;
  bool exhausted_ = false;
  bool current_served_ = false;      // current connection delivered bytes
  std::size_t barren_streak_ = 0;    // consecutive zero-byte connections
  std::uint64_t disconnects_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t dial_attempts_ = 0;
};

}  // namespace mlp::stream
