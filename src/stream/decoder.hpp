// Decode one framed MRT record at a time with reusable scratch.
//
// The live path frames records out of a byte stream (MrtFramer) and
// decodes each span as it completes -- the incremental analogue of
// mrt::MrtCursor's BGP4MP branch, sharing the same record_codec decode
// helpers so the two paths cannot diverge. Like the cursor, a warm
// decoder re-decodes into kept-capacity buffers, so steady-state framing
// plus decoding is allocation-free.
#pragma once

#include <cstdint>
#include <span>

#include "bgp/wire.hpp"
#include "util/annotations.hpp"

namespace mlp::stream {

/// Borrowed view of one decoded BGP4MP update; valid until the next
/// decode() call.
struct UpdateRecordView {
  std::uint32_t timestamp = 0;
  std::uint32_t peer_asn = 0;
  std::uint32_t peer_ip = 0;
  const bgp::UpdateMessage* update = nullptr;
};

class UpdateDecoder {
 public:
  /// Decode one complete MRT record (header + body, as framed). Returns
  /// a view when the record is a BGP4MP update message; nullptr for
  /// records an update consumer steps over (TABLE_DUMP_V2, unknown
  /// types), which are counted in skipped(). Throws ParseError on a
  /// structurally invalid update record.
  [[nodiscard]] const UpdateRecordView* decode(
      std::span<const std::uint8_t> record) MLP_LIFETIMEBOUND;

  /// Records stepped over without decoding.
  std::size_t skipped() const { return skipped_; }

  /// Checkpoint hook: carry the skip counter over a resume (the scratch
  /// buffers are per-decode transients with nothing to restore).
  void restore_state(std::size_t skipped) { skipped_ = skipped; }

 private:
  bgp::UpdateMessage scratch_;
  UpdateRecordView view_;
  std::size_t skipped_ = 0;
};

}  // namespace mlp::stream
