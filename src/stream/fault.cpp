#include "stream/fault.hpp"

#include <algorithm>

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace mlp::stream {
namespace {

// splitmix64: one multiply-xor-shift chain per draw. Deterministic across
// platforms, which is the whole point of a seeded plan.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t next_rand(std::uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return mix64(state);
}

constexpr std::uint64_t kDefaultGarbageBytes = 16;
constexpr std::uint64_t kDefaultDropBytes = 1024;
constexpr std::uint64_t kDefaultStallMs = 1000;

[[noreturn]] void bad_spec(const std::string& spec, const char* why) {
  throw InvalidArgument("bad fault plan \"" + spec + "\": " + why);
}

}  // namespace

const char* to_string(Fault::Kind kind) {
  switch (kind) {
    case Fault::Kind::Corrupt:
      return "corrupt";
    case Fault::Kind::Garbage:
      return "garbage";
    case Fault::Kind::Disconnect:
      return "drop";
    case Fault::Kind::Stall:
      return "stall";
    case Fault::Kind::Truncate:
      return "trunc";
  }
  return "?";
}

void FaultPlan::sort_faults() {
  std::stable_sort(
      faults.begin(), faults.end(),
      [](const Fault& a, const Fault& b) { return a.offset < b.offset; });
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  const auto colon = spec.find(':');
  const std::string seed_part = spec.substr(0, colon);
  const auto seed = mlp::parse_u64(seed_part);
  if (!seed) bad_spec(spec, "seed must be an unsigned integer");
  plan.seed = *seed;
  if (colon == std::string::npos) return plan;

  std::string rest = spec.substr(colon + 1);
  if (rest.empty()) bad_spec(spec, "empty fault list after ':'");
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    auto comma = rest.find(',', pos);
    if (comma == std::string::npos) comma = rest.size();
    const std::string item = rest.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) bad_spec(spec, "empty fault entry");
    if (item == "shatter") {
      plan.shatter = true;
      continue;
    }
    const auto at = item.find('@');
    if (at == std::string::npos) bad_spec(spec, "fault needs name@OFFSET");
    const std::string name = item.substr(0, at);
    Fault fault;
    if (name == "corrupt") {
      fault.kind = Fault::Kind::Corrupt;
    } else if (name == "garbage") {
      fault.kind = Fault::Kind::Garbage;
      fault.arg = kDefaultGarbageBytes;
    } else if (name == "drop" || name == "disconnect") {
      fault.kind = Fault::Kind::Disconnect;
      fault.arg = kDefaultDropBytes;
    } else if (name == "stall") {
      fault.kind = Fault::Kind::Stall;
      fault.arg = kDefaultStallMs;
    } else if (name == "trunc") {
      fault.kind = Fault::Kind::Truncate;
    } else {
      bad_spec(spec, "unknown fault kind");
    }
    std::string tail = item.substr(at + 1);
    const auto x = tail.find('x');
    std::string offset_part = tail.substr(0, x);
    const auto offset = mlp::parse_u64(offset_part);
    if (!offset) bad_spec(spec, "offset must be an unsigned integer");
    fault.offset = *offset;
    if (x != std::string::npos) {
      if (fault.kind == Fault::Kind::Truncate)
        bad_spec(spec, "trunc takes no argument");
      const auto arg = mlp::parse_u64(tail.substr(x + 1));
      if (!arg) bad_spec(spec, "argument must be an unsigned integer");
      fault.arg = *arg;
      if (fault.kind != Fault::Kind::Corrupt && fault.arg == 0)
        bad_spec(spec, "argument must be positive");
    }
    plan.faults.push_back(fault);
  }
  plan.sort_faults();
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::uint64_t stream_bytes) {
  FaultPlan plan;
  plan.seed = seed;
  if (stream_bytes == 0) return plan;
  std::uint64_t rng = mix64(seed ^ 0xfa417a11ull);
  const auto offset_in = [&](std::uint64_t lo_pct, std::uint64_t hi_pct) {
    const std::uint64_t lo = stream_bytes * lo_pct / 100;
    const std::uint64_t hi = std::max(lo + 1, stream_bytes * hi_pct / 100);
    return lo + next_rand(rng) % (hi - lo);
  };
  // A spread of one fault per kind (no truncation: a soak run must be able
  // to finish), each landing in its own band of the stream so strikes do
  // not pile onto the same record.
  plan.faults.push_back(
      {Fault::Kind::Corrupt, offset_in(5, 25), 1 + next_rand(rng) % 255});
  plan.faults.push_back(
      {Fault::Kind::Garbage, offset_in(25, 45), 4 + next_rand(rng) % 60});
  plan.faults.push_back(
      {Fault::Kind::Disconnect, offset_in(45, 70), 64 + next_rand(rng) % 960});
  plan.faults.push_back(
      {Fault::Kind::Stall, offset_in(70, 90), 1 + next_rand(rng) % 50});
  plan.shatter = (next_rand(rng) & 1) != 0;
  plan.sort_faults();
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out = std::to_string(seed);
  char sep = ':';
  for (const auto& fault : faults) {
    out += sep;
    sep = ',';
    out += stream::to_string(fault.kind);
    out += '@';
    out += std::to_string(fault.offset);
    if (fault.kind != Fault::Kind::Truncate) {
      out += 'x';
      out += std::to_string(fault.arg);
    }
  }
  if (shatter) {
    out += sep;
    out += "shatter";
  }
  return out;
}

FaultInjectingSource::FaultInjectingSource(std::unique_ptr<StreamSource> inner,
                                           FaultPlan plan,
                                           std::shared_ptr<Clock> clock)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      clock_(clock ? std::move(clock) : system_clock()),
      shatter_rng_(mix64(plan_.seed ^ 0x5a77e512ull)) {
  plan_.sort_faults();
}

bool FaultInjectingSource::discard_inner(std::uint64_t count) {
  std::uint8_t scratch[4096];
  while (count > 0) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(count, sizeof scratch));
    const std::size_t got = inner_->read(std::span<std::uint8_t>(scratch, want));
    if (got == 0) return false;
    in_offset_ += got;
    count -= got;
  }
  return true;
}

void FaultInjectingSource::strike(const Fault& fault) {
  ++faults_injected_;
  if (on_fault_) on_fault_(fault);
}

std::size_t FaultInjectingSource::read(std::span<std::uint8_t> out) {
  if (out.empty()) return 0;
  // Shatter caps the request size, never the byte content: the output
  // byte sequence stays identical, only its chunk boundaries move.
  if (plan_.shatter) {
    const std::size_t cap =
        1 + static_cast<std::size_t>(next_rand(shatter_rng_) % 61);
    if (out.size() > cap) out = out.first(cap);
  }
  while (true) {
    if (truncated_) return 0;
    // Garbage spliced by an earlier strike drains before any inner byte.
    if (garbage_remaining_ > 0) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(garbage_remaining_, out.size()));
      for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(next_rand(garbage_rng_));
      garbage_remaining_ -= n;
      bytes_out_ += n;
      return n;
    }
    // Handle every fault scheduled at the current input offset, in plan
    // order; Corrupt is deferred to the read below (it rides on a byte).
    bool corrupt_next = false;
    std::uint64_t corrupt_mask = 0;
    while (next_fault_ < plan_.faults.size() &&
           plan_.faults[next_fault_].offset <= in_offset_) {
      const Fault& fault = plan_.faults[next_fault_];
      ++next_fault_;
      switch (fault.kind) {
        case Fault::Kind::Corrupt:
          corrupt_next = true;
          corrupt_mask = fault.arg != 0
                             ? fault.arg
                             : 1 + mix64(plan_.seed ^ fault.offset) % 255;
          strike(fault);
          break;
        case Fault::Kind::Garbage:
          garbage_remaining_ = fault.arg;
          garbage_rng_ = mix64(plan_.seed ^ (fault.offset * 2 + 1));
          strike(fault);
          break;
        case Fault::Kind::Disconnect: {
          // Consume the gap first so the post-gap bytes are next in line,
          // then tell the consumer the connection dropped.
          const bool more = discard_inner(fault.arg);
          strike(fault);
          if (!more) {
            truncated_ = true;
            return 0;
          }
          break;
        }
        case Fault::Kind::Stall:
          strike(fault);
          clock_->sleep_ms(fault.arg);
          break;
        case Fault::Kind::Truncate:
          strike(fault);
          truncated_ = true;
          return 0;
      }
    }
    if (garbage_remaining_ > 0) continue;  // splice before the next byte
    // Serve inner bytes, never crossing the next strike offset so every
    // fault lands exactly at its input offset regardless of chunking.
    std::size_t want = out.size();
    if (next_fault_ < plan_.faults.size()) {
      const std::uint64_t until = plan_.faults[next_fault_].offset - in_offset_;
      want = static_cast<std::size_t>(std::min<std::uint64_t>(want, until));
    }
    if (corrupt_next) want = 1;
    const std::size_t got = inner_->read(out.first(want));
    if (got == 0) return 0;
    in_offset_ += got;
    if (corrupt_next) out[0] ^= static_cast<std::uint8_t>(corrupt_mask);
    bytes_out_ += got;
    return got;
  }
}

}  // namespace mlp::stream
