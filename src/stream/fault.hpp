// Deterministic fault injection for live byte feeds.
//
// Real collector/BMP feeds fail in ways unit fixtures rarely reproduce:
// a flipped byte deep inside a record, a connection torn mid-record, a
// silent stall, garbage spliced between records, pathological chunk
// boundaries. FaultInjectingSource wraps any StreamSource and replays
// such failures from a declarative, seeded FaultPlan -- the same plan and
// seed produce the byte-identical output sequence on every run, for any
// read chunking, so a failure scenario is a reproducible test vector
// instead of a flaky accident.
//
// Faults strike at INPUT stream offsets (bytes of the wrapped source),
// which is what makes the output a pure function of (inner bytes, plan):
//
//   corrupt@OFF[xM]   XOR the input byte at OFF with mask M (seeded when
//                     omitted; never a 0 mask)
//   garbage@OFF[xN]   splice N seeded garbage bytes into the output
//                     before the input byte at OFF (default 16)
//   drop@OFF[xN]      lose input bytes [OFF, OFF+N) and signal a
//                     disconnect -- exactly what a connection torn
//                     mid-record and resumed later looks like to the
//                     consumer (default 1024; alias: disconnect@)
//   stall@OFF[xT]     before serving the input byte at OFF, let T
//                     milliseconds pass on the injected Clock
//                     (default 1000)
//   trunc@OFF         end of stream at input offset OFF, permanently
//   shatter           cap every read at a small seeded size so record
//                     boundaries land in adversarial places
//
// The textual form above is FaultPlan::parse's input ("SEED" or
// "SEED:FAULT,FAULT,..."), mlp_infer's --chaos argument, and
// to_string()'s output, so any observed failure sequence can be quoted
// back into a regression test verbatim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stream/clock.hpp"
#include "stream/source.hpp"

namespace mlp::stream {

/// One scheduled failure.
struct Fault {
  enum class Kind : std::uint8_t {
    Corrupt,     // XOR one input byte
    Garbage,     // splice seeded bytes into the output
    Disconnect,  // drop a run of input bytes + signal a disconnect
    Stall,       // let clock time pass before the next byte
    Truncate,    // end the stream early
  };
  Kind kind = Kind::Corrupt;
  /// Input-stream offset where the fault strikes.
  std::uint64_t offset = 0;
  /// Kind-specific argument: XOR mask (Corrupt, 0 = seeded), byte count
  /// (Garbage/Disconnect), milliseconds (Stall). Unused for Truncate.
  std::uint64_t arg = 0;
};

const char* to_string(Fault::Kind kind);

/// A seeded, declarative failure schedule. Plans are value types: copy
/// one per feed/connection so every replay starts from the same state.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// Strike schedule, sorted by offset (sort_faults() restores the
  /// invariant after hand-editing). Offsets are unique per kind in
  /// practice; ties strike in vector order.
  std::vector<Fault> faults;
  /// Seeded chunk-boundary shattering of every read.
  bool shatter = false;

  /// "SEED" (a fully seeded random plan, materialized against a stream
  /// size by random()) or "SEED:FAULT,...". Throws InvalidArgument on
  /// malformed specs.
  static FaultPlan parse(const std::string& spec);

  /// Derive a plan of a few faults (corrupt, garbage, drop, stall,
  /// shatter) with offsets spread over `stream_bytes`, entirely from
  /// `seed`. Never truncates: a random soak plan must let the stream
  /// finish.
  static FaultPlan random(std::uint64_t seed, std::uint64_t stream_bytes);

  /// True when parse(spec) left the strike schedule to random() (a bare
  /// "SEED" spec).
  bool empty() const { return faults.empty() && !shatter; }

  /// Round-trips through parse().
  std::string to_string() const;

  void sort_faults();
};

/// StreamSource wrapper applying a FaultPlan to the wrapped stream.
/// Single-consumer like every StreamSource; not thread-safe.
class FaultInjectingSource final : public StreamSource {
 public:
  /// `clock` paces Stall faults; defaults to the process SystemClock.
  FaultInjectingSource(std::unique_ptr<StreamSource> inner, FaultPlan plan,
                       std::shared_ptr<Clock> clock = nullptr);

  /// Invoked synchronously as each fault strikes, before the affected
  /// bytes are served. A Disconnect strike fires AFTER the dropped bytes
  /// are consumed -- the consumer's cue to reset framing state
  /// (FeedHandle::note_disconnect) or drop a connection (serve --chaos).
  void set_on_fault(std::function<void(const Fault&)> callback) {
    on_fault_ = std::move(callback);
  }

  std::size_t read(std::span<std::uint8_t> out) override;

  /// Faults struck so far (Truncate included).
  std::uint64_t faults_injected() const { return faults_injected_; }
  /// Bytes consumed from the wrapped source (dropped bytes included).
  std::uint64_t bytes_in() const { return in_offset_; }
  /// Bytes served downstream (garbage included, dropped excluded).
  std::uint64_t bytes_out() const { return bytes_out_; }

 private:
  /// Consume and discard `count` inner bytes; false when the inner
  /// stream ended first.
  bool discard_inner(std::uint64_t count);
  void strike(const Fault& fault);

  std::unique_ptr<StreamSource> inner_;
  FaultPlan plan_;
  std::shared_ptr<Clock> clock_;
  std::function<void(const Fault&)> on_fault_;
  std::size_t next_fault_ = 0;      // cursor into plan_.faults
  std::uint64_t in_offset_ = 0;     // input bytes consumed
  std::uint64_t bytes_out_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t garbage_remaining_ = 0;
  std::uint64_t garbage_rng_ = 0;   // re-seeded per Garbage strike
  std::uint64_t shatter_rng_ = 0;
  bool truncated_ = false;
};

}  // namespace mlp::stream
