// Incremental MRT framing for live byte streams.
//
// A live feed (socket, pipe, BMP-style relay) delivers bytes in arbitrary
// chunks that need not respect record boundaries. MrtFramer buffers the
// chunks and yields one complete MRT record span at a time, so a consumer
// can decode message-by-message while the stream is still flowing.
//
// Memory contract: the framer never materializes the backlog. After the
// complete records of a feed() are drained through next(), the buffer
// holds at most the one trailing partial record (plus the bytes of the
// current chunk while it is being drained), so peak footprint is
// O(chunk + one record) regardless of total stream length.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/annotations.hpp"

namespace mlp::stream {

class MrtFramer {
 public:
  struct Config {
    /// Upper bound on a single record's body length. A corrupt length
    /// field would otherwise make the framer buffer (nearly) forever
    /// waiting for a record that never completes; anything above the cap
    /// throws ParseError from next(). Real RIB records run to a few MB;
    /// BGP4MP messages are <= 4 KiB.
    std::uint32_t max_record_bytes = 1u << 24;
  };

  MrtFramer() = default;
  explicit MrtFramer(Config config) : config_(config) {}

  /// Append one chunk of stream bytes.
  void feed(std::span<const std::uint8_t> chunk);

  /// The next complete record (header + body), or nullopt when the
  /// buffered bytes end mid-record (feed more and retry). The span
  /// borrows the internal buffer (lifetimebound): it is invalidated by
  /// the next call to feed(), next() or resync(). Throws ParseError when
  /// the record at the front claims a body larger than
  /// Config::max_record_bytes.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> next()
      MLP_LIFETIMEBOUND;

  /// Tolerant recovery: distrust the most recently framed (or currently
  /// front) record, drop one byte past its start and scan forward for the
  /// next plausible record header (known type/subtype, sane length). The
  /// scan continues across future feeds until an anchor is found.
  void resync();

  /// Transport-level resume (a reconnect): the byte stream restarts at a
  /// record boundary, so the buffered partial record can never complete.
  /// Drops the buffered tail and any pending resync scan, keeping the
  /// counters (bytes_fed/records carry over the reconnect). Returns the
  /// number of bytes dropped (0 means the disconnect was record-aligned).
  std::size_t reset();

  /// Bytes accepted so far (total stream length fed).
  std::uint64_t bytes_fed() const { return bytes_fed_; }

  /// Complete records framed so far.
  std::uint64_t records() const { return records_; }

  /// Bytes currently buffered (the partial tail record, between drains).
  std::size_t buffered() const { return buf_.size() - pos_; }

  /// Absolute stream offset of the record most recently returned by
  /// next() (error-message context for the decode layer).
  std::uint64_t last_record_offset() const { return last_record_offset_; }

  /// True while a tolerant resync() scan is still hunting its anchor.
  bool resyncing() const { return resyncing_; }

  /// Checkpoint hook: resume at absolute stream offset `bytes_fed` (the
  /// acknowledged offset -- every byte before it framed into a complete
  /// record, or was stepped over by a finished resync scan). Drops any
  /// buffered bytes; the transport redelivers the unacknowledged tail.
  /// `resyncing` re-arms a scan that was mid-flight at the checkpoint,
  /// so redelivered bytes replay it deterministically.
  void restore_state(std::uint64_t bytes_fed, std::uint64_t records,
                     std::uint64_t last_record_offset, bool resyncing);

 private:
  /// Drop consumed bytes so the buffer only holds the unframed tail.
  void compact();

  Config config_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;             // start of the unconsumed region
  std::size_t last_record_pos_ = 0; // buffer pos of the last framed record
  std::uint64_t base_offset_ = 0;   // stream offset of buf_[0]
  std::uint64_t bytes_fed_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t last_record_offset_ = 0;
  bool resyncing_ = false;
};

}  // namespace mlp::stream
