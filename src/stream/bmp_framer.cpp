#include "stream/bmp_framer.hpp"

#include <string>

#include "bgp/asn.hpp"
#include "mrt/record_codec.hpp"
#include "util/bytes.hpp"
#include "util/errors.hpp"

namespace mlp::stream {

namespace {

constexpr std::uint8_t kBmpVersion = 3;
constexpr std::size_t kBmpHeaderBytes = 6;   // version, length, type
constexpr std::size_t kPerPeerBytes = 42;    // RFC 7854 section 4.2
constexpr std::size_t kBgpHeaderBytes = 19;  // marker + length + type

constexpr std::uint8_t kTypeRouteMonitoring = 0;
constexpr std::uint8_t kTypeMax = 6;  // through Route Mirroring
constexpr std::uint8_t kPeerFlagV = 0x80;  // IPv6 peer address
constexpr std::uint8_t kPeerFlagA = 0x20;  // legacy 2-octet AS_PATH PDU

constexpr std::uint8_t kBgpTypeUpdate = 2;

std::uint32_t read_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void push_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void push_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Minimum length a message of `type` can declare and still be decoded.
std::size_t min_message_bytes(std::uint8_t type) {
  std::size_t min = kBmpHeaderBytes;
  if (type <= 3) min += kPerPeerBytes;  // RM, Stats, Peer Down, Peer Up
  if (type == kTypeRouteMonitoring) min += kBgpHeaderBytes;
  return min;
}

/// Resync anchor: a header that a later next() would accept.
bool plausible_header(const std::uint8_t* p, std::uint32_t cap) {
  if (p[0] != kBmpVersion) return false;
  const std::uint32_t length = read_u32(p + 1);
  const std::uint8_t type = p[5];
  if (type > kTypeMax) return false;
  return length >= min_message_bytes(type) && length <= cap;
}

}  // namespace

void BmpFramer::compact() {
  if (pos_ == 0) return;
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
  base_offset_ += pos_;
  pos_ = 0;
  last_message_pos_ = 0;
}

void BmpFramer::feed(std::span<const std::uint8_t> chunk) {
  compact();
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
  bytes_fed_ += chunk.size();
}

std::optional<std::span<const std::uint8_t>> BmpFramer::next() {
  for (;;) {
    if (resyncing_) {
      while (buf_.size() - pos_ >= kBmpHeaderBytes) {
        if (plausible_header(buf_.data() + pos_, config_.max_message_bytes)) {
          resyncing_ = false;
          break;
        }
        ++pos_;
      }
      if (resyncing_) return std::nullopt;
    }
    if (buf_.size() - pos_ < kBmpHeaderBytes) return std::nullopt;
    const std::uint8_t* head = buf_.data() + pos_;
    const std::uint8_t version = head[0];
    const std::uint32_t length = read_u32(head + 1);
    const std::uint8_t type = head[5];
    last_message_pos_ = pos_;
    last_message_offset_ = base_offset_ + pos_;
    if (version != kBmpVersion)
      throw ParseError("BmpFramer: bad version " + std::to_string(version) +
                       " at stream offset " +
                       std::to_string(last_message_offset_));
    if (type > kTypeMax)
      throw ParseError("BmpFramer: unknown message type " +
                       std::to_string(type) + " at stream offset " +
                       std::to_string(last_message_offset_));
    if (length < min_message_bytes(type) ||
        length > config_.max_message_bytes)
      throw ParseError("BmpFramer: message claims " + std::to_string(length) +
                       " bytes (type " + std::to_string(type) + ", cap " +
                       std::to_string(config_.max_message_bytes) +
                       ") at stream offset " +
                       std::to_string(last_message_offset_));
    if (buf_.size() - pos_ < length) return std::nullopt;
    const std::span<const std::uint8_t> message(head, length);
    pos_ += length;
    ++messages_;
    if (type != kTypeRouteMonitoring) {
      ++skipped_;
      continue;
    }

    // Route Monitoring: per-peer header, then the verbatim BGP PDU.
    const std::uint8_t* peer = head + kBmpHeaderBytes;
    const std::uint8_t flags = peer[1];
    if (flags & kPeerFlagV) {  // IPv6 peer: this reproduction is IPv4-only
      ++skipped_;
      continue;
    }
    const std::uint32_t peer_ip = read_u32(peer + 10 + 12);  // low 4 bytes
    const std::uint32_t peer_asn = read_u32(peer + 26);
    const std::uint32_t timestamp = read_u32(peer + 34);
    const std::span<const std::uint8_t> pdu =
        message.subspan(kBmpHeaderBytes + kPerPeerBytes);
    if (pdu[18] != kBgpTypeUpdate) {  // OPEN/KEEPALIVE etc: stepped over
      ++skipped_;
      continue;
    }

    // Synthesize the BGP4MP record the MRT path expects. The A flag
    // marks a legacy peer whose PDU carries 2-octet AS_PATH segments
    // (RFC 7854 section 4.2): it maps to subtype Message, everything
    // else to MessageAs4, so the downstream decoder parses the AS_PATH
    // with the width the peer actually used.
    const bool legacy = (flags & kPeerFlagA) != 0;
    record_.clear();
    push_u32(record_, timestamp);
    push_u16(record_, static_cast<std::uint16_t>(mrt::MrtType::Bgp4mp));
    push_u16(record_, static_cast<std::uint16_t>(
                          legacy ? mrt::Bgp4mpSubtype::Message
                                 : mrt::Bgp4mpSubtype::MessageAs4));
    if (legacy) {
      push_u32(record_, static_cast<std::uint32_t>(16 + pdu.size()));
      push_u16(record_, static_cast<std::uint16_t>(
                            bgp::is_16bit(peer_asn) ? peer_asn
                                                    : bgp::kAsTrans));
      push_u16(record_, 0);  // local ASN: the monitoring station has none
    } else {
      push_u32(record_, static_cast<std::uint32_t>(20 + pdu.size()));
      push_u32(record_, peer_asn);
      push_u32(record_, 0);
    }
    push_u16(record_, 0);  // interface index
    push_u16(record_, 1);  // AFI IPv4
    push_u32(record_, peer_ip);
    push_u32(record_, 0);  // local IP
    record_.insert(record_.end(), pdu.begin(), pdu.end());
    return std::span<const std::uint8_t>(record_);
  }
}

void BmpFramer::resync() {
  pos_ = last_message_pos_ + 1;
  if (pos_ > buf_.size()) pos_ = buf_.size();
  resyncing_ = true;
}

std::size_t BmpFramer::reset() {
  const std::size_t dropped = buf_.size() - pos_;
  buf_.clear();
  pos_ = 0;
  last_message_pos_ = 0;
  base_offset_ = bytes_fed_;
  resyncing_ = false;
  return dropped;
}

std::vector<std::uint8_t> bmp_route_monitoring(
    std::uint32_t timestamp, std::uint32_t peer_asn, std::uint32_t peer_ip,
    std::span<const std::uint8_t> bgp_pdu, bool legacy_as_path) {
  ByteWriter w;
  w.u8(kBmpVersion);
  w.u32(static_cast<std::uint32_t>(kBmpHeaderBytes + kPerPeerBytes +
                                   bgp_pdu.size()));
  w.u8(kTypeRouteMonitoring);
  w.u8(0);  // peer type: global instance
  w.u8(legacy_as_path ? kPeerFlagA : 0);  // IPv4, pre-policy
  w.u64(0);                               // peer distinguisher
  w.u64(0);                               // IPv4-in-16B padding...
  w.u32(0);
  w.u32(peer_ip);
  w.u32(peer_asn);
  w.u32(peer_ip);  // BGP ID: mirrors the peer address
  w.u32(timestamp);
  w.u32(0);  // microseconds
  w.bytes(bgp_pdu);
  return w.take();
}

std::vector<std::uint8_t> bmp_initiation() {
  ByteWriter w;
  w.u8(kBmpVersion);
  w.u32(kBmpHeaderBytes + 8);
  w.u8(4);   // Initiation
  w.u16(1);  // sysDescr TLV
  w.u16(4);
  w.bytes(std::string("mlp0"));
  return w.take();
}

std::vector<std::uint8_t> bmp_termination() {
  ByteWriter w;
  w.u8(kBmpVersion);
  w.u32(kBmpHeaderBytes + 6);
  w.u8(5);   // Termination
  w.u16(1);  // reason TLV
  w.u16(2);
  w.u16(0);  // administratively closed
  return w.take();
}

std::vector<std::uint8_t> bmp_wrap_updates(
    std::span<const std::uint8_t> mrt_updates) {
  std::vector<std::uint8_t> out = bmp_initiation();
  std::size_t pos = 0;
  while (pos < mrt_updates.size()) {
    const auto peek = mrt::detail::peek_header(mrt_updates.subspan(pos));
    if (!peek) throw ParseError("bmp_wrap_updates: truncated MRT record");
    const std::size_t total = mrt::detail::kMrtHeaderBytes + peek->length;
    if (mrt_updates.size() - pos < total)
      throw ParseError("bmp_wrap_updates: truncated MRT record body");
    const bool as4 = peek->subtype == static_cast<std::uint16_t>(
                                          mrt::Bgp4mpSubtype::MessageAs4);
    if (peek->type == static_cast<std::uint16_t>(mrt::MrtType::Bgp4mp) &&
        (as4 || peek->subtype == static_cast<std::uint16_t>(
                                     mrt::Bgp4mpSubtype::Message))) {
      ByteReader body(mrt_updates.subspan(
          pos + mrt::detail::kMrtHeaderBytes, peek->length));
      const auto header = mrt::detail::decode_bgp4mp_header(body, as4);
      // A 2-octet-AS record's PDU carries 2-octet AS_PATH segments:
      // flag the peer as legacy so the unwrap side restores the subtype.
      const auto message = bmp_route_monitoring(
          peek->timestamp, header.peer_asn, header.peer_ip,
          body.bytes(body.remaining()), /*legacy_as_path=*/!as4);
      out.insert(out.end(), message.begin(), message.end());
    }
    pos += total;
  }
  const auto termination = bmp_termination();
  out.insert(out.end(), termination.begin(), termination.end());
  return out;
}

}  // namespace mlp::stream
