#include "stream/bmp_framer.hpp"

#include <set>
#include <string>

#include "bgp/asn.hpp"
#include "mrt/record_codec.hpp"
#include "util/bytes.hpp"
#include "util/errors.hpp"

namespace mlp::stream {

namespace {

constexpr std::uint8_t kBmpVersion = 3;
constexpr std::size_t kBmpHeaderBytes = 6;   // version, length, type
constexpr std::size_t kPerPeerBytes = 42;    // RFC 7854 section 4.2
constexpr std::size_t kBgpHeaderBytes = 19;  // marker + length + type

constexpr std::uint8_t kTypeRouteMonitoring = 0;
constexpr std::uint8_t kTypePeerDown = 2;
constexpr std::uint8_t kTypePeerUp = 3;
constexpr std::uint8_t kTypeMax = 6;  // through Route Mirroring
constexpr std::uint8_t kPeerFlagV = 0x80;  // IPv6 peer address
constexpr std::uint8_t kPeerFlagA = 0x20;  // legacy 2-octet AS_PATH PDU

constexpr std::uint8_t kBgpTypeOpen = 1;
constexpr std::uint8_t kBgpTypeUpdate = 2;

std::uint32_t read_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(read_u32(p)) << 32) | read_u32(p + 4);
}

void push_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void push_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Parse the 42-byte per-peer header at `peer`.
BmpPeerHeader parse_per_peer(const std::uint8_t* peer) {
  BmpPeerHeader header;
  header.peer_type = peer[0];
  header.flags = peer[1];
  header.ipv6 = (header.flags & kPeerFlagV) != 0;
  header.legacy_as_path = (header.flags & kPeerFlagA) != 0;
  header.distinguisher = read_u64(peer + 2);
  for (int i = 0; i < 16; ++i) header.address[i] = peer[10 + i];
  if (!header.ipv6) header.peer_ip = read_u32(peer + 10 + 12);
  header.asn = read_u32(peer + 26);
  header.bgp_id = read_u32(peer + 30);
  header.timestamp = read_u32(peer + 34);
  header.timestamp_us = read_u32(peer + 38);
  return header;
}

/// Minimum length a message of `type` can declare and still be decoded.
std::size_t min_message_bytes(std::uint8_t type) {
  std::size_t min = kBmpHeaderBytes;
  if (type <= 3) min += kPerPeerBytes;  // RM, Stats, Peer Down, Peer Up
  if (type == kTypeRouteMonitoring) min += kBgpHeaderBytes;
  return min;
}

/// Resync anchor: a header that a later next() would accept.
bool plausible_header(const std::uint8_t* p, std::uint32_t cap) {
  if (p[0] != kBmpVersion) return false;
  const std::uint32_t length = read_u32(p + 1);
  const std::uint8_t type = p[5];
  if (type > kTypeMax) return false;
  return length >= min_message_bytes(type) && length <= cap;
}

/// Common header + per-peer header prelude of an encoded message.
void write_prelude(ByteWriter& w, std::uint8_t type, std::size_t body_bytes,
                   std::uint8_t flags,
                   std::span<const std::uint8_t> peer_addr16,
                   std::uint32_t peer_asn, std::uint32_t bgp_id,
                   std::uint32_t timestamp) {
  w.u8(kBmpVersion);
  w.u32(static_cast<std::uint32_t>(kBmpHeaderBytes + kPerPeerBytes +
                                   body_bytes));
  w.u8(type);
  w.u8(0);  // peer type: global instance
  w.u8(flags);
  w.u64(0);  // peer distinguisher
  w.bytes(peer_addr16);
  w.u32(peer_asn);
  w.u32(bgp_id);
  w.u32(timestamp);
  w.u32(0);  // microseconds
}

/// The 16-byte per-peer address field for a v4 peer (low 4 bytes).
std::vector<std::uint8_t> v4_addr16(std::uint32_t peer_ip) {
  std::vector<std::uint8_t> addr(16, 0);
  addr[12] = static_cast<std::uint8_t>(peer_ip >> 24);
  addr[13] = static_cast<std::uint8_t>(peer_ip >> 16);
  addr[14] = static_cast<std::uint8_t>(peer_ip >> 8);
  addr[15] = static_cast<std::uint8_t>(peer_ip);
  return addr;
}

/// A minimal, valid BGP OPEN PDU (Peer Up bodies embed two of these).
std::vector<std::uint8_t> minimal_open(std::uint32_t bgp_id) {
  ByteWriter w;
  for (int i = 0; i < 16; ++i) w.u8(0xff);  // marker
  w.u16(29);                                // length
  w.u8(kBgpTypeOpen);
  w.u8(4);  // BGP version
  w.u16(0);
  w.u16(180);  // hold time
  w.u32(bgp_id);
  w.u8(0);  // no optional parameters
  return w.take();
}

}  // namespace

void BmpFramer::compact() {
  if (pos_ == 0) return;
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
  base_offset_ += pos_;
  pos_ = 0;
  last_message_pos_ = 0;
}

void BmpFramer::feed(std::span<const std::uint8_t> chunk) {
  compact();
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
  bytes_fed_ += chunk.size();
}

std::optional<BmpEvent> BmpFramer::next() {
  for (;;) {
    if (resyncing_) {
      while (buf_.size() - pos_ >= kBmpHeaderBytes) {
        if (plausible_header(buf_.data() + pos_, config_.max_message_bytes)) {
          resyncing_ = false;
          break;
        }
        ++pos_;
      }
      if (resyncing_) return std::nullopt;
    }
    if (buf_.size() - pos_ < kBmpHeaderBytes) return std::nullopt;
    const std::uint8_t* head = buf_.data() + pos_;
    const std::uint8_t version = head[0];
    const std::uint32_t length = read_u32(head + 1);
    const std::uint8_t type = head[5];
    last_message_pos_ = pos_;
    last_message_offset_ = base_offset_ + pos_;
    if (version != kBmpVersion)
      throw ParseError("BmpFramer: bad version " + std::to_string(version) +
                       " at stream offset " +
                       std::to_string(last_message_offset_));
    if (type > kTypeMax)
      throw ParseError("BmpFramer: unknown message type " +
                       std::to_string(type) + " at stream offset " +
                       std::to_string(last_message_offset_));
    if (length < min_message_bytes(type) ||
        length > config_.max_message_bytes)
      throw ParseError("BmpFramer: message claims " + std::to_string(length) +
                       " bytes (type " + std::to_string(type) + ", cap " +
                       std::to_string(config_.max_message_bytes) +
                       ") at stream offset " +
                       std::to_string(last_message_offset_));
    if (buf_.size() - pos_ < length) return std::nullopt;
    const std::span<const std::uint8_t> message(head, length);
    pos_ += length;
    ++messages_;

    if (type == kTypePeerUp || type == kTypePeerDown) {
      BmpEvent event;
      event.peer = parse_per_peer(head + kBmpHeaderBytes);
      if (type == kTypePeerUp) {
        event.kind = BmpEvent::Kind::PeerUp;
        ++peer_ups_;
      } else {
        event.kind = BmpEvent::Kind::PeerDown;
        ++peer_downs_;
        // Reason code, when the body carries one (defensive: a bare
        // per-peer header is tolerated and reads as reason 0).
        if (length > kBmpHeaderBytes + kPerPeerBytes)
          event.peer_down_reason = head[kBmpHeaderBytes + kPerPeerBytes];
      }
      return event;
    }
    if (type != kTypeRouteMonitoring) {
      ++skipped_;
      continue;
    }

    // Route Monitoring: per-peer header, then the verbatim BGP PDU.
    const BmpPeerHeader peer = parse_per_peer(head + kBmpHeaderBytes);
    const std::span<const std::uint8_t> pdu =
        message.subspan(kBmpHeaderBytes + kPerPeerBytes);
    if (pdu[18] != kBgpTypeUpdate) {  // OPEN/KEEPALIVE etc: stepped over
      ++skipped_;
      continue;
    }

    // Synthesize the BGP4MP record the MRT path expects. The A flag
    // marks a legacy peer whose PDU carries 2-octet AS_PATH segments
    // (RFC 7854 section 4.2): it maps to subtype Message, everything
    // else to MessageAs4, so the downstream decoder parses the AS_PATH
    // with the width the peer actually used. The V flag selects AFI 2
    // with the 16-byte address fields.
    const std::size_t asn_bytes = peer.legacy_as_path ? 2u * 2 : 2u * 4;
    const std::size_t addr_bytes = peer.ipv6 ? 2u * 16 : 2u * 4;
    record_.clear();
    push_u32(record_, peer.timestamp);
    push_u16(record_, static_cast<std::uint16_t>(mrt::MrtType::Bgp4mp));
    push_u16(record_, static_cast<std::uint16_t>(
                          peer.legacy_as_path ? mrt::Bgp4mpSubtype::Message
                                              : mrt::Bgp4mpSubtype::MessageAs4));
    push_u32(record_,
             static_cast<std::uint32_t>(asn_bytes + 4 + addr_bytes +
                                        pdu.size()));
    if (peer.legacy_as_path) {
      push_u16(record_, static_cast<std::uint16_t>(
                            bgp::is_16bit(peer.asn) ? peer.asn
                                                    : bgp::kAsTrans));
      push_u16(record_, 0);  // local ASN: the monitoring station has none
    } else {
      push_u32(record_, peer.asn);
      push_u32(record_, 0);
    }
    push_u16(record_, 0);  // interface index
    if (peer.ipv6) {
      push_u16(record_, 2);  // AFI IPv6
      record_.insert(record_.end(), peer.address, peer.address + 16);
      record_.insert(record_.end(), 16, 0);  // local address
    } else {
      push_u16(record_, 1);  // AFI IPv4
      push_u32(record_, peer.peer_ip);
      push_u32(record_, 0);  // local IP
    }
    record_.insert(record_.end(), pdu.begin(), pdu.end());
    BmpEvent event;
    event.kind = BmpEvent::Kind::Update;
    event.peer = peer;
    event.record = std::span<const std::uint8_t>(record_);
    return event;
  }
}

void BmpFramer::resync() {
  pos_ = last_message_pos_ + 1;
  if (pos_ > buf_.size()) pos_ = buf_.size();
  resyncing_ = true;
}

std::size_t BmpFramer::reset() {
  const std::size_t dropped = buf_.size() - pos_;
  buf_.clear();
  pos_ = 0;
  last_message_pos_ = 0;
  base_offset_ = bytes_fed_;
  resyncing_ = false;
  return dropped;
}

void BmpFramer::restore_state(std::uint64_t bytes_fed, std::uint64_t messages,
                              std::uint64_t skipped, std::uint64_t peer_ups,
                              std::uint64_t peer_downs,
                              std::uint64_t last_message_offset,
                              bool resyncing) {
  buf_.clear();
  pos_ = 0;
  last_message_pos_ = 0;
  // Same convention as reset(): the next byte fed is byte bytes_fed_ of
  // the (logical) stream, which the caller rejoins at the acknowledged
  // offset.
  base_offset_ = bytes_fed;
  bytes_fed_ = bytes_fed;
  messages_ = messages;
  skipped_ = skipped;
  peer_ups_ = peer_ups;
  peer_downs_ = peer_downs;
  last_message_offset_ = last_message_offset;
  resyncing_ = resyncing;
}

std::vector<std::uint8_t> bmp_route_monitoring(
    std::uint32_t timestamp, std::uint32_t peer_asn, std::uint32_t peer_ip,
    std::span<const std::uint8_t> bgp_pdu, bool legacy_as_path) {
  ByteWriter w;
  write_prelude(w, kTypeRouteMonitoring, bgp_pdu.size(),
                legacy_as_path ? kPeerFlagA : 0, v4_addr16(peer_ip),
                peer_asn, /*bgp_id=*/peer_ip, timestamp);
  w.bytes(bgp_pdu);
  return w.take();
}

std::vector<std::uint8_t> bmp_route_monitoring_v6(
    std::uint32_t timestamp, std::uint32_t peer_asn,
    std::span<const std::uint8_t> peer_addr,
    std::span<const std::uint8_t> bgp_pdu, bool legacy_as_path) {
  if (peer_addr.size() != 16)
    throw InvalidArgument("bmp_route_monitoring_v6: address must be 16 bytes");
  ByteWriter w;
  write_prelude(w, kTypeRouteMonitoring, bgp_pdu.size(),
                static_cast<std::uint8_t>(kPeerFlagV |
                                          (legacy_as_path ? kPeerFlagA : 0)),
                peer_addr, peer_asn, /*bgp_id=*/0, timestamp);
  w.bytes(bgp_pdu);
  return w.take();
}

std::vector<std::uint8_t> bmp_peer_up(std::uint32_t timestamp,
                                      std::uint32_t peer_asn,
                                      std::uint32_t peer_ip) {
  const auto sent = minimal_open(/*bgp_id=*/1);
  const auto received = minimal_open(/*bgp_id=*/peer_ip);
  ByteWriter w;
  write_prelude(w, kTypePeerUp,
                /*body=*/16 + 2 + 2 + sent.size() + received.size(),
                /*flags=*/0, v4_addr16(peer_ip), peer_asn,
                /*bgp_id=*/peer_ip, timestamp);
  w.bytes(std::vector<std::uint8_t>(16, 0));  // local address
  w.u16(179);                                 // local port
  w.u16(179);                                 // remote port
  w.bytes(sent);
  w.bytes(received);
  return w.take();
}

std::vector<std::uint8_t> bmp_peer_down(std::uint32_t timestamp,
                                        std::uint32_t peer_asn,
                                        std::uint32_t peer_ip,
                                        std::uint8_t reason) {
  ByteWriter w;
  write_prelude(w, kTypePeerDown, /*body=*/1, /*flags=*/0,
                v4_addr16(peer_ip), peer_asn, /*bgp_id=*/peer_ip, timestamp);
  w.u8(reason);
  return w.take();
}

std::vector<std::uint8_t> bmp_initiation() {
  ByteWriter w;
  w.u8(kBmpVersion);
  w.u32(kBmpHeaderBytes + 8);
  w.u8(4);   // Initiation
  w.u16(1);  // sysDescr TLV
  w.u16(4);
  w.bytes(std::string("mlp0"));
  return w.take();
}

std::vector<std::uint8_t> bmp_termination() {
  ByteWriter w;
  w.u8(kBmpVersion);
  w.u32(kBmpHeaderBytes + 6);
  w.u8(5);   // Termination
  w.u16(1);  // reason TLV
  w.u16(2);
  w.u16(0);  // administratively closed
  return w.take();
}

std::vector<std::uint8_t> bmp_wrap_updates(
    std::span<const std::uint8_t> mrt_updates) {
  std::vector<std::uint8_t> out = bmp_initiation();
  std::set<std::uint32_t> announced_peers;
  std::size_t pos = 0;
  while (pos < mrt_updates.size()) {
    const auto peek = mrt::detail::peek_header(mrt_updates.subspan(pos));
    if (!peek) throw ParseError("bmp_wrap_updates: truncated MRT record");
    const std::size_t total = mrt::detail::kMrtHeaderBytes + peek->length;
    if (mrt_updates.size() - pos < total)
      throw ParseError("bmp_wrap_updates: truncated MRT record body");
    const bool as4 = peek->subtype == static_cast<std::uint16_t>(
                                          mrt::Bgp4mpSubtype::MessageAs4);
    if (peek->type == static_cast<std::uint16_t>(mrt::MrtType::Bgp4mp) &&
        (as4 || peek->subtype == static_cast<std::uint16_t>(
                                     mrt::Bgp4mpSubtype::Message))) {
      ByteReader body(mrt_updates.subspan(
          pos + mrt::detail::kMrtHeaderBytes, peek->length));
      const auto header = mrt::detail::decode_bgp4mp_header(body, as4);
      // Real collectors announce each monitored session before routing
      // data from it; mirror that so the unwrap side's session tracking
      // is exercised by every replayed archive.
      if (announced_peers.insert(header.peer_asn).second) {
        const auto up =
            bmp_peer_up(peek->timestamp, header.peer_asn, header.peer_ip);
        out.insert(out.end(), up.begin(), up.end());
      }
      // A 2-octet-AS record's PDU carries 2-octet AS_PATH segments:
      // flag the peer as legacy so the unwrap side restores the subtype.
      const auto message = bmp_route_monitoring(
          peek->timestamp, header.peer_asn, header.peer_ip,
          body.bytes(body.remaining()), /*legacy_as_path=*/!as4);
      out.insert(out.end(), message.begin(), message.end());
    }
    pos += total;
  }
  const auto termination = bmp_termination();
  out.insert(out.end(), termination.begin(), termination.end());
  return out;
}

}  // namespace mlp::stream
