#include "stream/clock.hpp"

#include <chrono>
#include <thread>

namespace mlp::stream {

std::uint64_t SystemClock::now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SystemClock::sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::shared_ptr<Clock> system_clock() {
  static const std::shared_ptr<Clock> instance =
      std::make_shared<SystemClock>();
  return instance;
}

}  // namespace mlp::stream
