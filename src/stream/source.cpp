#include "stream/source.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include "util/errors.hpp"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace mlp::stream {

namespace {
std::atomic<const std::atomic<bool>*> g_interrupt_flag{nullptr};
}  // namespace

void set_interrupt_flag(const std::atomic<bool>* flag) {
  g_interrupt_flag.store(flag, std::memory_order_release);
}

bool interrupt_requested() {
  const std::atomic<bool>* flag =
      g_interrupt_flag.load(std::memory_order_acquire);
  return flag != nullptr && flag->load(std::memory_order_relaxed);
}

MemorySource::MemorySource(std::vector<std::uint8_t> data,
                           std::size_t max_chunk)
    : data_(std::move(data)), max_chunk_(std::max<std::size_t>(1, max_chunk)) {}

std::size_t MemorySource::read(std::span<std::uint8_t> out) {
  const std::size_t n =
      std::min({out.size(), max_chunk_, data_.size() - pos_});
  std::memcpy(out.data(), data_.data() + pos_, n);
  pos_ += n;
  return n;
}

#ifndef _WIN32

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw ParseError(what + ": " + std::strerror(errno));
}

}  // namespace

FdSource::FdSource(int fd, bool owned) : fd_(fd), owned_(owned) {
  if (fd_ < 0) throw InvalidArgument("FdSource: bad file descriptor");
}

FdSource::~FdSource() {
  if (owned_) ::close(fd_);
}

std::size_t FdSource::read(std::span<std::uint8_t> out) {
  if (out.empty()) return 0;
  for (;;) {
    const ssize_t n = ::read(fd_, out.data(), out.size());
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) {
      // A graceful-shutdown signal interrupted the wait: end the stream
      // so the reader unwinds normally instead of blocking again.
      if (interrupt_requested()) return 0;
      continue;
    }
    fail_errno("FdSource: read failed");
  }
}

FdPair open_pipe() {
  int fds[2];
  if (::pipe(fds) != 0) fail_errno("open_pipe");
  return FdPair{fds[0], fds[1]};
}

FdPair open_socketpair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    fail_errno("open_socketpair");
  return FdPair{fds[0], fds[1]};
}

FdPair open_tcp_loopback() {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) fail_errno("open_tcp_loopback: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listener, 1) != 0) {
    ::close(listener);
    fail_errno("open_tcp_loopback: bind/listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    ::close(listener);
    fail_errno("open_tcp_loopback: getsockname");
  }
  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  if (client < 0) {
    ::close(listener);
    fail_errno("open_tcp_loopback: socket");
  }
  // Loopback connect with the listener's backlog already posted cannot
  // block indefinitely, so the connect-then-accept order is safe
  // single-threaded.
  if (::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(client);
    ::close(listener);
    fail_errno("open_tcp_loopback: connect");
  }
  const int accepted = ::accept(listener, nullptr, nullptr);
  ::close(listener);
  if (accepted < 0) {
    ::close(client);
    fail_errno("open_tcp_loopback: accept");
  }
  return FdPair{accepted, client};
}

TcpListener open_tcp_listener(std::uint16_t port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) fail_errno("open_tcp_listener: socket");
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listener, 4) != 0) {
    ::close(listener);
    fail_errno("open_tcp_listener: bind/listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    ::close(listener);
    fail_errno("open_tcp_listener: getsockname");
  }
  return TcpListener{listener, ntohs(addr.sin_port)};
}

int tcp_accept(int listener_fd) {
  for (;;) {
    const int accepted = ::accept(listener_fd, nullptr, nullptr);
    if (accepted >= 0) return accepted;
    if (errno == EINTR) {
      if (interrupt_requested()) return -1;
      continue;
    }
    fail_errno("tcp_accept");
  }
}

int tcp_listen_accept(std::uint16_t port) {
  const TcpListener listener = open_tcp_listener(port);
  int accepted = -1;
  try {
    accepted = tcp_accept(listener.fd);
  } catch (...) {
    ::close(listener.fd);
    throw;
  }
  ::close(listener.fd);
  if (accepted < 0) throw ParseError("tcp_listen_accept: interrupted");
  return accepted;
}

int tcp_connect(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw InvalidArgument("tcp_connect: not an IPv4 address: " + host);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("tcp_connect: socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    fail_errno("tcp_connect: connect to " + host + ":" +
               std::to_string(port));
  }
  return fd;
}

void write_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("write_all");
    }
    written += static_cast<std::size_t>(n);
  }
}

void close_fd(int fd) { ::close(fd); }

#else  // _WIN32: the fd transports are POSIX-only; the in-memory source
       // above still works everywhere.

FdSource::FdSource(int, bool) {
  throw InvalidArgument("FdSource: not supported on this platform");
}
FdSource::~FdSource() = default;
std::size_t FdSource::read(std::span<std::uint8_t>) { return 0; }
FdPair open_pipe() {
  throw InvalidArgument("open_pipe: not supported on this platform");
}
FdPair open_socketpair() {
  throw InvalidArgument("open_socketpair: not supported on this platform");
}
FdPair open_tcp_loopback() {
  throw InvalidArgument(
      "open_tcp_loopback: not supported on this platform");
}
TcpListener open_tcp_listener(std::uint16_t) {
  throw InvalidArgument(
      "open_tcp_listener: not supported on this platform");
}
int tcp_accept(int) {
  throw InvalidArgument("tcp_accept: not supported on this platform");
}
int tcp_listen_accept(std::uint16_t) {
  throw InvalidArgument(
      "tcp_listen_accept: not supported on this platform");
}
int tcp_connect(const std::string&, std::uint16_t) {
  throw InvalidArgument("tcp_connect: not supported on this platform");
}
void write_all(int, std::span<const std::uint8_t>) {
  throw InvalidArgument("write_all: not supported on this platform");
}
void close_fd(int) {}

#endif

}  // namespace mlp::stream
