#include "routeserver/route_server.hpp"

#include "util/errors.hpp"

namespace mlp::routeserver {

void RouteServer::connect(Asn member, std::uint32_t ixp_ip) {
  sessions_[member] = MemberSession{member, ixp_ip};
  member_set_.insert(member);
}

void RouteServer::disconnect(Asn member) {
  sessions_.erase(member);
  member_set_.erase(member);
  import_filters_.erase(member);
  rib_.drop_peer(member);
  policy_cache_.erase(member);
}

std::vector<MemberSession> RouteServer::members() const {
  std::vector<MemberSession> out;
  out.reserve(sessions_.size());
  for (const auto& [asn, session] : sessions_) out.push_back(session);
  return out;
}

void RouteServer::set_import_filter(Asn member, ExportPolicy filter) {
  import_filters_[member] = std::move(filter);
}

void RouteServer::announce(Asn member, bgp::Route route) {
  auto it = sessions_.find(member);
  if (it == sessions_.end())
    throw InvalidArgument("RouteServer::announce: AS" +
                          std::to_string(member) + " has no session");
  rib_.announce(member, it->second.ixp_ip, std::move(route));
  policy_cache_.erase(member);
}

void RouteServer::withdraw(Asn member, const bgp::IpPrefix& prefix) {
  rib_.withdraw(member, prefix);
  policy_cache_.erase(member);
}

ExportPolicy RouteServer::effective_policy(Asn member) const {
  auto cached = policy_cache_.find(member);
  if (cached != policy_cache_.end()) return cached->second;

  bool first = true;
  ExportPolicy policy = ExportPolicy::open();
  for (const auto& entry : rib_.entries_from_peer(member)) {
    auto parsed =
        ExportPolicy::from_communities(entry.route.attrs.communities, scheme_);
    const ExportPolicy route_policy =
        parsed.value_or(ExportPolicy::open());  // no RS communities: default
    if (first) {
      policy = route_policy;
      first = false;
    } else {
      policy = ExportPolicy::intersect(policy, route_policy, member_set_);
    }
  }
  policy_cache_.emplace(member, policy);
  return policy;
}

bool RouteServer::member_allows(Asn setter, Asn receiver) const {
  if (!effective_policy(setter).allows(receiver)) return false;
  if (options_.honour_import_filters) {
    auto it = import_filters_.find(receiver);
    if (it != import_filters_.end() && !it->second.allows(setter))
      return false;
  }
  return true;
}

std::vector<bgp::RibEntry> RouteServer::exports_to(Asn member) const {
  std::vector<bgp::RibEntry> out;
  if (!sessions_.count(member)) return out;
  for (const auto& prefix : rib_.prefixes()) {
    for (const auto& entry : rib_.paths(prefix)) {
      const Asn setter = entry.peer_asn;
      if (setter == member) continue;
      if (!member_allows(setter, member)) continue;
      bgp::RibEntry exported = entry;
      if (options_.strip_communities) exported.route.attrs.communities.clear();
      if (options_.prepend_rs_asn)
        exported.route.attrs.as_path.prepend(scheme_.rs_asn());
      out.push_back(std::move(exported));
    }
  }
  return out;
}

std::set<bgp::AsLink> RouteServer::reciprocal_links() const {
  // Cache each member's effective policy once; pairwise reciprocity check.
  std::vector<Asn> asns;
  asns.reserve(sessions_.size());
  for (const auto& [asn, session] : sessions_) asns.push_back(asn);

  std::map<Asn, ExportPolicy> policies;
  for (const Asn asn : asns) policies.emplace(asn, effective_policy(asn));

  auto allows = [&](Asn setter, Asn receiver) {
    if (!policies.at(setter).allows(receiver)) return false;
    if (options_.honour_import_filters) {
      auto it = import_filters_.find(receiver);
      if (it != import_filters_.end() && !it->second.allows(setter))
        return false;
    }
    return true;
  };

  std::set<bgp::AsLink> links;
  for (std::size_t i = 0; i < asns.size(); ++i) {
    for (std::size_t j = i + 1; j < asns.size(); ++j) {
      if (allows(asns[i], asns[j]) && allows(asns[j], asns[i]))
        links.insert(bgp::AsLink(asns[i], asns[j]));
    }
  }
  return links;
}

}  // namespace mlp::routeserver
