// An IXP route server: one BGP session per member, community-driven
// outbound filtering, and route reflection among members (paper section 3).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "bgp/rib.hpp"
#include "routeserver/export_policy.hpp"
#include "routeserver/scheme.hpp"

namespace mlp::routeserver {

/// Per-member session state.
struct MemberSession {
  Asn asn = 0;
  std::uint32_t ixp_ip = 0;  // address on the IXP peering LAN
};

/// A route server instance for one IXP.
///
/// Members announce routes tagged with RS communities; `exports_to`
/// computes the filtered view each member receives, and
/// `reciprocal_links` derives the ground-truth multilateral peering mesh
/// under the paper's connectivity+reachability definition.
class RouteServer {
 public:
  struct Options {
    /// Strip all community values before re-advertising (Netnod behaviour,
    /// section 5.8) -- defeats passive inference by design.
    bool strip_communities = false;
    /// Insert the route server's ASN into re-advertised paths. Most route
    /// servers are transparent; the paper found 3 that were not.
    bool prepend_rs_asn = false;
    /// Also apply inbound per-member import filters (import policies are
    /// at most as restrictive as export filters; see section 4.4).
    bool honour_import_filters = true;
  };

  explicit RouteServer(IxpCommunityScheme scheme)
      : scheme_(std::move(scheme)) {}
  RouteServer(IxpCommunityScheme scheme, Options options)
      : scheme_(std::move(scheme)), options_(options) {}

  const IxpCommunityScheme& scheme() const { return scheme_; }
  const Options& options() const { return options_; }

  /// Open a session. Re-connecting an existing member updates its IP.
  void connect(Asn member, std::uint32_t ixp_ip);

  /// Tear down a session and drop its routes.
  void disconnect(Asn member);

  bool is_member(Asn asn) const { return sessions_.count(asn) != 0; }
  std::vector<MemberSession> members() const;
  std::size_t member_count() const { return sessions_.size(); }
  /// The connected members as a flat sorted set (the policy-intersection
  /// universe, maintained by connect/disconnect).
  const FlatAsnSet& member_set() const { return member_set_; }

  /// Set a member's import filter (who it accepts routes from). Defaults
  /// to accept-everyone. Only consulted if honour_import_filters is set.
  void set_import_filter(Asn member, ExportPolicy filter);

  /// Member announces a route; the RS communities on `route.attrs` define
  /// its export policy toward other members. Throws InvalidArgument if the
  /// member has no session.
  void announce(Asn member, bgp::Route route);

  void withdraw(Asn member, const bgp::IpPrefix& prefix);

  /// The route server's own table (everything members sent), unfiltered.
  const bgp::Rib& rib() const { return rib_; }

  /// The filtered Adj-RIB-Out toward `member`: every route whose setter's
  /// export policy allows `member` (and whose own import filter accepts
  /// the setter, if enabled). Communities are stripped and/or the RS ASN
  /// prepended per Options.
  std::vector<bgp::RibEntry> exports_to(Asn member) const;

  /// Export policy of `member` as derived from the communities on its
  /// announcements, intersected across its prefixes (paper step 4).
  /// Defaults to open if the member announced nothing or used no RS
  /// communities.
  ExportPolicy effective_policy(Asn member) const;

  /// Ground-truth multilateral peering links: pairs of members that allow
  /// each other (connectivity + reciprocal reachability, paper step 5).
  std::set<bgp::AsLink> reciprocal_links() const;

 private:
  bool member_allows(Asn setter, Asn receiver) const;

  IxpCommunityScheme scheme_;
  Options options_;
  std::map<Asn, MemberSession> sessions_;
  FlatAsnSet member_set_;
  std::map<Asn, ExportPolicy> import_filters_;
  bgp::Rib rib_;
  /// effective_policy is derived from RIB state; memoised because
  /// exports_to and reciprocal_links consult it per (setter, receiver).
  mutable std::map<Asn, ExportPolicy> policy_cache_;
};

}  // namespace mlp::routeserver
