// IXP route-server BGP community schemes (paper Table 1).
//
// Each IXP documents community values that members attach to control how
// the route server re-advertises their routes:
//
//   ALL      announce to every RS member (the default, often implicit)
//   EXCLUDE  block the announcement toward one member
//   NONE     block the announcement toward every member
//   INCLUDE  allow the announcement toward one member
//
// The peer-targeted patterns (EXCLUDE/INCLUDE) carry the target's ASN in
// the 16-bit low half; members with 32-bit ASNs are aliased into the
// 16-bit private range by the IXP operator (paper section 3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "bgp/asn.hpp"
#include "bgp/community.hpp"

namespace mlp::routeserver {

using bgp::Asn;
using bgp::Community;

/// How a single community value relates to a scheme.
enum class CommunityTag : std::uint8_t {
  All,
  None,
  Exclude,
  Include,
  Unrelated,
};

std::string to_string(CommunityTag tag);

/// Table-1 layout families observed at real IXPs.
enum class SchemeStyle : std::uint8_t {
  /// DE-CIX / MSK-IX style: ALL = rs:rs, EXCLUDE = 0:peer, NONE = 0:rs,
  /// INCLUDE = rs:peer. Requires a 16-bit route-server ASN.
  RsAsnBased,
  /// ECIX style: ALL = rs:rs, EXCLUDE = 64960:peer, NONE = 65000:0,
  /// INCLUDE = 65000:peer.
  PrivateRangeBased,
};

/// One IXP's community dialect plus its 32-bit member alias table.
class IxpCommunityScheme {
 public:
  IxpCommunityScheme() = default;

  /// Build the standard scheme of `style` for a route server ASN.
  /// Throws InvalidArgument for RsAsnBased with a 32-bit ASN.
  static IxpCommunityScheme make(std::string ixp_name, Asn rs_asn,
                                 SchemeStyle style);

  const std::string& ixp_name() const { return ixp_name_; }
  Asn rs_asn() const { return rs_asn_; }
  SchemeStyle style() const { return style_; }

  Community all_community() const { return all_; }
  Community none_community() const { return none_; }
  std::uint16_t exclude_high() const { return exclude_high_; }
  std::uint16_t include_high() const { return include_high_; }

  /// Register a private-range alias for a 32-bit member ASN.
  /// Throws InvalidArgument if the alias is outside the private range, the
  /// ASN fits in 16 bits anyway, or either side is already mapped.
  void add_alias(Asn member, std::uint16_t alias);

  /// The 16-bit encoding of a member for peer-targeted communities
  /// (the ASN itself, or its alias). Nullopt for an unaliased 32-bit ASN.
  std::optional<std::uint16_t> encode_peer(Asn member) const;

  /// Reverse of encode_peer: the member ASN a 16-bit value refers to.
  std::optional<Asn> decode_peer(std::uint16_t value) const;

  Community exclude_community(Asn member) const;
  Community include_community(Asn member) const;

  /// Classify one community under this scheme. For Exclude/Include,
  /// `peer_out` (if non-null) receives the decoded member ASN; a
  /// peer-targeted pattern whose low half decodes to no known member is
  /// classified Unrelated.
  CommunityTag classify(Community community, Asn* peer_out = nullptr) const;

  /// True if the community textually encodes the route-server ASN in
  /// either half; the passive pipeline uses this to attribute communities
  /// to an IXP (section 4.2).
  bool encodes_rs_asn(Community community) const;

  /// Validation hook: whether `asn` can appear as a peer target.
  bool can_target(Asn member) const { return encode_peer(member).has_value(); }

  /// The registered 32-bit member aliases (member -> private-range value),
  /// e.g. for serialising a scheme back to a config file.
  const std::map<Asn, std::uint16_t>& aliases() const { return alias_of_; }

 private:
  std::string ixp_name_;
  Asn rs_asn_ = 0;
  SchemeStyle style_ = SchemeStyle::RsAsnBased;
  Community all_;
  Community none_;
  std::uint16_t exclude_high_ = 0;
  std::uint16_t include_high_ = 0;
  std::map<Asn, std::uint16_t> alias_of_;   // member -> private alias
  std::map<std::uint16_t, Asn> alias_for_;  // private alias -> member
};

}  // namespace mlp::routeserver
