#include "routeserver/scheme.hpp"

#include "util/errors.hpp"

namespace mlp::routeserver {

std::string to_string(CommunityTag tag) {
  switch (tag) {
    case CommunityTag::All:
      return "ALL";
    case CommunityTag::None:
      return "NONE";
    case CommunityTag::Exclude:
      return "EXCLUDE";
    case CommunityTag::Include:
      return "INCLUDE";
    case CommunityTag::Unrelated:
      return "unrelated";
  }
  return "unknown";
}

IxpCommunityScheme IxpCommunityScheme::make(std::string ixp_name, Asn rs_asn,
                                            SchemeStyle style) {
  IxpCommunityScheme scheme;
  scheme.ixp_name_ = std::move(ixp_name);
  scheme.rs_asn_ = rs_asn;
  scheme.style_ = style;
  switch (style) {
    case SchemeStyle::RsAsnBased: {
      if (!bgp::is_16bit(rs_asn))
        throw InvalidArgument(
            "IxpCommunityScheme: RsAsnBased style needs a 16-bit RS ASN");
      const auto rs16 = static_cast<std::uint16_t>(rs_asn);
      scheme.all_ = Community(rs16, rs16);
      scheme.none_ = Community(0, rs16);
      scheme.exclude_high_ = 0;
      scheme.include_high_ = rs16;
      break;
    }
    case SchemeStyle::PrivateRangeBased: {
      if (!bgp::is_16bit(rs_asn))
        throw InvalidArgument(
            "IxpCommunityScheme: route-server ASN must fit 16 bits");
      const auto rs16 = static_cast<std::uint16_t>(rs_asn);
      scheme.all_ = Community(rs16, rs16);
      scheme.none_ = Community(65000, 0);
      scheme.exclude_high_ = 64960;
      scheme.include_high_ = 65000;
      break;
    }
  }
  return scheme;
}

void IxpCommunityScheme::add_alias(Asn member, std::uint16_t alias) {
  if (!bgp::is_32bit_only(member))
    throw InvalidArgument("add_alias: AS" + std::to_string(member) +
                          " fits in 16 bits and needs no alias");
  if (alias < bgp::kPrivate16First || alias > bgp::kPrivate16Last)
    throw InvalidArgument("add_alias: alias " + std::to_string(alias) +
                          " outside the 16-bit private range");
  if (alias_of_.count(member))
    throw InvalidArgument("add_alias: AS" + std::to_string(member) +
                          " already aliased");
  if (alias_for_.count(alias))
    throw InvalidArgument("add_alias: alias " + std::to_string(alias) +
                          " already in use");
  alias_of_[member] = alias;
  alias_for_[alias] = member;
}

std::optional<std::uint16_t> IxpCommunityScheme::encode_peer(
    Asn member) const {
  if (bgp::is_16bit(member)) return static_cast<std::uint16_t>(member);
  auto it = alias_of_.find(member);
  if (it == alias_of_.end()) return std::nullopt;
  return it->second;
}

std::optional<Asn> IxpCommunityScheme::decode_peer(
    std::uint16_t value) const {
  auto it = alias_for_.find(value);
  if (it != alias_for_.end()) return it->second;
  // Unaliased private-range values have no meaning as peer targets.
  if (value >= bgp::kPrivate16First) return std::nullopt;
  return static_cast<Asn>(value);
}

Community IxpCommunityScheme::exclude_community(Asn member) const {
  auto peer = encode_peer(member);
  if (!peer)
    throw InvalidArgument("exclude_community: AS" + std::to_string(member) +
                          " has no 16-bit encoding at " + ixp_name_);
  return Community(exclude_high_, *peer);
}

Community IxpCommunityScheme::include_community(Asn member) const {
  auto peer = encode_peer(member);
  if (!peer)
    throw InvalidArgument("include_community: AS" + std::to_string(member) +
                          " has no 16-bit encoding at " + ixp_name_);
  return Community(include_high_, *peer);
}

CommunityTag IxpCommunityScheme::classify(Community community,
                                          Asn* peer_out) const {
  // Exact (non-parameterised) values take precedence: at a RsAsnBased IXP
  // the NONE value 0:rs-asn would otherwise parse as EXCLUDE of the RS.
  if (community == all_) return CommunityTag::All;
  if (community == none_) return CommunityTag::None;
  if (community.high == exclude_high_) {
    auto peer = decode_peer(community.low);
    if (peer) {
      if (peer_out) *peer_out = *peer;
      return CommunityTag::Exclude;
    }
    return CommunityTag::Unrelated;
  }
  if (community.high == include_high_) {
    auto peer = decode_peer(community.low);
    if (peer) {
      if (peer_out) *peer_out = *peer;
      return CommunityTag::Include;
    }
    return CommunityTag::Unrelated;
  }
  return CommunityTag::Unrelated;
}

bool IxpCommunityScheme::encodes_rs_asn(Community community) const {
  if (!bgp::is_16bit(rs_asn_)) return false;
  const auto rs16 = static_cast<std::uint16_t>(rs_asn_);
  return community.high == rs16 || community.low == rs16;
}

}  // namespace mlp::routeserver
