#include "routeserver/export_policy.hpp"

#include <algorithm>

namespace mlp::routeserver {

bool ExportPolicy::allows(Asn member) const {
  const bool listed = peers_.contains(member);
  return mode_ == Mode::AllExcept ? !listed : listed;
}

double ExportPolicy::allowed_fraction(std::size_t member_count) const {
  if (member_count == 0) return 1.0;
  const double listed = static_cast<double>(
      std::min(peers_.size(), member_count));
  const double n = static_cast<double>(member_count);
  return mode_ == Mode::AllExcept ? (n - listed) / n : listed / n;
}

std::vector<Community> ExportPolicy::to_communities(
    const IxpCommunityScheme& scheme, bool explicit_all) const {
  std::vector<Community> out;
  if (mode_ == Mode::AllExcept) {
    if (explicit_all) out.push_back(scheme.all_community());
    for (const Asn peer : peers_)
      out.push_back(scheme.exclude_community(peer));
  } else {
    out.push_back(scheme.none_community());
    for (const Asn peer : peers_)
      out.push_back(scheme.include_community(peer));
  }
  return out;
}

std::optional<ExportPolicy> ExportPolicy::from_communities(
    const std::vector<Community>& communities,
    const IxpCommunityScheme& scheme) {
  bool saw_all = false;
  bool saw_none = false;
  FlatAsnSet excluded;
  FlatAsnSet included;
  for (const Community community : communities) {
    Asn peer = 0;
    switch (scheme.classify(community, &peer)) {
      case CommunityTag::All:
        saw_all = true;
        break;
      case CommunityTag::None:
        saw_none = true;
        break;
      case CommunityTag::Exclude:
        excluded.insert(peer);
        break;
      case CommunityTag::Include:
        included.insert(peer);
        break;
      case CommunityTag::Unrelated:
        break;
    }
  }
  if (!saw_all && !saw_none && excluded.empty() && included.empty())
    return std::nullopt;

  // NONE (or INCLUDE without ALL) selects the allow-list mode; the IXPs in
  // the paper document INCLUDE only in combination with NONE, but tolerant
  // parsing matters for operator sloppiness.
  if (saw_none || (!saw_all && !included.empty() && excluded.empty()))
    return ExportPolicy(Mode::NoneExcept, std::move(included));
  return ExportPolicy(Mode::AllExcept, std::move(excluded));
}

ExportPolicy ExportPolicy::intersect(const ExportPolicy& a,
                                     const ExportPolicy& b,
                                     const FlatAsnSet& member_universe) {
  if (a.mode_ == b.mode_) {
    if (a.mode_ == Mode::AllExcept) {
      // Union of exclusions.
      return ExportPolicy(Mode::AllExcept,
                          FlatAsnSet::set_union(a.peers_, b.peers_));
    }
    // Intersection of inclusions.
    return ExportPolicy(Mode::NoneExcept,
                        FlatAsnSet::set_intersection(a.peers_, b.peers_));
  }
  // Mixed modes: the members allowed by both sides are the NoneExcept
  // allow-list minus the AllExcept exclusions, restricted to the universe.
  const ExportPolicy& all_side = a.mode_ == Mode::AllExcept ? a : b;
  const ExportPolicy& none_side = a.mode_ == Mode::AllExcept ? b : a;
  return ExportPolicy(
      Mode::NoneExcept,
      FlatAsnSet::set_difference(
          FlatAsnSet::set_intersection(none_side.peers_, member_universe),
          all_side.peers_));
}

std::string ExportPolicy::to_string() const {
  std::string out =
      mode_ == Mode::AllExcept ? "all-except{" : "none-except{";
  bool first = true;
  for (const Asn peer : peers_) {
    if (!first) out += ' ';
    out += std::to_string(peer);
    first = false;
  }
  out += '}';
  return out;
}

}  // namespace mlp::routeserver
