// Export policies toward route-server members, and their round-trip to
// BGP community lists under an IXP's scheme.
//
// A member's outbound filter at a route server is either "advertise to
// everyone except these peers" (ALL + EXCLUDE) or "advertise to nobody
// except these peers" (NONE + INCLUDE) -- the binary pattern of paper
// figure 11.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "routeserver/scheme.hpp"
#include "util/flat_set.hpp"

namespace mlp::routeserver {

using util::FlatAsnSet;

/// One member's outbound policy for one route (or one session).
///
/// The peer list is a sorted flat vector: policies sit on the inference
/// hot path (step-4 intersection per prefix, step-5 reciprocity per member
/// pair) where node-based sets cost more in pointer chasing than the whole
/// set algebra.
class ExportPolicy {
 public:
  enum class Mode : std::uint8_t {
    AllExcept,   // advertise to all members except `peers`
    NoneExcept,  // advertise only to `peers`
  };

  ExportPolicy() = default;
  ExportPolicy(Mode mode, FlatAsnSet peers)
      : mode_(mode), peers_(std::move(peers)) {}

  /// The open-to-everyone default.
  static ExportPolicy open() { return ExportPolicy(Mode::AllExcept, {}); }

  Mode mode() const { return mode_; }
  const FlatAsnSet& peers() const { return peers_; }

  /// Whether `member` may receive routes under this policy.
  bool allows(Asn member) const;

  /// Fraction of `member_count` members allowed, given `peers_` are all
  /// members (figure 11's y-axis). Returns 1.0 for an open policy.
  double allowed_fraction(std::size_t member_count) const;

  /// Encode as a community list. For AllExcept the explicit ALL community
  /// is emitted only when `explicit_all` is set (many operators omit the
  /// default, which matters for passive IXP attribution, section 4.2).
  std::vector<Community> to_communities(const IxpCommunityScheme& scheme,
                                        bool explicit_all = false) const;

  /// Decode from a community list under a scheme. Returns nullopt when no
  /// community of the scheme is present (pure default: the caller decides
  /// whether default-open applies). Unrelated communities are ignored.
  /// INCLUDE with no NONE still yields NoneExcept if any INCLUDE exists
  /// without ALL; EXCLUDE values force AllExcept.
  static std::optional<ExportPolicy> from_communities(
      const std::vector<Community>& communities,
      const IxpCommunityScheme& scheme);

  /// Intersection of what two observations of the same member allow
  /// (paper step 4: N_a is intersected across the member's prefixes).
  /// `member_universe` is required to intersect policies of mixed modes.
  static ExportPolicy intersect(const ExportPolicy& a, const ExportPolicy& b,
                                const FlatAsnSet& member_universe);

  std::string to_string() const;

  friend bool operator==(const ExportPolicy&, const ExportPolicy&) = default;

 private:
  Mode mode_ = Mode::AllExcept;
  FlatAsnSet peers_;
};

}  // namespace mlp::routeserver
