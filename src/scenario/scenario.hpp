// The synthetic "May 2013" ecosystem.
//
// Substitutes the paper's production data sources with a fully simulated
// but behaviourally faithful Internet (see DESIGN.md section 2): an AS
// hierarchy, thirteen European IXPs with route servers and documented
// community schemes, ground-truth export/import filters derived from
// peering policies, BGP propagation into Route Views / RIS style
// collectors that emit real MRT bytes, looking glasses over route-server
// and member tables, an IRR with as-sets and AMS-IX-style filters, and a
// PeeringDB-like registry.
//
// Everything derives deterministically from one seed. The inference side
// (mlp::core) only ever sees the same artefacts the paper's authors had:
// MRT archives, LG text, RPSL objects, registry records.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "irr/database.hpp"
#include "lg/lg_server.hpp"
#include "propagation/collector.hpp"
#include "propagation/routing.hpp"
#include "propagation/traceroute.hpp"
#include "registry/peeringdb.hpp"
#include "routeserver/route_server.hpp"
#include "topology/generator.hpp"
#include "util/flat_set.hpp"
#include "util/rng.hpp"

namespace mlp::scenario {

using bgp::Asn;
using bgp::AsLink;
using bgp::IpPrefix;
using topology::Region;

/// Static descriptor of one IXP (mirrors the paper's table 2 roster).
struct IxpSpec {
  std::string name;
  Region region = Region::WesternEurope;
  /// Relative member-count weight (scaled by ScenarioParams).
  double size_weight = 1.0;
  /// The IXP operates a public LG on its route server ("LG" column).
  bool has_rs_lg = true;
  /// The RS LG renders community attributes (France-IX's did not).
  bool lg_shows_communities = true;
  bool flat_fee = true;
  routeserver::SchemeStyle style = routeserver::SchemeStyle::RsAsnBased;
  /// Netnod-style community scrubbing (defeats the method by design).
  bool strips_communities = false;
};

struct ScenarioParams {
  topology::TopologyParams topology;
  /// Scales the paper's per-IXP member counts to the generated topology.
  double membership_scale = 0.35;
  /// Probability an AS's PeeringDB record discloses its policy.
  double policy_disclosure = 0.55;
  /// Self-reported policy mix among disclosed records (section 5.2).
  double frac_open = 0.72, frac_selective = 0.24;  // rest: restrictive
  /// Per-IXP route-server opt-in probability by (true) policy.
  double rs_optin_open = 0.82, rs_optin_selective = 0.62,
         rs_optin_restrictive = 0.33;
  /// Members tagging the (default) ALL community explicitly.
  double explicit_all_prob = 0.3;
  /// Fraction of transit ASes that scrub communities when re-exporting.
  double scrub_prob = 0.08;
  /// Bilateral (non-RS) peering pairs per IXP, as a fraction of RS links.
  double bilateral_factor = 0.06;
  /// Collector feeder sessions per collector.
  std::size_t feeds_per_collector = 40;
  /// Member looking glasses (validation vantage points).
  std::size_t member_lgs = 40;
  /// Fraction of member LGs that display all paths (figure 8 mix).
  double lg_all_paths_fraction = 0.6;
  /// Fraction of LG operators preferring bilateral sessions over the RS
  /// (14 of 70 in the paper).
  double prefer_bilateral_fraction = 0.2;
  std::uint64_t seed = 20130501;

  ScenarioParams() { topology.n_ases = 2000; }
};

/// One deployed IXP: route server, membership, and ground truth.
struct IxpDeployment {
  IxpSpec spec;
  Asn rs_asn = 0;
  std::unique_ptr<routeserver::RouteServer> server;
  std::set<Asn> members;          // everyone at the IXP
  util::FlatAsnSet rs_members;    // subset connected to the route server
  /// Ground-truth outbound filters (what each member configures).
  std::map<Asn, routeserver::ExportPolicy> exports;
  /// Ground-truth inbound filters (at most as restrictive, section 4.4).
  std::map<Asn, routeserver::ExportPolicy> imports;
  /// Whether the member tags ALL explicitly on its announcements.
  std::map<Asn, bool> explicit_all;
  /// Ground-truth multilateral links over this route server.
  std::set<AsLink> rs_links;
  /// Bilateral sessions across the IXP fabric (invisible to the method).
  std::set<AsLink> bilateral_links;
  /// IXP peering LAN base address (a /24 per IXP).
  std::uint32_t lan_base = 0;

  std::uint32_t lan_ip(Asn member) const;
};

/// How a p2p graph edge crosses an IXP fabric.
struct Crossing {
  std::size_t ixp_index = 0;
  bool via_route_server = false;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioParams& params);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  const ScenarioParams& params() const { return params_; }
  const topology::Topology& topo() const { return topo_; }
  const std::vector<IxpDeployment>& ixps() const { return ixps_; }
  const registry::PeeringDb& peeringdb() const { return peeringdb_; }
  const irr::IrrDatabase& irr() const { return irr_; }
  propagation::RoutingModel& routing() { return *routing_; }

  /// All (prefix, origin) pairs in announcement order.
  const std::vector<propagation::PrefixOrigin>& origins() const {
    return origins_;
  }
  /// Prefixes originated by one AS.
  const std::vector<IpPrefix>& prefixes_of(Asn asn) const;
  /// Prefixes originated by `asn` or its customer cone, ordered for
  /// geographic diversity (most distant home regions first).
  std::vector<IpPrefix> prefixes_behind(Asn asn) const;

  /// The true peering policy an AS acts on (may be undisclosed).
  registry::PeeringPolicy true_policy(Asn asn) const;

  /// Communities `setter` attaches at `ixp` (ground truth wire view).
  std::vector<bgp::Community> communities_for(Asn setter,
                                              std::size_t ixp_index) const;

  /// Crossings of a p2p edge over IXP fabrics (empty if private PNI).
  const std::vector<Crossing>& crossings(const AsLink& link) const;

  /// Union of ground-truth multilateral links over all route servers.
  std::set<AsLink> all_rs_links() const;

  /// Collectors (filled with routes; table_dump()/update_dump() work).
  std::vector<propagation::Collector>& collectors() { return collectors_; }

  /// Route-server looking glasses, index-aligned with ixps(); null when
  /// the IXP offers none.
  lg::LookingGlassServer* rs_lg(std::size_t ixp_index);

  /// Member looking glasses for validation.
  struct MemberLg {
    Asn operator_asn = 0;
    std::string name;
    std::unique_ptr<bgp::Rib> rib;
    std::unique_ptr<lg::LookingGlassServer> server;
  };
  std::vector<MemberLg>& member_lgs() { return member_lgs_; }

  /// IxpContext (scheme + connectivity) for the inference pipelines.
  core::IxpContext ixp_context(std::size_t ixp_index) const;
  std::vector<core::IxpContext> ixp_contexts() const;

  /// Oracle for the traceroute campaign: IXP LAN ASN of a fabric step.
  propagation::IxpLanFn ixp_lan_fn() const;

  /// Ground-truth relationship oracle (for upper-bound experiments).
  bgp::RelFn truth_rel_fn() const { return topo_.graph.rel_fn(); }

  /// All AS paths archived by the collectors (for relationship inference).
  std::vector<bgp::AsPath> collector_paths() const;

 private:
  friend struct ScenarioBuilder;

  ScenarioParams params_;
  topology::Topology topo_;
  std::vector<IxpDeployment> ixps_;
  registry::PeeringDb peeringdb_;
  irr::IrrDatabase irr_;
  std::unique_ptr<propagation::RoutingModel> routing_;
  std::vector<propagation::Collector> collectors_;
  std::vector<std::unique_ptr<lg::LookingGlassServer>> rs_lgs_;
  std::vector<MemberLg> member_lgs_;

  std::vector<propagation::PrefixOrigin> origins_;
  std::map<Asn, std::vector<IpPrefix>> prefixes_;
  std::map<Asn, registry::PeeringPolicy> true_policy_;
  std::map<AsLink, std::vector<Crossing>> crossings_;
  std::set<Asn> scrubbers_;  // transit ASes that strip communities
};

/// The paper's 13-IXP roster with table 2 size weights.
std::vector<IxpSpec> paper_ixp_roster();

}  // namespace mlp::scenario
