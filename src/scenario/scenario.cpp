#include "scenario/scenario.hpp"

#include <algorithm>

#include "scenario/builder.hpp"
#include "util/errors.hpp"

namespace mlp::scenario {

std::vector<IxpSpec> paper_ixp_roster() {
  using routeserver::SchemeStyle;
  auto spec = [](std::string name, Region region, double weight, bool lg,
                 bool flat, SchemeStyle style) {
    IxpSpec s;
    s.name = std::move(name);
    s.region = region;
    s.size_weight = weight;
    s.has_rs_lg = lg;
    s.flat_fee = flat;
    s.style = style;
    return s;
  };
  // Weights follow table 2's "ASes" column; LG column follows the paper
  // (AMS-IX, LINX, LONAP, STHIX offered no RS LG).
  std::vector<IxpSpec> roster = {
      spec("AMS-IX", Region::WesternEurope, 574, false, true,
           SchemeStyle::RsAsnBased),
      spec("DE-CIX", Region::WesternEurope, 483, true, true,
           SchemeStyle::RsAsnBased),
      spec("LINX", Region::WesternEurope, 457, false, true,
           SchemeStyle::RsAsnBased),
      spec("MSK-IX", Region::EasternEurope, 374, true, true,
           SchemeStyle::RsAsnBased),
      spec("PLIX", Region::EasternEurope, 222, true, true,
           SchemeStyle::RsAsnBased),
      spec("France-IX", Region::WesternEurope, 193, true, true,
           SchemeStyle::RsAsnBased),
      spec("LONAP", Region::WesternEurope, 120, false, true,
           SchemeStyle::RsAsnBased),
      spec("ECIX", Region::WesternEurope, 102, true, true,
           SchemeStyle::PrivateRangeBased),
      spec("SPB-IX", Region::EasternEurope, 89, true, false,
           SchemeStyle::RsAsnBased),
      spec("DTEL-IX", Region::EasternEurope, 74, true, false,
           SchemeStyle::RsAsnBased),
      spec("TOP-IX", Region::WesternEurope, 71, true, false,
           SchemeStyle::PrivateRangeBased),
      spec("STHIX", Region::WesternEurope, 69, false, true,
           SchemeStyle::RsAsnBased),
      spec("BIX.BG", Region::EasternEurope, 53, true, true,
           SchemeStyle::RsAsnBased),
  };
  // France-IX's LG did not output community attributes (section 5).
  for (auto& s : roster)
    if (s.name == "France-IX") s.lg_shows_communities = false;
  return roster;
}

std::uint32_t IxpDeployment::lan_ip(Asn member) const {
  auto it = members.find(member);
  if (it == members.end())
    throw InvalidArgument("lan_ip: AS" + std::to_string(member) +
                          " is not at " + spec.name);
  const auto index =
      static_cast<std::uint32_t>(std::distance(members.begin(), it));
  // A /23 per IXP: up to 510 member addresses.
  return lan_base + 1 + index;
}

Scenario::Scenario(const ScenarioParams& params) : params_(params) {
  Rng rng(params.seed);
  topo_ = topology::generate_topology(params.topology, rng);

  ScenarioBuilder builder(*this, rng.fork(1).seed());
  builder.assign_policies();
  builder.assign_prefixes();
  builder.build_ixps();
  builder.announce_to_route_servers();
  builder.derive_links_and_augment_graph();

  routing_ = std::make_unique<propagation::RoutingModel>(topo_.graph);

  builder.build_collectors();
  builder.build_rs_lgs();
  builder.build_member_lgs();
  builder.build_irr();
  builder.build_registry();
}

Scenario::~Scenario() = default;

const std::vector<IpPrefix>& Scenario::prefixes_of(Asn asn) const {
  static const std::vector<IpPrefix> kNone;
  auto it = prefixes_.find(asn);
  return it == prefixes_.end() ? kNone : it->second;
}

std::vector<IpPrefix> Scenario::prefixes_behind(Asn asn) const {
  // Own prefixes plus the customer cone's, most geographically distant
  // origins first (the paper picks up to six maximally spread prefixes).
  const Region home = topo_.profile(asn).home_region;
  std::vector<std::pair<int, IpPrefix>> ranked;
  for (const Asn member : topo_.graph.customer_cone(asn)) {
    auto it = prefixes_.find(member);
    if (it == prefixes_.end()) continue;
    const int distance =
        topo_.profile(member).home_region == home ? 1 : 0;
    for (const auto& prefix : it->second)
      ranked.emplace_back(distance, prefix);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<IpPrefix> out;
  out.reserve(ranked.size());
  for (const auto& [distance, prefix] : ranked) out.push_back(prefix);
  return out;
}

registry::PeeringPolicy Scenario::true_policy(Asn asn) const {
  auto it = true_policy_.find(asn);
  if (it == true_policy_.end())
    throw InvalidArgument("true_policy: AS" + std::to_string(asn) +
                          " unknown");
  return it->second;
}

std::vector<bgp::Community> Scenario::communities_for(
    Asn setter, std::size_t ixp_index) const {
  const IxpDeployment& ixp = ixps_.at(ixp_index);
  auto it = ixp.exports.find(setter);
  if (it == ixp.exports.end()) return {};
  const bool explicit_all = ixp.explicit_all.count(setter)
                                ? ixp.explicit_all.at(setter)
                                : false;
  return it->second.to_communities(ixp.server->scheme(), explicit_all);
}

const std::vector<Crossing>& Scenario::crossings(const AsLink& link) const {
  static const std::vector<Crossing> kNone;
  auto it = crossings_.find(link);
  return it == crossings_.end() ? kNone : it->second;
}

std::set<AsLink> Scenario::all_rs_links() const {
  std::set<AsLink> out;
  for (const auto& ixp : ixps_)
    out.insert(ixp.rs_links.begin(), ixp.rs_links.end());
  return out;
}

lg::LookingGlassServer* Scenario::rs_lg(std::size_t ixp_index) {
  return rs_lgs_.at(ixp_index).get();
}

core::IxpContext Scenario::ixp_context(std::size_t ixp_index) const {
  const IxpDeployment& ixp = ixps_.at(ixp_index);
  core::IxpContext ctx;
  ctx.name = ixp.spec.name;
  ctx.scheme = ixp.server->scheme();
  ctx.rs_members = ixp.rs_members;
  return ctx;
}

std::vector<core::IxpContext> Scenario::ixp_contexts() const {
  std::vector<core::IxpContext> out;
  out.reserve(ixps_.size());
  for (std::size_t i = 0; i < ixps_.size(); ++i)
    out.push_back(ixp_context(i));
  return out;
}

propagation::IxpLanFn Scenario::ixp_lan_fn() const {
  return [this](Asn a, Asn b) -> std::optional<Asn> {
    const auto& list = crossings(AsLink(a, b));
    if (list.empty()) return std::nullopt;
    return ixps_[list.front().ixp_index].rs_asn;
  };
}

std::vector<bgp::AsPath> Scenario::collector_paths() const {
  std::vector<bgp::AsPath> out;
  for (const auto& collector : collectors_) {
    for (const auto& prefix : collector.rib().prefixes()) {
      for (const auto& entry : collector.rib().paths(prefix))
        out.push_back(entry.route.attrs.as_path);
    }
  }
  return out;
}

}  // namespace mlp::scenario
