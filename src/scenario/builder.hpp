// Internal construction helper for Scenario (not part of the public API).
#pragma once

#include "scenario/scenario.hpp"

namespace mlp::scenario {

/// Friend of Scenario; each method fills one slice of the ecosystem.
/// Split across build_ixps.cpp / build_observability.cpp for readability.
struct ScenarioBuilder {
  Scenario& s;
  Rng rng;

  ScenarioBuilder(Scenario& scenario, std::uint64_t seed)
      : s(scenario), rng(seed) {}

  // build_ixps.cpp
  void assign_policies();
  void assign_prefixes();
  void build_ixps();
  void announce_to_route_servers();
  void derive_links_and_augment_graph();

  // build_observability.cpp
  void build_collectors();
  void build_rs_lgs();
  void build_member_lgs();
  void build_irr();
  void build_registry();

  // Helpers shared by the build steps.
  routeserver::ExportPolicy draw_export_policy(const IxpDeployment& ixp,
                                               Asn member);
  std::vector<bgp::Community> wire_communities(const IxpDeployment& ixp,
                                               Asn setter) const;
};

}  // namespace mlp::scenario
