#include <algorithm>
#include <unordered_map>

#include "scenario/builder.hpp"
#include "util/errors.hpp"

namespace mlp::scenario {

using registry::PeeringPolicy;
using routeserver::ExportPolicy;
using routeserver::IxpCommunityScheme;
using topology::Tier;

void ScenarioBuilder::assign_policies() {
  for (const auto& [asn, profile] : s.topo_.profiles) {
    PeeringPolicy policy;
    if (profile.content_heavy) {
      policy = PeeringPolicy::Open;
    } else if (profile.tier == Tier::Clique) {
      // Tier-1 networks do not peer openly.
      policy = rng.chance(0.6) ? PeeringPolicy::Selective
                               : PeeringPolicy::Restrictive;
    } else {
      const double draw = rng.uniform01();
      if (draw < s.params_.frac_open)
        policy = PeeringPolicy::Open;
      else if (draw < s.params_.frac_open + s.params_.frac_selective)
        policy = PeeringPolicy::Selective;
      else
        policy = PeeringPolicy::Restrictive;
    }
    s.true_policy_[asn] = policy;
  }
}

void ScenarioBuilder::assign_prefixes() {
  // Deterministic allocation of /16s out of 10.0.0.0/8 and then /20s out
  // of 100.64.0.0/10 once the /16 pool is exhausted.
  std::uint32_t next16 = 0x0A000000;
  const std::uint32_t end16 = 0x0AFF0000;
  std::uint32_t next20 = 0x64400000;

  for (const Asn asn : s.topo_.graph.ases()) {
    const auto& profile = s.topo_.profile(asn);
    const std::size_t count = profile.content_heavy
                                  ? rng.uniform(4, 8)
                                  : rng.uniform(1, 3);
    auto& list = s.prefixes_[asn];
    for (std::size_t i = 0; i < count; ++i) {
      IpPrefix prefix;
      if (next16 < end16) {
        prefix = IpPrefix(next16, 16);
        next16 += 0x10000;
      } else {
        prefix = IpPrefix(next20, 20);
        next20 += 0x1000;
      }
      list.push_back(prefix);
      s.origins_.push_back({prefix, asn});
    }
  }
}

void ScenarioBuilder::build_ixps() {
  const auto roster = paper_ixp_roster();
  double total_weight = 0.0;
  for (const auto& spec : roster) total_weight += spec.size_weight;
  (void)total_weight;

  std::uint32_t lan_base = 0xC6120000;  // 198.18.0.0/15, a /23 per IXP
  Asn next_rs_asn = 64000;              // unused, 16-bit, non-private

  for (const auto& spec : roster) {
    IxpDeployment ixp;
    ixp.spec = spec;
    ixp.rs_asn = next_rs_asn++;
    ixp.lan_base = lan_base;
    lan_base += 0x200;

    // --- Membership: ASes present in the IXP's region, weighted by role.
    const auto eligible = s.topo_.ases_in(spec.region);
    const std::size_t target = std::max<std::size_t>(
        8, static_cast<std::size_t>(spec.size_weight *
                                    s.params_.membership_scale));
    std::vector<double> weights(eligible.size());
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      const auto& profile = s.topo_.profile(eligible[i]);
      double w = 1.0;
      if (profile.tier == Tier::Transit) w = 4.0;
      if (profile.tier == Tier::Clique) w = 2.0;
      if (profile.content_heavy) w = 6.0;
      weights[i] = w;
    }
    while (ixp.members.size() < std::min(target, eligible.size())) {
      const Asn candidate = eligible[rng.weighted_index(weights)];
      ixp.members.insert(candidate);
    }

    // --- Route server opt-in by true policy.
    IxpCommunityScheme scheme =
        IxpCommunityScheme::make(spec.name, ixp.rs_asn, spec.style);
    std::uint16_t next_alias = bgp::kPrivate16First;
    for (const Asn member : ixp.members) {
      double optin = s.params_.rs_optin_open;
      switch (s.true_policy_.at(member)) {
        case PeeringPolicy::Open:
          optin = s.params_.rs_optin_open;
          break;
        case PeeringPolicy::Selective:
          optin = s.params_.rs_optin_selective;
          break;
        case PeeringPolicy::Restrictive:
          optin = s.params_.rs_optin_restrictive;
          break;
      }
      if (!rng.chance(optin)) continue;
      ixp.rs_members.insert(member);
      if (bgp::is_32bit_only(member)) scheme.add_alias(member, next_alias++);
    }

    routeserver::RouteServer::Options options;
    options.strip_communities = spec.strips_communities;
    ixp.server = std::make_unique<routeserver::RouteServer>(scheme, options);
    for (const Asn member : ixp.rs_members)
      ixp.server->connect(member, ixp.lan_ip(member));

    // --- Ground-truth filters.
    for (const Asn member : ixp.rs_members) {
      ExportPolicy exports = draw_export_policy(ixp, member);
      // Imports are at most as restrictive (section 4.4): half the
      // members accept everyone, half mirror their export filter.
      ExportPolicy imports =
          rng.chance(0.5) ? ExportPolicy::open() : exports;
      ixp.exports.emplace(member, std::move(exports));
      ixp.imports.emplace(member, imports);
      ixp.server->set_import_filter(member, std::move(imports));
      ixp.explicit_all[member] = rng.chance(s.params_.explicit_all_prob);
    }
    s.ixps_.push_back(std::move(ixp));
  }
}

ExportPolicy ScenarioBuilder::draw_export_policy(const IxpDeployment& ixp,
                                                 Asn member) {
  const PeeringPolicy policy = s.true_policy_.at(member);
  const auto& graph = s.topo_.graph;
  const auto cone = graph.customer_cone(member);

  auto open_style = [&](double random_exclude_prob) {
    std::set<Asn> excluded;
    for (const Asn other : ixp.rs_members) {
      if (other == member) continue;
      const bool is_content = s.topo_.profile(other).content_heavy;
      const bool private_peering = graph.rel(member, other) == bgp::Rel::P2P;
      const bool direct_customer = graph.rel(member, other) == bgp::Rel::P2C;
      const bool in_cone = cone.count(other) != 0;
      double p = random_exclude_prob;
      if (is_content && private_peering) {
        // Prefers the direct peering over the multilateral one (the
        // Google/Akamai pattern of figure 13).
        p = 0.85;
      } else if (direct_customer) {
        // Providers rarely also peer multilaterally with their own
        // customers; most EXCLUDE usage targets the cone (section 5.5).
        p = 0.80;
      } else if (in_cone) {
        p = 0.85;
      }
      if (rng.chance(p)) excluded.insert(other);
    }
    return ExportPolicy(ExportPolicy::Mode::AllExcept, std::move(excluded));
  };

  auto allowlist_style = [&](std::size_t lo, std::size_t hi) {
    std::vector<Asn> others;
    for (const Asn other : ixp.rs_members)
      if (other != member) others.push_back(other);
    const std::size_t want =
        std::min<std::size_t>(others.size(), rng.uniform(lo, hi));
    std::set<Asn> included;
    for (const Asn chosen : rng.sample(others, want)) included.insert(chosen);
    return ExportPolicy(ExportPolicy::Mode::NoneExcept, std::move(included));
  };

  switch (policy) {
    case PeeringPolicy::Open:
      return open_style(0.4 / std::max<std::size_t>(1, ixp.rs_members.size()));
    case PeeringPolicy::Selective:
      if (rng.chance(0.55)) return open_style(0.05);
      return allowlist_style(
          1, std::max<std::size_t>(2, ixp.rs_members.size() / 10));
    case PeeringPolicy::Restrictive:
      return allowlist_style(1, 4);
  }
  return ExportPolicy::open();
}

std::vector<bgp::Community> ScenarioBuilder::wire_communities(
    const IxpDeployment& ixp, Asn setter) const {
  auto it = ixp.exports.find(setter);
  if (it == ixp.exports.end()) return {};
  return it->second.to_communities(ixp.server->scheme(),
                                   ixp.explicit_all.at(setter));
}

void ScenarioBuilder::announce_to_route_servers() {
  // Each RS member announces its own prefixes plus its customer cone's,
  // with the provider chain as AS path -- which is why one prefix is often
  // advertised by several members (figure 5).
  for (auto& ixp : s.ixps_) {
    for (const Asn member : ixp.rs_members) {
      // BFS down customer edges recording the chain member -> origin.
      std::unordered_map<Asn, Asn> parent;
      std::vector<Asn> queue = {member};
      parent[member] = member;
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const Asn current = queue[head];
        for (const Asn customer : s.topo_.graph.customers(current)) {
          if (parent.count(customer)) continue;
          parent[customer] = current;
          queue.push_back(customer);
        }
      }
      const auto communities = wire_communities(ixp, member);
      for (const Asn origin : queue) {
        std::vector<Asn> chain;
        for (Asn hop = origin; ; hop = parent[hop]) {
          chain.push_back(hop);
          if (hop == member) break;
        }
        std::reverse(chain.begin(), chain.end());  // member ... origin
        for (const auto& prefix : s.prefixes_of(origin)) {
          bgp::Route route;
          route.prefix = prefix;
          route.attrs.as_path = bgp::AsPath(chain);
          route.attrs.next_hop = ixp.lan_ip(member);
          route.attrs.communities = communities;
          ixp.server->announce(member, std::move(route));
        }
      }
    }
  }
}

void ScenarioBuilder::derive_links_and_augment_graph() {
  // Transit ASes that scrub community attributes on re-export.
  for (const Asn asn : s.topo_.transits)
    if (rng.chance(s.params_.scrub_prob)) s.scrubbers_.insert(asn);

  for (std::size_t index = 0; index < s.ixps_.size(); ++index) {
    IxpDeployment& ixp = s.ixps_[index];
    ixp.rs_links = ixp.server->reciprocal_links();

    // Multilateral links become p2p edges of the routed topology unless a
    // relationship already exists (the hybrid case of section 5.6 keeps
    // its transit edge).
    for (const AsLink& link : ixp.rs_links) {
      if (!s.topo_.graph.rel(link.a, link.b))
        s.topo_.graph.add_edge(link.a, link.b, bgp::Rel::P2P);
      s.crossings_[link].push_back(Crossing{index, true});
    }

    // Bilateral peering across the same fabric: invisible to the method.
    const std::size_t n_bilateral = static_cast<std::size_t>(
        static_cast<double>(ixp.rs_links.size()) *
        s.params_.bilateral_factor);
    std::vector<Asn> members(ixp.members.begin(), ixp.members.end());
    std::size_t attempts = 0;
    while (ixp.bilateral_links.size() < n_bilateral &&
           attempts++ < n_bilateral * 20) {
      const Asn a = rng.pick(members);
      const Asn b = rng.pick(members);
      if (a == b) continue;
      const AsLink link(a, b);
      if (ixp.rs_links.count(link) || ixp.bilateral_links.count(link))
        continue;
      if (!s.topo_.graph.rel(a, b))
        s.topo_.graph.add_edge(a, b, bgp::Rel::P2P);
      ixp.bilateral_links.insert(link);
      s.crossings_[link].push_back(Crossing{index, false});
    }
  }
}

}  // namespace mlp::scenario
