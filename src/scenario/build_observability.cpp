#include <algorithm>
#include <unordered_set>

#include "scenario/builder.hpp"

namespace mlp::scenario {

using propagation::FeedSpec;
using propagation::Via;

namespace {

/// Find the route-server crossing of a collector path, if any: the
/// adjacent pair nearest the origin whose edge crosses an IXP via the RS.
struct RsCrossing {
  bool found = false;
  std::size_t ixp_index = 0;
  Asn setter = 0;
  std::size_t receiver_position = 0;  // index of the member nearer vantage
};

RsCrossing find_rs_crossing(const Scenario& s, const bgp::AsPath& path) {
  const auto& asns = path.asns();
  RsCrossing out;
  // A valley-free path crosses at most one p2p link; search from the
  // origin side so the setter is nearest the prefix.
  for (std::size_t i = asns.size() - 1; i-- > 0;) {
    const AsLink link(asns[i], asns[i + 1]);
    for (const Crossing& crossing : s.crossings(link)) {
      if (!crossing.via_route_server) continue;
      out.found = true;
      out.ixp_index = crossing.ixp_index;
      out.setter = asns[i + 1];  // closer to the origin
      out.receiver_position = i;
      return out;
    }
  }
  return out;
}

}  // namespace

void ScenarioBuilder::build_collectors() {
  // Two collectors in the style of Route Views and RIPE RIS.
  s.collectors_.emplace_back("route-views", 6447, 0x80020101);
  s.collectors_.emplace_back("rrc00", 12654, 0xC1000201);

  // Feeder pool: every clique AS plus a sample of transit providers and
  // route-server members ("RS feeders", section 4.2).
  std::vector<Asn> pool = s.topo_.clique;
  for (const Asn asn : rng.sample(s.topo_.transits,
                                  s.params_.feeds_per_collector))
    pool.push_back(asn);
  std::vector<Asn> rs_member_pool;
  for (const auto& ixp : s.ixps_)
    for (const Asn member : ixp.rs_members) rs_member_pool.push_back(member);
  for (const Asn asn :
       rng.sample(rs_member_pool, s.params_.feeds_per_collector / 2))
    pool.push_back(asn);

  std::unordered_set<Asn> used;
  std::size_t index = 0;
  for (const Asn feeder : pool) {
    if (!used.insert(feeder).second) continue;
    FeedSpec feed;
    feed.feeder = feeder;
    feed.feeder_ip = 0xAC100000 + static_cast<std::uint32_t>(++index);
    // Two-thirds of feeders run the collector session like a peer and
    // export customer routes only (section 2.3).
    feed.full_feed = rng.chance(1.0 / 3.0);
    s.collectors_[index % s.collectors_.size()].add_feed(feed);
  }

  // Decorator: attach the RS communities the setter applied when the
  // path crossed a route server, unless the IXP or a transit AS between
  // the receiver and the vantage scrubs community attributes.
  const auto decorate = [this](const bgp::AsPath& path,
                               bgp::PathAttributes& attrs) {
    const RsCrossing crossing = find_rs_crossing(s, path);
    if (!crossing.found) return;
    const IxpDeployment& ixp = s.ixps_[crossing.ixp_index];
    if (ixp.spec.strips_communities) return;
    const auto& asns = path.asns();
    for (std::size_t i = 0; i <= crossing.receiver_position; ++i)
      if (s.scrubbers_.count(asns[i])) return;
    for (const auto community :
         s.communities_for(crossing.setter, crossing.ixp_index))
      attrs.add_community(community);
  };

  for (auto& collector : s.collectors_)
    collector.collect(*s.routing_, s.origins_, decorate);
}

void ScenarioBuilder::build_rs_lgs() {
  for (std::size_t i = 0; i < s.ixps_.size(); ++i) {
    const IxpDeployment& ixp = s.ixps_[i];
    if (!ixp.spec.has_rs_lg) {
      s.rs_lgs_.push_back(nullptr);
      continue;
    }
    lg::LgConfig config;
    config.name = "lg." + ixp.spec.name;
    config.operator_asn = ixp.rs_asn;
    config.show_all_paths = true;  // route-server LGs expose the full table
    config.show_communities = ixp.spec.lg_shows_communities;
    s.rs_lgs_.push_back(std::make_unique<lg::LookingGlassServer>(
        config, &ixp.server->rib()));
  }
}

void ScenarioBuilder::build_member_lgs() {
  // Candidate operators: RS members (the paper's LGs front RS members or
  // their customers).
  std::vector<Asn> candidates;
  for (const auto& ixp : s.ixps_)
    for (const Asn member : ixp.rs_members) candidates.push_back(member);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  const auto chosen = rng.sample(candidates, s.params_.member_lgs);

  // Per-operator session lists prepared up front; the origin sweep below
  // is the expensive pass, so it computes each routing tree exactly once.
  struct LgDraft {
    Asn oper = 0;
    bool prefers_bilateral = false;
    bool show_all_paths = true;
    std::vector<topology::Neighbor> direct_neighbors;
    std::unique_ptr<bgp::Rib> rib;
  };
  std::vector<LgDraft> drafts;
  for (const Asn oper : chosen) {
    LgDraft draft;
    draft.oper = oper;
    draft.prefers_bilateral =
        rng.chance(s.params_.prefer_bilateral_fraction);
    draft.show_all_paths = rng.chance(s.params_.lg_all_paths_fraction);
    draft.rib = std::make_unique<bgp::Rib>();
    // Direct sessions: edges whose only fabric crossing is via a route
    // server arrive through the RS sessions instead.
    for (const auto& neighbor : s.topo_.graph.neighbors(oper)) {
      const auto& crossings = s.crossings(AsLink(oper, neighbor.asn));
      const bool rs_only_edge =
          !crossings.empty() &&
          std::all_of(crossings.begin(), crossings.end(),
                      [](const Crossing& c) { return c.via_route_server; });
      if (!rs_only_edge) draft.direct_neighbors.push_back(neighbor);
    }
    drafts.push_back(std::move(draft));
  }

  // Bilateral / transit Adj-RIB-In, one routing tree per origin AS.
  for (const auto& [prefix, origin] : s.origins_) {
    const auto& tree = s.routing_->tree(origin);
    for (auto& draft : drafts) {
      for (const auto& neighbor : draft.direct_neighbors) {
        if (!tree.reachable(neighbor.asn)) continue;
        const Via via = tree.via(neighbor.asn);
        // The neighbor exports customer routes to everyone; everything
        // else only to its customers and siblings. neighbor.rel is the
        // operator's relationship toward the neighbor, so C2P means the
        // neighbor is the operator's provider (and the operator its
        // customer).
        const bool exports =
            via == Via::Customer || via == Via::Origin ||
            neighbor.rel == bgp::Rel::C2P ||
            neighbor.rel == bgp::Rel::Sibling;
        if (!exports) continue;
        auto path = tree.path_from(neighbor.asn);
        if (!path || path->contains(draft.oper)) continue;
        bgp::Route route;
        route.prefix = prefix;
        route.attrs.as_path = *path;
        route.attrs.next_hop = neighbor.asn;
        route.attrs.has_local_pref = true;
        switch (neighbor.rel) {
          case bgp::Rel::P2C:
            route.attrs.local_pref = 200;
            break;
          case bgp::Rel::Sibling:
            route.attrs.local_pref = 180;
            break;
          case bgp::Rel::P2P:
            route.attrs.local_pref = 100;
            break;
          case bgp::Rel::C2P:
            route.attrs.local_pref = 50;
            break;
        }
        draft.rib->announce(neighbor.asn, neighbor.asn, std::move(route));
      }
    }
  }

  for (auto& draft : drafts) {
    // Route-server sessions: the filtered Adj-RIB-Out of every RS the
    // operator subscribes to. Paths learned this way carry the setter as
    // the peer; some operators prefer bilateral sessions (lower pref).
    for (const auto& ixp : s.ixps_) {
      if (!ixp.rs_members.count(draft.oper)) continue;
      for (const auto& entry : ixp.server->exports_to(draft.oper)) {
        bgp::Route route = entry.route;
        route.attrs.has_local_pref = true;
        route.attrs.local_pref = draft.prefers_bilateral ? 90 : 100;
        draft.rib->announce(entry.peer_asn, entry.peer_ip, std::move(route));
      }
    }

    Scenario::MemberLg lg;
    lg.operator_asn = draft.oper;
    lg.name = "lg.as" + std::to_string(draft.oper) + ".example.net";
    lg.rib = std::move(draft.rib);
    lg::LgConfig config;
    config.name = lg.name;
    config.operator_asn = draft.oper;
    config.show_all_paths = draft.show_all_paths;
    lg.server =
        std::make_unique<lg::LookingGlassServer>(config, lg.rib.get());
    s.member_lgs_.push_back(std::move(lg));
  }
}

void ScenarioBuilder::build_irr() {
  // as-set objects listing RS members (connectivity source ii); the LINX
  // analogue registers none, matching the paper's partial data there.
  for (const auto& ixp : s.ixps_) {
    if (ixp.spec.name == "LINX") continue;
    irr::RpslObject object;
    object.add("as-set",
               "AS" + std::to_string(ixp.rs_asn) + ":AS-MEMBERS");
    object.add("descr", ixp.spec.name + " route server members");
    std::string members;
    for (const Asn member : ixp.rs_members) {
      if (!members.empty()) members += ", ";
      members += "AS" + std::to_string(member);
    }
    object.add("members", members);
    s.irr_.add(std::move(object));
  }

  // AMS-IX-style IRR filters: aut-num import/export lines generated from
  // the ground-truth filters of the largest IXP's members (section 4.4).
  const IxpDeployment& amsix = s.ixps_.front();
  for (const Asn member : amsix.rs_members) {
    irr::RpslObject object;
    object.add("aut-num", "AS" + std::to_string(member));
    object.add("as-name", "AS" + std::to_string(member) + "-NET");
    const auto& exports = amsix.exports.at(member);
    const auto& imports = amsix.imports.at(member);
    auto emit = [&](const char* attr, const char* word, const char* tail,
                    const routeserver::ExportPolicy& policy) {
      if (policy.mode() == routeserver::ExportPolicy::Mode::AllExcept &&
          policy.peers().empty()) {
        object.add(attr, std::string(word) + " ANY " + tail);
        return;
      }
      for (const Asn peer : amsix.rs_members) {
        if (peer == member || !policy.allows(peer)) continue;
        object.add(attr, std::string(word) + " AS" + std::to_string(peer) +
                             " " + tail);
      }
    };
    emit("import", "from", "accept ANY", imports);
    emit("export", "to",
         ("announce AS" + std::to_string(member)).c_str(), exports);
    s.irr_.add(std::move(object));
  }
}

void ScenarioBuilder::build_registry() {
  std::unordered_set<Asn> lg_operators;
  for (const auto& lg : s.member_lgs_) lg_operators.insert(lg.operator_asn);

  std::map<Asn, std::vector<std::string>> memberships;
  for (const auto& ixp : s.ixps_)
    for (const Asn member : ixp.members)
      memberships[member].push_back(ixp.spec.name);

  for (const auto& [asn, ixp_names] : memberships) {
    registry::NetworkRecord record;
    record.asn = asn;
    record.name = "AS" + std::to_string(asn) + "-NET";
    if (rng.chance(s.params_.policy_disclosure))
      record.policy = s.true_policy_.at(asn);
    // Scope from footprint: all-region presence reads as Global, a
    // multi-region European footprint as Europe, otherwise Regional;
    // some operators leave it blank.
    const auto& profile = s.topo_.profile(asn);
    if (rng.chance(0.15)) {
      record.scope = registry::GeoScope::NotDisclosed;
    } else if (profile.presence.size() >= 4) {
      record.scope = registry::GeoScope::Global;
    } else if (profile.presence.size() >= 2) {
      record.scope = registry::GeoScope::Europe;
    } else {
      record.scope = registry::GeoScope::Regional;
    }
    if (lg_operators.count(asn))
      record.looking_glass = "lg.as" + std::to_string(asn) + ".example.net";
    record.ixps = ixp_names;
    s.peeringdb_.upsert(std::move(record));
  }
}

}  // namespace mlp::scenario
