#include "irr/database.hpp"

#include <vector>

#include "util/strings.hpp"

namespace mlp::irr {

std::optional<Asn> parse_as_reference(std::string_view token) {
  if (!mlp::starts_with(token, "AS") && !mlp::starts_with(token, "as"))
    return std::nullopt;
  return mlp::parse_u32(token.substr(2));
}

std::string IrrDatabase::key_of(const RpslObject& object) {
  return mlp::to_lower(object.class_name()) + "|" +
         mlp::to_lower(object.primary_key());
}

void IrrDatabase::add(RpslObject object) {
  if (object.empty()) return;
  objects_[key_of(object)] = std::move(object);
}

void IrrDatabase::load(std::string_view rpsl_text) {
  for (auto& object : parse_rpsl(rpsl_text)) add(std::move(object));
}

const RpslObject* IrrDatabase::find(std::string_view class_name,
                                    std::string_view key) const {
  auto it = objects_.find(mlp::to_lower(class_name) + "|" +
                          mlp::to_lower(key));
  return it == objects_.end() ? nullptr : &it->second;
}

std::optional<std::set<Asn>> IrrDatabase::expand_as_set(
    std::string_view name) const {
  const RpslObject* root = find("as-set", name);
  if (!root) return std::nullopt;

  std::set<Asn> out;
  std::set<std::string> visited;
  std::vector<const RpslObject*> stack = {root};
  visited.insert(mlp::to_lower(std::string(name)));
  while (!stack.empty()) {
    const RpslObject* object = stack.back();
    stack.pop_back();
    for (const auto& members_line : object->all("members")) {
      // Members may be comma- and/or whitespace-separated.
      for (auto& piece : mlp::split(members_line, ',')) {
        for (const auto& token : mlp::split_ws(piece)) {
          if (auto asn = parse_as_reference(token)) {
            // "AS-FOO" parses as a failed number; real ASNs succeed.
            out.insert(*asn);
            continue;
          }
          const std::string lowered = mlp::to_lower(token);
          if (visited.count(lowered)) continue;
          visited.insert(lowered);
          if (const RpslObject* nested = find("as-set", token))
            stack.push_back(nested);
          // Unknown nested sets are silently skipped, like tools that
          // resolve against a partial mirror.
        }
      }
    }
  }
  return out;
}

std::optional<PeerFilter> IrrDatabase::filter_of(
    Asn asn, std::string_view attr, std::string_view direction_word) const {
  const RpslObject* object = find("aut-num", "AS" + std::to_string(asn));
  if (!object) return std::nullopt;
  const auto lines = object->all(attr);
  if (lines.empty()) return std::nullopt;

  PeerFilter filter;
  for (const auto& line : lines) {
    // Expected shapes: "from AS123 accept ANY", "to AS123 announce AS42",
    // "from ANY accept ANY", "to ANY announce AS42".
    const auto tokens = mlp::split_ws(line);
    if (tokens.size() < 2 || !mlp::iequals(tokens[0], direction_word))
      continue;
    if (mlp::iequals(tokens[1], "ANY")) {
      filter.any = true;
      continue;
    }
    if (auto peer = parse_as_reference(tokens[1])) filter.peers.insert(*peer);
  }
  return filter;
}

std::optional<PeerFilter> IrrDatabase::import_filter(Asn asn) const {
  return filter_of(asn, "import", "from");
}

std::optional<PeerFilter> IrrDatabase::export_filter(Asn asn) const {
  return filter_of(asn, "export", "to");
}

std::string IrrDatabase::dump() const {
  std::vector<RpslObject> all;
  all.reserve(objects_.size());
  for (const auto& [key, object] : objects_) all.push_back(object);
  return serialize(all);
}

}  // namespace mlp::irr
