// An in-memory IRR database over RPSL objects: as-set expansion and
// aut-num import/export filter extraction.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "bgp/asn.hpp"
#include "irr/rpsl.hpp"

namespace mlp::irr {

using bgp::Asn;

/// A peer filter extracted from aut-num policy lines: either "ANY" or an
/// explicit allow-set of peer ASNs.
struct PeerFilter {
  bool any = false;
  std::set<Asn> peers;

  bool allows(Asn asn) const { return any || peers.count(asn) != 0; }
  std::size_t listed() const { return peers.size(); }

  friend bool operator==(const PeerFilter&, const PeerFilter&) = default;
};

/// Registry of RPSL objects with the queries the paper's pipeline needs.
class IrrDatabase {
 public:
  /// Add an object; later objects with the same (class, key) replace
  /// earlier ones (as a fresher database dump would).
  void add(RpslObject object);

  /// Load every object from a database dump.
  void load(std::string_view rpsl_text);

  std::size_t object_count() const { return objects_.size(); }

  const RpslObject* find(std::string_view class_name,
                         std::string_view key) const;

  /// Expand an as-set recursively (members may be ASNs or nested sets).
  /// Unknown nested sets are ignored; cycles are tolerated. Returns
  /// nullopt if the set itself does not exist.
  std::optional<std::set<Asn>> expand_as_set(std::string_view name) const;

  /// Import filter of an aut-num: who it accepts routes from. Extracted
  /// from `import: from <peer> accept ...` lines ("from ANY" sets any).
  /// Nullopt if the aut-num is missing or has no import lines.
  std::optional<PeerFilter> import_filter(Asn asn) const;

  /// Export filter: who it announces routes to, from
  /// `export: to <peer> announce ...` lines ("to ANY" sets any).
  std::optional<PeerFilter> export_filter(Asn asn) const;

  /// Serialize the whole database.
  std::string dump() const;

 private:
  static std::string key_of(const RpslObject& object);
  std::optional<PeerFilter> filter_of(Asn asn, std::string_view attr,
                                      std::string_view direction_word) const;

  std::map<std::string, RpslObject> objects_;  // "class|KEY" -> object
};

/// Parse "AS123" into 123; nullopt for as-set names or garbage.
std::optional<Asn> parse_as_reference(std::string_view token);

}  // namespace mlp::irr
