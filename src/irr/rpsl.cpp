#include "irr/rpsl.hpp"

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace mlp::irr {

namespace {
const std::string kEmpty;
}

const std::string& RpslObject::class_name() const {
  return attrs_.empty() ? kEmpty : attrs_.front().key;
}

const std::string& RpslObject::primary_key() const {
  return attrs_.empty() ? kEmpty : attrs_.front().value;
}

std::optional<std::string> RpslObject::first(std::string_view key) const {
  for (const auto& attr : attrs_)
    if (mlp::iequals(attr.key, key)) return attr.value;
  return std::nullopt;
}

std::vector<std::string> RpslObject::all(std::string_view key) const {
  std::vector<std::string> out;
  for (const auto& attr : attrs_)
    if (mlp::iequals(attr.key, key)) out.push_back(attr.value);
  return out;
}

void RpslObject::add(std::string key, std::string value) {
  attrs_.push_back(RpslAttribute{mlp::to_lower(key), std::move(value)});
}

std::vector<RpslObject> parse_rpsl(std::string_view text) {
  std::vector<RpslObject> objects;
  std::vector<RpslAttribute> current;

  auto flush = [&] {
    if (!current.empty()) {
      objects.emplace_back(std::move(current));
      current.clear();
    }
  };

  for (const auto& raw_line : mlp::split(text, '\n')) {
    // Strip comments ('%' whole-line, '#' inline).
    std::string_view line = raw_line;
    if (!line.empty() && line.front() == '%') continue;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);

    if (mlp::trim(line).empty()) {
      flush();
      continue;
    }

    // Continuation: leading whitespace or '+'.
    if (line.front() == ' ' || line.front() == '\t' || line.front() == '+') {
      if (current.empty())
        throw ParseError("RPSL: continuation line outside an object: " +
                         std::string(raw_line));
      std::string_view body = line;
      if (body.front() == '+') body.remove_prefix(1);
      const std::string_view trimmed = mlp::trim(body);
      if (!trimmed.empty()) {
        if (!current.back().value.empty()) current.back().value += ' ';
        current.back().value += trimmed;
      }
      continue;
    }

    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos)
      throw ParseError("RPSL: attribute line without colon: " +
                       std::string(raw_line));
    RpslAttribute attr;
    attr.key = mlp::to_lower(mlp::trim(line.substr(0, colon)));
    attr.value = std::string(mlp::trim(line.substr(colon + 1)));
    if (attr.key.empty())
      throw ParseError("RPSL: empty attribute key: " + std::string(raw_line));
    current.push_back(std::move(attr));
  }
  flush();
  return objects;
}

std::string serialize(const RpslObject& object) {
  std::string out;
  for (const auto& attr : object.attributes()) {
    out += attr.key;
    out += ':';
    // Align values at column 16 like RIPE whois output.
    const std::size_t pad =
        attr.key.size() + 1 < 16 ? 16 - attr.key.size() - 1 : 1;
    out.append(pad, ' ');
    out += attr.value;
    out += '\n';
  }
  return out;
}

std::string serialize(const std::vector<RpslObject>& objects) {
  std::string out;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (i) out += '\n';
    out += serialize(objects[i]);
  }
  return out;
}

}  // namespace mlp::irr
