// RPSL (Routing Policy Specification Language, RFC 2622) object model and
// parser, covering the subset the paper consumes from the IRR:
//
//   as-set objects  -- route-server member lists (connectivity source ii)
//   aut-num objects -- import/export policy lines (section 4.4 filters)
//
// The textual format: objects are blocks of "key: value" attributes
// separated by blank lines; continuation lines start with whitespace or
// '+'; '%' and '#' introduce comments.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mlp::irr {

struct RpslAttribute {
  std::string key;    // lower-cased
  std::string value;  // continuation lines joined with single spaces

  friend bool operator==(const RpslAttribute&,
                         const RpslAttribute&) = default;
};

/// One RPSL object (a block of attributes).
class RpslObject {
 public:
  RpslObject() = default;
  explicit RpslObject(std::vector<RpslAttribute> attrs)
      : attrs_(std::move(attrs)) {}

  /// The class is the key of the first attribute ("aut-num", "as-set"...).
  const std::string& class_name() const;
  /// The primary key is the value of the first attribute ("AS8359").
  const std::string& primary_key() const;

  const std::vector<RpslAttribute>& attributes() const { return attrs_; }
  bool empty() const { return attrs_.empty(); }

  /// First value for `key` (case-insensitive), if any.
  std::optional<std::string> first(std::string_view key) const;
  /// All values for `key`, in order.
  std::vector<std::string> all(std::string_view key) const;

  void add(std::string key, std::string value);

  friend bool operator==(const RpslObject&, const RpslObject&) = default;

 private:
  std::vector<RpslAttribute> attrs_;
};

/// Parse a whole database file into objects. Malformed lines (no colon,
/// outside a continuation) raise ParseError.
std::vector<RpslObject> parse_rpsl(std::string_view text);

/// Render an object in canonical "key: value" form.
std::string serialize(const RpslObject& object);
std::string serialize(const std::vector<RpslObject>& objects);

}  // namespace mlp::irr
