// Live update-stream inference session.
//
// The archive pipeline (InferencePipeline) consumes complete MRT files;
// a live deployment instead watches route-collector feeds and wants the
// multilateral link set to evolve as updates arrive. LiveSession is that
// front end, generalized to N concurrent feeds (one per collector):
//
//   feed 0 bytes          feed 1 bytes            ...   add_feed()
//        |                     |
//   [stream::BmpFramer]   [stream::BmpFramer]     (BMP transports only:
//        |                     |                   RFC 7854 unwrap)
//   stream::MrtFramer     stream::MrtFramer       -- complete record
//        |                     |                     spans, one partial
//   stream::UpdateDecoder stream::UpdateDecoder     record max
//        |                     |
//   PassiveExtractor      PassiveExtractor        -- per-feed announce-
//        |                     |                     window + stats
//        +----------+----------+
//                   v
//   per-IXP ObservationQueue, source index == feed index
//                   |
//                   v
//   MlpInferenceEngine::add on a thread pool (one pump per IXP)
//
// Multi-feed determinism: each feed is an independent ingest lane, so
// per-feed engine add-order equals that feed's stream order, and the
// per-IXP queue's strict source-index drain merges feeds as the
// CONCATENATION in add_feed order -- the final link sets depend only on
// each feed's byte sequence, never on arrival interleaving or thread
// count. The result is byte-identical to InferencePipeline over the same
// per-feed archives, and to single-stream archive ingest of the per-feed
// concatenation whenever the feeds observe disjoint (peer, prefix) keys
// (distinct vantage points). The flip side of strict concatenation: a
// later feed's observations are buffered in the queues until every
// earlier feed closes, so feeds that never close defer cross-feed merge
// work to finish().
//
// Threading: feed() calls on ONE lane must be serialized, but different
// lanes may be driven from different threads concurrently (each reader
// thread owns one FeedHandle). snapshot()/finish() briefly lock every
// lane, so they are safe against concurrent feeding.
//
// snapshot() is cheap on purpose: it flushes partial batches, lets the
// pool settle, and reads each engine's link count via count_links (a
// popcount over the reciprocity bitset) -- no link-set materialization.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/passive.hpp"
#include "pipeline/observation_queue.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/thread_pool.hpp"
#include "stream/bmp_framer.hpp"
#include "stream/decoder.hpp"
#include "stream/framer.hpp"
#include "stream/source.hpp"

namespace mlp::pipeline {

struct LiveConfig {
  /// Inference pool workers; 0 means hardware concurrency.
  std::size_t threads = 1;
  /// Observations per emitted batch.
  std::size_t batch_size = 256;
  /// Transient filtering, announce-window bound, tolerate_malformed
  /// (applied per feed: each lane runs its own extractor).
  core::PassiveConfig passive;
  /// Forwarded to infer_links / count_links.
  bool assume_open_for_unobserved = false;
  /// Record-length cap for the framer.
  stream::MrtFramer::Config framing;
  /// Read-buffer size used by drain().
  std::size_t read_chunk = 65536;
};

/// Per-feed transport/config of one add_feed call.
struct FeedOptions {
  /// Label used in stats and error messages; "feed<index>" by default.
  std::string name;
  /// The feed delivers BMP (RFC 7854) instead of raw MRT: Route
  /// Monitoring messages are unwrapped in front of the framer.
  bool bmp = false;
  /// Message-length cap for the BMP layer.
  stream::BmpFramer::Config bmp_framing;
};

/// Per-feed ingest and transport counters.
struct FeedStats {
  std::string name;
  std::uint64_t bytes_fed = 0;      // transport bytes (BMP bytes for BMP)
  std::uint64_t records = 0;        // complete update records framed
  std::size_t records_skipped = 0;  // non-update records stepped over
  std::uint64_t bmp_messages = 0;   // BMP feeds: complete messages framed
  std::uint64_t bmp_skipped = 0;    // BMP feeds: non-RM/IPv6/non-UPDATE
  std::uint64_t clean_disconnects = 0;   // note_disconnect at a boundary
  std::uint64_t dirty_disconnects = 0;   // note_disconnect mid-record
  std::uint64_t partial_records_dropped = 0;  // partials lost to resets
  core::PassiveStats passive;       // this feed's extraction counters
};

/// Cheap point-in-time view of a running session.
struct LiveSnapshot {
  std::uint64_t bytes_fed = 0;      // summed over feeds
  std::uint64_t records = 0;        // complete records framed, all feeds
  std::size_t records_skipped = 0;  // non-update records stepped over
  core::PassiveStats passive;       // merged over feeds
  /// count_links per IXP, in construction order.
  std::vector<std::size_t> links_per_ixp;
  std::vector<FeedStats> per_feed;  // in add_feed order
};

/// Final product, shaped like the archive pipeline's result.
struct LiveResult {
  std::vector<IxpResult> per_ixp;
  std::set<AsLink> all_links;
  core::PassiveStats passive;       // merged over feeds
  std::uint64_t records = 0;
  std::size_t records_skipped = 0;
  std::vector<FeedStats> per_feed;  // in add_feed order
};

class LiveSession;

/// Lightweight reference to one feed of a LiveSession (copyable; the
/// session must outlive it). One thread may drive one handle; distinct
/// handles may be driven concurrently.
class FeedHandle {
 public:
  FeedHandle() = default;

  /// Ingest one chunk of this feed's raw stream bytes (any chunking).
  /// Strict mode throws ParseError naming the feed and stream offset;
  /// with PassiveConfig::tolerate_malformed the record is skipped and
  /// counted in this feed's records_malformed.
  void feed(std::span<const std::uint8_t> chunk);

  /// Read `source` to end of stream, feeding every chunk; returns the
  /// number of bytes consumed.
  std::uint64_t drain(stream::StreamSource& source);

  /// Transport-level disconnect notification (a reconnect is about to
  /// resume the feed): drops the at-most-one partial record buffered in
  /// the framers and carries every counter over. Counted as a dirty
  /// disconnect when partial bytes were dropped, clean otherwise. Wire
  /// this as ReconnectingSource's on_reconnect callback.
  void note_disconnect();

  /// End of this feed's stream: flush its announce-window and partial
  /// batches, and close its source slot in every IXP queue so later
  /// feeds' buffered observations become drainable. feed() afterwards
  /// throws. Idempotent.
  void close();

  std::size_t index() const { return index_; }
  bool valid() const { return session_ != nullptr; }

 private:
  friend class LiveSession;
  FeedHandle(LiveSession* session, std::size_t index)
      : session_(session), index_(index) {}

  LiveSession* session_ = nullptr;
  std::size_t index_ = 0;
};

class LiveSession {
 public:
  /// `relationships` resolves setter case 3 (may be null). IXP order
  /// fixes the per_ixp / links_per_ixp index.
  LiveSession(LiveConfig config, std::vector<core::IxpContext> ixps,
              bgp::RelFn relationships = nullptr);

  LiveSession(const LiveSession&) = delete;
  LiveSession& operator=(const LiveSession&) = delete;

  /// Register one more concurrent feed. Feed index (= queue source
  /// index = cross-feed merge position) is the registration order.
  /// Callable any time before finish(), including mid-stream.
  FeedHandle add_feed(FeedOptions options = FeedOptions{});

  /// Single-feed compatibility: feed()/drain() on the session operate on
  /// feed 0, creating it (raw MRT transport) on first use.
  void feed(std::span<const std::uint8_t> chunk);
  std::uint64_t drain(stream::StreamSource& source);

  /// Point-in-time stats + per-IXP link counts. Reflects every record
  /// fed so far; callable while other threads keep feeding (they block
  /// on their lane for the duration of the flush).
  LiveSnapshot snapshot();

  /// End of stream: close every remaining feed (announce-window flush,
  /// in feed order), drain the queues and infer the final link sets.
  /// Callable once; feed() afterwards throws.
  LiveResult finish();

  std::size_t ixp_count() const { return shards_.size(); }
  std::size_t feed_count();

  /// Complete records framed so far, summed over feeds. Much cheaper
  /// than snapshot() (no batch flush, no pool settle): callers pace
  /// snapshot() off it.
  std::uint64_t records();

 private:
  friend class FeedHandle;

  /// One feed's independent ingest lane. All mutable state is guarded by
  /// `mutex` so distinct lanes can be driven from distinct threads while
  /// snapshot()/finish() can stop the world.
  struct Lane {
    Lane(std::shared_ptr<const std::vector<core::IxpContext>> ixps,
         bgp::RelFn relationships, const core::PassiveConfig& passive)
        : extractor(std::move(ixps), std::move(relationships), passive) {}

    std::mutex mutex;
    std::string name;
    std::optional<stream::BmpFramer> bmp;  // engaged for BMP transports
    stream::MrtFramer framer;
    stream::UpdateDecoder decoder;
    core::PassiveExtractor extractor;
    /// Mirror of framer.records(), published after every feed so
    /// records() can pace snapshots without taking lane mutexes.
    std::atomic<std::uint64_t> records_framed{0};
    std::uint64_t clean_disconnects = 0;
    std::uint64_t dirty_disconnects = 0;
    std::uint64_t partial_records_dropped = 0;
    bool closed = false;
  };

  /// One IXP's inference lane: a multi-source FIFO queue (source ==
  /// feed) feeding an engine, drained by at most one pump task at a
  /// time.
  struct Shard {
    explicit Shard(core::IxpContext context)
        : queue(0), engine(std::move(context)) {}
    ObservationQueue queue;
    core::MlpInferenceEngine engine;
    /// Owner flag of the pump task (the engine is not thread-safe).
    std::atomic<bool> pump_scheduled{false};
  };

  /// Drain shard `index`'s queue into its engine, rearm-safe.
  void pump(std::size_t index);
  void schedule_pump(std::size_t index);

  Lane& lane(std::size_t index);
  /// Caller holds `lane.mutex`.
  void lane_feed(Lane& target, std::span<const std::uint8_t> chunk);
  void drain_framer(Lane& target);
  void close_locked(Lane& target, std::size_t index);
  FeedStats lane_stats(Lane& target) const;

  LiveConfig config_;
  std::shared_ptr<const std::vector<core::IxpContext>> contexts_;
  bgp::RelFn relationships_;
  std::mutex feeds_mutex_;  // guards feeds_ growth and finish()
  std::vector<std::unique_ptr<Lane>> feeds_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Declared after shards_ so its destructor (which joins the workers)
  // runs first: no pump can outlive the shards it drains.
  ThreadPool pool_;
  std::atomic<bool> finished_{false};
};

}  // namespace mlp::pipeline
