// Live update-stream inference session.
//
// The archive pipeline (InferencePipeline) consumes complete MRT files;
// a live deployment instead watches route-collector feeds and wants the
// multilateral link set to evolve as updates arrive. LiveSession is that
// front end, generalized to N concurrent feeds (one per collector):
//
//   feed 0 bytes          feed 1 bytes            ...   add_feed()
//        |                     |
//   [stream::BmpFramer]   [stream::BmpFramer]     (BMP transports only:
//        |                     |                   RFC 7854 unwrap +
//        |                     |                   PeerUp/PeerDown
//        |                     |                   session events)
//   stream::MrtFramer     stream::MrtFramer       -- complete record
//        |                     |                     spans, one partial
//   stream::UpdateDecoder stream::UpdateDecoder     record max
//        |                     |
//   PassiveExtractor      PassiveExtractor        -- per-feed announce-
//        |                     |                     window + stats +
//        +----------+----------+                     stream clock
//                   v
//   per-IXP ObservationQueue, source index == feed index
//                   |
//                   v
//   MlpInferenceEngine::add on a thread pool (one pump per IXP)
//
// Multi-feed determinism: each feed is an independent ingest lane, so
// per-feed engine add-order equals that feed's stream order. How lanes
// merge is LiveConfig::merge:
//
//   MergePolicy::Watermark (default) -- each lane publishes its
//   extractor's stream clock (the running max of consumed record
//   timestamps) as a watermark after every chunk; the per-IXP queues
//   drain observations strictly below the minimum watermark over open
//   feeds, smallest (timestamp, feed index) first. The merged engine
//   order is the unique stable timestamp merge of the per-feed
//   observation sequences: a pure function of each feed's byte
//   sequence, independent of arrival interleaving, chunking and thread
//   count. Open-ended feeds merge continuously -- snapshot() reflects
//   cross-feed observations mid-stream, no close() required. A feed
//   that stalls holds the frontier back; LiveConfig::idle_feed_grace
//   lets the session park such a feed (its watermark stops counting)
//   until it speaks again, trading the determinism guarantee for
//   liveness -- leave it 0 for reproducible runs.
//
//   MergePolicy::Concatenate -- the legacy strict source-index drain:
//   the merged order is the concatenation in add_feed order, and a later
//   feed's observations buffer until every earlier feed closes. Pinned
//   by the archive-equivalence matrix tests; matches InferencePipeline
//   over the same per-feed archives.
//
// BMP session state: a BMP lane surfaces RFC 7854 PeerUp/PeerDown
// messages as session boundaries -- the lane's extractor tears down the
// peer's standing announce-window entries (they settle through the usual
// age test) so routes of a dead session cannot linger as pending state.
// IPv6 peers flow end-to-end (AFI-2 synthesized records).
//
// Health supervision: each lane carries a FeedSupervisor (see
// feed_supervisor.hpp) judging error budgets -- malformed rate over a
// sliding window, consecutive dirty disconnects, a stall watchdog on the
// injected LiveConfig::clock. A lane quarantined or dead by those budgets
// publishes its queue close sentinels, so a persistently sick feed can
// never gate the Concatenate drain order or the Watermark frontier: the
// healthy feeds keep merging (graceful degradation). Quarantined lanes
// still ingest -- their observations are discarded -- and earn
// readmission by a probation run of clean records (Watermark only).
//
// Threading: feed() calls on ONE lane must be serialized, but different
// lanes may be driven from different threads concurrently (each reader
// thread owns one FeedHandle). snapshot()/finish() briefly lock every
// lane, so they are safe against concurrent feeding.
//
// snapshot() is cheap on purpose: it flushes partial batches, lets the
// pool settle, and reads each engine's link count off a freshly
// published epoch (a popcount over the reciprocity bitset) -- no
// link-set materialization.
//
// Epoch publishing decouples READERS from ingest entirely: each shard's
// pump periodically (every LiveConfig::publish_every_batches drained
// batches, after every watermark-advance drain run, and at every
// stop-the-world point) freezes the engine into an immutable
// core::EngineSnapshot and swaps it behind an atomic shared_ptr.
// epoch_snapshot() hands that pointer out with ONE atomic load -- no
// feeds_mutex_, no lane mutex, no stop-the-world -- so any number of
// query threads (the `mlp_infer query` server, dashboards, benchmarks)
// read a consistent epoch while the feed threads keep ingesting.
// Staleness is bounded by the publish cadence: at most the in-flight
// work of one pump run (publish_every_batches batches) behind the
// engine, and exactly current at any settled point (snapshot()/
// finish()/restore_state() republish before returning).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/engine_snapshot.hpp"
#include "core/passive.hpp"
#include "pipeline/feed_supervisor.hpp"
#include "pipeline/observation_queue.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/thread_pool.hpp"
#include "stream/bmp_framer.hpp"
#include "stream/clock.hpp"
#include "stream/decoder.hpp"
#include "stream/framer.hpp"
#include "stream/source.hpp"
#include "util/annotations.hpp"

namespace mlp {
class ByteWriter;
class ByteReader;
}  // namespace mlp

namespace mlp::pipeline {

/// One feed's health transition, as delivered to
/// LiveConfig::on_health_change.
struct HealthChange {
  std::size_t feed = 0;
  std::string name;
  FeedHealth from = FeedHealth::Healthy;
  FeedHealth to = FeedHealth::Healthy;
  std::string reason;
};

/// Wire format of one feed.
enum class Transport : std::uint8_t {
  /// Raw concatenated MRT records (an archive replayed over a socket).
  RawMrt,
  /// BMP (RFC 7854): Route Monitoring unwrap plus PeerUp/PeerDown
  /// session tracking.
  Bmp,
};

struct LiveConfig {
  /// Inference pool workers; 0 means hardware concurrency.
  std::size_t threads = 1;
  /// Observations per emitted batch.
  std::size_t batch_size = 256;
  /// Transient filtering, announce-window bound, tolerate_malformed
  /// (applied per feed: each lane runs its own extractor).
  core::PassiveConfig passive;
  /// Forwarded to infer_links / count_links and baked into every
  /// published EngineSnapshot.
  bool assume_open_for_unobserved = false;
  /// Epoch publishing cadence: a pump freezes and publishes a fresh
  /// EngineSnapshot after draining this many batches since the last
  /// publish -- and always when a drain run settles -- which bounds how
  /// far lock-free readers can trail the engine mid-run. 0 publishes
  /// only at settled points (drain-idle, snapshot, finish, restore).
  std::size_t publish_every_batches = 16;
  /// Record-length cap for the framer.
  stream::MrtFramer::Config framing;
  /// Read-buffer size used by drain().
  std::size_t read_chunk = 65536;
  /// Cross-feed merge policy (see file comment).
  MergePolicy merge = MergePolicy::Watermark;
  /// Watermark policy only: a feed with no ingest for this many
  /// milliseconds of wall time stops constraining the merge frontier
  /// until it speaks again (checked on every feed()/snapshot()). 0
  /// disables the check -- fully deterministic, but one stalled feed
  /// freezes cross-feed draining at its last watermark.
  std::uint64_t idle_feed_grace_ms = 0;
  /// Per-feed health supervision budgets (see feed_supervisor.hpp).
  /// Under MergePolicy::Concatenate the session forces
  /// allow_readmission = false: the drain cursor cannot rewind past a
  /// closed source, so quarantine escalates straight to Dead.
  SupervisorConfig supervision;
  /// Session time source: paces idle parking and the stall watchdog.
  /// Null means the process SystemClock; tests inject a VirtualClock to
  /// replay stall scenarios deterministically.
  std::shared_ptr<stream::Clock> clock;
  /// Invoked on every health transition, with the transitioning lane's
  /// mutex held: the callback must be fast and must not call back into
  /// the session (snapshot()/finish()/feed() would deadlock). May fire
  /// concurrently for distinct feeds.
  std::function<void(const HealthChange&)> on_health_change;
};

/// Per-feed transport/config of one add_feed call.
struct FeedOptions {
  /// Label used in stats and error messages; "feed<index>" by default.
  std::string name;
  /// Wire format delivered by this feed.
  Transport transport = Transport::RawMrt;
  /// Message-length cap for the BMP layer.
  stream::BmpFramer::Config bmp_framing;
};

/// Per-feed ingest and transport counters.
struct FeedStats {
  std::string name;
  std::uint64_t bytes_fed = 0;      // transport bytes (BMP bytes for BMP)
  std::uint64_t records = 0;        // complete update records framed
  std::size_t records_skipped = 0;  // non-update records stepped over
  std::uint64_t bmp_messages = 0;   // BMP feeds: complete messages framed
  std::uint64_t bmp_skipped = 0;    // BMP feeds: non-RM/non-UPDATE
  std::uint64_t bmp_peer_ups = 0;   // BMP feeds: PeerUp events applied
  std::uint64_t bmp_peer_downs = 0; // BMP feeds: PeerDown events applied
  std::uint64_t clean_disconnects = 0;   // note_disconnect at a boundary
  std::uint64_t dirty_disconnects = 0;   // note_disconnect mid-record
  std::uint64_t partial_records_dropped = 0;  // partials lost to resets
  /// The lane's stream clock / published merge watermark.
  std::uint32_t watermark = 0;
  /// This feed's observations queued but not yet merged into the
  /// engines, summed over IXPs -- its share of the merge backlog.
  std::size_t queue_depth = 0;
  bool idle = false;   // parked by idle_feed_grace_ms right now
  bool closed = false;
  core::PassiveStats passive;       // this feed's extraction counters
  // Health supervision (see feed_supervisor.hpp).
  FeedHealth health = FeedHealth::Healthy;
  std::uint64_t health_transitions = 0;  // total transitions fired
  std::uint64_t times_quarantined = 0;
  std::uint64_t bytes_discarded = 0;  // fed while Dead, dropped unread
  std::uint64_t observations_discarded = 0;  // emitted while not merging
  double malformed_rate = 0.0;        // current sliding-window rate
  std::size_t consecutive_dirty_disconnects = 0;
  std::size_t probation_clean_records = 0;
  std::vector<HealthTransition> transitions;  // first 64, in order
};

/// Aggregate counters shared by the mid-stream snapshot and the final
/// result (summed/merged over feeds).
struct SessionTotals {
  std::uint64_t bytes_fed = 0;
  std::uint64_t records = 0;
  std::size_t records_skipped = 0;
  /// The cross-feed merge frontier: minimum watermark over open,
  /// non-idle feeds. 0 when no feed has seen a timestamp yet;
  /// UINT32_MAX once every feed is closed (nothing constrains the
  /// merge). Meaningful under MergePolicy::Watermark.
  std::uint32_t min_watermark = 0;
  /// Observations sitting in the per-IXP queues, not yet merged into the
  /// engines (summed over feeds and IXPs): the merge backlog behind a
  /// lagging watermark / an undrained Concatenate source.
  std::size_t queue_depth = 0;
  core::PassiveStats passive;
  std::vector<FeedStats> per_feed;  // in add_feed order
  // Health rollup over feeds.
  std::size_t feeds_degraded = 0;
  std::size_t feeds_quarantined = 0;
  std::size_t feeds_dead = 0;
  std::uint64_t health_transitions = 0;
  std::uint64_t observations_discarded = 0;
};

/// Cheap point-in-time view of a running session.
struct LiveSnapshot : SessionTotals {
  /// count_links per IXP, in construction order.
  std::vector<std::size_t> links_per_ixp;
};

/// Final product, shaped like the archive pipeline's result.
struct LiveResult : SessionTotals {
  std::vector<IxpResult> per_ixp;
  std::set<AsLink> all_links;
};

class LiveSession;

/// Lightweight reference to one feed of a LiveSession (copyable; the
/// session must outlive it). One thread may drive one handle; distinct
/// handles may be driven concurrently. A default-constructed handle is
/// detached: every operation throws InvalidArgument.
class FeedHandle {
 public:
  FeedHandle() = default;

  /// Ingest one chunk of this feed's raw stream bytes (any chunking).
  /// Strict mode throws ParseError naming the feed and stream offset;
  /// with PassiveConfig::tolerate_malformed the record is skipped and
  /// counted in this feed's records_malformed.
  void feed(std::span<const std::uint8_t> chunk);

  /// Read `source` to end of stream, feeding every chunk; returns the
  /// number of bytes consumed.
  std::uint64_t drain(stream::StreamSource& source);

  /// Transport-level disconnect notification (a reconnect is about to
  /// resume the feed): drops the at-most-one partial record buffered in
  /// the framers and carries every counter over. Counted as a dirty
  /// disconnect when partial bytes were dropped, clean otherwise. Wire
  /// this as ReconnectingSource's on_reconnect callback.
  void note_disconnect();

  /// Unrecoverable transport failure (reconnect budget exhausted, a
  /// reader thread giving up): the feed goes straight to
  /// FeedHealth::Dead and its queue close sentinels publish so it can
  /// never gate the merge frontier. A lane that was still merging gets
  /// its announce-window flushed first (everything extracted while it
  /// merged was judged trustworthy at the time); a lane already
  /// quarantined does not -- its window is suspect. feed() afterwards
  /// discards silently. Idempotent.
  void fail(const std::string& reason);

  /// End of this feed's stream: flush its announce-window and partial
  /// batches, and close its source slot in every IXP queue so it stops
  /// constraining the merge (Watermark) / later feeds become drainable
  /// (Concatenate). feed() afterwards throws. Idempotent.
  void close();

  std::size_t index() const { return index_; }
  bool valid() const { return session_ != nullptr; }

 private:
  friend class LiveSession;
  FeedHandle(LiveSession* session, std::size_t index)
      : session_(session), index_(index) {}

  LiveSession* session_ = nullptr;
  std::size_t index_ = 0;
};

class LiveSession {
 public:
  /// `relationships` resolves setter case 3 (may be null). IXP order
  /// fixes the per_ixp / links_per_ixp index.
  LiveSession(LiveConfig config, std::vector<core::IxpContext> ixps,
              bgp::RelFn relationships = nullptr);

  LiveSession(const LiveSession&) = delete;
  LiveSession& operator=(const LiveSession&) = delete;

  /// Register one more concurrent feed. Feed index (= queue source
  /// index = cross-feed merge position) is the registration order.
  /// Callable any time before finish(), including mid-stream.
  FeedHandle add_feed(FeedOptions options = FeedOptions{})
      MLP_EXCLUDES(feeds_mutex_);

  /// Single-feed compatibility: feed()/drain() on the session operate on
  /// feed 0, creating it (raw MRT transport) on first use.
  void feed(std::span<const std::uint8_t> chunk)
      MLP_EXCLUDES(feeds_mutex_);
  std::uint64_t drain(stream::StreamSource& source)
      MLP_EXCLUDES(feeds_mutex_);

  /// Point-in-time stats + per-IXP link counts. Reflects every record
  /// fed so far (under Watermark: every observation below the merge
  /// frontier); callable while other threads keep feeding (they block
  /// on their lane for the duration of the flush). Publishes a fresh
  /// epoch per shard at the settled point, so the returned counts and
  /// concurrent epoch_snapshot() readers agree. For a query path that
  /// must not stop the world, read epoch_snapshot() instead.
  LiveSnapshot snapshot() MLP_EXCLUDES(feeds_mutex_);

  /// End of stream: close every remaining feed (announce-window flush,
  /// in feed order), drain the queues and infer the final link sets.
  /// Callable once; feed() afterwards throws.
  LiveResult finish() MLP_EXCLUDES(feeds_mutex_);

  std::size_t ixp_count() const { return shards_.size(); }
  std::size_t feed_count() MLP_EXCLUDES(feeds_mutex_);

  /// Lock-free reader API: the current published epoch of IXP `index`
  /// (construction order). ONE atomic shared_ptr load -- never
  /// feeds_mutex_, never a lane mutex, never a pool settle -- so query
  /// threads scale independently of ingest. Never null (epoch 1
  /// publishes in the constructor); the returned snapshot stays valid
  /// for as long as the caller holds it, even across restore_state()
  /// and session destruction. Throws InvalidArgument on a bad index.
  std::shared_ptr<const core::EngineSnapshot> epoch_snapshot(
      std::size_t index) const;
  /// Same, addressed by IXP name (IxpContext::name). Throws
  /// InvalidArgument for an unknown name.
  std::shared_ptr<const core::EngineSnapshot> epoch_snapshot(
      const std::string& ixp) const;
  /// Resolve an IXP name to its construction-order index (the IXP set is
  /// immutable after construction, so this is lock-free). Throws
  /// InvalidArgument for an unknown name.
  std::size_t ixp_index(const std::string& ixp) const;
  /// Every IXP's current epoch, in construction order. The per-shard
  /// loads are independent (not a cross-IXP consistent cut).
  std::vector<std::shared_ptr<const core::EngineSnapshot>> epoch_snapshots()
      const;

  /// Observability gauges for IXP `index`, pairing an epoch with how far
  /// ingest has run ahead of it: the shard queue's merge frontier
  /// (ObservationQueue::min_watermark) and its undrained backlog. These
  /// take only the shard queue's own mutex -- never feeds_mutex_ or a
  /// lane mutex -- so they are safe on the query path.
  std::uint32_t merge_frontier(std::size_t index) const;
  std::size_t merge_backlog(std::size_t index) const;

  /// Complete records framed so far, summed over feeds. Much cheaper
  /// than snapshot() (no batch flush, no pool settle): callers pace
  /// snapshot() off it.
  std::uint64_t records() MLP_EXCLUDES(feeds_mutex_);

  /// Checkpoint: serialize the full session -- every lane's framing
  /// position, extractor announce-window and supervisor judgement, every
  /// IXP's engine state and queued-but-undrained observations -- from the
  /// same stop-the-world point snapshot() uses (all lane mutexes, batch
  /// flush, pool settle). Returns the raw payload; file framing (CRC,
  /// atomic rename, generations) is pipeline/checkpoint.hpp's job, kept
  /// OUTSIDE the session locks. Callable while other threads keep
  /// feeding; throws InvalidArgument after finish().
  std::vector<std::uint8_t> serialize_state() MLP_EXCLUDES(feeds_mutex_);

  /// Checkpoint: load a serialize_state() payload into this session. The
  /// session must be freshly wired -- same IXPs, the same feeds re-added
  /// in the same order (names and transports are cross-checked), no
  /// bytes fed yet. Parses and validates the ENTIRE payload against
  /// scratch components before touching any real state, so a malformed
  /// payload (ParseError) or a mismatched session (InvalidArgument)
  /// leaves the session untouched -- never partially applied. After
  /// restore, re-dial each feed's transport and skip to its
  /// acknowledged_offsets() position: replaying the remaining bytes
  /// yields results byte-identical to the uninterrupted run.
  void restore_state(std::span<const std::uint8_t> payload)
      MLP_EXCLUDES(feeds_mutex_);

  /// Per-feed acknowledged transport offsets, in add_feed order: every
  /// byte before the offset has been framed into a complete record (or
  /// consumed by a finished resync scan) and is covered by a
  /// serialize_state() image taken now. The partial tail past it is NOT
  /// serialized -- a resumed source must re-deliver from this offset.
  std::vector<std::uint64_t> acknowledged_offsets()
      MLP_EXCLUDES(feeds_mutex_);

 private:
  friend class FeedHandle;

  /// One feed's independent ingest lane. All mutable state is guarded by
  /// `mutex` so distinct lanes can be driven from distinct threads while
  /// snapshot()/finish() can stop the world.
  struct Lane {
    Lane(LiveSession* session,
         std::shared_ptr<const std::vector<core::IxpContext>> ixps,
         bgp::RelFn relationships, const core::PassiveConfig& passive)
        : owner(session),
          extractor(std::move(ixps), std::move(relationships), passive) {}

    /// Back-pointer anchoring the lock-order annotation on `mutex`.
    LiveSession* const owner;
    /// Documented lock order (ROADMAP "Multi-feed live invariants"):
    /// feeds_mutex_ before any lane mutex, never the reverse.
    /// ACQUIRED_AFTER turns a reversed acquisition into a
    /// -Wthread-safety-beta build error.
    util::Mutex mutex MLP_ACQUIRED_AFTER(owner->feeds_mutex_);
    /// name/index are written once in add_feed (under the lane mutex,
    /// before the lane is published) and immutable afterwards.
    std::string name;
    std::size_t index = 0;
    /// Engaged for BMP transports.
    std::optional<stream::BmpFramer> bmp MLP_GUARDED_BY(mutex);
    stream::MrtFramer framer MLP_GUARDED_BY(mutex);
    stream::UpdateDecoder decoder MLP_GUARDED_BY(mutex);
    core::PassiveExtractor extractor MLP_GUARDED_BY(mutex);
    /// Mirror of framer.records(), published after every feed so
    /// records() can pace snapshots without taking lane mutexes.
    std::atomic<std::uint64_t> records_framed{0};
    /// Idle tracking (lock-free: read by other feeds' refresh_idle).
    std::atomic<std::uint64_t> last_activity_ms{0};
    std::atomic<bool> idle{false};
    /// Highest watermark pushed to the queues.
    std::uint32_t watermark_published MLP_GUARDED_BY(mutex) = 0;
    std::uint64_t clean_disconnects MLP_GUARDED_BY(mutex) = 0;
    std::uint64_t dirty_disconnects MLP_GUARDED_BY(mutex) = 0;
    std::uint64_t partial_records_dropped MLP_GUARDED_BY(mutex) = 0;
    bool closed MLP_GUARDED_BY(mutex) = false;
    /// Health supervision: the FeedSupervisor is pure bookkeeping with no
    /// locking of its own, so GUARDED_BY here is what enforces the
    /// "every FeedSupervisor call happens under the lane mutex" contract.
    FeedSupervisor supervisor MLP_GUARDED_BY(mutex);
    std::uint64_t bytes_discarded MLP_GUARDED_BY(mutex) = 0;
    std::uint64_t observations_discarded MLP_GUARDED_BY(mutex) = 0;
    /// Queue close sentinels published by supervision (Quarantined/Dead),
    /// distinct from the user-visible `closed`: a readmitted feed reopens
    /// its sources, a close()d one never does.
    bool queues_closed MLP_GUARDED_BY(mutex) = false;
  };

  /// One IXP's inference lane: a multi-source queue (source == feed)
  /// feeding an engine, drained by at most one pump task at a time.
  struct Shard {
    Shard(core::IxpContext context, MergePolicy policy)
        : queue(0, policy), engine(std::move(context)) {}
    ObservationQueue queue;
    core::MlpInferenceEngine engine;
    /// Owner flag of the pump task (the engine is not thread-safe).
    std::atomic<bool> pump_scheduled{false};
    /// The published epoch: deliberately the ONE unguarded shared object
    /// of the session. The engine owner (a pump inside its ownership
    /// window, or a stop-the-world path after pool settle) freezes an
    /// immutable EngineSnapshot and swaps it in; readers load it
    /// lock-free and share ownership. No mutex guards it BY DESIGN --
    /// immutability of the pointee plus the atomic shared_ptr swap IS
    /// the synchronization, which is what keeps the query path off
    /// feeds_mutex_ and the lane mutexes entirely.
    std::atomic<std::shared_ptr<const core::EngineSnapshot>> published;
    /// Monotone publication counter; serialized into checkpoints so a
    /// resumed session's epochs keep ascending.
    std::atomic<std::uint64_t> epochs_published{0};
    /// Publish bookkeeping, confined to the engine owner exactly like
    /// the engine itself (pump ownership window / settled world): which
    /// engine generation the current epoch describes, and batches
    /// drained since the last publish.
    std::uint64_t last_published_generation = 0;
    std::size_t batches_since_publish = 0;
  };

  /// RAII over the dynamic all-lanes lock set used by the stop-the-world
  /// paths (snapshot/finish/serialize_state/restore_state), acquired in
  /// feed order while feeds_mutex_ is held. A variable-length lock set
  /// cannot be expressed to the thread-safety analysis, so construction
  /// and destruction are opaque to it (NO_THREAD_SAFETY_ANALYSIS on the
  /// definitions) and every user re-asserts per lane with
  /// Mutex::assert_held() before touching guarded state.
  class LaneLockSet {
   public:
    explicit LaneLockSet(const std::vector<std::unique_ptr<Lane>>& lanes)
        MLP_NO_THREAD_SAFETY_ANALYSIS;
    ~LaneLockSet() MLP_NO_THREAD_SAFETY_ANALYSIS;
    LaneLockSet(const LaneLockSet&) = delete;
    LaneLockSet& operator=(const LaneLockSet&) = delete;

   private:
    std::vector<Lane*> locked_;
  };

  /// Drain shard `index`'s queue into its engine, rearm-safe.
  void pump(std::size_t index);
  void schedule_pump(std::size_t index);
  /// Freeze shard `index`'s engine and swap the published epoch pointer.
  /// Caller must OWN the engine: either this is the shard's pump inside
  /// its ownership window (before pump_scheduled drops), or the world is
  /// settled (all lane mutexes held + pool idle, so no pump runs and
  /// none can be scheduled). No-ops when the engine generation has not
  /// moved since the last publish.
  void publish_epoch(std::size_t index);

  Lane& lane(std::size_t index) MLP_EXCLUDES(feeds_mutex_);
  /// Ingest one chunk into the lane (framing, decode, extraction).
  void lane_feed(Lane& target, std::span<const std::uint8_t> chunk)
      MLP_REQUIRES(target.mutex);
  void drain_framer(Lane& target) MLP_REQUIRES(target.mutex);
  void close_locked(Lane& target, std::size_t index)
      MLP_REQUIRES(target.mutex);
  /// Push the lane's stream clock to every shard queue as its merge
  /// watermark (Watermark policy only).
  void publish_watermark(Lane& target) MLP_REQUIRES(target.mutex);
  /// Watermark + idle_feed_grace_ms only: park/readmit feeds by wall-
  /// clock staleness.
  void refresh_idle() MLP_EXCLUDES(feeds_mutex_);
  void refresh_idle_locked() MLP_REQUIRES(feeds_mutex_);
  /// Stall watchdog sweep (supervision.stall_timeout_ms only): atomically
  /// pre-checks every lane's last-activity stamp and quarantines stalled
  /// ones, taking stale lanes' mutexes one at a time (never while a
  /// caller holds one).
  void supervise_stalls() MLP_EXCLUDES(feeds_mutex_);
  void supervise_stalls_locked() MLP_REQUIRES(feeds_mutex_);
  /// Feed the supervisor one record outcome and enact the verdict.
  void record_outcome(Lane& target, bool malformed)
      MLP_REQUIRES(target.mutex);
  /// Route the lane straight to Dead.
  void fail_locked(Lane& target, const std::string& reason)
      MLP_REQUIRES(target.mutex);
  /// Enact a supervisor verdict -- close the lane's queue sources on
  /// Quarantine/Die, reopen them on Readmit -- and fire on_health_change
  /// when the health level moved off `before`.
  void apply_supervision(Lane& target, FeedSupervisor::Action action,
                         FeedHealth before) MLP_REQUIRES(target.mutex);
  FeedStats lane_stats(Lane& target) const MLP_REQUIRES(target.mutex);
  /// Caller additionally holds every lane mutex (LaneLockSet).
  SessionTotals collect_totals_locked() MLP_REQUIRES(feeds_mutex_);
  /// Caller holds feeds_mutex_ and every lane mutex (LaneLockSet). Parse
  /// one serialize_state() payload; commit=false parses into scratch
  /// components (validation only), commit=true into the real ones. The
  /// parse is deterministic, so a commit pass over a payload that passed
  /// the scratch pass cannot throw -- the two-pass split is what makes
  /// restore_state all-or-nothing.
  void apply_payload(ByteReader& reader, bool commit)
      MLP_REQUIRES(feeds_mutex_);

  LiveConfig config_;
  std::shared_ptr<stream::Clock> clock_;  // config_.clock or SystemClock
  std::shared_ptr<const std::vector<core::IxpContext>> contexts_;
  bgp::RelFn relationships_;
  /// Guards feeds_ growth and finish(). Lock order: before any lane
  /// mutex (see Lane::mutex).
  util::Mutex feeds_mutex_;
  std::vector<std::unique_ptr<Lane>> feeds_ MLP_GUARDED_BY(feeds_mutex_);
  std::vector<std::unique_ptr<Shard>> shards_;
  // Declared after shards_ so its destructor (which joins the workers)
  // runs first: no pump can outlive the shards it drains.
  ThreadPool pool_;
  std::atomic<bool> finished_{false};
};

}  // namespace mlp::pipeline
