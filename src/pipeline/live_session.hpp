// Live update-stream inference session.
//
// The archive pipeline (InferencePipeline) consumes complete MRT files;
// a live deployment instead watches a route-collector feed and wants the
// multilateral link set to evolve as updates arrive. LiveSession is that
// front end:
//
//   bytes (any chunking)            feed() / drain(StreamSource)
//        |  stream::MrtFramer -- yields complete record spans, never
//        |  buffering more than one partial record
//        v
//   stream::UpdateDecoder -- BGP4MP updates decoded into reused scratch
//        |
//        v
//   PassiveExtractor::consume_update -- timestamp-driven announce-window
//        |  (transient filtering + bounded eviction), streaming sink
//        v
//   per-IXP ObservationQueue -> MlpInferenceEngine::add on a thread pool
//
// Determinism: decoding happens on the caller's thread in stream order,
// each IXP has a single-source FIFO queue, and each engine is drained by
// at most one pump task at a time -- so the final link set is
// byte-identical to consume_update_stream over the same bytes, for every
// chunking and every thread count.
//
// snapshot() is cheap on purpose: it flushes partial batches, lets the
// pool settle, and reads each engine's link count via count_links (a
// popcount over the reciprocity bitset) -- no link-set materialization.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/passive.hpp"
#include "pipeline/observation_queue.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/thread_pool.hpp"
#include "stream/decoder.hpp"
#include "stream/framer.hpp"
#include "stream/source.hpp"

namespace mlp::pipeline {

struct LiveConfig {
  /// Inference pool workers; 0 means hardware concurrency.
  std::size_t threads = 1;
  /// Observations per emitted batch.
  std::size_t batch_size = 256;
  /// Transient filtering, announce-window bound, tolerate_malformed.
  core::PassiveConfig passive;
  /// Forwarded to infer_links / count_links.
  bool assume_open_for_unobserved = false;
  /// Record-length cap for the framer.
  stream::MrtFramer::Config framing;
  /// Read-buffer size used by drain().
  std::size_t read_chunk = 65536;
};

/// Cheap point-in-time view of a running session.
struct LiveSnapshot {
  std::uint64_t bytes_fed = 0;
  std::uint64_t records = 0;        // complete records framed
  std::size_t records_skipped = 0;  // non-update records stepped over
  core::PassiveStats passive;       // includes records_malformed
  /// count_links per IXP, in construction order.
  std::vector<std::size_t> links_per_ixp;
};

/// Final product, shaped like the archive pipeline's result.
struct LiveResult {
  std::vector<IxpResult> per_ixp;
  std::set<AsLink> all_links;
  core::PassiveStats passive;
  std::uint64_t records = 0;
  std::size_t records_skipped = 0;
};

class LiveSession {
 public:
  /// `relationships` resolves setter case 3 (may be null). IXP order
  /// fixes the per_ixp / links_per_ixp index.
  LiveSession(LiveConfig config, std::vector<core::IxpContext> ixps,
              bgp::RelFn relationships = nullptr);

  LiveSession(const LiveSession&) = delete;
  LiveSession& operator=(const LiveSession&) = delete;

  /// Ingest one chunk of raw stream bytes (any chunking: the framer
  /// reassembles records across boundaries). Strict mode throws
  /// ParseError on a malformed record, naming its stream offset; with
  /// PassiveConfig::tolerate_malformed the record is skipped and counted.
  void feed(std::span<const std::uint8_t> chunk);

  /// Read `source` to end of stream, feeding every chunk; returns the
  /// number of bytes consumed.
  std::uint64_t drain(stream::StreamSource& source);

  /// Point-in-time stats + per-IXP link counts. Reflects every record
  /// fed so far; safe to interleave with feed() from the same thread.
  LiveSnapshot snapshot();

  /// End of stream: flush the announce-window, drain the queues and
  /// infer the final link sets. Callable once; feed() afterwards throws.
  LiveResult finish();

  std::size_t ixp_count() const { return shards_.size(); }

  /// Complete records framed so far. Cheap (a counter read on the
  /// feeding thread): callers can pace snapshot() off it without paying
  /// snapshot()'s flush-and-settle.
  std::uint64_t records() const { return framer_.records(); }

 private:
  /// One IXP's inference lane: a single-source FIFO queue feeding an
  /// engine, drained by at most one pump task at a time.
  struct Shard {
    explicit Shard(core::IxpContext context)
        : engine(std::move(context)) {}
    ObservationQueue queue{1};
    core::MlpInferenceEngine engine;
    /// Owner flag of the pump task (the engine is not thread-safe).
    std::atomic<bool> pump_scheduled{false};
  };

  /// Drain shard `index`'s queue into its engine, rearm-safe.
  void pump(std::size_t index);
  void schedule_pump(std::size_t index);

  LiveConfig config_;
  stream::MrtFramer framer_;
  stream::UpdateDecoder decoder_;
  core::PassiveExtractor extractor_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Declared after shards_ so its destructor (which joins the workers)
  // runs first: no pump can outlive the shards it drains.
  ThreadPool pool_;
  bool finished_ = false;
};

}  // namespace mlp::pipeline
