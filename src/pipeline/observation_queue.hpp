// Ordered multi-producer batch queue feeding one MlpInferenceEngine.
//
// Observation order matters to the engine (a re-announcement replaces the
// per-prefix policy), so concurrent producers cannot simply interleave.
// Each producer owns a source index; the consumer drains batches in strict
// source order, streaming from source 0 while later sources are still
// extracting. This keeps the inferred link set byte-identical for any
// thread count while still overlapping extraction with inference.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "core/types.hpp"

namespace mlp::pipeline {

class ObservationQueue {
 public:
  /// `n_sources` producers, indexed [0, n_sources). May be 0 when every
  /// producer registers later through add_source (the live multi-feed
  /// path).
  explicit ObservationQueue(std::size_t n_sources);

  /// Register one more producer; returns its source index (registration
  /// order). Safe while consumers poll with try_pop/has_ready -- the new
  /// source simply extends the strict drain order.
  std::size_t add_source();

  /// Append one batch from `source`. Empty batches are dropped.
  void push(std::size_t source, std::vector<core::Observation> batch);

  /// Mark `source` finished; the consumer can advance past it.
  void close(std::size_t source);

  /// Blocking pop of the next batch in source order. Returns false once
  /// every source is closed and drained.
  bool pop(std::vector<core::Observation>& out);

  /// Non-blocking pop: false when no batch is ready right now (the
  /// in-order source has nothing pending), whether or not more input may
  /// still arrive. Live consumers poll with this instead of parking in
  /// pop() on a queue that only closes at end of session.
  bool try_pop(std::vector<core::Observation>& out);

  /// True when try_pop would return a batch.
  bool has_ready();

 private:
  struct Source {
    std::deque<std::vector<core::Observation>> batches;
    bool closed = false;
  };

  std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<Source> sources_;
  std::size_t cursor_ = 0;  // first source not yet fully drained
};

}  // namespace mlp::pipeline
