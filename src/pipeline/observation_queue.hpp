// Ordered multi-producer batch queue feeding one MlpInferenceEngine.
//
// Observation order matters to the engine (a re-announcement replaces the
// per-prefix policy), so concurrent producers cannot simply interleave.
// Each producer owns a source index, and the consumer drains under one of
// two deterministic policies:
//
//   Concatenate (default): strict source order -- source k+1 is served
//   only after source k closed and drained. The archive pipeline's merge:
//   results equal single-stream ingest of the per-source concatenation.
//
//   Watermark: a k-way timestamp merge. Every producer publishes a
//   monotone watermark (its extractor's stream clock); the consumer may
//   pop any observation strictly below the minimum watermark over open,
//   non-idle sources, smallest (timestamp, source index) first with
//   per-source FIFO for ties. Because each source's observation
//   timestamps are non-decreasing and a source never emits below its own
//   watermark, the drained sequence is the unique stable merge of the
//   per-source sequences -- a pure function of per-source contents, for
//   any arrival interleaving. Open-ended sources therefore merge
//   continuously instead of buffering until close.
//
// Either way the inferred link set is byte-identical for any thread
// count while extraction overlaps inference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/types.hpp"
#include "util/annotations.hpp"

namespace mlp {
class ByteWriter;
class ByteReader;
}  // namespace mlp

namespace mlp::pipeline {

/// Cross-source drain policy of an ObservationQueue (and of the live
/// session built on top of it).
enum class MergePolicy {
  /// Strict source-index concatenation (the pinned legacy merge).
  Concatenate,
  /// Deterministic k-way timestamp merge under per-source watermarks.
  Watermark,
};

class ObservationQueue {
 public:
  /// `n_sources` producers, indexed [0, n_sources). May be 0 when every
  /// producer registers later through add_source (the live multi-feed
  /// path).
  explicit ObservationQueue(std::size_t n_sources,
                            MergePolicy policy = MergePolicy::Concatenate);

  /// Register one more producer; returns its source index (registration
  /// order). Safe while consumers poll with try_pop/has_ready -- the new
  /// source simply extends the merge.
  std::size_t add_source();

  /// Append one batch from `source`. Empty batches are dropped. Under
  /// Watermark, observation timestamps must be non-decreasing per source
  /// (the extractor clock guarantees it).
  void push(std::size_t source, std::vector<core::Observation> batch);

  /// Watermark policy: publish `source`'s monotone watermark -- a
  /// promise that every future push from it carries timestamps >= the
  /// watermark. Raising it can make other sources' observations
  /// drainable. Ignored under Concatenate.
  void set_watermark(std::size_t source, std::uint32_t watermark);

  /// Watermark policy: exclude/readmit `source` from the minimum-
  /// watermark computation (a stalled feed must not freeze the merge).
  /// An idle source's queued observations still drain in timestamp
  /// order. Ignored under Concatenate.
  void set_idle(std::size_t source, bool idle);

  /// Mark `source` finished; it stops constraining the merge and its
  /// remaining observations become drainable.
  void close(std::size_t source);

  /// Watermark policy: undo a close() -- the source constrains the merge
  /// again and may push again (a quarantined feed readmitted after
  /// probation). Its watermark survives the round trip, so the monotone
  /// promise to the merge is unbroken. Throws InvalidArgument under
  /// Concatenate: the drain cursor may already have advanced past the
  /// source, and a position in a concatenation cannot be re-occupied.
  void reopen(std::size_t source);

  /// Blocking pop of the next ready batch. Returns false once every
  /// source is closed and drained.
  [[nodiscard]] bool pop(std::vector<core::Observation>& out);

  /// Non-blocking pop: false when nothing is ready right now (in-order
  /// source empty / everything above the watermark), whether or not more
  /// input may still arrive. Live consumers poll with this instead of
  /// parking in pop() on a queue that only closes at end of session.
  [[nodiscard]] bool try_pop(std::vector<core::Observation>& out);

  /// True when try_pop would return a batch.
  [[nodiscard]] bool has_ready();

  /// The current merge frontier: minimum watermark over open, non-idle
  /// sources, UINT32_MAX when nothing constrains the drain (every source
  /// closed/idle, or Concatenate policy). Everything strictly below it
  /// has been handed to the consumer or is about to be; the observability
  /// hook the query server pairs with an epoch's backlog gauge.
  std::uint32_t min_watermark();

  /// Observations queued but not yet drained, summed over sources (batch
  /// contents counted individually). The merge-backlog gauge: under
  /// Watermark it is what sits at or above the frontier waiting for a
  /// lagging feed.
  std::size_t depth();
  /// One producer's share of depth().
  std::size_t depth(std::size_t source);

  /// Checkpoint hook: persist every source's queued-but-undrained
  /// observations, watermark and idle/closed flags, plus the Concatenate
  /// drain cursor. The drained prefix lives in the engine; this is
  /// exactly the remainder above the merge frontier.
  void serialize_state(ByteWriter& writer);

  /// Checkpoint hook: replace the per-source state with a serialized
  /// image. The image's source count must equal the queue's current
  /// source count (the session re-registers its feeds before restoring);
  /// parses and validates the whole image before committing, so a
  /// ParseError leaves the queue untouched. open_count_ is recomputed
  /// from the restored closed flags.
  void restore_state(ByteReader& reader);

 private:
  struct Source {
    /// Concatenate: pushed batches, drained front to back.
    std::deque<std::vector<core::Observation>> batches;
    /// Watermark: pushed observations flattened to per-source FIFO.
    std::deque<core::Observation> pending;
    std::uint32_t watermark = 0;
    bool idle = false;
    bool closed = false;
  };

  /// Minimum watermark over open, non-idle sources; UINT32_MAX sentinel
  /// (drain everything) when no source constrains.
  std::uint32_t min_watermark_locked() const MLP_REQUIRES(mutex_);
  /// Fill `out` with the watermark-eligible merge front; false when none
  /// is eligible.
  bool merge_pop_locked(std::vector<core::Observation>& out)
      MLP_REQUIRES(mutex_);
  /// Concatenate-policy pop.
  bool ordered_pop_locked(std::vector<core::Observation>& out)
      MLP_REQUIRES(mutex_);

  util::Mutex mutex_;
  util::CondVar ready_;
  const MergePolicy policy_;  // immutable after construction: lock-free
  std::vector<Source> sources_ MLP_GUARDED_BY(mutex_);
  /// Concatenate: first source not yet drained.
  std::size_t cursor_ MLP_GUARDED_BY(mutex_) = 0;
  std::size_t open_count_ MLP_GUARDED_BY(mutex_) = 0;
};

}  // namespace mlp::pipeline
