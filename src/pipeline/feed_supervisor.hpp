// Per-feed health supervision for LiveSession lanes.
//
// PR 4-6 recovery is *local*: a malformed record resyncs, a dropped
// connection redials, an idle feed parks. None of that notices a feed
// that is PERSISTENTLY sick -- a lane resyncing forever, flapping past
// its reconnect budget, or gone silent keeps consuming resources and,
// without `idle_feed_grace_ms`, gates the cross-feed watermark frontier
// indefinitely. FeedSupervisor is the layer above: a per-lane state
// machine over error budgets that trades a sick feed's output for the
// session's liveness.
//
//     Healthy --> Degraded --> Quarantined --> Dead
//        ^___________|  ^______(probation)|
//
//   Healthy      budgets comfortable; observations merge.
//   Degraded     an error budget is half-spent (elevated malformed rate,
//                repeated dirty disconnects). Still merging -- Degraded
//                is a warning level, visible in FeedStats/on_health_change.
//   Quarantined  a budget is blown. The lane's queue sources are closed
//                (sentinel published) so the merge frontier advances
//                without it; bytes are still ingested and counted but
//                observations are discarded. A probation run of clean
//                records readmits the feed (sources reopen, Watermark
//                policy only).
//   Dead         terminal: quarantined too many times, readmission not
//                possible (Concatenate drain order cannot rewind past a
//                closed source), or an unrecoverable failure (reconnect
//                budget exhausted, a fatal ingest error). Bytes are
//                dropped at the door.
//
// The supervisor itself is pure bookkeeping -- no locks, no clock, no
// queue access. LiveSession feeds it events under the lane mutex and
// enacts the returned Action (close/reopen queue sources, fire the
// health callback). That split keeps every transition unit-testable as
// plain function calls and keeps the fuzzer (fuzz_framer) able to drive
// it with arbitrary event streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/annotations.hpp"

namespace mlp {
class ByteWriter;
class ByteReader;
}  // namespace mlp

namespace mlp::pipeline {

enum class FeedHealth : std::uint8_t {
  Healthy,
  Degraded,
  Quarantined,
  Dead,
};

const char* to_string(FeedHealth health);

/// Error budgets. Defaults tolerate the occasional bad record or flap a
/// real collector feed produces, and trip on sustained sickness.
struct SupervisorConfig {
  /// Master switch: disabled supervisors report Healthy forever.
  bool enabled = true;

  /// Sliding window of record outcomes the malformed rate is judged over.
  std::size_t malformed_window = 256;
  /// No rate verdicts until this many records are in the window (a single
  /// bad first record is 100% malformed; do not quarantine on it).
  std::size_t min_window_records = 32;
  /// Window malformed-rate at or above which the feed is Degraded.
  double degraded_malformed_rate = 0.05;
  /// Window malformed-rate at or above which the feed is Quarantined.
  double quarantine_malformed_rate = 0.5;

  /// Consecutive dirty disconnects (partial record lost) that quarantine
  /// the feed. Half this budget marks it Degraded.
  std::size_t dirty_disconnect_budget = 8;

  /// Quarantine entries after which the feed is Dead. 0 = never dies by
  /// quarantine count alone.
  std::size_t max_quarantines = 4;
  /// Clean records a Quarantined feed must produce, without a malformed
  /// record in between, to be readmitted. The same run length also clears
  /// the consecutive-dirty counter of a merging feed.
  std::size_t probation_records = 64;

  /// Quarantine a feed with no ingest activity for this long on the
  /// session clock. 0 = stall watchdog off.
  std::uint64_t stall_timeout_ms = 0;

  /// Whether a Quarantined feed may return to Healthy. LiveSession forces
  /// this false under MergePolicy::Concatenate, where the drain cursor
  /// cannot rewind past a closed source: quarantine escalates to Dead.
  bool allow_readmission = true;
};

/// One recorded health transition.
struct HealthTransition {
  FeedHealth from = FeedHealth::Healthy;
  FeedHealth to = FeedHealth::Healthy;
  /// Records ingested by this feed when the transition fired.
  std::uint64_t at_record = 0;
  /// Human-readable trigger ("malformed rate 0.52 over 256 records").
  std::string reason;
};

class FeedSupervisor {
 public:
  /// What the owner must enact after an event. Quarantine/Die close the
  /// lane's queue sources; Readmit reopens them. [[nodiscard]] on the
  /// type: silently dropping an Action means the lane's queue sources
  /// never close/reopen and the merge frontier wedges.
  enum class [[nodiscard]] Action : std::uint8_t {
    None,
    Quarantine,
    Readmit,
    Die
  };

  FeedSupervisor() = default;
  explicit FeedSupervisor(SupervisorConfig config) : config_(config) {}

  /// A record left the framer: decoded, skipped, or malformed.
  Action note_record(bool malformed);
  /// The transport dropped; dirty = a partial record was lost with it.
  Action note_disconnect(bool dirty);
  /// Unrecoverable lane failure (reconnect budget exhausted, ingest
  /// exception): straight to Dead. Works even when `enabled` is false --
  /// disabling supervision mutes the budget judgements, not facts.
  Action note_fatal(const std::string& reason);
  /// Stall watchdog poll. Quarantines when `now_ms` is past the activity
  /// deadline; pair with note_activity() on every ingest.
  Action check_stall(std::uint64_t now_ms);
  void note_activity(std::uint64_t now_ms) { last_activity_ms_ = now_ms; }

  FeedHealth health() const { return health_; }
  /// Dead feeds drop bytes at the door.
  bool ingesting() const { return health_ != FeedHealth::Dead; }
  /// Quarantined/Dead feeds' observations are discarded, not merged.
  bool merging() const {
    return health_ == FeedHealth::Healthy || health_ == FeedHealth::Degraded;
  }

  const SupervisorConfig& config() const { return config_; }
  /// Malformed fraction of the current window; 0 while under-filled.
  double malformed_rate() const;
  std::size_t consecutive_dirty_disconnects() const {
    return consecutive_dirty_;
  }
  /// Clean records accumulated toward readmission (Quarantined only).
  std::size_t probation_clean_records() const { return probation_clean_; }
  std::uint64_t records_seen() const { return records_seen_; }
  std::uint64_t times_quarantined() const { return times_quarantined_; }
  /// Total transitions fired, including any beyond the recorded cap.
  std::uint64_t transition_count() const { return transition_count_; }
  /// The first kMaxRecordedTransitions transitions, in order. The cap
  /// keeps memory bounded under adversarial (fuzzed) event streams.
  const std::vector<HealthTransition>& transitions() const
      MLP_LIFETIMEBOUND {
    return transitions_;
  }

  static constexpr std::size_t kMaxRecordedTransitions = 64;

  /// Checkpoint hook: persist the health level, the outcome window (in
  /// logical oldest-first order), every budget counter and the recorded
  /// transitions. The config is NOT serialized -- it is session wiring,
  /// re-supplied on construction; the activity stamp is wall-clock time
  /// of a dead process and is re-armed by the owner after restore.
  void serialize_state(ByteWriter& writer) const;

  /// Checkpoint hook: replace the judged state with a serialized image.
  /// Parses and validates the whole image before committing (a
  /// ParseError leaves the supervisor untouched). A window longer than
  /// the current config's cap keeps only the newest entries.
  void restore_state(ByteReader& reader);

 private:
  Action evaluate();
  Action quarantine(std::string reason);
  void transition(FeedHealth to, std::string reason);
  std::size_t window_filled() const;

  SupervisorConfig config_;
  FeedHealth health_ = FeedHealth::Healthy;

  // Ring buffer of record outcomes (1 = malformed).
  std::vector<std::uint8_t> window_;
  std::size_t window_head_ = 0;
  std::size_t window_count_ = 0;
  std::size_t window_malformed_ = 0;

  std::size_t consecutive_dirty_ = 0;
  std::uint64_t records_since_dirty_ = 0;
  std::size_t probation_clean_ = 0;
  std::uint64_t records_seen_ = 0;
  std::uint64_t times_quarantined_ = 0;
  std::uint64_t transition_count_ = 0;
  std::uint64_t last_activity_ms_ = 0;
  std::vector<HealthTransition> transitions_;
};

}  // namespace mlp::pipeline
