// Durable checkpoint files for LiveSession.
//
// LiveSession::serialize_state() captures the full session -- per-IXP
// engine state, per-feed announce-windows and framing positions,
// published watermarks, queued-but-undrained observations -- as one
// opaque payload. This module is the file layer around it:
//
//   +----------+---------+-------------+--------+-----------------+
//   | "MLPCKPT\0" magic   | u32 version | u64 payload length       |
//   | u32 CRC32C(payload) | payload bytes ...                      |
//   +-----------------------------------------------------------—-+
//
// (all integers big-endian, like every other mlp wire format). The
// CRC32C (Castagnoli) guards the payload against torn writes and bit
// rot: a loader either gets the exact bytes serialize_state() produced
// or a ParseError -- never garbage handed to restore_state().
//
// Durability protocol: write_checkpoint_file() writes PATH.tmp, fsyncs
// it, rotates the current PATH to PATH.1 (the previous generation) and
// renames the temp file into place, fsyncing the directory -- so a
// crash at ANY instant leaves either the new checkpoint, the previous
// one, or both on disk, each self-validating. read_checkpoint_file()
// mirrors that: PATH first, falling back to PATH.1 when PATH is
// missing, truncated or fails its CRC, and failing loudly
// (CheckpointError) when neither generation is loadable. It never
// "repairs" anything: a bad checkpoint is reported, not guessed at.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mlp::pipeline {

class LiveSession;

/// File-layer failure: the checkpoint could not be written or no
/// generation could be read. Distinct from ParseError (bytes were read
/// fine but are not a valid checkpoint image).
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Bump when the LiveSession payload layout changes; a loader rejects
/// versions it does not speak instead of misparsing them.
constexpr std::uint32_t kCheckpointVersion = 2;  // v2: per-shard epoch counter

/// CRC32C (Castagnoli polynomial, the iSCSI/ext4 checksum), software
/// table implementation.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data);

/// Wrap a serialize_state() payload in the checkpoint file image
/// (magic, version, length, CRC, payload).
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint(
    std::span<const std::uint8_t> payload);

/// Validate a file image and return the payload. Throws ParseError on a
/// bad magic, unknown version, truncated/oversized image or CRC
/// mismatch -- arbitrary bytes never reach restore_state().
[[nodiscard]] std::vector<std::uint8_t> decode_checkpoint(
    std::span<const std::uint8_t> image);

/// Atomically publish `payload` as the checkpoint at `path`: write
/// path.tmp, fsync, rotate the existing file to path.1, rename into
/// place, fsync the directory. Throws CheckpointError on I/O failure.
void write_checkpoint_file(const std::string& path,
                           std::span<const std::uint8_t> payload);

struct LoadedCheckpoint {
  std::vector<std::uint8_t> payload;
  /// True when `path` itself was missing or corrupt and the previous
  /// generation (path.1) was loaded instead.
  bool from_previous_generation = false;
};

/// Load the newest valid generation: `path`, falling back to `path.1`.
/// Throws CheckpointError when neither generation yields a valid image.
[[nodiscard]] LoadedCheckpoint read_checkpoint_file(const std::string& path);

/// serialize_state() + write_checkpoint_file(). The session locks are
/// released before any file I/O starts: feeds stall only for the
/// in-memory serialize, never for the disk.
void save_checkpoint(LiveSession& session, const std::string& path);

/// read_checkpoint_file() + restore_state(), falling back one
/// generation when the newest payload fails to parse or no longer
/// matches the session wiring. Returns the generation actually loaded.
/// Throws CheckpointError when no generation could be restored.
[[nodiscard]] LoadedCheckpoint restore_checkpoint(LiveSession& session,
                                                  const std::string& path);

}  // namespace mlp::pipeline
