// A small fixed-size FIFO thread pool for the inference pipeline.
//
// FIFO submission order is part of the contract: the pipeline enqueues all
// extraction producers before the per-IXP consumers, so producers (which
// never block) always run ahead of consumers that wait on their output,
// and the pipeline cannot deadlock even with a single worker thread.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace mlp::pipeline {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task. Tasks start in submission order. An exception
  /// escaping a task never terminates the worker: the first one is
  /// captured and rethrown from wait_idle().
  void submit(std::function<void()> task) MLP_EXCLUDES(mutex_);

  /// Block until every submitted task has finished. If any task threw,
  /// rethrows the first captured exception (later ones are dropped); the
  /// pool stays usable afterwards.
  void wait_idle() MLP_EXCLUDES(mutex_);

  std::size_t thread_count() const { return workers_.size(); }

  /// The pool size to use for `requested` (0 means hardware concurrency).
  static std::size_t resolve(std::size_t requested);

 private:
  void worker_loop() MLP_EXCLUDES(mutex_);

  util::Mutex mutex_;
  util::CondVar work_available_;
  util::CondVar idle_;
  std::deque<std::function<void()>> queue_ MLP_GUARDED_BY(mutex_);
  std::size_t in_flight_ MLP_GUARDED_BY(mutex_) = 0;
  bool stopping_ MLP_GUARDED_BY(mutex_) = false;
  /// First exception a task leaked.
  std::exception_ptr first_error_ MLP_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
};

}  // namespace mlp::pipeline
