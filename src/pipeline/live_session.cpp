#include "pipeline/live_session.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "core/state_codec.hpp"
#include "util/bytes.hpp"
#include "util/errors.hpp"

namespace mlp::pipeline {

namespace {

std::shared_ptr<const std::vector<core::IxpContext>> share(
    std::vector<core::IxpContext> ixps) {
  return std::make_shared<const std::vector<core::IxpContext>>(
      std::move(ixps));
}

}  // namespace

// ------------------------------------------------------------ FeedHandle

void FeedHandle::feed(std::span<const std::uint8_t> chunk) {
  if (!session_) throw InvalidArgument("feed handle: not attached");
  LiveSession::Lane& target = session_->lane(index_);
  target.last_activity_ms.store(session_->clock_->now_ms(),
                                std::memory_order_relaxed);
  session_->refresh_idle();
  session_->supervise_stalls();
  util::MutexLock lock(target.mutex);
  if (target.closed)
    throw InvalidArgument("live session: feed() on closed feed " +
                          target.name);
  // A Dead lane's transport may keep delivering (the reader loop has not
  // noticed yet): drop the bytes at the door instead of throwing, so
  // graceful degradation does not turn into reader-thread crashes.
  if (!target.supervisor.ingesting()) {
    target.bytes_discarded += chunk.size();
    return;
  }
  try {
    session_->lane_feed(target, chunk);
  } catch (...) {
    // An exception escaping mid-ingest (strict-mode ParseError, queue
    // failure) leaves the lane's framing state untrustworthy AND is about
    // to unwind the reader: make sure the close sentinels publish so the
    // other feeds' merge frontier never waits on this lane.
    session_->fail_locked(target, "ingest error (" + target.name + ")");
    throw;
  }
}

std::uint64_t FeedHandle::drain(stream::StreamSource& source) {
  if (!session_) throw InvalidArgument("feed handle: not attached");
  std::vector<std::uint8_t> buffer(
      std::max<std::size_t>(1, session_->config_.read_chunk));
  std::uint64_t total = 0;
  for (;;) {
    const std::size_t n = source.read(buffer);
    if (n == 0) break;
    total += n;
    feed(std::span<const std::uint8_t>(buffer.data(), n));
  }
  return total;
}

void FeedHandle::note_disconnect() {
  if (!session_) throw InvalidArgument("feed handle: not attached");
  LiveSession::Lane& target = session_->lane(index_);
  util::MutexLock lock(target.mutex);
  std::size_t dropped = target.framer.reset();
  if (target.bmp) dropped += target.bmp->reset();
  const bool dirty = dropped > 0;
  if (dirty) {
    ++target.dirty_disconnects;
    ++target.partial_records_dropped;
  } else {
    ++target.clean_disconnects;
  }
  const FeedHealth before = target.supervisor.health();
  session_->apply_supervision(target, target.supervisor.note_disconnect(dirty),
                              before);
}

void FeedHandle::fail(const std::string& reason) {
  if (!session_) throw InvalidArgument("feed handle: not attached");
  LiveSession::Lane& target = session_->lane(index_);
  util::MutexLock lock(target.mutex);
  session_->fail_locked(target, reason);
}

void FeedHandle::close() {
  if (!session_) throw InvalidArgument("feed handle: not attached");
  LiveSession::Lane& target = session_->lane(index_);
  util::MutexLock lock(target.mutex);
  session_->close_locked(target, index_);
}

// ----------------------------------------------------------- LiveSession

LiveSession::LiveSession(LiveConfig config,
                         std::vector<core::IxpContext> ixps,
                         bgp::RelFn relationships)
    : config_(std::move(config)),
      clock_(config_.clock ? config_.clock : stream::system_clock()),
      contexts_(share(std::move(ixps))),
      relationships_(std::move(relationships)),
      pool_(ThreadPool::resolve(config_.threads)) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  // Concatenate's drain cursor advances past a closed-and-drained source
  // and cannot rewind, so a quarantined feed could never merge again:
  // escalate quarantine to Dead instead of pretending otherwise.
  if (config_.merge == MergePolicy::Concatenate)
    config_.supervision.allow_readmission = false;
  shards_.reserve(contexts_->size());
  for (const core::IxpContext& context : *contexts_)
    shards_.push_back(std::make_unique<Shard>(context, config_.merge));
  // Publish epoch 1 (the empty state) per shard before any feed can
  // exist: epoch readers never observe a null snapshot.
  for (std::size_t i = 0; i < shards_.size(); ++i) publish_epoch(i);
}

FeedHandle LiveSession::add_feed(FeedOptions options) {
  util::MutexLock lock(feeds_mutex_);
  if (finished_.load(std::memory_order_acquire))
    throw InvalidArgument("live session: add_feed() after finish()");
  const std::size_t index = feeds_.size();
  // Queue source slots stay in lockstep with feed indices: every shard
  // grows exactly one source per add_feed, under the same lock.
  for (auto& shard : shards_) shard->queue.add_source();
  auto lane = std::make_unique<Lane>(this, contexts_, relationships_,
                                     config_.passive);
  // The sink runs under the lane mutex (extractor calls happen there) but
  // NOT under feeds_mutex_, and feeds_ may reallocate concurrently: hold
  // the lane by its stable address, never through feeds_[index].
  Lane* raw = lane.get();
  {
    // The lane is still private to this thread, but its guarded members
    // are initialized here; holding the (uncontended) lane mutex keeps
    // the analysis exact. feeds_mutex_ -> lane mutex is the documented
    // order.
    util::MutexLock init_lock(raw->mutex);
    raw->name = options.name.empty() ? "feed" + std::to_string(index)
                                     : options.name;
    raw->index = index;
    raw->framer = stream::MrtFramer(config_.framing);
    if (options.transport == Transport::Bmp)
      raw->bmp.emplace(options.bmp_framing);
    const std::uint64_t now = clock_->now_ms();
    raw->last_activity_ms.store(now, std::memory_order_relaxed);
    raw->supervisor = FeedSupervisor(config_.supervision);
    raw->supervisor.note_activity(now);
    raw->extractor.set_sink(
        [this, index, raw](std::size_t ixp,
                           std::vector<core::Observation>&& batch) {
          // The extractor only emits from calls made under the lane
          // mutex (lane_feed/close_locked/stop-the-world flushes); the
          // analysis cannot see through the std::function boundary, so
          // re-assert that contract here.
          raw->mutex.assert_held();
          // A lane that is not merging (Quarantined/Dead) keeps
          // extracting -- its announce-window must track the stream for
          // a potential readmission -- but its output is discarded, not
          // queued.
          if (!raw->supervisor.merging()) {
            raw->observations_discarded += batch.size();
            return;
          }
          shards_[ixp]->queue.push(index, std::move(batch));
          schedule_pump(ixp);
        },
        config_.batch_size);
  }
  feeds_.push_back(std::move(lane));
  return FeedHandle(this, index);
}

LiveSession::Lane& LiveSession::lane(std::size_t index) {
  util::MutexLock lock(feeds_mutex_);
  if (index >= feeds_.size())
    throw InvalidArgument("live session: bad feed index");
  return *feeds_[index];
}

// A lock set whose size is only known at run time cannot be modelled by
// the thread-safety analysis (hence NO_THREAD_SAFETY_ANALYSIS on the
// declarations); correctness rests on the fixed acquisition order (feed
// order, stable while feeds_mutex_ is held) plus the per-lane
// assert_held() calls at every use site.
LiveSession::LaneLockSet::LaneLockSet(
    const std::vector<std::unique_ptr<Lane>>& lanes) {
  locked_.reserve(lanes.size());
  for (const auto& lane : lanes) {
    lane->mutex.lock();
    locked_.push_back(lane.get());
  }
}

LiveSession::LaneLockSet::~LaneLockSet() {
  for (auto it = locked_.rbegin(); it != locked_.rend(); ++it)
    (*it)->mutex.unlock();
}

void LiveSession::pump(std::size_t index) {
  Shard& shard = *shards_[index];
  std::vector<core::Observation> batch;
  for (;;) {
    while (shard.queue.try_pop(batch)) {
      for (const core::Observation& observation : batch)
        shard.engine.add(observation);
      // Mid-run publish cadence: bound reader staleness even while a
      // deep backlog drains.
      if (config_.publish_every_batches != 0 &&
          ++shard.batches_since_publish >= config_.publish_every_batches)
        publish_epoch(index);
    }
    // The drain run settled (the merge frontier is exhausted): publish
    // INSIDE the ownership window -- after the store(false) below a
    // successor pump may own the engine.
    publish_epoch(index);
    shard.pump_scheduled.store(false, std::memory_order_release);
    if (!shard.queue.has_ready()) return;
    // A push raced in after the drain: reclaim sole ownership unless the
    // producer already scheduled a successor pump.
    if (shard.pump_scheduled.exchange(true, std::memory_order_acq_rel))
      return;
  }
}

void LiveSession::schedule_pump(std::size_t index) {
  Shard& shard = *shards_[index];
  if (!shard.pump_scheduled.exchange(true, std::memory_order_acq_rel))
    pool_.submit([this, index] { pump(index); });
}

void LiveSession::publish_epoch(std::size_t index) {
  Shard& shard = *shards_[index];
  shard.batches_since_publish = 0;
  const std::uint64_t generation = shard.engine.generation();
  // Re-publishing an unchanged generation would be a copy for nothing:
  // the current epoch already describes this exact state.
  if (shard.epochs_published.load(std::memory_order_relaxed) != 0 &&
      generation == shard.last_published_generation)
    return;
  const std::uint64_t epoch =
      shard.epochs_published.load(std::memory_order_relaxed) + 1;
  shard.published.store(
      shard.engine.freeze(config_.assume_open_for_unobserved, epoch),
      std::memory_order_release);
  shard.epochs_published.store(epoch, std::memory_order_release);
  shard.last_published_generation = generation;
}

std::shared_ptr<const core::EngineSnapshot> LiveSession::epoch_snapshot(
    std::size_t index) const {
  if (index >= shards_.size())
    throw InvalidArgument("live session: bad IXP index");
  return shards_[index]->published.load(std::memory_order_acquire);
}

std::shared_ptr<const core::EngineSnapshot> LiveSession::epoch_snapshot(
    const std::string& ixp) const {
  return epoch_snapshot(ixp_index(ixp));
}

std::size_t LiveSession::ixp_index(const std::string& ixp) const {
  // contexts_ is immutable after construction, so the name scan needs no
  // lock.
  for (std::size_t i = 0; i < contexts_->size(); ++i)
    if ((*contexts_)[i].name == ixp) return i;
  throw InvalidArgument("live session: unknown IXP \"" + ixp + "\"");
}

std::uint32_t LiveSession::merge_frontier(std::size_t index) const {
  if (index >= shards_.size())
    throw InvalidArgument("live session: bad IXP index");
  return shards_[index]->queue.min_watermark();
}

std::size_t LiveSession::merge_backlog(std::size_t index) const {
  if (index >= shards_.size())
    throw InvalidArgument("live session: bad IXP index");
  return shards_[index]->queue.depth();
}

std::vector<std::shared_ptr<const core::EngineSnapshot>>
LiveSession::epoch_snapshots() const {
  std::vector<std::shared_ptr<const core::EngineSnapshot>> out;
  out.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i)
    out.push_back(epoch_snapshot(i));
  return out;
}

void LiveSession::publish_watermark(Lane& target) {
  if (config_.merge != MergePolicy::Watermark) return;
  const std::uint32_t clock = target.extractor.stream_time();
  if (clock <= target.watermark_published) return;
  target.watermark_published = clock;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    shards_[shard]->queue.set_watermark(target.index, clock);
    // Raising this lane's watermark can lift the merge frontier past
    // other lanes' queued observations; make sure a pump notices.
    schedule_pump(shard);
  }
}

void LiveSession::refresh_idle() {
  if (config_.merge != MergePolicy::Watermark ||
      config_.idle_feed_grace_ms == 0)
    return;
  util::MutexLock lock(feeds_mutex_);
  refresh_idle_locked();
}

void LiveSession::refresh_idle_locked() {
  if (config_.merge != MergePolicy::Watermark ||
      config_.idle_feed_grace_ms == 0)
    return;
  const std::uint64_t now = clock_->now_ms();
  for (auto& lane : feeds_) {
    const std::uint64_t last =
        lane->last_activity_ms.load(std::memory_order_relaxed);
    const bool stale =
        now > last && now - last > config_.idle_feed_grace_ms;
    if (lane->idle.load(std::memory_order_relaxed) == stale) continue;
    lane->idle.store(stale, std::memory_order_relaxed);
    for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
      shards_[shard]->queue.set_idle(lane->index, stale);
      schedule_pump(shard);
    }
  }
}

void LiveSession::supervise_stalls() {
  if (!config_.supervision.enabled || config_.supervision.stall_timeout_ms == 0)
    return;
  util::MutexLock lock(feeds_mutex_);
  supervise_stalls_locked();
}

void LiveSession::supervise_stalls_locked() {
  if (!config_.supervision.enabled || config_.supervision.stall_timeout_ms == 0)
    return;
  const std::uint64_t now = clock_->now_ms();
  for (auto& lane : feeds_) {
    // Lock-free pre-check: only a lane whose activity stamp is actually
    // stale pays for its mutex, so the common all-healthy sweep is a few
    // relaxed loads per feed.
    const std::uint64_t last =
        lane->last_activity_ms.load(std::memory_order_relaxed);
    if (now <= last || now - last < config_.supervision.stall_timeout_ms)
      continue;
    Lane& target = *lane;
    util::MutexLock lane_lock(target.mutex);
    if (target.closed) continue;
    target.supervisor.note_activity(last);
    const FeedHealth before = target.supervisor.health();
    apply_supervision(target, target.supervisor.check_stall(now), before);
  }
}

void LiveSession::record_outcome(Lane& target, bool malformed) {
  const FeedHealth before = target.supervisor.health();
  apply_supervision(target, target.supervisor.note_record(malformed), before);
}

void LiveSession::fail_locked(Lane& target, const std::string& reason) {
  const FeedHealth before = target.supervisor.health();
  // Everything extracted while the lane merged was judged trustworthy at
  // the time: flush its announce-window and watermark BEFORE the Dead
  // transition, so a feed that dies at end of stream (the common
  // reconnect-exhaustion shape) keeps its contribution. A lane already
  // quarantined gets no such flush -- its window is suspect.
  if (target.supervisor.merging() && !target.closed) {
    target.extractor.finish();
    publish_watermark(target);
  }
  apply_supervision(target, target.supervisor.note_fatal(reason), before);
}

void LiveSession::apply_supervision(Lane& target,
                                    FeedSupervisor::Action action,
                                    FeedHealth before) {
  switch (action) {
    case FeedSupervisor::Action::None:
      break;
    case FeedSupervisor::Action::Quarantine:
    case FeedSupervisor::Action::Die:
      if (!target.queues_closed) {
        target.queues_closed = true;
        for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
          // The close sentinel: the lane stops constraining the frontier
          // (Watermark) / the drain cursor steps over it (Concatenate),
          // and its already-queued observations become drainable.
          shards_[shard]->queue.close(target.index);
          schedule_pump(shard);
        }
      }
      break;
    case FeedSupervisor::Action::Readmit:
      // Never resurrect a user-closed feed; readmission is only for
      // supervision's own sentinels (and only under Watermark -- the
      // supervisor cannot emit Readmit under Concatenate, where
      // allow_readmission is forced off).
      if (target.queues_closed && !target.closed) {
        target.queues_closed = false;
        for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
          shards_[shard]->queue.reopen(target.index);
          schedule_pump(shard);
        }
      }
      break;
  }
  const FeedHealth after = target.supervisor.health();
  if (after == before || !config_.on_health_change) return;
  HealthChange change;
  change.feed = target.index;
  change.name = target.name;
  change.from = before;
  change.to = after;
  const auto& transitions = target.supervisor.transitions();
  if (target.supervisor.transition_count() == transitions.size() &&
      !transitions.empty())
    change.reason = transitions.back().reason;
  config_.on_health_change(change);
}

void LiveSession::drain_framer(Lane& target) {
  for (;;) {
    std::span<const std::uint8_t> record;
    try {
      const auto framed = target.framer.next();
      if (!framed) break;  // mid-record: wait for more bytes
      record = *framed;
    } catch (const ParseError&) {  // absurd length field
      if (!config_.passive.tolerate_malformed) throw;
      target.extractor.note_malformed_record();
      record_outcome(target, /*malformed=*/true);
      if (target.bmp) {
        // The buffer holds exactly the one synthesized record that blew
        // the cap (BMP lanes feed record-by-record): drop it whole. A
        // resync scan could anchor inside the dropped record's bytes.
        target.framer.reset();
        break;
      }
      target.framer.resync();
      continue;
    }
    try {
      const stream::UpdateRecordView* view = target.decoder.decode(record);
      if (view != nullptr)
        target.extractor.consume_update(view->timestamp, view->peer_asn,
                                        *view->update);
      // A stepped-over non-update record framed and decoded fine: it
      // counts as a clean outcome for the health window.
      record_outcome(target, /*malformed=*/false);
    } catch (const ParseError& e) {
      if (!config_.passive.tolerate_malformed)
        throw ParseError(std::string(e.what()) + " (" + target.name +
                         ", record at stream offset " +
                         std::to_string(target.framer.last_record_offset()) +
                         ")");
      target.extractor.note_malformed_record();
      record_outcome(target, /*malformed=*/true);
      // A raw MRT stream needs a scan for the next plausible header; a
      // BMP lane's record boundaries come from BMP framing and stay
      // trusted, so the bad record is simply dropped.
      if (!target.bmp) target.framer.resync();
    }
  }
}

void LiveSession::lane_feed(Lane& target, std::span<const std::uint8_t> chunk) {
  if (finished_.load(std::memory_order_acquire))
    throw InvalidArgument("live session: feed() after finish()");
  if (!target.bmp) {
    target.framer.feed(chunk);
    drain_framer(target);
    target.records_framed.store(target.framer.records(),
                                std::memory_order_relaxed);
    publish_watermark(target);
    return;
  }
  // BMP transport: unwrap Route Monitoring messages into synthesized
  // BGP4MP records in front of the framer, and apply PeerUp/PeerDown
  // session boundaries to the lane's extractor. Feeding record-by-record
  // and draining immediately keeps the MRT layer's buffer at one record.
  target.bmp->feed(chunk);
  for (;;) {
    std::optional<stream::BmpEvent> event;
    try {
      event = target.bmp->next();
    } catch (const ParseError& e) {
      if (!config_.passive.tolerate_malformed)
        throw ParseError(std::string(e.what()) + " (" + target.name + ")");
      target.extractor.note_malformed_record();
      record_outcome(target, /*malformed=*/true);
      target.bmp->resync();
      continue;
    }
    if (!event) break;
    switch (event->kind) {
      case stream::BmpEvent::Kind::Update:
        target.framer.feed(event->record);
        drain_framer(target);
        break;
      case stream::BmpEvent::Kind::PeerUp:
      case stream::BmpEvent::Kind::PeerDown:
        // Both are session boundaries for the peer: a PeerDown ends the
        // session outright, a PeerUp implies any previous session died
        // without one (state from it must not linger).
        target.extractor.peer_session_reset(event->peer.asn,
                                            event->peer.timestamp);
        break;
    }
  }
  target.records_framed.store(target.framer.records(),
                              std::memory_order_relaxed);
  publish_watermark(target);
}

void LiveSession::close_locked(Lane& target, std::size_t index) {
  if (target.closed) return;
  target.extractor.finish();  // flush announce-window + partial batches
  publish_watermark(target);
  target.closed = true;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    shards_[shard]->queue.close(index);
    // Closing a source can unblock buffered batches (it stops
    // constraining the watermark / later feeds become the in-order
    // head); make sure a pump notices.
    schedule_pump(shard);
  }
}

void LiveSession::feed(std::span<const std::uint8_t> chunk) {
  if (finished_.load(std::memory_order_acquire))
    throw InvalidArgument("live session: feed() after finish()");
  if (feed_count() == 0) add_feed();
  FeedHandle(this, 0).feed(chunk);
}

std::uint64_t LiveSession::drain(stream::StreamSource& source) {
  if (feed_count() == 0) add_feed();
  return FeedHandle(this, 0).drain(source);
}

std::size_t LiveSession::feed_count() {
  util::MutexLock lock(feeds_mutex_);
  return feeds_.size();
}

std::uint64_t LiveSession::records() {
  // Published counters, no lane mutexes: a feeder mid-chunk never blocks
  // the pacing thread (and vice versa).
  util::MutexLock lock(feeds_mutex_);
  std::uint64_t total = 0;
  for (auto& lane : feeds_)
    total += lane->records_framed.load(std::memory_order_relaxed);
  return total;
}

FeedStats LiveSession::lane_stats(Lane& target) const {
  FeedStats stats;
  stats.name = target.name;
  stats.bytes_fed =
      target.bmp ? target.bmp->bytes_fed() : target.framer.bytes_fed();
  stats.records = target.framer.records();
  stats.records_skipped = target.decoder.skipped();
  if (target.bmp) {
    stats.bmp_messages = target.bmp->messages();
    stats.bmp_skipped = target.bmp->skipped();
    stats.bmp_peer_ups = target.bmp->peer_ups();
    stats.bmp_peer_downs = target.bmp->peer_downs();
  }
  stats.clean_disconnects = target.clean_disconnects;
  stats.dirty_disconnects = target.dirty_disconnects;
  stats.partial_records_dropped = target.partial_records_dropped;
  stats.watermark = target.extractor.stream_time();
  // Lane mutex -> queue mutex is the sink push path's order, so reading
  // the depth here composes with concurrent feeders.
  for (const auto& shard : shards_)
    stats.queue_depth += shard->queue.depth(target.index);
  stats.idle = target.idle.load(std::memory_order_relaxed);
  stats.closed = target.closed;
  stats.passive = target.extractor.stats();
  stats.health = target.supervisor.health();
  stats.health_transitions = target.supervisor.transition_count();
  stats.times_quarantined = target.supervisor.times_quarantined();
  stats.bytes_discarded = target.bytes_discarded;
  stats.observations_discarded = target.observations_discarded;
  stats.malformed_rate = target.supervisor.malformed_rate();
  stats.consecutive_dirty_disconnects =
      target.supervisor.consecutive_dirty_disconnects();
  stats.probation_clean_records = target.supervisor.probation_clean_records();
  stats.transitions = target.supervisor.transitions();
  return stats;
}

SessionTotals LiveSession::collect_totals_locked() {
  SessionTotals totals;
  totals.per_feed.reserve(feeds_.size());
  std::uint32_t frontier = std::numeric_limits<std::uint32_t>::max();
  bool constrained = false;
  for (auto& lane : feeds_) {
    Lane& target = *lane;
    // Stop-the-world callers hold every lane mutex via LaneLockSet.
    target.mutex.assert_held();
    FeedStats stats = lane_stats(target);
    totals.bytes_fed += stats.bytes_fed;
    totals.records += stats.records;
    totals.records_skipped += stats.records_skipped;
    totals.queue_depth += stats.queue_depth;
    totals.passive += stats.passive;
    totals.health_transitions += stats.health_transitions;
    totals.observations_discarded += stats.observations_discarded;
    switch (stats.health) {
      case FeedHealth::Healthy:
        break;
      case FeedHealth::Degraded:
        ++totals.feeds_degraded;
        break;
      case FeedHealth::Quarantined:
        ++totals.feeds_quarantined;
        break;
      case FeedHealth::Dead:
        ++totals.feeds_dead;
        break;
    }
    // A quarantined/dead lane's queue sources are closed: it no longer
    // constrains the frontier, and the published total must say so.
    const bool merging = stats.health == FeedHealth::Healthy ||
                         stats.health == FeedHealth::Degraded;
    if (!stats.closed && !stats.idle && merging) {
      constrained = true;
      frontier = std::min(frontier, stats.watermark);
    }
    totals.per_feed.push_back(std::move(stats));
  }
  totals.min_watermark = feeds_.empty() ? 0
                         : constrained  ? frontier
                         : std::numeric_limits<std::uint32_t>::max();
  return totals;
}

LiveSnapshot LiveSession::snapshot() {
  // Stop the world: holding every lane mutex blocks concurrent feeders,
  // so after the batch flush and pool settle no producer can race the
  // engine reads below. wait_idle also rethrows anything a pump leaked.
  util::MutexLock feeds_lock(feeds_mutex_);
  refresh_idle_locked();
  supervise_stalls_locked();
  LaneLockSet lane_locks(feeds_);
  for (auto& lane : feeds_) {
    Lane& target = *lane;
    target.mutex.assert_held();  // LaneLockSet holds every lane mutex
    if (target.closed) continue;
    target.extractor.flush_batches();
    publish_watermark(target);
  }
  pool_.wait_idle();

  LiveSnapshot snap;
  static_cast<SessionTotals&>(snap) = collect_totals_locked();
  snap.links_per_ixp.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // The world is settled (all lane mutexes held, pool idle), so the
    // pump's engine ownership transfers here: publish the flushed state
    // and read the count off the published epoch, keeping this snapshot
    // and concurrent epoch_snapshot() readers in agreement.
    publish_epoch(i);
    snap.links_per_ixp.push_back(
        shards_[i]->published.load(std::memory_order_acquire)->link_count());
  }
  return snap;
}

LiveResult LiveSession::finish() {
  util::MutexLock feeds_lock(feeds_mutex_);
  if (finished_.exchange(true, std::memory_order_acq_rel))
    throw InvalidArgument("live session: finish() already called");
  // Close remaining feeds in add order (the cross-feed merge order).
  for (std::size_t i = 0; i < feeds_.size(); ++i) {
    Lane& target = *feeds_[i];
    util::MutexLock lane_lock(target.mutex);
    close_locked(target, i);
  }
  pool_.wait_idle();

  LiveResult result;
  {
    LaneLockSet lane_locks(feeds_);
    static_cast<SessionTotals&>(result) = collect_totals_locked();
  }
  result.per_ixp.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // Everything is closed and drained: publish the final epoch so a
    // query server lingering past finish() answers from exactly the
    // state this result reports.
    publish_epoch(i);
    const core::MlpInferenceEngine& engine = shards_[i]->engine;
    IxpResult& slot = result.per_ixp[i];
    slot.name = engine.context().name;
    fill_ixp_result(slot, engine, config_.assume_open_for_unobserved);
  }
  result.all_links = merge_links(result.per_ixp);
  return result;
}

std::vector<std::uint8_t> LiveSession::serialize_state() {
  // Same stop-the-world point as snapshot(), minus the wall-clock
  // supervision sweeps (a checkpoint must capture state, not advance
  // it): all lane mutexes, partial batches flushed, watermarks
  // published, pool settled. At that point everything strictly below the
  // merge frontier is in the engines and the remainder sits in the
  // queues -- both serialized, so the split itself need not be
  // reproducible, only the union and the (deterministic) drain order.
  util::MutexLock feeds_lock(feeds_mutex_);
  if (finished_.load(std::memory_order_acquire))
    throw InvalidArgument("live session: serialize_state() after finish()");
  LaneLockSet lane_locks(feeds_);
  for (auto& lane : feeds_) {
    Lane& target = *lane;
    target.mutex.assert_held();  // LaneLockSet holds every lane mutex
    if (target.closed) continue;
    target.extractor.flush_batches();
    publish_watermark(target);
  }
  pool_.wait_idle();

  ByteWriter writer;
  writer.u8(static_cast<std::uint8_t>(config_.merge));
  writer.u32(static_cast<std::uint32_t>(contexts_->size()));
  for (const core::IxpContext& context : *contexts_)
    core::codec::write_string(writer, context.name);
  writer.u32(static_cast<std::uint32_t>(feeds_.size()));
  for (auto& lane : feeds_) {
    Lane& target = *lane;
    target.mutex.assert_held();  // LaneLockSet holds every lane mutex
    // A BMP lane's MRT framer is fed synthesized records one at a time
    // and drained whole, so it can never straddle a record here.
    if (target.bmp && target.framer.buffered() != 0)
      throw InvalidArgument(
          "live session: BMP lane buffered a partial synthesized record");
    core::codec::write_string(writer, target.name);
    writer.u8(target.bmp ? 1 : 0);
    writer.u8(static_cast<std::uint8_t>(
        (target.closed ? 1 : 0) | (target.queues_closed ? 2 : 0) |
        (target.idle.load(std::memory_order_relaxed) ? 4 : 0)));
    // The framer image at its acknowledged position: the buffered
    // partial tail is deliberately NOT serialized -- the resumed
    // transport re-delivers it from the acknowledged offset, which is
    // what makes the record framing exactly-once.
    writer.u64(target.framer.bytes_fed() - target.framer.buffered());
    writer.u64(target.framer.records());
    writer.u64(target.framer.last_record_offset());
    writer.u8(target.framer.resyncing() ? 1 : 0);
    if (target.bmp) {
      writer.u64(target.bmp->bytes_fed() - target.bmp->buffered());
      writer.u64(target.bmp->messages());
      writer.u64(target.bmp->skipped());
      writer.u64(target.bmp->peer_ups());
      writer.u64(target.bmp->peer_downs());
      writer.u64(target.bmp->last_message_offset());
      writer.u8(target.bmp->resyncing() ? 1 : 0);
    }
    writer.u64(target.decoder.skipped());
    writer.u32(target.watermark_published);
    writer.u64(target.clean_disconnects);
    writer.u64(target.dirty_disconnects);
    writer.u64(target.partial_records_dropped);
    writer.u64(target.bytes_discarded);
    writer.u64(target.observations_discarded);
    target.extractor.serialize_state(writer);
    target.supervisor.serialize_state(writer);
  }
  for (auto& shard : shards_) {
    shard->engine.serialize_state(writer);
    shard->queue.serialize_state(writer);
    // The epoch counter rides along (kCheckpointVersion 2) so a resumed
    // session keeps publishing ascending epochs instead of restarting at
    // 1 and confusing readers that cache "newest epoch seen".
    writer.u64(shard->epochs_published.load(std::memory_order_acquire));
  }
  return writer.take();
}

void LiveSession::apply_payload(ByteReader& reader, bool commit) {
  const std::uint8_t policy = reader.u8();
  if (policy > static_cast<std::uint8_t>(MergePolicy::Watermark))
    throw ParseError("checkpoint: merge policy byte " +
                     std::to_string(policy));
  if (policy != static_cast<std::uint8_t>(config_.merge))
    throw InvalidArgument(
        "checkpoint: image was taken under a different merge policy");
  const std::size_t ixp_count =
      core::codec::read_count(reader, 2, "checkpoint IXP");
  if (ixp_count != contexts_->size())
    throw InvalidArgument("checkpoint: image has " +
                          std::to_string(ixp_count) +
                          " IXPs, session has " +
                          std::to_string(contexts_->size()));
  for (std::size_t i = 0; i < ixp_count; ++i) {
    const std::string name = core::codec::read_string(reader);
    if (name != (*contexts_)[i].name)
      throw InvalidArgument("checkpoint: IXP " + std::to_string(i) +
                            " is \"" + name + "\" in the image, \"" +
                            (*contexts_)[i].name + "\" in the session");
  }
  const std::size_t feed_count =
      core::codec::read_count(reader, 64, "checkpoint feed");
  if (feed_count != feeds_.size())
    throw InvalidArgument(
        "checkpoint: image has " + std::to_string(feed_count) +
        " feeds, session has " + std::to_string(feeds_.size()) +
        " -- re-add the same feeds (same order) before restoring");
  for (std::size_t i = 0; i < feed_count; ++i) {
    Lane& real = *feeds_[i];
    // restore_state holds every lane mutex via LaneLockSet.
    real.mutex.assert_held();
    const std::string name = core::codec::read_string(reader);
    const std::uint8_t transport = reader.u8();
    if (transport > 1)
      throw ParseError("checkpoint: feed transport byte " +
                       std::to_string(transport));
    const bool bmp = transport == 1;
    if (name != real.name || bmp != real.bmp.has_value())
      throw InvalidArgument("checkpoint: feed " + std::to_string(i) +
                            " is \"" + name + "\" (" +
                            (bmp ? "BMP" : "raw MRT") +
                            ") in the image, \"" + real.name +
                            "\" in the session");
    const std::uint8_t flags = reader.u8();
    if (flags > 7)
      throw ParseError("checkpoint: feed flags " + std::to_string(flags));
    const std::uint64_t mrt_acked = reader.u64();
    const std::uint64_t mrt_records = reader.u64();
    const std::uint64_t mrt_last_offset = reader.u64();
    const std::uint8_t mrt_resync = reader.u8();
    if (mrt_resync > 1)
      throw ParseError("checkpoint: framer resync byte " +
                       std::to_string(mrt_resync));
    std::uint64_t bmp_acked = 0, bmp_messages = 0, bmp_skipped = 0;
    std::uint64_t bmp_peer_ups = 0, bmp_peer_downs = 0, bmp_last_offset = 0;
    std::uint8_t bmp_resync = 0;
    if (bmp) {
      bmp_acked = reader.u64();
      bmp_messages = reader.u64();
      bmp_skipped = reader.u64();
      bmp_peer_ups = reader.u64();
      bmp_peer_downs = reader.u64();
      bmp_last_offset = reader.u64();
      bmp_resync = reader.u8();
      if (bmp_resync > 1)
        throw ParseError("checkpoint: BMP resync byte " +
                         std::to_string(bmp_resync));
    }
    const std::uint64_t decoder_skipped = reader.u64();
    const std::uint32_t watermark_published = reader.u32();
    const std::uint64_t clean_disconnects = reader.u64();
    const std::uint64_t dirty_disconnects = reader.u64();
    const std::uint64_t partial_dropped = reader.u64();
    const std::uint64_t bytes_discarded = reader.u64();
    const std::uint64_t observations_discarded = reader.u64();
    if (commit) {
      real.framer.restore_state(mrt_acked, mrt_records, mrt_last_offset,
                                mrt_resync != 0);
      if (bmp)
        real.bmp->restore_state(bmp_acked, bmp_messages, bmp_skipped,
                                bmp_peer_ups, bmp_peer_downs,
                                bmp_last_offset, bmp_resync != 0);
      real.decoder.restore_state(
          static_cast<std::size_t>(decoder_skipped));
      real.extractor.restore_state(reader);
      real.supervisor.restore_state(reader);
      real.closed = (flags & 1) != 0;
      real.queues_closed = (flags & 2) != 0;
      real.idle.store((flags & 4) != 0, std::memory_order_relaxed);
      real.watermark_published = watermark_published;
      real.clean_disconnects = clean_disconnects;
      real.dirty_disconnects = dirty_disconnects;
      real.partial_records_dropped = partial_dropped;
      real.bytes_discarded = bytes_discarded;
      real.observations_discarded = observations_discarded;
    } else {
      core::PassiveExtractor extractor(contexts_, relationships_,
                                       config_.passive);
      extractor.restore_state(reader);
      FeedSupervisor supervisor(config_.supervision);
      supervisor.restore_state(reader);
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (commit) {
      shards_[i]->engine.restore_state(reader);
      shards_[i]->queue.restore_state(reader);
      shards_[i]->epochs_published.store(reader.u64(),
                                         std::memory_order_release);
    } else {
      core::MlpInferenceEngine engine((*contexts_)[i]);
      engine.restore_state(reader);
      ObservationQueue queue(feeds_.size(), config_.merge);
      queue.restore_state(reader);
      reader.u64();  // epoch counter: any value is valid
    }
  }
}

void LiveSession::restore_state(std::span<const std::uint8_t> payload) {
  util::MutexLock feeds_lock(feeds_mutex_);
  if (finished_.load(std::memory_order_acquire))
    throw InvalidArgument("live session: restore_state() after finish()");
  LaneLockSet lane_locks(feeds_);
  for (auto& lane : feeds_) {
    Lane& target = *lane;
    target.mutex.assert_held();  // LaneLockSet holds every lane mutex
    const std::uint64_t fed =
        target.bmp ? target.bmp->bytes_fed() : target.framer.bytes_fed();
    if (fed != 0)
      throw InvalidArgument("live session: restore_state() after feed " +
                            target.name + " already ingested bytes");
  }
  // Pass 1: parse the whole payload against scratch components. Only a
  // payload that survives end to end touches real state, so a malformed
  // image can never leave the session partially applied.
  {
    ByteReader scratch(payload);
    apply_payload(scratch, /*commit=*/false);
    if (!scratch.done())
      throw ParseError("checkpoint: trailing bytes after the session image");
  }
  ByteReader reader(payload);
  apply_payload(reader, /*commit=*/true);

  const std::uint64_t now = clock_->now_ms();
  for (auto& lane : feeds_) {
    Lane& target = *lane;
    target.mutex.assert_held();  // LaneLockSet holds every lane mutex
    target.records_framed.store(target.framer.records(),
                                std::memory_order_relaxed);
    // The serialized activity stamp would be wall-clock time of a dead
    // process: re-arm the idle/stall clocks at the resume instant.
    target.last_activity_ms.store(now, std::memory_order_relaxed);
    target.supervisor.note_activity(now);
  }
  // Publish the restored state as a fresh epoch -- continuing the
  // restored counter -- BEFORE the pumps restart: readers must never see
  // the pre-restore matrix paired with post-restore feed progress. No
  // pump can be running here (restore requires zero bytes fed, so no
  // batch was ever pushed), so the engine ownership rule holds.
  for (std::size_t shard = 0; shard < shards_.size(); ++shard)
    publish_epoch(shard);
  // Anything restored below the merge frontier is drainable right away.
  for (std::size_t shard = 0; shard < shards_.size(); ++shard)
    schedule_pump(shard);
}

std::vector<std::uint64_t> LiveSession::acknowledged_offsets() {
  util::MutexLock feeds_lock(feeds_mutex_);
  std::vector<std::uint64_t> offsets;
  offsets.reserve(feeds_.size());
  for (auto& lane : feeds_) {
    Lane& target = *lane;
    util::MutexLock lane_lock(target.mutex);
    offsets.push_back(target.bmp
                          ? target.bmp->bytes_fed() - target.bmp->buffered()
                          : target.framer.bytes_fed() -
                                target.framer.buffered());
  }
  return offsets;
}

}  // namespace mlp::pipeline
