#include "pipeline/live_session.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/errors.hpp"

namespace mlp::pipeline {

namespace {

std::shared_ptr<const std::vector<core::IxpContext>> share(
    std::vector<core::IxpContext> ixps) {
  return std::make_shared<const std::vector<core::IxpContext>>(
      std::move(ixps));
}

}  // namespace

LiveSession::LiveSession(LiveConfig config,
                         std::vector<core::IxpContext> ixps,
                         bgp::RelFn relationships)
    : config_(std::move(config)),
      framer_(config_.framing),
      extractor_(share(std::move(ixps)), std::move(relationships),
                 config_.passive),
      pool_(ThreadPool::resolve(config_.threads)) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  const auto& contexts = *extractor_.contexts();
  shards_.reserve(contexts.size());
  for (const core::IxpContext& context : contexts)
    shards_.push_back(std::make_unique<Shard>(context));
  extractor_.set_sink(
      [this](std::size_t ixp, std::vector<core::Observation>&& batch) {
        shards_[ixp]->queue.push(0, std::move(batch));
        schedule_pump(ixp);
      },
      config_.batch_size);
}

void LiveSession::pump(std::size_t index) {
  Shard& shard = *shards_[index];
  std::vector<core::Observation> batch;
  for (;;) {
    while (shard.queue.try_pop(batch))
      for (const core::Observation& observation : batch)
        shard.engine.add(observation);
    shard.pump_scheduled.store(false, std::memory_order_release);
    if (!shard.queue.has_ready()) return;
    // A push raced in after the drain: reclaim sole ownership unless the
    // producer already scheduled a successor pump.
    if (shard.pump_scheduled.exchange(true, std::memory_order_acq_rel))
      return;
  }
}

void LiveSession::schedule_pump(std::size_t index) {
  Shard& shard = *shards_[index];
  if (!shard.pump_scheduled.exchange(true, std::memory_order_acq_rel))
    pool_.submit([this, index] { pump(index); });
}

void LiveSession::feed(std::span<const std::uint8_t> chunk) {
  if (finished_)
    throw InvalidArgument("live session: feed() after finish()");
  framer_.feed(chunk);
  for (;;) {
    std::span<const std::uint8_t> record;
    try {
      const auto framed = framer_.next();
      if (!framed) break;  // mid-record: wait for more bytes
      record = *framed;
    } catch (const ParseError&) {  // absurd length field
      if (!config_.passive.tolerate_malformed) throw;
      extractor_.note_malformed_record();
      framer_.resync();
      continue;
    }
    try {
      const stream::UpdateRecordView* view = decoder_.decode(record);
      if (view == nullptr) continue;  // stepped over (not an update)
      extractor_.consume_update(view->timestamp, view->peer_asn,
                                *view->update);
    } catch (const ParseError& e) {
      if (!config_.passive.tolerate_malformed)
        throw ParseError(std::string(e.what()) +
                         " (record at stream offset " +
                         std::to_string(framer_.last_record_offset()) + ")");
      extractor_.note_malformed_record();
      framer_.resync();
    }
  }
}

std::uint64_t LiveSession::drain(stream::StreamSource& source) {
  std::vector<std::uint8_t> buffer(
      std::max<std::size_t>(1, config_.read_chunk));
  std::uint64_t total = 0;
  for (;;) {
    const std::size_t n = source.read(buffer);
    if (n == 0) break;
    total += n;
    feed(std::span<const std::uint8_t>(buffer.data(), n));
  }
  return total;
}

LiveSnapshot LiveSession::snapshot() {
  // Push the partially-filled batches out so the engines see everything
  // consumed so far, then let the pumps settle. wait_idle also rethrows
  // anything a pump leaked.
  extractor_.flush_batches();
  pool_.wait_idle();
  LiveSnapshot snap;
  snap.bytes_fed = framer_.bytes_fed();
  snap.records = framer_.records();
  snap.records_skipped = decoder_.skipped();
  snap.passive = extractor_.stats();
  snap.links_per_ixp.reserve(shards_.size());
  for (const auto& shard : shards_)
    snap.links_per_ixp.push_back(
        shard->engine.count_links(config_.assume_open_for_unobserved));
  return snap;
}

LiveResult LiveSession::finish() {
  if (finished_)
    throw InvalidArgument("live session: finish() already called");
  finished_ = true;
  extractor_.finish();  // flush announce-window + partial batches
  for (auto& shard : shards_) shard->queue.close(0);
  pool_.wait_idle();

  LiveResult result;
  result.per_ixp.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const core::MlpInferenceEngine& engine = shards_[i]->engine;
    IxpResult& slot = result.per_ixp[i];
    slot.name = engine.context().name;
    fill_ixp_result(slot, engine, config_.assume_open_for_unobserved);
  }
  result.all_links = merge_links(result.per_ixp);
  result.passive = extractor_.stats();
  result.records = framer_.records();
  result.records_skipped = decoder_.skipped();
  return result;
}

}  // namespace mlp::pipeline
