#include "pipeline/live_session.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "util/errors.hpp"

namespace mlp::pipeline {

namespace {

std::shared_ptr<const std::vector<core::IxpContext>> share(
    std::vector<core::IxpContext> ixps) {
  return std::make_shared<const std::vector<core::IxpContext>>(
      std::move(ixps));
}

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ------------------------------------------------------------ FeedHandle

void FeedHandle::feed(std::span<const std::uint8_t> chunk) {
  if (!session_) throw InvalidArgument("feed handle: not attached");
  LiveSession::Lane& target = session_->lane(index_);
  target.last_activity_ms.store(steady_now_ms(), std::memory_order_relaxed);
  session_->refresh_idle(/*holds_feeds_mutex=*/false);
  std::lock_guard lock(target.mutex);
  if (target.closed)
    throw InvalidArgument("live session: feed() on closed feed " +
                          target.name);
  session_->lane_feed(target, chunk);
}

std::uint64_t FeedHandle::drain(stream::StreamSource& source) {
  if (!session_) throw InvalidArgument("feed handle: not attached");
  std::vector<std::uint8_t> buffer(
      std::max<std::size_t>(1, session_->config_.read_chunk));
  std::uint64_t total = 0;
  for (;;) {
    const std::size_t n = source.read(buffer);
    if (n == 0) break;
    total += n;
    feed(std::span<const std::uint8_t>(buffer.data(), n));
  }
  return total;
}

void FeedHandle::note_disconnect() {
  if (!session_) throw InvalidArgument("feed handle: not attached");
  LiveSession::Lane& target = session_->lane(index_);
  std::lock_guard lock(target.mutex);
  std::size_t dropped = target.framer.reset();
  if (target.bmp) dropped += target.bmp->reset();
  if (dropped > 0) {
    ++target.dirty_disconnects;
    ++target.partial_records_dropped;
  } else {
    ++target.clean_disconnects;
  }
}

void FeedHandle::close() {
  if (!session_) throw InvalidArgument("feed handle: not attached");
  LiveSession::Lane& target = session_->lane(index_);
  std::lock_guard lock(target.mutex);
  session_->close_locked(target, index_);
}

// ----------------------------------------------------------- LiveSession

LiveSession::LiveSession(LiveConfig config,
                         std::vector<core::IxpContext> ixps,
                         bgp::RelFn relationships)
    : config_(std::move(config)),
      contexts_(share(std::move(ixps))),
      relationships_(std::move(relationships)),
      pool_(ThreadPool::resolve(config_.threads)) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  shards_.reserve(contexts_->size());
  for (const core::IxpContext& context : *contexts_)
    shards_.push_back(std::make_unique<Shard>(context, config_.merge));
}

FeedHandle LiveSession::add_feed(FeedOptions options) {
  std::lock_guard lock(feeds_mutex_);
  if (finished_.load(std::memory_order_acquire))
    throw InvalidArgument("live session: add_feed() after finish()");
  const std::size_t index = feeds_.size();
  // Queue source slots stay in lockstep with feed indices: every shard
  // grows exactly one source per add_feed, under the same lock.
  for (auto& shard : shards_) shard->queue.add_source();
  auto lane =
      std::make_unique<Lane>(contexts_, relationships_, config_.passive);
  lane->name =
      options.name.empty() ? "feed" + std::to_string(index) : options.name;
  lane->index = index;
  lane->framer = stream::MrtFramer(config_.framing);
  if (options.transport == Transport::Bmp)
    lane->bmp.emplace(options.bmp_framing);
  lane->last_activity_ms.store(steady_now_ms(), std::memory_order_relaxed);
  lane->extractor.set_sink(
      [this, index](std::size_t ixp, std::vector<core::Observation>&& batch) {
        shards_[ixp]->queue.push(index, std::move(batch));
        schedule_pump(ixp);
      },
      config_.batch_size);
  feeds_.push_back(std::move(lane));
  return FeedHandle(this, index);
}

LiveSession::Lane& LiveSession::lane(std::size_t index) {
  std::lock_guard lock(feeds_mutex_);
  if (index >= feeds_.size())
    throw InvalidArgument("live session: bad feed index");
  return *feeds_[index];
}

void LiveSession::pump(std::size_t index) {
  Shard& shard = *shards_[index];
  std::vector<core::Observation> batch;
  for (;;) {
    while (shard.queue.try_pop(batch))
      for (const core::Observation& observation : batch)
        shard.engine.add(observation);
    shard.pump_scheduled.store(false, std::memory_order_release);
    if (!shard.queue.has_ready()) return;
    // A push raced in after the drain: reclaim sole ownership unless the
    // producer already scheduled a successor pump.
    if (shard.pump_scheduled.exchange(true, std::memory_order_acq_rel))
      return;
  }
}

void LiveSession::schedule_pump(std::size_t index) {
  Shard& shard = *shards_[index];
  if (!shard.pump_scheduled.exchange(true, std::memory_order_acq_rel))
    pool_.submit([this, index] { pump(index); });
}

void LiveSession::publish_watermark(Lane& target) {
  if (config_.merge != MergePolicy::Watermark) return;
  const std::uint32_t clock = target.extractor.stream_time();
  if (clock <= target.watermark_published) return;
  target.watermark_published = clock;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    shards_[shard]->queue.set_watermark(target.index, clock);
    // Raising this lane's watermark can lift the merge frontier past
    // other lanes' queued observations; make sure a pump notices.
    schedule_pump(shard);
  }
}

void LiveSession::refresh_idle(bool holds_feeds_mutex) {
  if (config_.merge != MergePolicy::Watermark ||
      config_.idle_feed_grace_ms == 0)
    return;
  std::unique_lock lock(feeds_mutex_, std::defer_lock);
  if (!holds_feeds_mutex) lock.lock();
  const std::uint64_t now = steady_now_ms();
  for (auto& lane : feeds_) {
    const std::uint64_t last =
        lane->last_activity_ms.load(std::memory_order_relaxed);
    const bool stale =
        now > last && now - last > config_.idle_feed_grace_ms;
    if (lane->idle.load(std::memory_order_relaxed) == stale) continue;
    lane->idle.store(stale, std::memory_order_relaxed);
    for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
      shards_[shard]->queue.set_idle(lane->index, stale);
      schedule_pump(shard);
    }
  }
}

void LiveSession::drain_framer(Lane& target) {
  for (;;) {
    std::span<const std::uint8_t> record;
    try {
      const auto framed = target.framer.next();
      if (!framed) break;  // mid-record: wait for more bytes
      record = *framed;
    } catch (const ParseError&) {  // absurd length field
      if (!config_.passive.tolerate_malformed) throw;
      target.extractor.note_malformed_record();
      if (target.bmp) {
        // The buffer holds exactly the one synthesized record that blew
        // the cap (BMP lanes feed record-by-record): drop it whole. A
        // resync scan could anchor inside the dropped record's bytes.
        target.framer.reset();
        break;
      }
      target.framer.resync();
      continue;
    }
    try {
      const stream::UpdateRecordView* view = target.decoder.decode(record);
      if (view == nullptr) continue;  // stepped over (not an update)
      target.extractor.consume_update(view->timestamp, view->peer_asn,
                                      *view->update);
    } catch (const ParseError& e) {
      if (!config_.passive.tolerate_malformed)
        throw ParseError(std::string(e.what()) + " (" + target.name +
                         ", record at stream offset " +
                         std::to_string(target.framer.last_record_offset()) +
                         ")");
      target.extractor.note_malformed_record();
      // A raw MRT stream needs a scan for the next plausible header; a
      // BMP lane's record boundaries come from BMP framing and stay
      // trusted, so the bad record is simply dropped.
      if (!target.bmp) target.framer.resync();
    }
  }
}

void LiveSession::lane_feed(Lane& target, std::span<const std::uint8_t> chunk) {
  if (finished_.load(std::memory_order_acquire))
    throw InvalidArgument("live session: feed() after finish()");
  if (!target.bmp) {
    target.framer.feed(chunk);
    drain_framer(target);
    target.records_framed.store(target.framer.records(),
                                std::memory_order_relaxed);
    publish_watermark(target);
    return;
  }
  // BMP transport: unwrap Route Monitoring messages into synthesized
  // BGP4MP records in front of the framer, and apply PeerUp/PeerDown
  // session boundaries to the lane's extractor. Feeding record-by-record
  // and draining immediately keeps the MRT layer's buffer at one record.
  target.bmp->feed(chunk);
  for (;;) {
    std::optional<stream::BmpEvent> event;
    try {
      event = target.bmp->next();
    } catch (const ParseError& e) {
      if (!config_.passive.tolerate_malformed)
        throw ParseError(std::string(e.what()) + " (" + target.name + ")");
      target.extractor.note_malformed_record();
      target.bmp->resync();
      continue;
    }
    if (!event) break;
    switch (event->kind) {
      case stream::BmpEvent::Kind::Update:
        target.framer.feed(event->record);
        drain_framer(target);
        break;
      case stream::BmpEvent::Kind::PeerUp:
      case stream::BmpEvent::Kind::PeerDown:
        // Both are session boundaries for the peer: a PeerDown ends the
        // session outright, a PeerUp implies any previous session died
        // without one (state from it must not linger).
        target.extractor.peer_session_reset(event->peer.asn,
                                            event->peer.timestamp);
        break;
    }
  }
  target.records_framed.store(target.framer.records(),
                              std::memory_order_relaxed);
  publish_watermark(target);
}

void LiveSession::close_locked(Lane& target, std::size_t index) {
  if (target.closed) return;
  target.extractor.finish();  // flush announce-window + partial batches
  publish_watermark(target);
  target.closed = true;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    shards_[shard]->queue.close(index);
    // Closing a source can unblock buffered batches (it stops
    // constraining the watermark / later feeds become the in-order
    // head); make sure a pump notices.
    schedule_pump(shard);
  }
}

void LiveSession::feed(std::span<const std::uint8_t> chunk) {
  if (finished_.load(std::memory_order_acquire))
    throw InvalidArgument("live session: feed() after finish()");
  if (feed_count() == 0) add_feed();
  FeedHandle(this, 0).feed(chunk);
}

std::uint64_t LiveSession::drain(stream::StreamSource& source) {
  if (feed_count() == 0) add_feed();
  return FeedHandle(this, 0).drain(source);
}

std::size_t LiveSession::feed_count() {
  std::lock_guard lock(feeds_mutex_);
  return feeds_.size();
}

std::uint64_t LiveSession::records() {
  // Published counters, no lane mutexes: a feeder mid-chunk never blocks
  // the pacing thread (and vice versa).
  std::lock_guard lock(feeds_mutex_);
  std::uint64_t total = 0;
  for (auto& lane : feeds_)
    total += lane->records_framed.load(std::memory_order_relaxed);
  return total;
}

FeedStats LiveSession::lane_stats(Lane& target) const {
  FeedStats stats;
  stats.name = target.name;
  stats.bytes_fed =
      target.bmp ? target.bmp->bytes_fed() : target.framer.bytes_fed();
  stats.records = target.framer.records();
  stats.records_skipped = target.decoder.skipped();
  if (target.bmp) {
    stats.bmp_messages = target.bmp->messages();
    stats.bmp_skipped = target.bmp->skipped();
    stats.bmp_peer_ups = target.bmp->peer_ups();
    stats.bmp_peer_downs = target.bmp->peer_downs();
  }
  stats.clean_disconnects = target.clean_disconnects;
  stats.dirty_disconnects = target.dirty_disconnects;
  stats.partial_records_dropped = target.partial_records_dropped;
  stats.watermark = target.extractor.stream_time();
  stats.idle = target.idle.load(std::memory_order_relaxed);
  stats.closed = target.closed;
  stats.passive = target.extractor.stats();
  return stats;
}

SessionTotals LiveSession::collect_totals_locked() {
  SessionTotals totals;
  totals.per_feed.reserve(feeds_.size());
  std::uint32_t frontier = std::numeric_limits<std::uint32_t>::max();
  bool constrained = false;
  for (auto& lane : feeds_) {
    FeedStats stats = lane_stats(*lane);
    totals.bytes_fed += stats.bytes_fed;
    totals.records += stats.records;
    totals.records_skipped += stats.records_skipped;
    totals.passive += stats.passive;
    if (!stats.closed && !stats.idle) {
      constrained = true;
      frontier = std::min(frontier, stats.watermark);
    }
    totals.per_feed.push_back(std::move(stats));
  }
  totals.min_watermark = feeds_.empty() ? 0
                         : constrained  ? frontier
                         : std::numeric_limits<std::uint32_t>::max();
  return totals;
}

LiveSnapshot LiveSession::snapshot() {
  // Stop the world: holding every lane mutex blocks concurrent feeders,
  // so after the batch flush and pool settle no producer can race the
  // engine reads below. wait_idle also rethrows anything a pump leaked.
  std::lock_guard feeds_lock(feeds_mutex_);
  refresh_idle(/*holds_feeds_mutex=*/true);
  std::vector<std::unique_lock<std::mutex>> lane_locks;
  lane_locks.reserve(feeds_.size());
  for (auto& lane : feeds_) lane_locks.emplace_back(lane->mutex);
  for (auto& lane : feeds_) {
    if (lane->closed) continue;
    lane->extractor.flush_batches();
    publish_watermark(*lane);
  }
  pool_.wait_idle();

  LiveSnapshot snap;
  static_cast<SessionTotals&>(snap) = collect_totals_locked();
  snap.links_per_ixp.reserve(shards_.size());
  for (const auto& shard : shards_)
    snap.links_per_ixp.push_back(
        shard->engine.count_links(config_.assume_open_for_unobserved));
  return snap;
}

LiveResult LiveSession::finish() {
  std::lock_guard feeds_lock(feeds_mutex_);
  if (finished_.exchange(true, std::memory_order_acq_rel))
    throw InvalidArgument("live session: finish() already called");
  // Close remaining feeds in add order (the cross-feed merge order).
  for (std::size_t i = 0; i < feeds_.size(); ++i) {
    std::lock_guard lane_lock(feeds_[i]->mutex);
    close_locked(*feeds_[i], i);
  }
  pool_.wait_idle();

  LiveResult result;
  {
    std::vector<std::unique_lock<std::mutex>> lane_locks;
    lane_locks.reserve(feeds_.size());
    for (auto& lane : feeds_) lane_locks.emplace_back(lane->mutex);
    static_cast<SessionTotals&>(result) = collect_totals_locked();
  }
  result.per_ixp.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const core::MlpInferenceEngine& engine = shards_[i]->engine;
    IxpResult& slot = result.per_ixp[i];
    slot.name = engine.context().name;
    fill_ixp_result(slot, engine, config_.assume_open_for_unobserved);
  }
  result.all_links = merge_links(result.per_ixp);
  return result;
}

}  // namespace mlp::pipeline
