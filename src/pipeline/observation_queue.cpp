#include "pipeline/observation_queue.hpp"

#include "util/errors.hpp"

namespace mlp::pipeline {

ObservationQueue::ObservationQueue(std::size_t n_sources)
    : sources_(n_sources) {}

std::size_t ObservationQueue::add_source() {
  std::lock_guard lock(mutex_);
  sources_.emplace_back();
  return sources_.size() - 1;
}

void ObservationQueue::push(std::size_t source,
                            std::vector<core::Observation> batch) {
  if (batch.empty()) return;
  {
    std::lock_guard lock(mutex_);
    if (source >= sources_.size())
      throw InvalidArgument("observation queue: bad source index");
    sources_[source].batches.push_back(std::move(batch));
    if (source != cursor_) return;  // consumer is not waiting on this source
  }
  ready_.notify_one();
}

void ObservationQueue::close(std::size_t source) {
  {
    std::lock_guard lock(mutex_);
    if (source >= sources_.size())
      throw InvalidArgument("observation queue: bad source index");
    sources_[source].closed = true;
  }
  ready_.notify_one();
}

bool ObservationQueue::try_pop(std::vector<core::Observation>& out) {
  std::lock_guard lock(mutex_);
  while (cursor_ < sources_.size()) {
    Source& source = sources_[cursor_];
    if (!source.batches.empty()) {
      out = std::move(source.batches.front());
      source.batches.pop_front();
      return true;
    }
    if (!source.closed) break;
    ++cursor_;
  }
  return false;
}

bool ObservationQueue::has_ready() {
  std::lock_guard lock(mutex_);
  // Walk like try_pop (every source before a non-empty one must already
  // be closed and drained) without advancing the cursor.
  for (std::size_t i = cursor_; i < sources_.size(); ++i) {
    if (!sources_[i].batches.empty()) return true;
    if (!sources_[i].closed) return false;
  }
  return false;
}

bool ObservationQueue::pop(std::vector<core::Observation>& out) {
  std::unique_lock lock(mutex_);
  for (;;) {
    // Skip past closed, drained sources; serve the first pending batch.
    while (cursor_ < sources_.size()) {
      Source& source = sources_[cursor_];
      if (!source.batches.empty()) {
        out = std::move(source.batches.front());
        source.batches.pop_front();
        return true;
      }
      if (!source.closed) break;
      ++cursor_;
    }
    if (cursor_ == sources_.size()) return false;
    ready_.wait(lock);
  }
}

}  // namespace mlp::pipeline
