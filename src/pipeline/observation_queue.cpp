#include "pipeline/observation_queue.hpp"

#include <limits>
#include <string>
#include <utility>

#include "core/state_codec.hpp"
#include "util/errors.hpp"

namespace mlp::pipeline {

ObservationQueue::ObservationQueue(std::size_t n_sources, MergePolicy policy)
    : policy_(policy), sources_(n_sources), open_count_(n_sources) {}

std::size_t ObservationQueue::add_source() {
  util::MutexLock lock(mutex_);
  sources_.emplace_back();
  ++open_count_;
  return sources_.size() - 1;
}

void ObservationQueue::push(std::size_t source,
                            std::vector<core::Observation> batch) {
  if (batch.empty()) return;
  {
    util::MutexLock lock(mutex_);
    if (source >= sources_.size())
      throw InvalidArgument("observation queue: bad source index");
    if (policy_ == MergePolicy::Watermark) {
      auto& pending = sources_[source].pending;
      pending.insert(pending.end(),
                     std::make_move_iterator(batch.begin()),
                     std::make_move_iterator(batch.end()));
    } else {
      sources_[source].batches.push_back(std::move(batch));
      if (source != cursor_) return;  // consumer is not waiting on this
    }
  }
  ready_.notify_one();
}

void ObservationQueue::set_watermark(std::size_t source,
                                     std::uint32_t watermark) {
  if (policy_ != MergePolicy::Watermark) return;
  {
    util::MutexLock lock(mutex_);
    if (source >= sources_.size())
      throw InvalidArgument("observation queue: bad source index");
    Source& entry = sources_[source];
    if (watermark <= entry.watermark) return;  // monotone
    entry.watermark = watermark;
  }
  ready_.notify_one();
}

void ObservationQueue::set_idle(std::size_t source, bool idle) {
  if (policy_ != MergePolicy::Watermark) return;
  {
    util::MutexLock lock(mutex_);
    if (source >= sources_.size())
      throw InvalidArgument("observation queue: bad source index");
    sources_[source].idle = idle;
  }
  ready_.notify_one();
}

void ObservationQueue::close(std::size_t source) {
  {
    util::MutexLock lock(mutex_);
    if (source >= sources_.size())
      throw InvalidArgument("observation queue: bad source index");
    if (!sources_[source].closed) {
      sources_[source].closed = true;
      --open_count_;
    }
  }
  ready_.notify_one();
}

void ObservationQueue::reopen(std::size_t source) {
  {
    util::MutexLock lock(mutex_);
    if (policy_ != MergePolicy::Watermark)
      throw InvalidArgument(
          "observation queue: reopen() requires the Watermark policy");
    if (source >= sources_.size())
      throw InvalidArgument("observation queue: bad source index");
    if (sources_[source].closed) {
      sources_[source].closed = false;
      ++open_count_;
    }
  }
  ready_.notify_one();
}

std::uint32_t ObservationQueue::min_watermark_locked() const {
  std::uint32_t min = std::numeric_limits<std::uint32_t>::max();
  bool constrained = false;
  for (const Source& source : sources_) {
    if (source.closed || source.idle) continue;
    constrained = true;
    if (source.watermark < min) min = source.watermark;
  }
  // No open non-idle source: nothing can emit below any timestamp, so
  // everything queued is drainable (the sentinel max).
  return constrained ? min : std::numeric_limits<std::uint32_t>::max();
}

bool ObservationQueue::merge_pop_locked(std::vector<core::Observation>& out) {
  // Eligible: strictly below the min watermark (a source may still emit
  // AT its own watermark, so ties with the watermark must wait) -- except
  // when nothing constrains, where the sentinel admits everything.
  const std::uint32_t min = min_watermark_locked();
  const bool drain_all = min == std::numeric_limits<std::uint32_t>::max();
  out.clear();
  for (;;) {
    std::size_t best = sources_.size();
    std::uint32_t best_ts = 0;
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      const auto& pending = sources_[i].pending;
      if (pending.empty()) continue;
      const std::uint32_t ts = pending.front().timestamp;
      if (!drain_all && ts >= min) continue;
      if (best == sources_.size() || ts < best_ts) {
        best = i;  // equal timestamps: lowest source index wins
        best_ts = ts;
      }
    }
    if (best == sources_.size()) break;
    auto& pending = sources_[best].pending;
    out.push_back(std::move(pending.front()));
    pending.pop_front();
  }
  return !out.empty();
}

bool ObservationQueue::ordered_pop_locked(
    std::vector<core::Observation>& out) {
  while (cursor_ < sources_.size()) {
    Source& source = sources_[cursor_];
    if (!source.batches.empty()) {
      out = std::move(source.batches.front());
      source.batches.pop_front();
      return true;
    }
    if (!source.closed) break;
    ++cursor_;
  }
  return false;
}

bool ObservationQueue::try_pop(std::vector<core::Observation>& out) {
  util::MutexLock lock(mutex_);
  if (policy_ == MergePolicy::Watermark) return merge_pop_locked(out);
  return ordered_pop_locked(out);
}

bool ObservationQueue::has_ready() {
  util::MutexLock lock(mutex_);
  if (policy_ == MergePolicy::Watermark) {
    const std::uint32_t min = min_watermark_locked();
    const bool drain_all =
        min == std::numeric_limits<std::uint32_t>::max();
    for (const Source& source : sources_) {
      if (source.pending.empty()) continue;
      if (drain_all || source.pending.front().timestamp < min) return true;
    }
    return false;
  }
  // Walk like try_pop (every source before a non-empty one must already
  // be closed and drained) without advancing the cursor.
  for (std::size_t i = cursor_; i < sources_.size(); ++i) {
    if (!sources_[i].batches.empty()) return true;
    if (!sources_[i].closed) return false;
  }
  return false;
}

std::uint32_t ObservationQueue::min_watermark() {
  util::MutexLock lock(mutex_);
  // Concatenate sources publish no watermarks, so every source reads as
  // an unconstrained 0 there; report the sentinel instead of a bogus 0.
  if (policy_ != MergePolicy::Watermark)
    return std::numeric_limits<std::uint32_t>::max();
  return min_watermark_locked();
}

std::size_t ObservationQueue::depth() {
  util::MutexLock lock(mutex_);
  std::size_t total = 0;
  for (const Source& source : sources_) {
    total += source.pending.size();
    for (const auto& batch : source.batches) total += batch.size();
  }
  return total;
}

std::size_t ObservationQueue::depth(std::size_t source) {
  util::MutexLock lock(mutex_);
  if (source >= sources_.size())
    throw InvalidArgument("observation queue: bad source index");
  std::size_t total = sources_[source].pending.size();
  for (const auto& batch : sources_[source].batches) total += batch.size();
  return total;
}

void ObservationQueue::serialize_state(ByteWriter& writer) {
  util::MutexLock lock(mutex_);
  writer.u32(static_cast<std::uint32_t>(sources_.size()));
  for (const Source& source : sources_) {
    writer.u8(static_cast<std::uint8_t>((source.idle ? 1 : 0) |
                                        (source.closed ? 2 : 0)));
    writer.u32(source.watermark);
    writer.u32(static_cast<std::uint32_t>(source.pending.size()));
    for (const core::Observation& observation : source.pending)
      core::codec::write_observation(writer, observation);
    writer.u32(static_cast<std::uint32_t>(source.batches.size()));
    for (const auto& batch : source.batches) {
      writer.u32(static_cast<std::uint32_t>(batch.size()));
      for (const core::Observation& observation : batch)
        core::codec::write_observation(writer, observation);
    }
  }
  writer.u32(static_cast<std::uint32_t>(cursor_));
}

void ObservationQueue::restore_state(ByteReader& reader) {
  // Parse the full image into locals first: a ParseError anywhere must
  // leave the queue exactly as it was.
  const std::size_t count =
      core::codec::read_count(reader, 13, "queue source");
  std::vector<Source> sources(count);
  for (Source& source : sources) {
    const std::uint8_t flags = reader.u8();
    if (flags > 3)
      throw ParseError("checkpoint: queue source flags " +
                       std::to_string(flags));
    source.idle = (flags & 1) != 0;
    source.closed = (flags & 2) != 0;
    source.watermark = reader.u32();
    const std::size_t pending =
        core::codec::read_count(reader, 14, "queued observation");
    for (std::size_t i = 0; i < pending; ++i)
      source.pending.push_back(core::codec::read_observation(reader));
    const std::size_t batches =
        core::codec::read_count(reader, 4, "queued batch");
    for (std::size_t b = 0; b < batches; ++b) {
      const std::size_t size =
          core::codec::read_count(reader, 14, "batched observation");
      std::vector<core::Observation> batch;
      batch.reserve(size);
      for (std::size_t i = 0; i < size; ++i)
        batch.push_back(core::codec::read_observation(reader));
      source.batches.push_back(std::move(batch));
    }
  }
  const std::size_t cursor = reader.u32();
  if (cursor > count)
    throw ParseError("checkpoint: queue cursor past the source count");

  {
    util::MutexLock lock(mutex_);
    if (count != sources_.size())
      throw ParseError("checkpoint: queue source count " +
                       std::to_string(count) + " does not match the " +
                       std::to_string(sources_.size()) +
                       " registered feeds");
    sources_ = std::move(sources);
    cursor_ = cursor;
    open_count_ = 0;
    for (const Source& source : sources_)
      if (!source.closed) ++open_count_;
  }
  ready_.notify_all();
}

bool ObservationQueue::pop(std::vector<core::Observation>& out) {
  util::MutexLock lock(mutex_);
  for (;;) {
    if (policy_ == MergePolicy::Watermark) {
      if (merge_pop_locked(out)) return true;
      if (open_count_ == 0) return false;  // closed and fully drained
    } else {
      if (ordered_pop_locked(out)) return true;
      if (cursor_ == sources_.size()) return false;
    }
    ready_.wait(mutex_);
  }
}

}  // namespace mlp::pipeline
