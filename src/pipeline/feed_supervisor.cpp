#include "pipeline/feed_supervisor.hpp"

#include <algorithm>
#include <utility>

#include "core/state_codec.hpp"
#include "util/errors.hpp"

namespace mlp::pipeline {

const char* to_string(FeedHealth health) {
  switch (health) {
    case FeedHealth::Healthy:
      return "Healthy";
    case FeedHealth::Degraded:
      return "Degraded";
    case FeedHealth::Quarantined:
      return "Quarantined";
    case FeedHealth::Dead:
      return "Dead";
  }
  return "?";
}

std::size_t FeedSupervisor::window_filled() const { return window_count_; }

double FeedSupervisor::malformed_rate() const {
  if (window_count_ < std::max<std::size_t>(1, config_.min_window_records))
    return 0.0;
  return static_cast<double>(window_malformed_) /
         static_cast<double>(window_count_);
}

void FeedSupervisor::transition(FeedHealth to, std::string reason) {
  const FeedHealth from = health_;
  health_ = to;
  ++transition_count_;
  if (transitions_.size() < kMaxRecordedTransitions) {
    transitions_.push_back(
        HealthTransition{from, to, records_seen_, std::move(reason)});
  }
}

FeedSupervisor::Action FeedSupervisor::quarantine(std::string reason) {
  ++times_quarantined_;
  probation_clean_ = 0;
  const bool dies =
      !config_.allow_readmission ||
      (config_.max_quarantines != 0 &&
       times_quarantined_ >= config_.max_quarantines);
  if (dies) {
    transition(FeedHealth::Dead, std::move(reason));
    return Action::Die;
  }
  transition(FeedHealth::Quarantined, std::move(reason));
  return Action::Quarantine;
}

FeedSupervisor::Action FeedSupervisor::evaluate() {
  // Only called from Healthy/Degraded: judge the budgets and settle on
  // the level they support.
  const double rate = malformed_rate();
  if (rate >= config_.quarantine_malformed_rate) {
    return quarantine("malformed rate " + std::to_string(rate) + " over " +
                      std::to_string(window_count_) + " records");
  }
  if (config_.dirty_disconnect_budget != 0 &&
      consecutive_dirty_ >= config_.dirty_disconnect_budget) {
    return quarantine(std::to_string(consecutive_dirty_) +
                      " consecutive dirty disconnects");
  }
  const bool degraded =
      rate >= config_.degraded_malformed_rate ||
      (config_.dirty_disconnect_budget != 0 &&
       consecutive_dirty_ >= std::max<std::size_t>(
                                 1, config_.dirty_disconnect_budget / 2));
  if (degraded && health_ == FeedHealth::Healthy) {
    transition(FeedHealth::Degraded,
               rate >= config_.degraded_malformed_rate
                   ? "malformed rate " + std::to_string(rate)
                   : std::to_string(consecutive_dirty_) +
                         " consecutive dirty disconnects");
  } else if (!degraded && health_ == FeedHealth::Degraded) {
    transition(FeedHealth::Healthy, "budgets recovered");
  }
  return Action::None;
}

FeedSupervisor::Action FeedSupervisor::note_record(bool malformed) {
  if (!config_.enabled || health_ == FeedHealth::Dead) return Action::None;
  ++records_seen_;
  ++records_since_dirty_;
  // A long clean run forgives old flaps: only *consecutive* dirty
  // disconnects spend that budget.
  if (config_.probation_records != 0 &&
      records_since_dirty_ >= config_.probation_records) {
    consecutive_dirty_ = 0;
  }

  if (health_ == FeedHealth::Quarantined) {
    if (malformed) {
      probation_clean_ = 0;
      return Action::None;
    }
    if (config_.probation_records == 0 ||
        ++probation_clean_ < config_.probation_records) {
      return Action::None;
    }
    // Served its probation: wipe the record of past sins so the window
    // judges the recovered feed on fresh evidence only.
    window_.clear();
    window_head_ = 0;
    window_count_ = 0;
    window_malformed_ = 0;
    consecutive_dirty_ = 0;
    probation_clean_ = 0;
    transition(FeedHealth::Healthy,
               "probation served (" +
                   std::to_string(config_.probation_records) +
                   " clean records)");
    return Action::Readmit;
  }

  const std::size_t cap = std::max<std::size_t>(1, config_.malformed_window);
  if (window_.size() < cap) {
    window_.push_back(malformed ? 1 : 0);
    ++window_count_;
    if (malformed) ++window_malformed_;
  } else {
    window_malformed_ -= window_[window_head_];
    window_[window_head_] = malformed ? 1 : 0;
    if (malformed) ++window_malformed_;
    window_head_ = (window_head_ + 1) % cap;
  }
  return evaluate();
}

FeedSupervisor::Action FeedSupervisor::note_disconnect(bool dirty) {
  if (!config_.enabled || health_ == FeedHealth::Dead) return Action::None;
  if (dirty) {
    ++consecutive_dirty_;
    records_since_dirty_ = 0;
  } else {
    consecutive_dirty_ = 0;
  }
  if (health_ == FeedHealth::Quarantined) {
    // A dirty reconnect interrupts probation; a clean one does not.
    if (dirty) probation_clean_ = 0;
    return Action::None;
  }
  return evaluate();
}

FeedSupervisor::Action FeedSupervisor::note_fatal(const std::string& reason) {
  // Deliberately ignores config_.enabled: `enabled` gates the budget
  // JUDGEMENTS, but a fatal failure is a fact, and the close sentinel it
  // publishes is a liveness requirement of the merge frontier.
  if (health_ == FeedHealth::Dead) return Action::None;
  const bool was_merging = merging();
  transition(FeedHealth::Dead, reason);
  // The owner only needs to close queue sources if they are still open.
  return was_merging ? Action::Die : Action::None;
}

FeedSupervisor::Action FeedSupervisor::check_stall(std::uint64_t now_ms) {
  if (!config_.enabled || config_.stall_timeout_ms == 0) return Action::None;
  if (health_ == FeedHealth::Dead || health_ == FeedHealth::Quarantined)
    return Action::None;
  if (now_ms < last_activity_ms_ ||
      now_ms - last_activity_ms_ < config_.stall_timeout_ms) {
    return Action::None;
  }
  // Reset the deadline so a still-stalled feed is not re-quarantined on
  // every poll after readmission.
  last_activity_ms_ = now_ms;
  return quarantine("stalled for " +
                    std::to_string(config_.stall_timeout_ms) + " ms");
}

void FeedSupervisor::serialize_state(ByteWriter& writer) const {
  writer.u8(static_cast<std::uint8_t>(health_));
  // The ring in logical oldest-first order; restore rebuilds it with the
  // head at zero, which future note_record wraps treat identically.
  writer.u32(static_cast<std::uint32_t>(window_count_));
  for (std::size_t i = 0; i < window_count_; ++i)
    writer.u8(window_[(window_head_ + i) % window_.size()]);
  writer.u64(consecutive_dirty_);
  writer.u64(records_since_dirty_);
  writer.u64(probation_clean_);
  writer.u64(records_seen_);
  writer.u64(times_quarantined_);
  writer.u64(transition_count_);
  writer.u32(static_cast<std::uint32_t>(transitions_.size()));
  for (const HealthTransition& transition : transitions_) {
    writer.u8(static_cast<std::uint8_t>(transition.from));
    writer.u8(static_cast<std::uint8_t>(transition.to));
    writer.u64(transition.at_record);
    core::codec::write_string(writer, transition.reason);
  }
}

void FeedSupervisor::restore_state(ByteReader& reader) {
  // Parse the full image into locals first: a ParseError anywhere must
  // leave the supervisor exactly as it was.
  const std::uint8_t health = reader.u8();
  if (health > static_cast<std::uint8_t>(FeedHealth::Dead))
    throw ParseError("checkpoint: feed health " + std::to_string(health));
  const std::size_t window_count =
      core::codec::read_count(reader, 1, "supervisor window entry");
  std::vector<std::uint8_t> window;
  window.reserve(window_count);
  std::size_t malformed = 0;
  for (std::size_t i = 0; i < window_count; ++i) {
    const std::uint8_t outcome = reader.u8();
    if (outcome > 1)
      throw ParseError("checkpoint: supervisor window outcome " +
                       std::to_string(outcome));
    malformed += outcome;
    window.push_back(outcome);
  }
  const std::uint64_t consecutive_dirty = reader.u64();
  const std::uint64_t records_since_dirty = reader.u64();
  const std::uint64_t probation_clean = reader.u64();
  const std::uint64_t records_seen = reader.u64();
  const std::uint64_t times_quarantined = reader.u64();
  const std::uint64_t transition_count = reader.u64();
  const std::size_t recorded =
      core::codec::read_count(reader, 12, "supervisor transition");
  if (recorded > kMaxRecordedTransitions || recorded > transition_count)
    throw ParseError("checkpoint: supervisor transition log too long");
  std::vector<HealthTransition> transitions;
  transitions.reserve(recorded);
  for (std::size_t i = 0; i < recorded; ++i) {
    HealthTransition transition;
    const std::uint8_t from = reader.u8();
    const std::uint8_t to = reader.u8();
    if (from > static_cast<std::uint8_t>(FeedHealth::Dead) ||
        to > static_cast<std::uint8_t>(FeedHealth::Dead))
      throw ParseError("checkpoint: supervisor transition health");
    transition.from = static_cast<FeedHealth>(from);
    transition.to = static_cast<FeedHealth>(to);
    transition.at_record = reader.u64();
    transition.reason = core::codec::read_string(reader);
    transitions.push_back(std::move(transition));
  }

  // A resume under a smaller --malformed-window keeps only the newest
  // outcomes (resuming under the SAME config, the only case with replay
  // guarantees, keeps everything).
  const std::size_t cap = std::max<std::size_t>(1, config_.malformed_window);
  if (window.size() > cap) {
    const std::size_t drop = window.size() - cap;
    for (std::size_t i = 0; i < drop; ++i) malformed -= window[i];
    window.erase(window.begin(),
                 window.begin() + static_cast<std::ptrdiff_t>(drop));
  }
  health_ = static_cast<FeedHealth>(health);
  window_ = std::move(window);
  window_head_ = 0;
  window_count_ = window_.size();
  window_malformed_ = malformed;
  consecutive_dirty_ = consecutive_dirty;
  records_since_dirty_ = records_since_dirty;
  probation_clean_ = probation_clean;
  records_seen_ = records_seen;
  times_quarantined_ = times_quarantined;
  transition_count_ = transition_count;
  transitions_ = std::move(transitions);
}

}  // namespace mlp::pipeline
