#include "pipeline/ixp_config.hpp"

#include <cctype>
#include <map>
#include <sstream>

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace mlp::pipeline {

namespace {

using routeserver::SchemeStyle;

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw ParseError("ixp config line " + std::to_string(line_no) +
                         ": " + what);
}

SchemeStyle parse_style(std::string_view token, std::size_t line_no) {
  if (token == "rs-asn") return SchemeStyle::RsAsnBased;
  if (token == "private-range") return SchemeStyle::PrivateRangeBased;
  fail(line_no, "unknown style '" + std::string(token) + "'");
}

std::string_view style_token(SchemeStyle style) {
  return style == SchemeStyle::RsAsnBased ? "rs-asn" : "private-range";
}

}  // namespace

void validate_ixp_name(std::string_view name) {
  if (name.empty())
    throw InvalidArgument("ixp name must not be empty");
  if (name.front() == '#')
    throw InvalidArgument("ixp name '" + std::string(name) +
                          "' must not start with '#' (comment marker)");
  for (const char c : name)
    if (std::isspace(static_cast<unsigned char>(c)))
      throw InvalidArgument("ixp name '" + std::string(name) +
                            "' must not contain whitespace");
}

std::vector<core::IxpContext> parse_ixp_configs(std::string_view text) {
  std::vector<core::IxpContext> contexts;
  std::map<std::string, std::size_t> by_name;

  std::size_t line_no = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_no;
    const auto line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = split_ws(line);

    if (fields[0] == "ixp") {
      // ixp <name> rs-asn <asn> style <style> members <asn>...
      if (fields.size() < 7 || fields[2] != "rs-asn" || fields[4] != "style" ||
          fields[6] != "members")
        fail(line_no,
             "expected 'ixp <name> rs-asn <asn> style <style> members ...'");
      const std::string& name = fields[1];
      try {
        validate_ixp_name(name);
      } catch (const InvalidArgument& e) {
        fail(line_no, e.what());
      }
      if (by_name.count(name)) fail(line_no, "duplicate ixp " + name);
      const auto rs_asn = parse_u32(fields[3]);
      if (!rs_asn) fail(line_no, "bad rs-asn '" + fields[3] + "'");

      core::IxpContext context;
      context.name = name;
      try {
        context.scheme = routeserver::IxpCommunityScheme::make(
            name, *rs_asn, parse_style(fields[5], line_no));
      } catch (const InvalidArgument& e) {
        fail(line_no, e.what());
      }
      for (std::size_t i = 7; i < fields.size(); ++i) {
        const auto member = parse_u32(fields[i]);
        if (!member) fail(line_no, "bad member ASN '" + fields[i] + "'");
        context.rs_members.insert(*member);
      }
      by_name.emplace(name, contexts.size());
      contexts.push_back(std::move(context));
    } else if (fields[0] == "alias") {
      // alias <ixp-name> <member-asn> <16-bit value>
      if (fields.size() != 4)
        fail(line_no, "expected 'alias <ixp> <member> <value>'");
      auto it = by_name.find(fields[1]);
      if (it == by_name.end())
        fail(line_no, "alias before ixp '" + fields[1] + "'");
      const auto member = parse_u32(fields[2]);
      const auto value = parse_u32(fields[3]);
      if (!member || !value || *value > 0xFFFF)
        fail(line_no, "bad alias operands");
      try {
        contexts[it->second].scheme.add_alias(
            *member, static_cast<std::uint16_t>(*value));
      } catch (const InvalidArgument& e) {
        fail(line_no, e.what());
      }
    } else {
      fail(line_no, "unknown directive '" + fields[0] + "'");
    }
  }
  return contexts;
}

std::string serialize_ixp_configs(
    const std::vector<core::IxpContext>& contexts) {
  std::ostringstream out;
  out << "# mlp_infer IXP scheme configuration\n";
  for (const auto& context : contexts) {
    validate_ixp_name(context.name);
    out << "ixp " << context.name << " rs-asn " << context.scheme.rs_asn()
        << " style " << style_token(context.scheme.style()) << " members";
    for (const auto member : context.rs_members) out << ' ' << member;
    out << '\n';
    for (const auto& [member, value] : context.scheme.aliases())
      out << "alias " << context.name << ' ' << member << ' ' << value
          << '\n';
  }
  return out.str();
}

}  // namespace mlp::pipeline
