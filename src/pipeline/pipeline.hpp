// Parallel multi-IXP inference pipeline.
//
// The paper's method runs the same passive-extraction -> per-RS
// policy-intersection -> reciprocity chain independently per IXP, an
// embarrassingly parallel shape this orchestrator exploits:
//
//   MRT archives / raw paths / pre-attributed observations   (sources)
//        |  one streaming PassiveExtractor task per source, in parallel;
//        |  batches are pushed mid-decode (mrt::MrtCursor + sink mode),
//        |  so decode overlaps inference and no task ever materializes a
//        |  whole archive
//        v
//   per-IXP ObservationQueue (ordered by source index: deterministic)
//        |  one consumer task per IXP, in parallel
//        v
//   MlpInferenceEngine::add -> active LG survey for uncovered members
//        -> infer_links
//        |
//        v
//   join: global link set, merged PassiveStats/EngineStats, optional
//   IRR reciprocity validation pass
//
// The link sets are byte-identical for any thread count: sources merge in
// submission order and each IXP's engine consumes them in that order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/active.hpp"
#include "core/engine.hpp"
#include "core/passive.hpp"
#include "core/reciprocity.hpp"
#include "core/types.hpp"
#include "lg/lg_server.hpp"

namespace mlp::pipeline {

using bgp::AsLink;
using core::Asn;

struct PipelineConfig {
  /// Worker threads; 0 means hardware concurrency.
  std::size_t threads = 0;
  /// Observations per queue batch.
  std::size_t batch_size = 256;
  core::PassiveConfig passive;
  core::ActiveConfig active;
  /// Forwarded to MlpInferenceEngine::infer_links.
  bool assume_open_for_unobserved = false;
  /// Keep the per-IXP engines in PipelineResult::engines for downstream
  /// policy queries. Stats-and-links-only callers (the CLI, benchmarks)
  /// can turn this off: each engine then lives and dies inside its
  /// consumer task and the result carries no engine state.
  bool keep_engines = true;
};

/// One decoded path observation (the third-party-LG feed).
struct RawPath {
  bgp::AsPath path;
  bgp::IpPrefix prefix;
  std::vector<bgp::Community> communities;
  core::Source source = core::Source::ThirdPartyLg;
};

/// Per-IXP outcome, aligned with add_ixp order.
struct IxpResult {
  std::string name;
  core::EngineStats stats;
  std::set<AsLink> links;
  /// Members with at least one accepted observation (the engine's sorted
  /// member index), available whether or not engines are kept.
  core::FlatAsnSet observed_members;
  std::size_t active_queries = 0;
  std::size_t rejected_observations = 0;
};

/// Fill `slot` from a fully-fed engine: links, stats, observed members,
/// rejects. Shared by the archive pipeline's consumer tasks and
/// LiveSession::finish so the two products cannot drift.
void fill_ixp_result(IxpResult& slot,
                     const core::MlpInferenceEngine& engine,
                     bool assume_open_for_unobserved);

/// Union the per-IXP link sets through one sort+unique pass plus hinted
/// tail inserts (cheaper than set-inserting every element).
std::set<AsLink> merge_links(const std::vector<IxpResult>& per_ixp);

struct PipelineResult {
  std::vector<IxpResult> per_ixp;
  /// The engines themselves (policy_of etc. for downstream reports),
  /// aligned with per_ixp. Empty when PipelineConfig::keep_engines is
  /// false.
  std::vector<core::MlpInferenceEngine> engines;
  /// Union of links over every IXP.
  std::set<AsLink> all_links;
  /// Passive stats merged over all extraction sources.
  core::PassiveStats passive;
  /// Engine stats summed over all IXPs.
  core::EngineStats totals;
  std::size_t total_active_queries = 0;
  /// Section 4.4 validation, present when an IRR database was attached.
  std::optional<core::ReciprocityReport> reciprocity;
};

/// Orchestrates passive + active inference over many IXPs on a thread
/// pool. Register IXPs and input sources, then call run() exactly once.
class InferencePipeline {
 public:
  explicit InferencePipeline(PipelineConfig config = PipelineConfig{});

  /// Register one IXP. `lg` (optional, non-owning, must outlive run())
  /// enables the active survey for members without passive coverage.
  /// Returns the IXP's index.
  std::size_t add_ixp(core::IxpContext context,
                      lg::LookingGlassServer* lg = nullptr);

  /// Queue a TABLE_DUMP_V2 archive for passive extraction.
  void add_table_dump(std::vector<std::uint8_t> archive);

  /// Zero-copy overload: the pipeline borrows the shared buffer (e.g. one
  /// archive fed to several pipelines, or an mmapped file wrapper).
  void add_table_dump(std::shared_ptr<const std::vector<std::uint8_t>> archive);

  /// Queue a BGP4MP update archive (transient filtering applies).
  void add_update_stream(std::vector<std::uint8_t> archive);

  /// Zero-copy overload of add_update_stream.
  void add_update_stream(
      std::shared_ptr<const std::vector<std::uint8_t>> archive);

  /// Queue already-decoded paths (e.g. gathered from member LGs); they run
  /// through the same attribution machinery as the archives.
  void add_paths(std::vector<RawPath> paths);

  /// Queue pre-attributed observations for one registered IXP, bypassing
  /// extraction (e.g. a route-server RIB read directly).
  void add_observations(const std::string& ixp_name,
                        std::vector<core::Observation> observations);

  /// Relationship oracle for setter case 3 (may stay unset).
  void set_relationships(bgp::RelFn relationships);

  /// Attach an IRR database: run() then ends with a reciprocity
  /// validation pass over every observed member (non-owning).
  void set_irr(const irr::IrrDatabase* database);

  const PipelineConfig& config() const { return config_; }
  std::size_t ixp_count() const { return ixps_.size(); }

  /// Execute the pipeline. Consumes the queued inputs; callable once.
  /// Throws mlp::ParseError if any source fails to decode (the other
  /// sources still drain, so the pipeline never hangs).
  PipelineResult run();

 private:
  struct IxpSlot {
    core::IxpContext context;
    lg::LookingGlassServer* lg = nullptr;
  };

  enum class FeedKind : std::uint8_t {
    TableDump,
    UpdateStream,
    Paths,
    Preattributed,
  };

  struct Feed {
    FeedKind kind = FeedKind::TableDump;
    /// TableDump / UpdateStream bytes, shared so registration is zero-copy.
    std::shared_ptr<const std::vector<std::uint8_t>> archive;
    std::vector<RawPath> paths;              // Paths
    std::size_t target_ixp = 0;              // Preattributed
    std::vector<core::Observation> observations;  // Preattributed
  };

  PipelineConfig config_;
  std::vector<IxpSlot> ixps_;
  std::map<std::string, std::size_t> ixp_index_;
  std::vector<Feed> feeds_;
  bgp::RelFn relationships_;
  const irr::IrrDatabase* irr_ = nullptr;
  bool ran_ = false;
};

}  // namespace mlp::pipeline
