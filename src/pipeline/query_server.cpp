#include "pipeline/query_server.hpp"

#include <poll.h>
#include <unistd.h>

#include <charconv>
#include <limits>
#include <sstream>
#include <vector>

#include "core/engine_snapshot.hpp"
#include "pipeline/live_session.hpp"
#include "stream/source.hpp"
#include "util/errors.hpp"

namespace mlp::pipeline {

namespace {

/// Split a request line on single spaces (empty tokens dropped).
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

bool parse_asn(const std::string& token, std::uint32_t& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

/// Wait until `fd` is readable or the deadline/stop flag fires. Returns
/// false on stop/error, true when readable.
bool wait_readable(int fd, const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready > 0) return (pfd.revents & (POLLIN | POLLHUP)) != 0;
  }
  return false;
}

}  // namespace

QueryServer::QueryServer(const LiveSession& session, Options options)
    : session_(session) {
  const stream::TcpListener listener = stream::open_tcp_listener(options.port);
  listener_fd_ = listener.fd;
  port_ = listener.port;
  thread_ = std::thread([this] { serve(); });
}

QueryServer::~QueryServer() { stop(); }

void QueryServer::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listener_fd_ != -1) {
    stream::close_fd(listener_fd_);
    listener_fd_ = -1;
  }
}

void QueryServer::serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (!wait_readable(listener_fd_, stop_)) continue;  // stop re-checked
    const int fd = stream::tcp_accept(listener_fd_);
    if (fd < 0) continue;  // interrupted accept: loop re-checks stop
    serve_connection(fd);
    stream::close_fd(fd);
  }
}

void QueryServer::serve_connection(int fd) {
  std::string buffer;
  std::uint8_t chunk[4096];
  while (!stop_.load(std::memory_order_acquire)) {
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line == "quit") {
        static constexpr char kBye[] = "ok bye\n";
        stream::write_all(fd, std::span<const std::uint8_t>(
                                  reinterpret_cast<const std::uint8_t*>(kBye),
                                  sizeof(kBye) - 1));
        return;
      }
      const std::string response = respond(line) + "\n";
      queries_.fetch_add(1, std::memory_order_relaxed);
      stream::write_all(
          fd, std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(response.data()),
                  response.size()));
    }
    if (!wait_readable(fd, stop_)) return;
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // EOF or hard error: connection done
    }
    buffer.append(reinterpret_cast<const char*>(chunk),
                  static_cast<std::size_t>(n));
  }
}

std::string QueryServer::respond(const std::string& line) const {
  const std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty()) return "err empty request";
  const std::string& verb = tokens[0];

  if (verb == "ixps") {
    const auto snapshots = session_.epoch_snapshots();
    std::string out = "ok " + std::to_string(snapshots.size());
    for (const auto& snap : snapshots) out += " " + snap->ixp();
    return out;
  }

  if (verb != "epoch" && verb != "stats" && verb != "link" &&
      verb != "links" && verb != "member")
    return "err unknown verb " + verb;

  // Every remaining verb addresses one IXP: resolve its published epoch
  // first (one atomic load; the rest of the answer reads the immutable
  // snapshot, so one response line is internally consistent).
  if (tokens.size() < 2) return "err " + verb + ": missing ixp";
  std::shared_ptr<const core::EngineSnapshot> snap;
  try {
    snap = session_.epoch_snapshot(tokens[1]);
  } catch (const InvalidArgument&) {
    return "err unknown ixp " + tokens[1];
  }

  if (verb == "epoch") {
    return "ok epoch=" + std::to_string(snap->epoch()) +
           " generation=" + std::to_string(snap->generation());
  }
  if (verb == "stats") {
    // The frontier/backlog gauges read the shard's queue (its own mutex,
    // shared only with merge bookkeeping -- never feeds_mutex_ or a lane
    // mutex), so `stats` stays off the ingest hot path like every other
    // verb while still reporting how far the snapshot may trail the
    // feeds.
    const std::size_t index = session_.ixp_index(tokens[1]);
    const std::uint32_t frontier = session_.merge_frontier(index);
    const core::EngineStats& stats = snap->stats();
    std::string out =
        "ok rs_members=" + std::to_string(stats.rs_members) +
        " observed=" + std::to_string(stats.observed_members) +
        " links=" + std::to_string(stats.links) +
        " observations=" + std::to_string(stats.observations) +
        " rejected=" + std::to_string(snap->rejected_observations()) +
        " epoch=" + std::to_string(snap->epoch()) + " frontier=";
    // The sentinel means "unconstrained" (no watermark-publishing source
    // open): render it as `none` rather than a bogus timestamp.
    out += frontier == std::numeric_limits<std::uint32_t>::max()
               ? "none"
               : std::to_string(frontier);
    out += " backlog=" + std::to_string(session_.merge_backlog(index));
    return out;
  }
  if (verb == "link") {
    std::uint32_t a = 0, b = 0;
    if (tokens.size() != 4 || !parse_asn(tokens[2], a) ||
        !parse_asn(tokens[3], b))
      return "err link: want `link <ixp> <asn> <asn>`";
    return snap->has_link(a, b) ? "ok true" : "ok false";
  }
  if (verb == "links") {
    std::uint32_t asn = 0;
    if (tokens.size() != 3 || !parse_asn(tokens[2], asn))
      return "err links: want `links <ixp> <asn>`";
    const std::vector<core::Asn> partners = snap->links_of(asn);
    std::string out = "ok " + std::to_string(partners.size());
    for (const core::Asn partner : partners)
      out += " " + std::to_string(partner);
    return out;
  }
  if (verb == "member") {
    std::uint32_t asn = 0;
    if (tokens.size() != 3 || !parse_asn(tokens[2], asn))
      return "err member: want `member <ixp> <asn>`";
    if (!snap->is_member(asn)) return "ok non-member";
    return snap->is_observed(asn) ? "ok observed" : "ok unobserved";
  }
  return "err unknown verb " + verb;  // unreachable: verbs checked above
}

}  // namespace mlp::pipeline
