#include "pipeline/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace mlp::pipeline {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    util::MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    util::MutexLock lock(mutex_);
    // Explicit predicate loop: the thread-safety analysis only sees the
    // guarded reads when they happen in this scope, not inside a lambda.
    while (!queue_.empty() || in_flight_ != 0) idle_.wait(mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

std::size_t ThreadPool::resolve(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(mutex_);
      if (queue_.empty()) return;  // stopping with nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    // The in-flight count must drop on every exit path -- a leak here
    // would wedge wait_idle() forever -- so it lives in an RAII guard
    // rather than after the call.
    struct InFlightGuard {
      ThreadPool& pool;
      ~InFlightGuard() {
        util::MutexLock lock(pool.mutex_);
        --pool.in_flight_;
        if (pool.queue_.empty() && pool.in_flight_ == 0)
          pool.idle_.notify_all();
      }
    } guard{*this};
    try {
      task();
    } catch (...) {
      util::MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

}  // namespace mlp::pipeline
