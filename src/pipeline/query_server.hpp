// Lock-free line-protocol query front end over a LiveSession.
//
// Grown from the `mlp_infer serve` scaffolding: a loopback TCP server
// whose every answer comes from the session's PUBLISHED EPOCHS
// (LiveSession::epoch_snapshot) -- one atomic shared_ptr load per
// query, never feeds_mutex_, never a lane mutex, never a pool settle.
// Readers therefore scale independently of ingest: the feed threads
// keep framing/decoding/merging while any number of clients query, and
// a query's answer is at most one publish cadence
// (LiveConfig::publish_every_batches) behind the engines.
//
// Protocol (newline-terminated requests, one response line each;
// responses start with "ok " or "err "):
//
//   ixps                       ok <n> <name>...
//   epoch <ixp>                ok epoch=<e> generation=<g>
//   stats <ixp>                ok rs_members=<n> observed=<n> links=<n>
//                                 observations=<n> rejected=<n> epoch=<e>
//                                 frontier=<ts|none> backlog=<n>
//   link <ixp> <asn> <asn>     ok true | ok false
//   links <ixp> <asn>          ok <k> <asn>...
//   member <ixp> <asn>         ok observed | ok unobserved | ok non-member
//   quit                       ok bye (server closes the connection)
//
// Epoch semantics: answers within one response line are consistent (they
// come from one immutable snapshot), but two successive queries may read
// different epochs -- clients needing a consistent multi-query view pin
// it by comparing `epoch`. Connections are served sequentially by one
// accept thread; the per-query work is a few string ops, so a handful of
// dashboard/CI clients share it comfortably. Scale-out is by running the
// readers in-process against epoch_snapshot() directly (what
// BM_QueryThroughput measures) -- the server is the wire adapter, not
// the concurrency ceiling.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace mlp::pipeline {

class LiveSession;

/// One accept-loop thread answering queries from published epochs. The
/// session must outlive the server. Thread-safety: the server itself
/// holds no mutex -- its shared state is the stop flag and counters
/// (atomics) plus the session's atomic epoch pointers.
class QueryServer {
 public:
  struct Options {
    /// 127.0.0.1 port to listen on; 0 picks an ephemeral port (read it
    /// back via port()).
    std::uint16_t port = 0;
  };

  /// Binds and starts serving immediately; throws ParseError when the
  /// port cannot be bound.
  QueryServer(const LiveSession& session, Options options);
  /// stop() + join.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// The bound port (the resolved one when Options::port was 0).
  std::uint16_t port() const { return port_; }

  /// Queries answered so far (across connections).
  std::uint64_t queries_served() const {
    return queries_.load(std::memory_order_relaxed);
  }

  /// Stop accepting, close the listener, and join the serve thread.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  void serve();
  /// Serve one accepted connection until quit/EOF/stop.
  void serve_connection(int fd);
  /// One request line -> one response line (without the newline).
  std::string respond(const std::string& line) const;

  const LiveSession& session_;
  int listener_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> queries_{0};
  std::thread thread_;
};

}  // namespace mlp::pipeline
