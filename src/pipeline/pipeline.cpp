#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "pipeline/observation_queue.hpp"
#include "pipeline/thread_pool.hpp"
#include "util/annotations.hpp"
#include "util/errors.hpp"

namespace mlp::pipeline {

InferencePipeline::InferencePipeline(PipelineConfig config)
    : config_(std::move(config)) {
  if (config_.batch_size == 0) config_.batch_size = 1;
}

std::size_t InferencePipeline::add_ixp(core::IxpContext context,
                                       lg::LookingGlassServer* lg) {
  if (ixp_index_.count(context.name))
    throw InvalidArgument("pipeline: duplicate IXP " + context.name);
  const std::size_t index = ixps_.size();
  ixp_index_.emplace(context.name, index);
  ixps_.push_back(IxpSlot{std::move(context), lg});
  return index;
}

void InferencePipeline::add_table_dump(std::vector<std::uint8_t> archive) {
  add_table_dump(std::make_shared<const std::vector<std::uint8_t>>(
      std::move(archive)));
}

void InferencePipeline::add_table_dump(
    std::shared_ptr<const std::vector<std::uint8_t>> archive) {
  Feed feed;
  feed.kind = FeedKind::TableDump;
  feed.archive = std::move(archive);
  feeds_.push_back(std::move(feed));
}

void InferencePipeline::add_update_stream(std::vector<std::uint8_t> archive) {
  add_update_stream(std::make_shared<const std::vector<std::uint8_t>>(
      std::move(archive)));
}

void InferencePipeline::add_update_stream(
    std::shared_ptr<const std::vector<std::uint8_t>> archive) {
  Feed feed;
  feed.kind = FeedKind::UpdateStream;
  feed.archive = std::move(archive);
  feeds_.push_back(std::move(feed));
}

void InferencePipeline::add_paths(std::vector<RawPath> paths) {
  Feed feed;
  feed.kind = FeedKind::Paths;
  feed.paths = std::move(paths);
  feeds_.push_back(std::move(feed));
}

void InferencePipeline::add_observations(
    const std::string& ixp_name,
    std::vector<core::Observation> observations) {
  auto it = ixp_index_.find(ixp_name);
  if (it == ixp_index_.end())
    throw InvalidArgument("pipeline: unknown IXP " + ixp_name);
  Feed feed;
  feed.kind = FeedKind::Preattributed;
  feed.target_ixp = it->second;
  feed.observations = std::move(observations);
  feeds_.push_back(std::move(feed));
}

void InferencePipeline::set_relationships(bgp::RelFn relationships) {
  relationships_ = std::move(relationships);
}

void InferencePipeline::set_irr(const irr::IrrDatabase* database) {
  irr_ = database;
}

void fill_ixp_result(IxpResult& slot,
                     const core::MlpInferenceEngine& engine,
                     bool assume_open_for_unobserved) {
  slot.links = engine.infer_links(assume_open_for_unobserved);
  slot.stats = engine.stats(slot.links.size());
  slot.observed_members = core::FlatAsnSet(engine.observed_members());
  slot.rejected_observations = engine.rejected_observations();
}

std::set<AsLink> merge_links(const std::vector<IxpResult>& per_ixp) {
  std::vector<AsLink> merged;
  for (const IxpResult& slot : per_ixp)
    merged.insert(merged.end(), slot.links.begin(), slot.links.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  std::set<AsLink> out;
  for (const AsLink& link : merged) out.insert(out.end(), link);
  return out;
}

namespace {

/// Split `observations` into batches of `batch_size` pushed under `source`.
void push_batched(ObservationQueue& queue, std::size_t source,
                  std::vector<core::Observation> observations,
                  std::size_t batch_size) {
  if (observations.empty()) return;
  if (observations.size() <= batch_size) {
    queue.push(source, std::move(observations));
    return;
  }
  std::vector<core::Observation> batch;
  batch.reserve(batch_size);
  for (auto& observation : observations) {
    batch.push_back(std::move(observation));
    if (batch.size() == batch_size) {
      queue.push(source, std::move(batch));
      batch.clear();
      batch.reserve(batch_size);
    }
  }
  // An exact multiple of batch_size leaves nothing behind; don't push a
  // trailing empty batch.
  if (!batch.empty()) queue.push(source, std::move(batch));
}

/// First-error-wins collector shared by every task.
struct ErrorSlot {
  util::Mutex mutex;
  std::string message MLP_GUARDED_BY(mutex);

  void record(const std::string& message_in) MLP_EXCLUDES(mutex) {
    util::MutexLock lock(mutex);
    if (message.empty()) message = message_in;
  }

  /// The first recorded message (empty when none). Callable after
  /// wait_idle(), but locks anyway: cheap, and keeps the guard honest.
  std::string take() MLP_EXCLUDES(mutex) {
    util::MutexLock lock(mutex);
    return message;
  }
};

}  // namespace

PipelineResult InferencePipeline::run() {
  if (ran_) throw InvalidArgument("pipeline: run() already executed");
  ran_ = true;

  const std::size_t n_ixps = ixps_.size();
  const std::size_t n_sources = feeds_.size();

  PipelineResult result;
  result.per_ixp.resize(n_ixps);
  if (config_.keep_engines) {
    result.engines.reserve(n_ixps);
    for (const IxpSlot& slot : ixps_)
      result.engines.emplace_back(slot.context);
  }

  std::vector<std::unique_ptr<ObservationQueue>> queues;
  queues.reserve(n_ixps);
  for (std::size_t i = 0; i < n_ixps; ++i)
    queues.push_back(std::make_unique<ObservationQueue>(n_sources));

  std::vector<core::PassiveStats> source_stats(n_sources);
  ErrorSlot error;

  // One immutable context set shared by every extraction task.
  auto contexts = [this] {
    std::vector<core::IxpContext> out;
    out.reserve(ixps_.size());
    for (const IxpSlot& slot : ixps_) out.push_back(slot.context);
    return std::make_shared<const std::vector<core::IxpContext>>(
        std::move(out));
  }();

  ThreadPool pool(ThreadPool::resolve(config_.threads));

  // Producers first (FIFO pool => they are never starved by a waiting
  // consumer). Each owns source index `s` in every IXP queue and closes it
  // unconditionally, even on a decode error, so consumers always finish.
  // Extraction runs in streaming mode: the sink pushes each full batch
  // into its IXP's queue mid-decode (the extractor's dense IXP index is
  // the add_ixp registration order, i.e. the queue index), so inference
  // starts while the archive is still being decoded and no task holds
  // more than O(batch x IXPs) observations.
  for (std::size_t s = 0; s < n_sources; ++s) {
    pool.submit([this, s, contexts, &queues, &source_stats, &error] {
      Feed& feed = feeds_[s];
      try {
        if (feed.kind == FeedKind::Preattributed) {
          push_batched(*queues[feed.target_ixp], s,
                       std::move(feed.observations), config_.batch_size);
        } else {
          core::PassiveExtractor extractor(contexts, relationships_,
                                           config_.passive);
          extractor.set_sink(
              [&queues, s](std::size_t ixp,
                           std::vector<core::Observation>&& batch) {
                queues[ixp]->push(s, std::move(batch));
              },
              config_.batch_size);
          switch (feed.kind) {
            case FeedKind::TableDump:
              extractor.consume_table_dump(*feed.archive);
              break;
            case FeedKind::UpdateStream:
              extractor.consume_update_stream(*feed.archive);
              break;
            case FeedKind::Paths:
              for (const RawPath& raw : feed.paths)
                extractor.consume_path(raw.path, raw.prefix, raw.communities,
                                       raw.source);
              break;
            case FeedKind::Preattributed:
              break;  // handled above
          }
          extractor.finish();
          source_stats[s] = extractor.stats();
        }
      } catch (const std::exception& e) {
        error.record("source " + std::to_string(s) + ": " + e.what());
      }
      for (auto& queue : queues) queue->close(s);
    });
  }

  // Consumers: one per IXP. Drain the ordered queue into the engine,
  // then survey the LG for members passive data did not cover
  // (equation 2), then infer links.
  for (std::size_t i = 0; i < n_ixps; ++i) {
    pool.submit([this, i, &queues, &result, &error] {
      try {
        // Without keep_engines the engine is task-local: it is built,
        // consumed and destroyed here, keeping its (large) teardown off
        // the caller's thread and out of the result.
        std::optional<core::MlpInferenceEngine> local;
        core::MlpInferenceEngine& engine =
            config_.keep_engines ? result.engines[i]
                                 : local.emplace(ixps_[i].context);
        std::set<Asn> covered;
        std::vector<core::Observation> batch;
        while (queues[i]->pop(batch)) {
          for (const core::Observation& observation : batch) {
            covered.insert(observation.setter);
            engine.add(observation);
          }
        }
        IxpResult& slot = result.per_ixp[i];
        slot.name = ixps_[i].context.name;
        if (ixps_[i].lg != nullptr) {
          const auto survey =
              core::run_active_survey(*ixps_[i].lg, config_.active, covered);
          slot.active_queries = survey.queries;
          for (const core::Observation& observation : survey.observations)
            engine.add(observation);
        }
        fill_ixp_result(slot, engine, config_.assume_open_for_unobserved);
      } catch (const std::exception& e) {
        error.record("ixp " + std::to_string(i) + ": " + e.what());
      }
    });
  }

  pool.wait_idle();
  if (const std::string first_error = error.take(); !first_error.empty())
    throw ParseError("pipeline: " + first_error);

  for (const core::PassiveStats& stats : source_stats)
    result.passive += stats;
  for (const IxpResult& slot : result.per_ixp) {
    result.totals += slot.stats;
    result.total_active_queries += slot.active_queries;
  }
  result.all_links = merge_links(result.per_ixp);

  if (irr_ != nullptr) {
    // Concatenate every IXP's contribution once and let the FlatAsnSet
    // constructor sort+unique, instead of re-merging the accumulated set
    // per IXP.
    std::vector<Asn> member_pool;
    std::vector<Asn> peer_pool;
    for (std::size_t i = 0; i < n_ixps; ++i) {
      const auto& observed = result.per_ixp[i].observed_members;
      member_pool.insert(member_pool.end(), observed.begin(),
                         observed.end());
      const auto& rs_members = ixps_[i].context.rs_members;
      peer_pool.insert(peer_pool.end(), rs_members.begin(),
                       rs_members.end());
    }
    result.reciprocity =
        core::check_reciprocity(*irr_, core::FlatAsnSet(std::move(member_pool)),
                                core::FlatAsnSet(std::move(peer_pool)));
  }
  return result;
}

}  // namespace mlp::pipeline
