// Textual IXP-scheme configuration for the mlp_infer CLI.
//
// One IXP per `ixp` line, optional 32-bit member aliases on `alias` lines:
//
//   # comment
//   ixp DE-CIX rs-asn 6695 style rs-asn members 64496 64497 64498
//   ixp ECIX rs-asn 9033 style private-range members 64500 64501
//   alias DE-CIX 4200000001 64512
//
// `style` names the Table-1 layout family: `rs-asn` (DE-CIX/MSK-IX) or
// `private-range` (ECIX). round-trips with serialize_ixp_configs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace mlp::pipeline {

/// Reject IXP names the textual form cannot represent: empty names,
/// names containing whitespace (the parser splits fields on it) and
/// names starting with '#' (the comment marker). Throws InvalidArgument
/// naming the offense. Both the parser and the serializer enforce this,
/// so a config that serializes is guaranteed to round-trip.
void validate_ixp_name(std::string_view name);

/// Parse a whole config document. Throws util::ParseError with a
/// 1-based line number on malformed input.
std::vector<core::IxpContext> parse_ixp_configs(std::string_view text);

/// Render contexts back to the textual form (including aliases).
/// Throws InvalidArgument if any context's name fails validate_ixp_name
/// (emitting it raw would produce a document that cannot be parsed
/// back).
std::string serialize_ixp_configs(
    const std::vector<core::IxpContext>& contexts);

}  // namespace mlp::pipeline
