#include "pipeline/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "pipeline/live_session.hpp"
#include "util/bytes.hpp"
#include "util/errors.hpp"

namespace mlp::pipeline {

namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'M', 'L', 'P', 'C',
                                                'K', 'P', 'T', '\0'};
constexpr std::size_t kHeaderBytes = 24;  // magic + version + length + CRC

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k)
      crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0x82F63B78u : 0u);
    table[i] = crc;
  }
  return table;
}
constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc32c_table();

std::string errno_text() { return std::strerror(errno); }

/// Whole-file read; CheckpointError on a missing or unreadable path.
std::vector<std::uint8_t> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    throw CheckpointError("checkpoint: open " + path + ": " + errno_text());
  std::vector<std::uint8_t> data;
  std::array<std::uint8_t, 65536> chunk;
  for (;;) {
    const ssize_t n = ::read(fd, chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = errno_text();
      ::close(fd);
      throw CheckpointError("checkpoint: read " + path + ": " + err);
    }
    if (n == 0) break;
    data.insert(data.end(), chunk.begin(), chunk.begin() + n);
  }
  ::close(fd);
  return data;
}

void write_all(int fd, const std::string& path,
               std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = errno_text();
      ::close(fd);
      throw CheckpointError("checkpoint: write " + path + ": " + err);
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Best-effort directory fsync so the renames themselves are durable.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, std::max<std::size_t>(1, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data)
    crc = (crc >> 8) ^ kCrcTable[(crc ^ byte) & 0xFFu];
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_checkpoint(
    std::span<const std::uint8_t> payload) {
  ByteWriter writer;
  writer.bytes(std::span<const std::uint8_t>(kMagic));
  writer.u32(kCheckpointVersion);
  writer.u64(payload.size());
  writer.u32(crc32c(payload));
  writer.bytes(payload);
  return writer.take();
}

std::vector<std::uint8_t> decode_checkpoint(
    std::span<const std::uint8_t> image) {
  if (image.size() < kHeaderBytes)
    throw ParseError("checkpoint: " + std::to_string(image.size()) +
                     " bytes is shorter than the file header");
  if (!std::equal(kMagic.begin(), kMagic.end(), image.begin()))
    throw ParseError("checkpoint: bad magic (not a checkpoint file)");
  ByteReader reader(image.subspan(kMagic.size()));
  const std::uint32_t version = reader.u32();
  if (version != kCheckpointVersion)
    throw ParseError("checkpoint: version " + std::to_string(version) +
                     " (this build speaks " +
                     std::to_string(kCheckpointVersion) + ")");
  const std::uint64_t length = reader.u64();
  const std::uint32_t crc = reader.u32();
  if (length != image.size() - kHeaderBytes)
    throw ParseError("checkpoint: header claims " + std::to_string(length) +
                     " payload bytes, file carries " +
                     std::to_string(image.size() - kHeaderBytes) +
                     " (torn write)");
  const std::span<const std::uint8_t> payload = image.subspan(kHeaderBytes);
  if (crc32c(payload) != crc)
    throw ParseError("checkpoint: CRC mismatch (torn write or corruption)");
  return std::vector<std::uint8_t>(payload.begin(), payload.end());
}

void write_checkpoint_file(const std::string& path,
                           std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> image = encode_checkpoint(payload);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    throw CheckpointError("checkpoint: open " + tmp + ": " + errno_text());
  write_all(fd, tmp, image);
  if (::fsync(fd) != 0) {
    const std::string err = errno_text();
    ::close(fd);
    throw CheckpointError("checkpoint: fsync " + tmp + ": " + err);
  }
  ::close(fd);
  // Rotate the current generation aside, then publish the new one. A
  // crash between the renames leaves only path.1 -- the loader's
  // fallback -- and a crash before them leaves path untouched: every
  // interleaving keeps at least one complete, CRC-valid generation.
  if (::rename(path.c_str(), (path + ".1").c_str()) != 0 && errno != ENOENT)
    throw CheckpointError("checkpoint: rotate " + path + ": " + errno_text());
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    throw CheckpointError("checkpoint: rename " + tmp + ": " + errno_text());
  sync_parent_dir(path);
}

LoadedCheckpoint read_checkpoint_file(const std::string& path) {
  std::string first_error;
  try {
    return LoadedCheckpoint{decode_checkpoint(read_file(path)), false};
  } catch (const std::exception& e) {
    first_error = e.what();
  }
  try {
    return LoadedCheckpoint{decode_checkpoint(read_file(path + ".1")), true};
  } catch (const std::exception& e) {
    throw CheckpointError("checkpoint: no loadable generation (" +
                          first_error + "; " + path + ".1: " + e.what() +
                          ")");
  }
}

void save_checkpoint(LiveSession& session, const std::string& path) {
  // serialize_state() holds the session locks; the disk writes below do
  // not -- feeds stall for the in-memory capture only.
  const std::vector<std::uint8_t> payload = session.serialize_state();
  write_checkpoint_file(path, payload);
}

LoadedCheckpoint restore_checkpoint(LiveSession& session,
                                    const std::string& path) {
  // Generation by generation: restore_state() is all-or-nothing, so a
  // newest-generation payload that fails to apply leaves the session
  // clean for the fallback attempt.
  std::string errors;
  const std::array<std::string, 2> generations = {path, path + ".1"};
  for (std::size_t g = 0; g < generations.size(); ++g) {
    try {
      std::vector<std::uint8_t> payload =
          decode_checkpoint(read_file(generations[g]));
      session.restore_state(payload);
      return LoadedCheckpoint{std::move(payload), g == 1};
    } catch (const std::exception& e) {
      if (!errors.empty()) errors += "; ";
      errors += generations[g] + ": " + e.what();
    }
  }
  throw CheckpointError("checkpoint: no restorable generation (" + errors +
                        ")");
}

}  // namespace mlp::pipeline
