// Looking-glass servers.
//
// A looking glass exposes non-privileged BGP show commands over a web
// interface (paper section 2.2). This simulation renders textual output
// from a RIB view, because the paper's active pipeline scrapes and parses
// exactly such text. Two server personalities matter for validation
// (section 5.1): LGs that display all paths and LGs that display only the
// best path, which can hide less-preferred route-server links.
//
// Supported commands:
//   show ip bgp summary                   neighbor table (ASN, IP, pfx count)
//   show ip bgp neighbors <ip> routes     prefixes advertised by a neighbor
//   show ip bgp <prefix>                  path details incl. communities
#pragma once

#include <cstdint>
#include <string>

#include "bgp/rib.hpp"

namespace mlp::lg {

/// Server personality and rate policy.
struct LgConfig {
  std::string name;
  bgp::Asn operator_asn = 0;
  /// Show every path for a prefix (true) or only the best path (false).
  bool show_all_paths = true;
  /// Render community attributes (France-IX's LG famously did not, paper
  /// section 5 footnote 2).
  bool show_communities = true;
  /// Minimum seconds between queries enforced by the operator; the client
  /// accounts simulated time against this (paper section 4.3 assumes one
  /// query per 10 seconds).
  double min_query_interval_s = 10.0;
  /// Sessions the operator hides from output (DTEL-IX hid 5 members,
  /// section 5.4 footnote 3).
  std::vector<bgp::Asn> hidden_members;
};

/// A looking glass over a borrowed RIB (route server table or an
/// operator's own table). The RIB must outlive the server.
class LookingGlassServer {
 public:
  LookingGlassServer(LgConfig config, const bgp::Rib* rib);

  const LgConfig& config() const { return config_; }

  /// Execute one command line and return the rendered text output.
  /// Unknown commands yield an error banner (never an exception), like a
  /// real CGI looking glass. Increments the query counter.
  std::string execute(const std::string& command);

  /// Number of queries served so far.
  std::size_t queries_served() const { return queries_; }

  /// Simulated wall-clock seconds a polite client has spent, i.e.
  /// queries_served() * min_query_interval_s.
  double simulated_elapsed_s() const {
    return static_cast<double>(queries_) * config_.min_query_interval_s;
  }

 private:
  bool hidden(bgp::Asn asn) const;
  std::string cmd_summary() const;
  std::string cmd_neighbor_routes(const std::string& ip_text) const;
  std::string cmd_prefix(const std::string& prefix_text) const;

  LgConfig config_;
  const bgp::Rib* rib_;
  std::size_t queries_ = 0;
};

}  // namespace mlp::lg
