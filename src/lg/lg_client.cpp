#include "lg/lg_client.hpp"

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace mlp::lg {

std::vector<NeighborInfo> parse_summary(std::string_view text) {
  std::vector<NeighborInfo> out;
  bool saw_header = false;
  for (const auto& line : mlp::split(text, '\n')) {
    const std::string_view trimmed = mlp::trim(line);
    if (trimmed.empty()) continue;
    if (mlp::starts_with(trimmed, "%"))
      throw ParseError("parse_summary: LG returned error: " +
                       std::string(trimmed));
    if (mlp::starts_with(trimmed, "Neighbor")) {
      saw_header = true;
      continue;
    }
    if (!saw_header) continue;  // banner lines
    if (mlp::starts_with(trimmed, "Total")) break;
    const auto fields = mlp::split_ws(trimmed);
    if (fields.size() != 3) continue;  // tolerate decoration
    const auto ip = bgp::parse_ipv4(fields[0]);
    const auto asn = mlp::parse_u32(fields[1]);
    const auto count = mlp::parse_u64(fields[2]);
    if (!ip || !asn || !count) continue;
    out.push_back(NeighborInfo{*ip, *asn, static_cast<std::size_t>(*count)});
  }
  if (!saw_header)
    throw ParseError("parse_summary: no neighbor table in output");
  return out;
}

std::vector<bgp::IpPrefix> parse_neighbor_routes(std::string_view text) {
  std::vector<bgp::IpPrefix> out;
  for (const auto& line : mlp::split(text, '\n')) {
    const std::string_view trimmed = mlp::trim(line);
    if (trimmed.empty() || mlp::starts_with(trimmed, "Routes") ||
        mlp::starts_with(trimmed, "Total"))
      continue;
    if (mlp::starts_with(trimmed, "%"))
      throw ParseError("parse_neighbor_routes: LG returned error: " +
                       std::string(trimmed));
    if (auto prefix = bgp::IpPrefix::parse(trimmed)) out.push_back(*prefix);
  }
  return out;
}

std::vector<PathInfo> parse_prefix_detail(std::string_view text) {
  std::vector<PathInfo> out;
  for (const auto& line : mlp::split(text, '\n')) {
    if (line.empty()) continue;
    if (mlp::starts_with(line, "%")) return {};  // not in table
    if (mlp::starts_with(line, "BGP routing table") ||
        mlp::starts_with(line, "Paths:"))
      continue;
    // Path header lines are indented two spaces; attribute lines four.
    const bool attribute_line = mlp::starts_with(line, "    ");
    if (!attribute_line && mlp::starts_with(line, "  ")) {
      auto path = bgp::AsPath::parse(mlp::trim(line));
      if (!path)
        throw ParseError("parse_prefix_detail: bad AS path line: " + line);
      PathInfo info;
      info.as_path = *path;
      out.push_back(std::move(info));
      continue;
    }
    if (!attribute_line || out.empty()) continue;
    const std::string_view body = mlp::trim(line);
    if (mlp::starts_with(body, "from ")) {
      const auto fields = mlp::split_ws(body);
      // from <ip> (AS<asn>)
      if (fields.size() >= 3) {
        if (auto ip = bgp::parse_ipv4(fields[1])) out.back().from_ip = *ip;
        std::string_view asn_text = fields[2];
        if (mlp::starts_with(asn_text, "(AS") && asn_text.size() > 4) {
          asn_text.remove_prefix(3);
          asn_text.remove_suffix(1);
          if (auto asn = mlp::parse_u32(asn_text)) out.back().from_asn = *asn;
        }
      }
    } else if (mlp::starts_with(body, "next-hop ")) {
      // next-hop <ip>, localpref <n>
      const auto fields = mlp::split_ws(body);
      if (fields.size() >= 2) {
        std::string hop = fields[1];
        if (!hop.empty() && hop.back() == ',') hop.pop_back();
        if (auto ip = bgp::parse_ipv4(hop)) out.back().next_hop = *ip;
      }
      if (fields.size() >= 4) {
        if (auto lp = mlp::parse_u32(fields[3])) out.back().local_pref = *lp;
      }
    } else if (mlp::starts_with(body, "communities:")) {
      auto list = bgp::parse_community_list(body.substr(12));
      if (!list)
        throw ParseError("parse_prefix_detail: bad communities line: " +
                         line);
      out.back().communities = std::move(*list);
    } else if (body == "best") {
      out.back().best = true;
    }
  }
  return out;
}

std::vector<NeighborInfo> LookingGlassClient::neighbors() {
  ++queries_;
  return parse_summary(server_->execute("show ip bgp summary"));
}

std::vector<bgp::IpPrefix> LookingGlassClient::neighbor_routes(
    std::uint32_t neighbor_ip) {
  ++queries_;
  return parse_neighbor_routes(
      server_->execute("show ip bgp neighbors " +
                       bgp::ipv4_to_string(neighbor_ip) + " routes"));
}

std::vector<PathInfo> LookingGlassClient::prefix_detail(
    const bgp::IpPrefix& prefix) {
  ++queries_;
  return parse_prefix_detail(
      server_->execute("show ip bgp " + prefix.to_string()));
}

}  // namespace mlp::lg
