#include "lg/lg_server.hpp"

#include <algorithm>

#include "bgp/prefix.hpp"
#include "util/strings.hpp"

namespace mlp::lg {

using bgp::Asn;
using bgp::IpPrefix;

LookingGlassServer::LookingGlassServer(LgConfig config, const bgp::Rib* rib)
    : config_(std::move(config)), rib_(rib) {}

bool LookingGlassServer::hidden(Asn asn) const {
  return std::find(config_.hidden_members.begin(),
                   config_.hidden_members.end(),
                   asn) != config_.hidden_members.end();
}

std::string LookingGlassServer::execute(const std::string& command) {
  ++queries_;
  const auto tokens = mlp::split_ws(command);
  // Accept: show ip bgp [summary | neighbors <ip> routes | <prefix>]
  if (tokens.size() >= 3 && tokens[0] == "show" && tokens[1] == "ip" &&
      tokens[2] == "bgp") {
    if (tokens.size() == 4 && tokens[3] == "summary") return cmd_summary();
    if (tokens.size() == 3) return cmd_summary();  // LG-style shorthand
    if (tokens.size() == 6 && tokens[3] == "neighbors" &&
        tokens[5] == "routes")
      return cmd_neighbor_routes(tokens[4]);
    if (tokens.size() == 4) return cmd_prefix(tokens[3]);
  }
  return "% Unknown or unsupported command: " + command + "\n";
}

std::string LookingGlassServer::cmd_summary() const {
  std::string out;
  out += "BGP router identifier " + config_.name + ", local AS number " +
         std::to_string(config_.operator_asn) + "\n";
  out += "Neighbor         AS        PfxRcd\n";
  // Aggregate per (peer asn, peer ip) session.
  std::map<std::pair<std::uint32_t, Asn>, std::size_t> sessions;
  for (const auto& prefix : rib_->prefixes()) {
    for (const auto& entry : rib_->paths(prefix)) {
      if (hidden(entry.peer_asn)) continue;
      ++sessions[{entry.peer_ip, entry.peer_asn}];
    }
  }
  for (const auto& [key, count] : sessions) {
    out += bgp::ipv4_to_string(key.first) + " " + std::to_string(key.second) +
           " " + std::to_string(count) + "\n";
  }
  out += "Total neighbors: " + std::to_string(sessions.size()) + "\n";
  return out;
}

std::string LookingGlassServer::cmd_neighbor_routes(
    const std::string& ip_text) const {
  const auto ip = bgp::parse_ipv4(ip_text);
  if (!ip) return "% Invalid neighbor address: " + ip_text + "\n";
  std::string out = "Routes advertised by neighbor " + ip_text + ":\n";
  std::size_t count = 0;
  for (const auto& prefix : rib_->prefixes()) {
    for (const auto& entry : rib_->paths(prefix)) {
      if (entry.peer_ip != *ip || hidden(entry.peer_asn)) continue;
      out += prefix.to_string() + "\n";
      ++count;
      break;
    }
  }
  out += "Total: " + std::to_string(count) + "\n";
  return out;
}

std::string LookingGlassServer::cmd_prefix(
    const std::string& prefix_text) const {
  const auto prefix = IpPrefix::parse(prefix_text);
  if (!prefix) return "% Invalid prefix: " + prefix_text + "\n";
  const auto& all_paths = rib_->paths(*prefix);
  std::vector<const bgp::RibEntry*> visible;
  for (const auto& entry : all_paths) {
    if (!hidden(entry.peer_asn)) visible.push_back(&entry);
  }
  if (visible.empty())
    return "% Network not in table: " + prefix_text + "\n";

  const bgp::RibEntry* best = visible.front();
  for (const auto* entry : visible)
    if (bgp::Rib::better(*entry, *best)) best = entry;

  std::vector<const bgp::RibEntry*> shown;
  if (config_.show_all_paths) {
    shown = visible;
  } else {
    shown.push_back(best);
  }

  std::string out = "BGP routing table entry for " + prefix->to_string() +
                    "\nPaths: (" + std::to_string(shown.size()) +
                    " available)\n";
  for (const auto* entry : shown) {
    const auto& attrs = entry->route.attrs;
    out += "  " + attrs.as_path.to_string() + "\n";
    out += "    from " + bgp::ipv4_to_string(entry->peer_ip) + " (AS" +
           std::to_string(entry->peer_asn) + ")\n";
    out += "    next-hop " + bgp::ipv4_to_string(attrs.next_hop) +
           ", localpref " +
           std::to_string(attrs.has_local_pref ? attrs.local_pref : 100) +
           "\n";
    if (config_.show_communities && !attrs.communities.empty())
      out += "    communities: " + bgp::to_string(attrs.communities) + "\n";
    if (entry == best) out += "    best\n";
  }
  return out;
}

}  // namespace mlp::lg
