// Looking-glass client: issues show commands and parses the textual
// responses back into structured data, exactly as the paper's HTTP
// scraping scripts do (section 5: "We wrote a script to automate this
// (HTTP) querying of LGs and parsing of responses").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"
#include "bgp/prefix.hpp"
#include "lg/lg_server.hpp"

namespace mlp::lg {

/// One row of `show ip bgp summary`.
struct NeighborInfo {
  std::uint32_t ip = 0;
  bgp::Asn asn = 0;
  std::size_t prefixes_received = 0;

  friend bool operator==(const NeighborInfo&, const NeighborInfo&) = default;
};

/// One path block of `show ip bgp <prefix>`.
struct PathInfo {
  bgp::AsPath as_path;
  bgp::Asn from_asn = 0;
  std::uint32_t from_ip = 0;
  std::uint32_t next_hop = 0;
  std::uint32_t local_pref = 100;
  std::vector<bgp::Community> communities;
  bool best = false;
};

/// Parse the output of `show ip bgp summary`. Throws ParseError on text
/// that does not look like a summary at all; tolerates unknown banners.
std::vector<NeighborInfo> parse_summary(std::string_view text);

/// Parse the output of `show ip bgp neighbors <ip> routes`.
std::vector<bgp::IpPrefix> parse_neighbor_routes(std::string_view text);

/// Parse the output of `show ip bgp <prefix>`. An empty result means the
/// LG reported the prefix missing.
std::vector<PathInfo> parse_prefix_detail(std::string_view text);

/// Convenience wrapper pairing a server with the parsers, with query
/// accounting for the cost model of section 4.3.
class LookingGlassClient {
 public:
  explicit LookingGlassClient(LookingGlassServer& server) : server_(&server) {}

  std::vector<NeighborInfo> neighbors();
  std::vector<bgp::IpPrefix> neighbor_routes(std::uint32_t neighbor_ip);
  std::vector<PathInfo> prefix_detail(const bgp::IpPrefix& prefix);

  /// Queries issued through this client.
  std::size_t queries_issued() const { return queries_; }

 private:
  LookingGlassServer* server_;
  std::size_t queries_ = 0;
};

}  // namespace mlp::lg
