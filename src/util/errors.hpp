// Error types shared across the mlp libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace mlp {

/// Raised when textual or binary input cannot be decoded.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller violates an API precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Raised when a simulated remote endpoint rejects a request
/// (e.g. a looking glass enforcing its rate limit).
class QueryRefused : public std::runtime_error {
 public:
  explicit QueryRefused(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace mlp
