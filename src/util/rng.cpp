#include "util/rng.hpp"

#include <cmath>

namespace mlp {

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw InvalidArgument("Rng::uniform: lo > hi");
  std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform01() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::pareto(std::uint64_t lo, std::uint64_t hi, double alpha) {
  if (lo == 0) throw InvalidArgument("Rng::pareto: lo must be >= 1");
  if (lo > hi) throw InvalidArgument("Rng::pareto: lo > hi");
  if (alpha <= 0.0) throw InvalidArgument("Rng::pareto: alpha must be > 0");
  // Inverse-CDF sampling of a bounded Pareto distribution.
  const double l = static_cast<double>(lo);
  const double h = static_cast<double>(hi) + 1.0;
  const double u = uniform01();
  const double la = std::pow(l, alpha);
  const double ha = std::pow(h, alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  auto out = static_cast<std::uint64_t>(x);
  return std::clamp<std::uint64_t>(out, lo, hi);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  if (n == 0) throw InvalidArgument("Rng::zipf: n must be >= 1");
  // Rejection-inversion would be faster; for the sizes used here (n in the
  // thousands) a cached harmonic sum with binary search is adequate, but to
  // keep the generator stateless we use the simple approximation via the
  // integral of x^-s (valid for s != 1 handled separately).
  const double u = uniform01();
  if (s == 1.0) {
    const double hn = std::log(static_cast<double>(n) + 1.0);
    return std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(std::exp(u * hn)), 1, n);
  }
  const double a = 1.0 - s;
  const double hn = (std::pow(static_cast<double>(n) + 1.0, a) - 1.0) / a;
  const double x = std::pow(u * hn * a + 1.0, 1.0 / a);
  return std::clamp<std::uint64_t>(static_cast<std::uint64_t>(x), 1, n);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty())
    throw InvalidArgument("Rng::weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0)
    throw InvalidArgument("Rng::weighted_index: non-positive total weight");
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= std::max(0.0, weights[i]);
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t label) {
  // SplitMix64-style mixing of (seed, label) gives independent streams.
  std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (label + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return Rng(z);
}

}  // namespace mlp
