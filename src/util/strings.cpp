#include "util/strings.hpp"

#include <cctype>
#include <charconv>

namespace mlp {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || text.empty()) return std::nullopt;
  return value;
}

std::optional<std::uint32_t> parse_u32(std::string_view text) {
  auto v = parse_u64(text);
  if (!v || *v > 0xffffffffULL) return std::nullopt;
  return static_cast<std::uint32_t>(*v);
}

}  // namespace mlp
