// Aligned plain-text table rendering for the benchmark reports, so that each
// bench binary can print the paper's tables side by side with measured rows.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mlp {

/// Column-aligned monospace table. Numeric-looking cells are right-aligned,
/// everything else left-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with a header underline. Rows shorter than the header are padded.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by the report generators.
std::string fmt_count(std::size_t n);
std::string fmt_percent(double fraction, int decimals = 1);
std::string fmt_double(double v, int decimals = 2);

}  // namespace mlp
