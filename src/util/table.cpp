#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace mlp {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '%' &&
        c != '-' && c != '+' && c != ',' && c != 'x')
      return false;
  }
  return true;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      const std::size_t pad = widths[c] - cell.size();
      if (c) out += "  ";
      if (looks_numeric(cell)) {
        out.append(pad, ' ');
        out += cell;
      } else {
        out += cell;
        out.append(pad, ' ');
      }
    }
    // Trim trailing spaces for tidy diffs.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  std::string out;
  emit(header_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit(row, out);
  return out;
}

std::string fmt_count(std::size_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int since = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since == 3) {
      out += ',';
      since = 0;
    }
    out += *it;
    ++since;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace mlp
