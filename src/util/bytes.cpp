#include "util/bytes.hpp"

namespace mlp {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::bytes(const std::string& data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::size_t ByteWriter::placeholder(std::size_t width) {
  const std::size_t offset = buf_.size();
  buf_.insert(buf_.end(), width, 0);
  return offset;
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size())
    throw InvalidArgument("ByteWriter::patch_u16: offset out of range");
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buf_.size())
    throw InvalidArgument("ByteWriter::patch_u32: offset out of range");
  buf_[offset] = static_cast<std::uint8_t>(v >> 24);
  buf_[offset + 1] = static_cast<std::uint8_t>(v >> 16);
  buf_[offset + 2] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 3] = static_cast<std::uint8_t>(v);
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > data_.size())
    throw ParseError("ByteReader: truncated input (need " + std::to_string(n) +
                     " bytes, have " + std::to_string(data_.size() - pos_) +
                     ")");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  return (hi << 32) | u32();
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  need(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

ByteReader ByteReader::sub(std::size_t n) { return ByteReader(bytes(n)); }

void ByteReader::seek(std::size_t pos) {
  if (pos > data_.size())
    throw ParseError("ByteReader::seek: offset " + std::to_string(pos) +
                     " past end (" + std::to_string(data_.size()) + ")");
  pos_ = pos;
}

}  // namespace mlp
