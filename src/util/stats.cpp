#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/errors.hpp"

namespace mlp {

void EmpiricalDistribution::add_many(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
}

double EmpiricalDistribution::mean() const {
  if (samples_.empty()) throw InvalidArgument("mean of empty distribution");
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::min() const {
  if (samples_.empty()) throw InvalidArgument("min of empty distribution");
  return *std::min_element(samples_.begin(), samples_.end());
}

double EmpiricalDistribution::max() const {
  if (samples_.empty()) throw InvalidArgument("max of empty distribution");
  return *std::max_element(samples_.begin(), samples_.end());
}

double EmpiricalDistribution::percentile(double p) const {
  if (samples_.empty())
    throw InvalidArgument("percentile of empty distribution");
  if (p < 0.0 || p > 100.0)
    throw InvalidArgument("percentile must be in [0, 100]");
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double EmpiricalDistribution::fraction_at_most(double x) const {
  if (samples_.empty()) return 0.0;
  std::size_t n = 0;
  for (double s : samples_)
    if (s <= x) ++n;
  return static_cast<double>(n) / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::fraction_at_least(double x) const {
  if (samples_.empty()) return 0.0;
  std::size_t n = 0;
  for (double s : samples_)
    if (s >= x) ++n;
  return static_cast<double>(n) / static_cast<double>(samples_.size());
}

std::vector<DistPoint> EmpiricalDistribution::cdf() const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  std::vector<DistPoint> out;
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Emit one point per distinct value, at its last occurrence.
    if (i + 1 < sorted.size() && sorted[i + 1] == sorted[i]) continue;
    out.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<DistPoint> EmpiricalDistribution::ccdf() const {
  std::vector<DistPoint> out = cdf();
  for (auto& p : out) p.fraction = 1.0 - p.fraction;
  return out;
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (const auto& [k, v] : counts_) t += v;
  return t;
}

}  // namespace mlp
