// Big-endian byte stream reader/writer used by the MRT and BGP wire codecs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"
#include "util/errors.hpp"

namespace mlp {

/// Append-only big-endian encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);
  void bytes(const std::string& data);

  /// Reserve a placeholder of `width` bytes and return its offset, for
  /// back-patching length fields.
  std::size_t placeholder(std::size_t width);
  void patch_u16(std::size_t offset, std::uint16_t v);
  void patch_u32(std::size_t offset, std::uint32_t v);

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const MLP_LIFETIMEBOUND {
    return buf_;
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked big-endian decoder over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// The returned span aliases the borrowed buffer. Binding it to the
  /// reader (lifetimebound) is deliberately conservative: every caller
  /// keeps the reader in scope anyway, and the bound catches a view kept
  /// past a temporary reader.
  std::span<const std::uint8_t> bytes(std::size_t n) MLP_LIFETIMEBOUND;

  /// Sub-reader over the next n bytes (consumes them from this reader).
  ByteReader sub(std::size_t n) MLP_LIFETIMEBOUND;

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

  /// Reposition to an absolute offset (resync support for tolerant
  /// decoders). Throws ParseError past the end of the buffer.
  void seek(std::size_t pos);

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace mlp
