// Deterministic random number generation.
//
// Every stochastic component in this repository draws from an explicitly
// seeded Rng so that all experiments are reproducible bit-for-bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/errors.hpp"

namespace mlp {

/// Seedable random source wrapping std::mt19937_64 with the sampling
/// helpers used by the topology and workload generators.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Geometric-ish heavy-tailed sample: floor of a bounded Pareto draw in
  /// [lo, hi] with shape alpha. Used for degree distributions.
  std::uint64_t pareto(std::uint64_t lo, std::uint64_t hi, double alpha);

  /// Zipf-distributed rank in [1, n] with exponent s.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// Requires a non-empty vector with a positive total weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    if (v.empty()) throw InvalidArgument("Rng::pick: empty vector");
    return v[static_cast<std::size_t>(uniform(0, v.size() - 1))];
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Sample k distinct elements (order randomised). If k >= v.size()
  /// returns a shuffled copy of v.
  template <typename T>
  std::vector<T> sample(const std::vector<T>& v, std::size_t k) {
    std::vector<T> copy = v;
    shuffle(copy);
    if (k < copy.size()) copy.resize(k);
    return copy;
  }

  /// Derive an independent child generator; streams do not overlap for
  /// distinct labels.
  Rng fork(std::uint64_t label);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace mlp
