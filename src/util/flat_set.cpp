#include "util/flat_set.hpp"

#include <algorithm>

namespace mlp::util {

void FlatAsnSet::normalize() {
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
}

bool FlatAsnSet::insert(value_type value) {
  const auto it = std::lower_bound(values_.begin(), values_.end(), value);
  if (it != values_.end() && *it == value) return false;
  values_.insert(it, value);
  return true;
}

bool FlatAsnSet::erase(value_type value) {
  const auto it = std::lower_bound(values_.begin(), values_.end(), value);
  if (it == values_.end() || *it != value) return false;
  values_.erase(it);
  return true;
}

bool FlatAsnSet::contains(value_type value) const {
  return std::binary_search(values_.begin(), values_.end(), value);
}

std::size_t FlatAsnSet::index_of(value_type value) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), value);
  if (it == values_.end() || *it != value) return npos;
  return static_cast<std::size_t>(it - values_.begin());
}

FlatAsnSet FlatAsnSet::set_union(const FlatAsnSet& a, const FlatAsnSet& b) {
  FlatAsnSet out;
  out.values_.reserve(a.size() + b.size());
  std::set_union(a.values_.begin(), a.values_.end(), b.values_.begin(),
                 b.values_.end(), std::back_inserter(out.values_));
  return out;
}

FlatAsnSet FlatAsnSet::set_intersection(const FlatAsnSet& a,
                                        const FlatAsnSet& b) {
  FlatAsnSet out;
  out.values_.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.values_.begin(), a.values_.end(), b.values_.begin(),
                        b.values_.end(), std::back_inserter(out.values_));
  return out;
}

FlatAsnSet FlatAsnSet::set_difference(const FlatAsnSet& a,
                                      const FlatAsnSet& b) {
  FlatAsnSet out;
  out.values_.reserve(a.size());
  std::set_difference(a.values_.begin(), a.values_.end(), b.values_.begin(),
                      b.values_.end(), std::back_inserter(out.values_));
  return out;
}

bool operator==(const FlatAsnSet& a, const std::set<std::uint32_t>& b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace mlp::util
