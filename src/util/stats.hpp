// Lightweight descriptive statistics for the experiment harnesses
// (CDF/CCDF series like figures 5 and 7 of the paper).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace mlp {

/// One point of an empirical (C)CDF: fraction of samples <= (or >) x.
struct DistPoint {
  double x = 0.0;
  double fraction = 0.0;
};

/// Accumulates samples and renders empirical distributions.
class EmpiricalDistribution {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_many(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Percentile in [0, 100] by linear interpolation; requires samples.
  double percentile(double p) const;
  /// Fraction of samples <= x.
  double fraction_at_most(double x) const;
  /// Fraction of samples >= x.
  double fraction_at_least(double x) const;

  /// Empirical CDF evaluated at each distinct sample value.
  std::vector<DistPoint> cdf() const;
  /// Complementary CDF: fraction of samples > x, at each distinct value.
  std::vector<DistPoint> ccdf() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  // Kept unsorted for O(1) add; sorted copies are made on demand.
  std::vector<double> samples_;
};

/// Integer-keyed histogram (counts per bucket).
class Histogram {
 public:
  void add(long long key, std::size_t n = 1) { counts_[key] += n; }
  std::size_t total() const;
  const std::map<long long, std::size_t>& buckets() const { return counts_; }

 private:
  std::map<long long, std::size_t> counts_;
};

}  // namespace mlp
