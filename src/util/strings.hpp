// Small string helpers used by the textual parsers (RPSL, looking glass
// output, community strings).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mlp {

/// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Split on any run of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view text);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Parse an unsigned integer; rejects trailing garbage and overflow.
std::optional<std::uint64_t> parse_u64(std::string_view text);

/// Parse an unsigned integer bounded to 32 bits.
std::optional<std::uint32_t> parse_u32(std::string_view text);

}  // namespace mlp
