// A sorted flat set of ASNs: the data-plane container of the inference
// hot path.
//
// The step-4/step-5 algorithm is intersection-heavy -- per-prefix policy
// merges followed by an O(|A_RS|^2) reciprocity pass -- and node-based
// std::set spends that budget chasing pointers. A sorted std::vector keeps
// the same set semantics (unique, ordered, O(log n) membership) with
// contiguous memory: intersections and unions become linear merges and
// iteration is cache-friendly. Element type is std::uint32_t rather than
// bgp::Asn only to keep util below bgp in the module order; the two are
// the same type (asserted where they meet in core/types.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <set>
#include <vector>

namespace mlp::util {

class FlatAsnSet {
 public:
  using value_type = std::uint32_t;
  using const_iterator = std::vector<value_type>::const_iterator;

  /// index_of result for values not in the set.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  FlatAsnSet() = default;
  FlatAsnSet(std::initializer_list<value_type> values)
      : values_(values) {
    normalize();
  }
  /// Takes any vector, sorting and deduplicating it.
  explicit FlatAsnSet(std::vector<value_type> values)
      : values_(std::move(values)) {
    normalize();
  }
  /// Implicit bridge from the node-based representation, so call sites
  /// migrating one layer at a time keep compiling.
  // NOLINTNEXTLINE(google-explicit-constructor)
  FlatAsnSet(const std::set<value_type>& values)
      : values_(values.begin(), values.end()) {}
  template <typename It>
  FlatAsnSet(It first, It last) : values_(first, last) {
    normalize();
  }

  /// Returns true when the value was not already present.
  bool insert(value_type value);
  /// Returns true when the value was present.
  bool erase(value_type value);
  void clear() { values_.clear(); }
  void reserve(std::size_t n) { values_.reserve(n); }

  bool contains(value_type value) const;
  std::size_t count(value_type value) const { return contains(value) ? 1 : 0; }
  /// Dense index of `value` in sorted order, or npos when absent -- the
  /// row/column index of the reciprocity bitset.
  std::size_t index_of(value_type value) const;

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const_iterator begin() const { return values_.begin(); }
  const_iterator end() const { return values_.end(); }
  /// The backing sorted vector (dense-index order).
  const std::vector<value_type>& values() const { return values_; }

  static FlatAsnSet set_union(const FlatAsnSet& a, const FlatAsnSet& b);
  static FlatAsnSet set_intersection(const FlatAsnSet& a, const FlatAsnSet& b);
  /// Elements of `a` not in `b`.
  static FlatAsnSet set_difference(const FlatAsnSet& a, const FlatAsnSet& b);

  friend bool operator==(const FlatAsnSet&, const FlatAsnSet&) = default;

 private:
  void normalize();

  std::vector<value_type> values_;
};

/// Mixed comparison for call sites still holding std::set on one side
/// (C++20 synthesises the reversed operand order).
bool operator==(const FlatAsnSet& a, const std::set<std::uint32_t>& b);

}  // namespace mlp::util
