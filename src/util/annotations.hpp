// Compile-time enforcement hooks for the concurrency and lifetime
// invariants documented in ROADMAP.md.
//
// Two families of annotations live here:
//
//  1. Clang thread-safety capability attributes (MLP_CAPABILITY,
//     MLP_GUARDED_BY, MLP_REQUIRES, MLP_ACQUIRED_AFTER, ...) plus an
//     annotated util::Mutex / util::MutexLock / util::CondVar shim over
//     the standard primitives. Code in src/pipeline and src/stream must
//     use the shim instead of naked std::mutex (tools/invariant_lint.py
//     enforces this), so `-Wthread-safety -Werror` turns the documented
//     lock contracts -- "feeds_mutex_ before any lane mutex", "every
//     FeedSupervisor call happens under the lane mutex" -- into build
//     failures instead of TSan lottery tickets.
//
//  2. MLP_LIFETIMEBOUND ([[clang::lifetimebound]]) for borrowed-view
//     accessors: MrtCursor::rib_entry()/update(), the framer span
//     accessors, MlpInferenceEngine::observed_members()/policy_of(),
//     ByteReader views. Binding one of these views to something that
//     outlives its owner becomes a -Wdangling error under Clang.
//
// Every macro expands to nothing on compilers without the attributes
// (GCC, MSVC), so the shim is exactly a std::mutex wrapper there: zero
// behavioural or performance difference (BM_MultiFeedLiveSession /
// BM_SupervisedLiveSession price this). The negative-compile harness in
// tests/static/ proves the attributes reject representative violations
// under Clang.
#pragma once

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------- attribute macros

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MLP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MLP_THREAD_ANNOTATION
#define MLP_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// A type that models a lock (the analysis calls it a capability).
#define MLP_CAPABILITY(x) MLP_THREAD_ANNOTATION(capability(x))
/// An RAII type whose constructor acquires and destructor releases.
#define MLP_SCOPED_CAPABILITY MLP_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while `x` is held.
#define MLP_GUARDED_BY(x) MLP_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is guarded by `x`.
#define MLP_PT_GUARDED_BY(x) MLP_THREAD_ANNOTATION(pt_guarded_by(x))
/// Static lock-order declaration: this mutex before the listed ones.
#define MLP_ACQUIRED_BEFORE(...) \
  MLP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
/// Static lock-order declaration: this mutex after the listed ones.
#define MLP_ACQUIRED_AFTER(...) \
  MLP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// The caller must already hold the listed capabilities.
#define MLP_REQUIRES(...) \
  MLP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// The function acquires the capability (held on return, not on entry).
#define MLP_ACQUIRE(...) \
  MLP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// The function releases the capability (held on entry, not on return).
#define MLP_RELEASE(...) \
  MLP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// The function acquires the capability iff it returns `b`.
#define MLP_TRY_ACQUIRE(...) \
  MLP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// The caller must NOT hold the listed capabilities (anti-deadlock).
#define MLP_EXCLUDES(...) MLP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Declares to the analysis that the capability is held from here to the
/// end of the scope (for locks it cannot see being taken).
#define MLP_ASSERT_CAPABILITY(x) \
  MLP_THREAD_ANNOTATION(assert_capability(x))
/// Escape hatch for functions the analysis cannot model. Every use must
/// carry an inline comment explaining why (invariant_lint checks this).
#define MLP_NO_THREAD_SAFETY_ANALYSIS \
  MLP_THREAD_ANNOTATION(no_thread_safety_analysis)

// ------------------------------------------------------- lifetimebound

#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::lifetimebound)
#define MLP_LIFETIMEBOUND [[clang::lifetimebound]]
#endif
#endif
#ifndef MLP_LIFETIMEBOUND
#define MLP_LIFETIMEBOUND
#endif

// ------------------------------------------------------ annotated shim

namespace mlp::util {

/// std::mutex with the Clang capability attributes attached. Same size,
/// same codegen (every member is a forwarding inline call); exists so
/// GUARDED_BY/REQUIRES contracts on the live pipeline are checkable.
class MLP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MLP_ACQUIRE() { inner_.lock(); }
  void unlock() MLP_RELEASE() { inner_.unlock(); }
  bool try_lock() MLP_TRY_ACQUIRE(true) { return inner_.try_lock(); }

  /// Tell the analysis this mutex is held on paths where it cannot see
  /// the acquisition (a dynamic all-lanes lock set, a lock taken by a
  /// caller the analysis does not model). No-op at runtime; every use
  /// must sit next to the mechanism that really holds the lock.
  void assert_held() const MLP_ASSERT_CAPABILITY(this) {}

  /// The wrapped std::mutex, for CondVar interop only -- never lock it
  /// directly (that would bypass the analysis).
  std::mutex& native() { return inner_; }

 private:
  std::mutex inner_;
};

/// RAII lock for util::Mutex (the std::lock_guard analogue the analysis
/// understands). Deliberately minimal: no defer/adopt/try modes -- a
/// conditional acquisition cannot be expressed to the analysis, so code
/// wanting it should be restructured into _locked/unlocked variants.
class MLP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MLP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() MLP_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with util::Mutex. wait() keeps the REQUIRES
/// contract honest: the capability is held on entry and on return (the
/// internal release/reacquire during the wait is invisible to callers,
/// exactly like std::condition_variable::wait).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) MLP_REQUIRES(mutex) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release ownership back to the caller's MutexLock. Predicate
    // loops live at the call site so the analysis sees the guarded
    // reads under the lock.
    std::unique_lock<std::mutex> lock(mutex.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mlp::util
