// AS paths (BGP AS_PATH attribute, flattened AS_SEQUENCE form).
//
// The paper's pipelines treat AS paths as ordered ASN sequences, filtering
// cycles, reserved ASNs, and transient paths; this type provides those
// predicates plus the adjacency extraction used to build "public view"
// topologies.
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bgp/asn.hpp"

namespace mlp::bgp {

/// An undirected AS adjacency; stored with the smaller ASN first so it can
/// be used as a canonical set/map key.
struct AsLink {
  Asn a = 0;
  Asn b = 0;

  AsLink() = default;
  AsLink(Asn x, Asn y) : a(x < y ? x : y), b(x < y ? y : x) {}

  friend auto operator<=>(const AsLink&, const AsLink&) = default;
};

/// Ordered AS-level path; front() is the last AS prepended (the vantage
/// point side), back() is the origin AS.
class AsPath {
 public:
  AsPath() = default;
  AsPath(std::initializer_list<Asn> asns) : asns_(asns) {}
  explicit AsPath(std::vector<Asn> asns) : asns_(std::move(asns)) {}

  /// Parse "174 3356 15169" style space-separated paths.
  static std::optional<AsPath> parse(std::string_view text);

  bool empty() const { return asns_.empty(); }
  std::size_t length() const { return asns_.size(); }
  Asn origin() const;
  Asn head() const;
  const std::vector<Asn>& asns() const { return asns_; }

  bool contains(Asn asn) const;

  /// BGP prepending on export: the exporting AS adds itself at the front.
  void prepend(Asn asn) { asns_.insert(asns_.begin(), asn); }

  /// Move the underlying storage out, leaving the path empty. Streaming
  /// decoders use this to recycle capacity across records instead of
  /// allocating a fresh vector per AS_PATH attribute.
  std::vector<Asn> release() { return std::move(asns_); }

  /// True if any ASN occurs in two non-adjacent positions (adjacent repeats
  /// are legitimate path prepending, not cycles).
  bool has_cycle() const;

  /// True if any element is a reserved/unassigned ASN per asn.hpp; the
  /// paper filters such paths before inference (section 5).
  bool has_reserved_asn() const;

  /// Copy with adjacent duplicate ASNs (prepending) collapsed.
  AsPath deduplicated() const;

  /// Adjacent AS pairs, after collapsing prepending; the raw material of
  /// BGP-observed topologies.
  std::vector<AsLink> links() const;

  std::string to_string() const;

  friend auto operator<=>(const AsPath&, const AsPath&) = default;

 private:
  std::vector<Asn> asns_;
};

}  // namespace mlp::bgp

template <>
struct std::hash<mlp::bgp::AsLink> {
  std::size_t operator()(const mlp::bgp::AsLink& l) const noexcept {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(l.a) << 32) |
                                      l.b);
  }
};
