// Valley-free routing checks (Gao-Rexford export rules).
//
// A path is valley-free if it climbs customer-to-provider zero or more
// steps, optionally crosses exactly one peer-to-peer link, then descends
// provider-to-customer; sibling links may appear anywhere (section 2.1 of
// the paper).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "bgp/aspath.hpp"

namespace mlp::bgp {

/// Business relationship of the *first* AS relative to the second:
/// C2P means "a is a customer of b".
enum class Rel : std::uint8_t { C2P, P2C, P2P, Sibling };

std::string to_string(Rel rel);

/// The inverse view: rel(a,b) == invert(rel(b,a)).
Rel invert(Rel rel);

/// Relationship oracle: relationship of `from` relative to `to`, or nullopt
/// if the pair is not adjacent in the known topology.
using RelFn =
    std::function<std::optional<Rel>(Asn from, Asn to)>;

/// Outcome of a valley-free check.
enum class ValleyVerdict : std::uint8_t {
  ValleyFree,        // conforms to pattern (1) or (2) from the paper
  Valley,            // descends then ascends, or crosses >1 peering link
  UnknownLink,       // some adjacent pair has no known relationship
};

/// Classify a path (given in BGP order: head = nearest AS, back = origin).
/// Prepending is collapsed before checking.
ValleyVerdict check_valley_free(const AsPath& path, const RelFn& rel);

/// Convenience: true iff check_valley_free returns ValleyFree.
bool is_valley_free(const AsPath& path, const RelFn& rel);

/// Whether an AS may export a route learned from `learned_from` to
/// `send_to`, per Gao-Rexford: routes from customers/siblings go to
/// everyone; routes from peers/providers go to customers and siblings only.
bool may_export(Rel learned_from, Rel send_to);

}  // namespace mlp::bgp
