#include "bgp/valley.hpp"

namespace mlp::bgp {

std::string to_string(Rel rel) {
  switch (rel) {
    case Rel::C2P:
      return "c2p";
    case Rel::P2C:
      return "p2c";
    case Rel::P2P:
      return "p2p";
    case Rel::Sibling:
      return "sibling";
  }
  return "unknown";
}

Rel invert(Rel rel) {
  switch (rel) {
    case Rel::C2P:
      return Rel::P2C;
    case Rel::P2C:
      return Rel::C2P;
    case Rel::P2P:
      return Rel::P2P;
    case Rel::Sibling:
      return Rel::Sibling;
  }
  return Rel::Sibling;
}

ValleyVerdict check_valley_free(const AsPath& path, const RelFn& rel) {
  const AsPath flat = path.deduplicated();
  const auto& asns = flat.asns();
  if (asns.size() < 2) return ValleyVerdict::ValleyFree;

  // Walk from the origin toward the vantage point; in that orientation a
  // valley-free path is (c2p|sibling)* (p2p)? (p2c|sibling)*.
  // asns are in BGP order (head = vantage side), so iterate in reverse:
  // step i goes from asns[i+1] (closer to origin) to asns[i].
  enum class Stage { Ascending, Peered, Descending };
  Stage stage = Stage::Ascending;
  for (std::size_t i = asns.size() - 1; i-- > 0;) {
    const auto r = rel(asns[i + 1], asns[i]);
    if (!r) return ValleyVerdict::UnknownLink;
    switch (*r) {
      case Rel::Sibling:
        break;  // allowed anywhere, does not change stage
      case Rel::C2P:
        if (stage != Stage::Ascending) return ValleyVerdict::Valley;
        break;
      case Rel::P2P:
        if (stage != Stage::Ascending) return ValleyVerdict::Valley;
        stage = Stage::Peered;
        break;
      case Rel::P2C:
        stage = Stage::Descending;
        break;
    }
  }
  return ValleyVerdict::ValleyFree;
}

bool is_valley_free(const AsPath& path, const RelFn& rel) {
  return check_valley_free(path, rel) == ValleyVerdict::ValleyFree;
}

bool may_export(Rel learned_from, Rel send_to) {
  // `learned_from`: our relationship to the AS we learned the route from.
  // `send_to`: our relationship to the candidate recipient.
  const bool from_customer =
      learned_from == Rel::P2C || learned_from == Rel::Sibling;
  const bool to_customer = send_to == Rel::P2C || send_to == Rel::Sibling;
  return from_customer || to_customer;
}

}  // namespace mlp::bgp
