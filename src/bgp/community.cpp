#include "bgp/community.hpp"

#include "util/strings.hpp"

namespace mlp::bgp {

std::optional<Community> Community::parse(std::string_view text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  auto high = mlp::parse_u32(text.substr(0, colon));
  auto low = mlp::parse_u32(text.substr(colon + 1));
  if (!high || !low || *high > 0xffff || *low > 0xffff) return std::nullopt;
  return Community(static_cast<std::uint16_t>(*high),
                   static_cast<std::uint16_t>(*low));
}

std::string Community::to_string() const {
  return std::to_string(high) + ":" + std::to_string(low);
}

std::optional<std::vector<Community>> parse_community_list(
    std::string_view text) {
  std::vector<Community> out;
  for (const auto& token : mlp::split_ws(text)) {
    auto c = Community::parse(token);
    if (!c) return std::nullopt;
    out.push_back(*c);
  }
  return out;
}

std::string to_string(const std::vector<Community>& communities) {
  std::string out;
  for (std::size_t i = 0; i < communities.size(); ++i) {
    if (i) out += ' ';
    out += communities[i].to_string();
  }
  return out;
}

}  // namespace mlp::bgp
