#include "bgp/aspath.hpp"

#include <unordered_set>

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace mlp::bgp {

std::optional<AsPath> AsPath::parse(std::string_view text) {
  std::vector<Asn> asns;
  for (const auto& token : mlp::split_ws(text)) {
    std::string_view t = token;
    if (mlp::starts_with(t, "AS")) t.remove_prefix(2);
    auto asn = mlp::parse_u32(t);
    if (!asn) return std::nullopt;
    asns.push_back(*asn);
  }
  return AsPath(std::move(asns));
}

Asn AsPath::origin() const {
  if (asns_.empty()) throw InvalidArgument("AsPath::origin on empty path");
  return asns_.back();
}

Asn AsPath::head() const {
  if (asns_.empty()) throw InvalidArgument("AsPath::head on empty path");
  return asns_.front();
}

bool AsPath::contains(Asn asn) const {
  for (Asn a : asns_)
    if (a == asn) return true;
  return false;
}

bool AsPath::has_cycle() const {
  // A cycle is the same ASN at two non-adjacent positions, i.e. a value
  // repeated across runs of the prepending-collapsed sequence. Real AS
  // paths are a handful of hops, so the quadratic run-start scan beats a
  // hash set (which costs an allocation per path on the extraction hot
  // path); pathologically long paths fall back to the set.
  const std::size_t n = asns_.size();
  if (n <= 64) {
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0 && asns_[i] == asns_[i - 1]) continue;  // prepending
      for (std::size_t j = i + 1; j < n; ++j) {
        if (asns_[j] == asns_[j - 1]) continue;  // prepending
        if (asns_[j] == asns_[i]) return true;
      }
    }
    return false;
  }
  std::unordered_set<Asn> seen;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && asns_[i] == asns_[i - 1]) continue;  // prepending
    if (!seen.insert(asns_[i]).second) return true;
  }
  return false;
}

bool AsPath::has_reserved_asn() const {
  for (Asn a : asns_)
    if (is_reserved_or_unassigned(a)) return true;
  return false;
}

AsPath AsPath::deduplicated() const {
  std::vector<Asn> out;
  for (Asn a : asns_) {
    if (out.empty() || out.back() != a) out.push_back(a);
  }
  return AsPath(std::move(out));
}

std::vector<AsLink> AsPath::links() const {
  const AsPath flat = deduplicated();
  std::vector<AsLink> out;
  const auto& asns = flat.asns();
  for (std::size_t i = 0; i + 1 < asns.size(); ++i)
    out.emplace_back(asns[i], asns[i + 1]);
  return out;
}

std::string AsPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < asns_.size(); ++i) {
    if (i) out += ' ';
    out += std::to_string(asns_[i]);
  }
  return out;
}

}  // namespace mlp::bgp
