#include "bgp/rib.hpp"

#include <algorithm>

namespace mlp::bgp {

namespace {
const std::vector<RibEntry> kEmpty;
}

void Rib::announce(Asn peer_asn, std::uint32_t peer_ip, Route route) {
  auto& entries = table_[route.prefix];
  for (auto& e : entries) {
    if (e.peer_asn == peer_asn && e.peer_ip == peer_ip) {
      e.route = std::move(route);
      return;
    }
  }
  entries.push_back(RibEntry{peer_asn, peer_ip, std::move(route)});
}

void Rib::withdraw(Asn peer_asn, const IpPrefix& prefix) {
  auto it = table_.find(prefix);
  if (it == table_.end()) return;
  auto& entries = it->second;
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&](const RibEntry& e) {
                                 return e.peer_asn == peer_asn;
                               }),
                entries.end());
  if (entries.empty()) table_.erase(it);
}

void Rib::drop_peer(Asn peer_asn) {
  for (auto it = table_.begin(); it != table_.end();) {
    auto& entries = it->second;
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const RibEntry& e) {
                                   return e.peer_asn == peer_asn;
                                 }),
                  entries.end());
    it = entries.empty() ? table_.erase(it) : std::next(it);
  }
}

const std::vector<RibEntry>& Rib::paths(const IpPrefix& prefix) const {
  auto it = table_.find(prefix);
  return it == table_.end() ? kEmpty : it->second;
}

std::optional<RibEntry> Rib::best(const IpPrefix& prefix) const {
  const auto& entries = paths(prefix);
  if (entries.empty()) return std::nullopt;
  const RibEntry* winner = &entries.front();
  for (const auto& e : entries)
    if (better(e, *winner)) winner = &e;
  return *winner;
}

std::vector<IpPrefix> Rib::prefixes() const {
  std::vector<IpPrefix> out;
  out.reserve(table_.size());
  for (const auto& [prefix, entries] : table_) out.push_back(prefix);
  return out;
}

std::vector<IpPrefix> Rib::prefixes_from_peer(Asn peer_asn) const {
  std::vector<IpPrefix> out;
  for (const auto& [prefix, entries] : table_)
    for (const auto& e : entries)
      if (e.peer_asn == peer_asn) {
        out.push_back(prefix);
        break;
      }
  return out;
}

std::vector<RibEntry> Rib::entries_from_peer(Asn peer_asn) const {
  std::vector<RibEntry> out;
  for (const auto& [prefix, entries] : table_)
    for (const auto& e : entries)
      if (e.peer_asn == peer_asn) out.push_back(e);
  return out;
}

std::vector<Asn> Rib::peers() const {
  std::vector<Asn> out;
  for (const auto& [prefix, entries] : table_)
    for (const auto& e : entries) out.push_back(e.peer_asn);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t Rib::path_count() const {
  std::size_t n = 0;
  for (const auto& [prefix, entries] : table_) n += entries.size();
  return n;
}

bool Rib::better(const RibEntry& lhs, const RibEntry& rhs) {
  const auto& a = lhs.route.attrs;
  const auto& b = rhs.route.attrs;
  const std::uint32_t lp_a = a.has_local_pref ? a.local_pref : 100;
  const std::uint32_t lp_b = b.has_local_pref ? b.local_pref : 100;
  if (lp_a != lp_b) return lp_a > lp_b;
  if (a.as_path.length() != b.as_path.length())
    return a.as_path.length() < b.as_path.length();
  if (a.origin != b.origin) return a.origin < b.origin;
  const std::uint32_t med_a = a.has_med ? a.med : 0;
  const std::uint32_t med_b = b.has_med ? b.med : 0;
  if (med_a != med_b) return med_a < med_b;
  if (lhs.peer_asn != rhs.peer_asn) return lhs.peer_asn < rhs.peer_asn;
  return lhs.peer_ip < rhs.peer_ip;
}

}  // namespace mlp::bgp
