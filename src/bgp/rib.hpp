// A multi-path Routing Information Base.
//
// Route servers, looking glasses and collectors all hold per-peer Adj-RIB-In
// state keyed by prefix; this container models that plus the standard BGP
// decision process used when only the best path is displayed.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "bgp/asn.hpp"
#include "bgp/prefix.hpp"
#include "bgp/route.hpp"

namespace mlp::bgp {

/// One RIB entry: a route learned from a specific peer session.
struct RibEntry {
  Asn peer_asn = 0;
  std::uint32_t peer_ip = 0;
  Route route;
};

/// Multi-path RIB. One route per (prefix, peer); re-announcement replaces.
class Rib {
 public:
  /// Insert or replace the route from `peer_asn` for `route.prefix`.
  void announce(Asn peer_asn, std::uint32_t peer_ip, Route route);

  /// Remove the route from `peer_asn` for `prefix`; no-op if absent.
  void withdraw(Asn peer_asn, const IpPrefix& prefix);

  /// Remove every route learned from `peer_asn` (session teardown).
  void drop_peer(Asn peer_asn);

  /// All paths currently held for `prefix` (empty if none).
  const std::vector<RibEntry>& paths(const IpPrefix& prefix) const;

  /// The best path for `prefix` per the BGP decision process implemented in
  /// `better`, or nullopt if the prefix is absent.
  std::optional<RibEntry> best(const IpPrefix& prefix) const;

  /// All prefixes with at least one path, in prefix order.
  std::vector<IpPrefix> prefixes() const;

  /// Prefixes advertised by a given peer, in prefix order.
  std::vector<IpPrefix> prefixes_from_peer(Asn peer_asn) const;

  /// All routes learned from a given peer.
  std::vector<RibEntry> entries_from_peer(Asn peer_asn) const;

  /// Distinct peer ASNs present in the RIB, sorted.
  std::vector<Asn> peers() const;

  std::size_t prefix_count() const { return table_.size(); }
  std::size_t path_count() const;
  bool empty() const { return table_.empty(); }

  /// BGP decision process (subset): higher LOCAL_PREF wins, then shorter
  /// AS path, then lower ORIGIN, then lower MED, then lower peer ASN and
  /// peer IP as deterministic tie-breakers.
  static bool better(const RibEntry& lhs, const RibEntry& rhs);

 private:
  std::map<IpPrefix, std::vector<RibEntry>> table_;
};

}  // namespace mlp::bgp
