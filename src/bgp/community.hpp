// Classic 32-bit BGP communities (RFC 1997), the paper's central data item.
//
// A community is two 16-bit halves conventionally written "high:low". IXP
// route servers assign meanings like 0:peer-asn (EXCLUDE) or
// rs-asn:peer-asn (INCLUDE); see Table 1 of the paper and
// routeserver/scheme.hpp for the per-IXP pattern registry.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mlp::bgp {

/// Value type for one community attribute element.
struct Community {
  std::uint16_t high = 0;
  std::uint16_t low = 0;

  constexpr Community() = default;
  constexpr Community(std::uint16_t h, std::uint16_t l) : high(h), low(l) {}

  /// Pack into the RFC 1997 wire value.
  constexpr std::uint32_t value() const {
    return (static_cast<std::uint32_t>(high) << 16) | low;
  }
  static constexpr Community from_value(std::uint32_t v) {
    return Community(static_cast<std::uint16_t>(v >> 16),
                     static_cast<std::uint16_t>(v & 0xffff));
  }

  /// Parse "high:low" decimal notation.
  static std::optional<Community> parse(std::string_view text);

  std::string to_string() const;

  friend auto operator<=>(const Community&, const Community&) = default;
};

/// Well-known communities (RFC 1997).
inline constexpr Community kNoExport{0xffff, 0xff01};
inline constexpr Community kNoAdvertise{0xffff, 0xff02};
inline constexpr Community kNoExportSubconfed{0xffff, 0xff03};

inline bool is_well_known(Community c) { return c.high == 0xffff; }

/// Parse a whitespace-separated list like "0:6695 6695:8359"; returns
/// nullopt if any element is malformed.
std::optional<std::vector<Community>> parse_community_list(
    std::string_view text);

/// Render space-separated "high:low" values.
std::string to_string(const std::vector<Community>& communities);

}  // namespace mlp::bgp

template <>
struct std::hash<mlp::bgp::Community> {
  std::size_t operator()(const mlp::bgp::Community& c) const noexcept {
    return std::hash<std::uint32_t>{}(c.value());
  }
};
