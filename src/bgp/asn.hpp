// Autonomous System Numbers.
//
// ASNs are 32-bit (RFC 6793); the classic 16-bit space is a subset. Several
// paper-relevant ranges matter: AS_TRANS (23456), the 16-bit private range
// (64512-65534) used by IXPs to alias 32-bit members for community filtering,
// and the reserved/unassigned blocks the paper filters out of AS paths.
#pragma once

#include <cstdint>
#include <string>

namespace mlp::bgp {

using Asn = std::uint32_t;

/// AS_TRANS, the placeholder ASN seen by pre-RFC6793 speakers.
inline constexpr Asn kAsTrans = 23456;

/// 16-bit private-use ASN range (RFC 6996), used by IXP route servers to
/// alias 32-bit member ASNs in 16-bit community fields.
inline constexpr Asn kPrivate16First = 64512;
inline constexpr Asn kPrivate16Last = 65534;

/// 32-bit private-use range start (RFC 6996).
inline constexpr Asn kPrivate32First = 4200000000U;
inline constexpr Asn kPrivate32Last = 4294967294U;

inline bool is_16bit(Asn asn) { return asn <= 0xffff; }
inline bool is_32bit_only(Asn asn) { return asn > 0xffff; }

inline bool is_private(Asn asn) {
  return (asn >= kPrivate16First && asn <= kPrivate16Last) ||
         (asn >= kPrivate32First && asn <= kPrivate32Last);
}

/// Ranges the paper's passive pipeline filters from AS paths: AS_TRANS plus
/// the 2013-era unassigned block 63488-131071 (see section 5).
inline bool is_reserved_or_unassigned(Asn asn) {
  if (asn == 0 || asn == kAsTrans) return true;
  if (asn >= 63488 && asn <= 131071) return true;
  if (asn == 65535 || asn == 4294967295U) return true;  // RFC 7300
  return false;
}

inline std::string to_string(Asn asn) { return "AS" + std::to_string(asn); }

}  // namespace mlp::bgp
