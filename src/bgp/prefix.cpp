#include "bgp/prefix.hpp"

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace mlp::bgp {

IpPrefix::IpPrefix(std::uint32_t address, std::uint8_t length)
    : length_(length) {
  if (length > 32)
    throw InvalidArgument("IpPrefix: length " + std::to_string(length) +
                          " > 32");
  address_ = address & (length == 0 ? 0 : ~std::uint32_t{0} << (32 - length));
}

std::optional<IpPrefix> IpPrefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = parse_ipv4(text.substr(0, slash));
  auto len = mlp::parse_u32(text.substr(slash + 1));
  if (!addr || !len || *len > 32) return std::nullopt;
  return IpPrefix(*addr, static_cast<std::uint8_t>(*len));
}

std::uint32_t IpPrefix::mask() const {
  return length_ == 0 ? 0 : ~std::uint32_t{0} << (32 - length_);
}

bool IpPrefix::contains(std::uint32_t ip) const {
  return (ip & mask()) == address_;
}

bool IpPrefix::covers(const IpPrefix& other) const {
  return other.length_ >= length_ && contains(other.address_);
}

std::string IpPrefix::to_string() const {
  return ipv4_to_string(address_) + "/" + std::to_string(length_);
}

std::string ipv4_to_string(std::uint32_t ip) {
  return std::to_string((ip >> 24) & 0xff) + "." +
         std::to_string((ip >> 16) & 0xff) + "." +
         std::to_string((ip >> 8) & 0xff) + "." + std::to_string(ip & 0xff);
}

std::optional<std::uint32_t> parse_ipv4(std::string_view text) {
  const auto parts = mlp::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t ip = 0;
  for (const auto& part : parts) {
    auto octet = mlp::parse_u32(part);
    if (!octet || *octet > 255) return std::nullopt;
    ip = (ip << 8) | *octet;
  }
  return ip;
}

}  // namespace mlp::bgp
