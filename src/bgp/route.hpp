// Routes: a prefix plus its BGP path attributes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bgp/aspath.hpp"
#include "bgp/community.hpp"
#include "bgp/prefix.hpp"

namespace mlp::bgp {

/// BGP ORIGIN attribute codes.
enum class Origin : std::uint8_t { Igp = 0, Egp = 1, Incomplete = 2 };

std::string to_string(Origin origin);

/// The subset of path attributes the reproduction manipulates. LOCAL_PREF
/// and MED are optional on the wire; a value of 0 with the flag false means
/// "absent".
struct PathAttributes {
  Origin origin = Origin::Igp;
  AsPath as_path;
  std::uint32_t next_hop = 0;
  bool has_med = false;
  std::uint32_t med = 0;
  bool has_local_pref = false;
  std::uint32_t local_pref = 0;
  std::vector<Community> communities;

  bool has_community(Community c) const {
    return std::find(communities.begin(), communities.end(), c) !=
           communities.end();
  }
  /// Adds c if not already present, preserving announcement order.
  void add_community(Community c) {
    if (!has_community(c)) communities.push_back(c);
  }
  void remove_community(Community c) {
    communities.erase(std::remove(communities.begin(), communities.end(), c),
                      communities.end());
  }

  friend bool operator==(const PathAttributes&,
                         const PathAttributes&) = default;
};

/// One announced route.
struct Route {
  IpPrefix prefix;
  PathAttributes attrs;

  Asn origin_asn() const { return attrs.as_path.origin(); }

  friend bool operator==(const Route&, const Route&) = default;
};

}  // namespace mlp::bgp
