#include "bgp/route.hpp"

namespace mlp::bgp {

std::string to_string(Origin origin) {
  switch (origin) {
    case Origin::Igp:
      return "IGP";
    case Origin::Egp:
      return "EGP";
    case Origin::Incomplete:
      return "incomplete";
  }
  return "unknown";
}

}  // namespace mlp::bgp
