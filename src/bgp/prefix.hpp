// IPv4 prefixes in canonical (masked) form.
//
// The reproduction pipeline is IPv4-only, matching the paper's data
// (RIB_IPV4_UNICAST table dumps and IPv4 looking-glass queries).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mlp::bgp {

/// A CIDR prefix with the host bits cleared. Value type, totally ordered so
/// it can key std::map/std::set.
class IpPrefix {
 public:
  IpPrefix() = default;

  /// Builds a canonical prefix; host bits beyond `length` are masked off.
  /// Throws InvalidArgument if length > 32.
  IpPrefix(std::uint32_t address, std::uint8_t length);

  /// Parse "a.b.c.d/len". Returns nullopt on malformed input.
  static std::optional<IpPrefix> parse(std::string_view text);

  std::uint32_t address() const { return address_; }
  std::uint8_t length() const { return length_; }

  /// Network mask as a 32-bit value (length 0 -> 0).
  std::uint32_t mask() const;

  /// True if `ip` falls inside this prefix.
  bool contains(std::uint32_t ip) const;

  /// True if `other` is equal to or more specific than this prefix.
  bool covers(const IpPrefix& other) const;

  std::string to_string() const;

  friend auto operator<=>(const IpPrefix&, const IpPrefix&) = default;

 private:
  std::uint32_t address_ = 0;
  std::uint8_t length_ = 0;
};

/// Render a raw IPv4 address in dotted-quad form.
std::string ipv4_to_string(std::uint32_t ip);

/// Parse dotted-quad. Returns nullopt on malformed input.
std::optional<std::uint32_t> parse_ipv4(std::string_view text);

}  // namespace mlp::bgp

template <>
struct std::hash<mlp::bgp::IpPrefix> {
  std::size_t operator()(const mlp::bgp::IpPrefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.address()) << 8) | p.length());
  }
};
