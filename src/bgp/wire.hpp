// BGP UPDATE wire codec (RFC 4271 + RFC 6793 four-octet AS paths).
//
// The MRT BGP4MP records archived by Route Views / RIPE RIS embed raw BGP
// messages; this codec produces and consumes those bytes so the passive
// pipeline parses genuine wire format rather than an in-memory shortcut.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/prefix.hpp"
#include "bgp/route.hpp"
#include "util/bytes.hpp"

namespace mlp::bgp {

/// BGP message types (RFC 4271 section 4.1).
enum class MessageType : std::uint8_t {
  Open = 1,
  Update = 2,
  Notification = 3,
  Keepalive = 4,
};

/// Path attribute type codes used by the codec.
enum class AttrType : std::uint8_t {
  Origin = 1,
  AsPath = 2,
  NextHop = 3,
  Med = 4,
  LocalPref = 5,
  Communities = 8,
};

/// A decoded UPDATE message.
struct UpdateMessage {
  std::vector<IpPrefix> withdrawn;
  PathAttributes attrs;
  std::vector<IpPrefix> nlri;

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

/// Encode a full BGP UPDATE message (with the 19-byte header).
/// `four_octet_as` selects between 2-byte and 4-byte AS path encoding; a
/// 32-bit ASN encoded into a 2-byte path becomes AS_TRANS, as on the wire.
std::vector<std::uint8_t> encode_update(const UpdateMessage& update,
                                        bool four_octet_as);

/// Decode a full BGP message; throws ParseError unless it is a well-formed
/// UPDATE. `four_octet_as` must match the encoder (in MRT it is derived
/// from the BGP4MP subtype).
UpdateMessage decode_update(std::span<const std::uint8_t> data,
                            bool four_octet_as);

/// In-place variant used by streaming decoders: `out` is fully reset but
/// its vectors (withdrawn, NLRI, communities, AS path) keep their capacity,
/// so a scratch UpdateMessage reused across records stops allocating once
/// warm.
void decode_update_into(std::span<const std::uint8_t> data,
                        bool four_octet_as, UpdateMessage& out);

/// NLRI helpers shared with the TABLE_DUMP_V2 codec.
void encode_nlri_prefix(mlp::ByteWriter& writer, const IpPrefix& prefix);
IpPrefix decode_nlri_prefix(mlp::ByteReader& reader);

/// Path-attribute block helpers (without the enclosing message framing),
/// reused by TABLE_DUMP_V2 RIB entries which store bare attribute blocks.
void encode_path_attributes(mlp::ByteWriter& writer,
                            const PathAttributes& attrs, bool four_octet_as);
PathAttributes decode_path_attributes(mlp::ByteReader& reader,
                                      bool four_octet_as);

/// In-place variant for streaming decoders; same reset-but-keep-capacity
/// contract as decode_update_into.
void decode_path_attributes_into(mlp::ByteReader& reader, bool four_octet_as,
                                 PathAttributes& out);

}  // namespace mlp::bgp
