#include "bgp/wire.hpp"

#include <algorithm>

#include "util/errors.hpp"

namespace mlp::bgp {

namespace {

constexpr std::size_t kHeaderSize = 19;  // 16-byte marker + length + type
constexpr std::uint8_t kAttrFlagOptional = 0x80;
constexpr std::uint8_t kAttrFlagTransitive = 0x40;
constexpr std::uint8_t kAttrFlagExtendedLength = 0x10;
constexpr std::uint8_t kSegmentAsSequence = 2;

void encode_attr_header(ByteWriter& w, std::uint8_t flags, AttrType type,
                        std::size_t length) {
  if (length > 0xffff) throw InvalidArgument("attribute too long");
  if (length > 0xff) flags |= kAttrFlagExtendedLength;
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(type));
  if (flags & kAttrFlagExtendedLength)
    w.u16(static_cast<std::uint16_t>(length));
  else
    w.u8(static_cast<std::uint8_t>(length));
}

void encode_as_path(ByteWriter& w, const AsPath& path, bool four_octet_as) {
  // Emit AS_SEQUENCE segments of at most 255 ASNs each.
  ByteWriter body;
  const auto& asns = path.asns();
  std::size_t i = 0;
  while (i < asns.size()) {
    const std::size_t n = std::min<std::size_t>(255, asns.size() - i);
    body.u8(kSegmentAsSequence);
    body.u8(static_cast<std::uint8_t>(n));
    for (std::size_t k = 0; k < n; ++k, ++i) {
      if (four_octet_as) {
        body.u32(asns[i]);
      } else {
        body.u16(is_16bit(asns[i]) ? static_cast<std::uint16_t>(asns[i])
                                   : static_cast<std::uint16_t>(kAsTrans));
      }
    }
  }
  encode_attr_header(w, kAttrFlagTransitive, AttrType::AsPath, body.size());
  w.bytes(body.data());
}

void decode_as_path_into(ByteReader r, bool four_octet_as,
                         std::vector<Asn>& asns) {
  while (!r.done()) {
    const std::uint8_t segment_type = r.u8();
    const std::uint8_t count = r.u8();
    if (segment_type != kSegmentAsSequence)
      throw ParseError("AS_PATH: unsupported segment type " +
                       std::to_string(segment_type));
    for (std::uint8_t k = 0; k < count; ++k)
      asns.push_back(four_octet_as ? r.u32() : r.u16());
  }
}

}  // namespace

void encode_nlri_prefix(ByteWriter& writer, const IpPrefix& prefix) {
  writer.u8(prefix.length());
  const std::uint32_t addr = prefix.address();
  const std::size_t bytes = (prefix.length() + 7) / 8;
  for (std::size_t i = 0; i < bytes; ++i)
    writer.u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
}

IpPrefix decode_nlri_prefix(ByteReader& reader) {
  const std::uint8_t length = reader.u8();
  if (length > 32) throw ParseError("NLRI: IPv4 prefix length > 32");
  const std::size_t bytes = (length + 7) / 8;
  std::uint32_t addr = 0;
  auto raw = reader.bytes(bytes);
  for (std::size_t i = 0; i < bytes; ++i)
    addr |= static_cast<std::uint32_t>(raw[i]) << (24 - 8 * i);
  return IpPrefix(addr, length);
}

void encode_path_attributes(ByteWriter& w, const PathAttributes& attrs,
                            bool four_octet_as) {
  encode_attr_header(w, kAttrFlagTransitive, AttrType::Origin, 1);
  w.u8(static_cast<std::uint8_t>(attrs.origin));

  encode_as_path(w, attrs.as_path, four_octet_as);

  encode_attr_header(w, kAttrFlagTransitive, AttrType::NextHop, 4);
  w.u32(attrs.next_hop);

  if (attrs.has_med) {
    encode_attr_header(w, kAttrFlagOptional, AttrType::Med, 4);
    w.u32(attrs.med);
  }
  if (attrs.has_local_pref) {
    encode_attr_header(w, kAttrFlagTransitive, AttrType::LocalPref, 4);
    w.u32(attrs.local_pref);
  }
  if (!attrs.communities.empty()) {
    encode_attr_header(w, kAttrFlagOptional | kAttrFlagTransitive,
                       AttrType::Communities, attrs.communities.size() * 4);
    for (Community c : attrs.communities) w.u32(c.value());
  }
}

void decode_path_attributes_into(ByteReader& reader, bool four_octet_as,
                                 PathAttributes& out) {
  out.origin = Origin::Igp;
  out.next_hop = 0;
  out.has_med = false;
  out.med = 0;
  out.has_local_pref = false;
  out.local_pref = 0;
  out.communities.clear();
  // Recycle the AS-path storage: filled in place, re-adopted at the end.
  std::vector<Asn> asns = out.as_path.release();
  asns.clear();
  while (!reader.done()) {
    const std::uint8_t flags = reader.u8();
    const auto type = static_cast<AttrType>(reader.u8());
    const std::size_t length =
        (flags & kAttrFlagExtendedLength) ? reader.u16() : reader.u8();
    ByteReader body = reader.sub(length);
    switch (type) {
      case AttrType::Origin: {
        const std::uint8_t o = body.u8();
        if (o > 2) throw ParseError("ORIGIN: invalid code");
        out.origin = static_cast<Origin>(o);
        break;
      }
      case AttrType::AsPath:
        asns.clear();  // last AS_PATH attribute wins
        decode_as_path_into(body, four_octet_as, asns);
        break;
      case AttrType::NextHop:
        out.next_hop = body.u32();
        break;
      case AttrType::Med:
        out.has_med = true;
        out.med = body.u32();
        break;
      case AttrType::LocalPref:
        out.has_local_pref = true;
        out.local_pref = body.u32();
        break;
      case AttrType::Communities: {
        if (length % 4 != 0)
          throw ParseError("COMMUNITIES: length not a multiple of 4");
        while (!body.done())
          out.communities.push_back(Community::from_value(body.u32()));
        break;
      }
      default:
        // Unknown attribute: skipped (body already consumed via sub()).
        break;
    }
  }
  out.as_path = AsPath(std::move(asns));
}

PathAttributes decode_path_attributes(ByteReader& reader,
                                      bool four_octet_as) {
  PathAttributes attrs;
  decode_path_attributes_into(reader, four_octet_as, attrs);
  return attrs;
}

std::vector<std::uint8_t> encode_update(const UpdateMessage& update,
                                        bool four_octet_as) {
  ByteWriter w;
  for (int i = 0; i < 16; ++i) w.u8(0xff);  // marker
  const std::size_t len_off = w.placeholder(2);
  w.u8(static_cast<std::uint8_t>(MessageType::Update));

  ByteWriter withdrawn;
  for (const auto& p : update.withdrawn) encode_nlri_prefix(withdrawn, p);
  w.u16(static_cast<std::uint16_t>(withdrawn.size()));
  w.bytes(withdrawn.data());

  ByteWriter attrs;
  if (!update.nlri.empty())
    encode_path_attributes(attrs, update.attrs, four_octet_as);
  w.u16(static_cast<std::uint16_t>(attrs.size()));
  w.bytes(attrs.data());

  for (const auto& p : update.nlri) encode_nlri_prefix(w, p);

  if (w.size() > 4096)
    throw InvalidArgument("encode_update: message exceeds 4096 bytes");
  w.patch_u16(len_off, static_cast<std::uint16_t>(w.size()));
  return w.take();
}

void decode_update_into(std::span<const std::uint8_t> data,
                        bool four_octet_as, UpdateMessage& out) {
  ByteReader r(data);
  for (int i = 0; i < 16; ++i) {
    if (r.u8() != 0xff) throw ParseError("BGP header: bad marker");
  }
  const std::uint16_t length = r.u16();
  if (length != data.size())
    throw ParseError("BGP header: length mismatch (header says " +
                     std::to_string(length) + ", buffer has " +
                     std::to_string(data.size()) + ")");
  const auto type = static_cast<MessageType>(r.u8());
  if (type != MessageType::Update)
    throw ParseError("decode_update: not an UPDATE message");

  out.withdrawn.clear();
  out.nlri.clear();
  ByteReader withdrawn = r.sub(r.u16());
  while (!withdrawn.done())
    out.withdrawn.push_back(decode_nlri_prefix(withdrawn));

  ByteReader attrs = r.sub(r.u16());
  decode_path_attributes_into(attrs, four_octet_as, out.attrs);

  while (!r.done()) out.nlri.push_back(decode_nlri_prefix(r));
  if (!out.nlri.empty() && out.attrs.as_path.empty())
    throw ParseError("UPDATE: NLRI present but no AS_PATH attribute");
}

UpdateMessage decode_update(std::span<const std::uint8_t> data,
                            bool four_octet_as) {
  UpdateMessage update;
  decode_update_into(data, four_octet_as, update);
  return update;
}

}  // namespace mlp::bgp
