// What-if study on route-server policy mechanics (beyond the paper's
// evaluation, using the same machinery): how does the inferred peering
// mesh shrink as an IXP's members move from open filters to allow-lists,
// and what does community scrubbing (the Netnod configuration of section
// 5.8) do to passive inference?
//
//   build/examples/whatif_policy
#include <cstdio>

#include "core/engine.hpp"
#include "core/passive.hpp"
#include "routeserver/route_server.hpp"
#include "util/rng.hpp"

using namespace mlp;
using routeserver::ExportPolicy;
using routeserver::IxpCommunityScheme;
using routeserver::RouteServer;
using routeserver::SchemeStyle;

namespace {

constexpr std::size_t kMembers = 60;

/// Build an IXP where `restrictive_fraction` of members use short
/// allow-lists and the rest are open; return inferred link count.
std::size_t mesh_size(double restrictive_fraction, Rng& rng) {
  auto scheme = IxpCommunityScheme::make("WHATIF-IX", 64700,
                                         SchemeStyle::RsAsnBased);
  RouteServer rs(scheme);
  std::vector<bgp::Asn> members;
  for (std::size_t i = 0; i < kMembers; ++i)
    members.push_back(static_cast<bgp::Asn>(4200 + i));
  for (const auto member : members) rs.connect(member, member);

  core::IxpContext ctx;
  ctx.name = "WHATIF-IX";
  ctx.scheme = scheme;
  ctx.rs_members = {members.begin(), members.end()};

  core::MlpInferenceEngine engine(ctx);
  for (const auto member : members) {
    ExportPolicy policy = ExportPolicy::open();
    if (rng.chance(restrictive_fraction)) {
      std::set<bgp::Asn> allowed;
      for (const auto peer : rng.sample(members, 4))
        if (peer != member) allowed.insert(peer);
      policy = ExportPolicy(ExportPolicy::Mode::NoneExcept, allowed);
    }
    bgp::Route route;
    route.prefix = bgp::IpPrefix(0x0A000000 + (member << 8), 24);
    route.attrs.as_path = bgp::AsPath({member});
    route.attrs.next_hop = member;
    route.attrs.communities = policy.to_communities(scheme);

    core::Observation obs;
    obs.setter = member;
    obs.prefix = route.prefix;
    obs.communities = route.attrs.communities;
    engine.add(obs);

    rs.announce(member, std::move(route));
  }
  return engine.infer_links().size();
}

}  // namespace

int main() {
  Rng rng(2013);
  std::printf("IXP of %zu members; possible links: %zu\n\n", kMembers,
              kMembers * (kMembers - 1) / 2);
  std::printf("%-34s %s\n", "allow-list adoption", "inferred MLP links");
  for (const double fraction : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    Rng local = rng.fork(static_cast<std::uint64_t>(fraction * 100));
    std::printf("%32.0f%%  %zu\n", fraction * 100,
                mesh_size(fraction, local));
  }

  // Community scrubbing: with a Netnod-style RS the passive pipeline sees
  // no RS communities at all (section 5.8).
  std::printf("\ncommunity scrubbing (Netnod configuration):\n");
  auto scheme = IxpCommunityScheme::make("SCRUB-IX", 64701,
                                         SchemeStyle::RsAsnBased);
  core::IxpContext ctx;
  ctx.name = "SCRUB-IX";
  ctx.scheme = scheme;
  ctx.rs_members = {101, 102, 103};
  core::PassiveExtractor extractor({ctx}, nullptr);
  // A path whose communities were scrubbed upstream carries nothing.
  extractor.consume_path(bgp::AsPath({9, 101, 102}),
                         *bgp::IpPrefix::parse("10.0.0.0/16"), {});
  std::printf("  paths with scrubbed communities attributed: %zu "
              "(method blind, as the paper notes)\n",
              extractor.stats().observations);
  return 0;
}
