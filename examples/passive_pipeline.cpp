// Passive pipeline walk-through (paper section 4.2): build the synthetic
// ecosystem, archive the collector tables as genuine MRT bytes, then run
// the full passive chain -- MRT decode, dirty-path filtering, IXP
// attribution from community values, RS-setter identification with an
// AS-relationship baseline inferred from the same public paths -- and
// report per-IXP links with precision against ground truth.
//
//   build/examples/passive_pipeline [seed]
#include <cstdio>
#include <cstdlib>

#include "core/engine.hpp"
#include "core/passive.hpp"
#include "scenario/scenario.hpp"
#include "topology/relationship_inference.hpp"

int main(int argc, char** argv) {
  using namespace mlp;

  scenario::ScenarioParams params;
  params.topology.n_ases = 1200;
  params.membership_scale = 0.2;
  if (argc > 1) params.seed = std::strtoull(argv[1], nullptr, 10);
  std::printf("building synthetic ecosystem (seed %llu)...\n",
              static_cast<unsigned long long>(params.seed));
  scenario::Scenario s(params);

  // Archive the collectors exactly as Route Views / RIS would.
  std::vector<std::vector<std::uint8_t>> archives;
  for (auto& collector : s.collectors()) {
    archives.push_back(collector.table_dump(1367366400));
    std::printf("collector %-12s: %zu prefixes, %zu bytes of MRT\n",
                collector.name().c_str(), collector.rib().prefix_count(),
                archives.back().size());
  }

  // Baseline relationships from the very same public paths ([32]-style).
  const auto rels = topology::infer_relationships(s.collector_paths());
  std::printf("baseline relationship inference: %zu links, clique of %zu\n",
              rels.link_count(), rels.clique().size());

  core::PassiveExtractor extractor(s.ixp_contexts(), rels.rel_fn());
  for (const auto& archive : archives)
    extractor.consume_table_dump(archive);

  const auto& stats = extractor.stats();
  std::printf("\npaths seen %zu | dirty %zu | no RS values %zu | ambiguous "
              "%zu | no setter %zu | observations %zu\n\n",
              stats.paths_seen, stats.paths_dirty, stats.paths_no_rs_values,
              stats.paths_ambiguous_ixp, stats.paths_no_setter,
              stats.observations);

  std::printf("%-10s %8s %8s %10s %10s\n", "IXP", "covered", "links",
              "truth", "precision");
  for (std::size_t i = 0; i < s.ixps().size(); ++i) {
    const auto& ixp = s.ixps()[i];
    core::MlpInferenceEngine engine(s.ixp_context(i));
    auto it = extractor.observations().find(ixp.spec.name);
    if (it != extractor.observations().end())
      for (const auto& observation : it->second) engine.add(observation);
    const auto links = engine.infer_links();
    std::size_t correct = 0;
    for (const auto& link : links)
      if (ixp.rs_links.count(link)) ++correct;
    std::printf("%-10s %8zu %8zu %10zu %9.1f%%\n", ixp.spec.name.c_str(),
                engine.observed_members().size(), links.size(),
                ixp.rs_links.size(),
                links.empty() ? 100.0
                              : 100.0 * static_cast<double>(correct) /
                                    static_cast<double>(links.size()));
  }
  std::printf("\n(passive coverage is partial by design -- the paper adds "
              "active LG queries, see examples/active_lg_survey)\n");
  return 0;
}
