// Passive pipeline walk-through (paper section 4.2): build the synthetic
// ecosystem, archive the collector tables as genuine MRT bytes, then run
// the parallel inference pipeline over them -- MRT decode, dirty-path
// filtering, IXP attribution from community values, RS-setter
// identification with an AS-relationship baseline inferred from the same
// public paths -- and report per-IXP links with precision against ground
// truth. One extraction task per collector archive and one inference task
// per IXP run concurrently on the pipeline's thread pool; the result is
// identical for any thread count.
//
//   build/examples/passive_pipeline [seed] [threads]
#include <cstdio>
#include <cstdlib>

#include "pipeline/pipeline.hpp"
#include "scenario/scenario.hpp"
#include "topology/relationship_inference.hpp"

int main(int argc, char** argv) {
  using namespace mlp;

  scenario::ScenarioParams params;
  params.topology.n_ases = 1200;
  params.membership_scale = 0.2;
  if (argc > 1) params.seed = std::strtoull(argv[1], nullptr, 10);

  pipeline::PipelineConfig config;
  if (argc > 2) config.threads = std::strtoull(argv[2], nullptr, 10);

  std::printf("building synthetic ecosystem (seed %llu)...\n",
              static_cast<unsigned long long>(params.seed));
  scenario::Scenario s(params);

  // Archive the collectors exactly as Route Views / RIS would.
  std::vector<std::vector<std::uint8_t>> archives;
  for (auto& collector : s.collectors()) {
    archives.push_back(collector.table_dump(1367366400));
    std::printf("collector %-12s: %zu prefixes, %zu bytes of MRT\n",
                collector.name().c_str(), collector.rib().prefix_count(),
                archives.back().size());
  }

  // Baseline relationships from the very same public paths ([32]-style).
  const auto rels = topology::infer_relationships(s.collector_paths());
  std::printf("baseline relationship inference: %zu links, clique of %zu\n",
              rels.link_count(), rels.clique().size());

  // One shard per IXP, one extraction source per archive.
  pipeline::InferencePipeline pipe(config);
  for (std::size_t i = 0; i < s.ixps().size(); ++i)
    pipe.add_ixp(s.ixp_context(i));
  pipe.set_relationships(rels.rel_fn());
  for (auto& archive : archives) pipe.add_table_dump(std::move(archive));
  const auto result = pipe.run();

  const auto& stats = result.passive;
  std::printf("\npaths seen %zu | dirty %zu | no RS values %zu | ambiguous "
              "%zu | no setter %zu | observations %zu\n\n",
              stats.paths_seen, stats.paths_dirty, stats.paths_no_rs_values,
              stats.paths_ambiguous_ixp, stats.paths_no_setter,
              stats.observations);

  std::printf("%-10s %8s %8s %10s %10s\n", "IXP", "covered", "links",
              "truth", "precision");
  for (std::size_t i = 0; i < s.ixps().size(); ++i) {
    const auto& ixp = s.ixps()[i];
    const auto& per_ixp = result.per_ixp[i];
    std::size_t correct = 0;
    for (const auto& link : per_ixp.links)
      if (ixp.rs_links.count(link)) ++correct;
    std::printf("%-10s %8zu %8zu %10zu %9.1f%%\n", ixp.spec.name.c_str(),
                per_ixp.stats.observed_members, per_ixp.links.size(),
                ixp.rs_links.size(),
                per_ixp.links.empty()
                    ? 100.0
                    : 100.0 * static_cast<double>(correct) /
                          static_cast<double>(per_ixp.links.size()));
  }
  std::printf("\n(passive coverage is partial by design -- the paper adds "
              "active LG queries, see examples/active_lg_survey)\n");
  return 0;
}
