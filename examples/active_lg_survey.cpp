// Active looking-glass survey (paper sections 4.1/4.3): run algorithm
// steps 1-3 against a simulated route-server LG, showing the raw LG text
// being exchanged and the query-cost effect of the optimisations.
//
//   build/examples/active_lg_survey [seed]
#include <cstdio>
#include <cstdlib>

#include "core/active.hpp"
#include "core/engine.hpp"
#include "lg/lg_client.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  using namespace mlp;

  scenario::ScenarioParams params;
  params.topology.n_ases = 1200;
  params.membership_scale = 0.2;
  if (argc > 1) params.seed = std::strtoull(argv[1], nullptr, 10);
  scenario::Scenario s(params);

  // The DE-CIX analogue (roster index 1) operates a route-server LG.
  constexpr std::size_t kIxp = 1;
  auto* lg = s.rs_lg(kIxp);
  if (!lg) {
    std::printf("no RS LG in this scenario\n");
    return 1;
  }
  const auto& ixp = s.ixps()[kIxp];
  std::printf("surveying %s (%zu RS members) via %s\n\n",
              ixp.spec.name.c_str(), ixp.rs_members.size(),
              lg->config().name.c_str());

  // A taste of the raw interface the scraper deals with.
  const std::string summary = lg->execute("show ip bgp summary");
  std::printf("$ show ip bgp summary   (first lines)\n");
  std::size_t shown = 0, pos = 0;
  while (shown < 5 && pos < summary.size()) {
    const std::size_t eol = summary.find('\n', pos);
    std::printf("  %s\n", summary.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++shown;
  }
  std::printf("  ...\n\n");

  // Steps 1-3 with the section 4.3 optimisations.
  const auto survey = core::run_active_survey(*lg);
  std::printf("step 1: %zu members found\n", survey.rs_members.size());
  std::printf("steps 2-3: %zu member queries + %zu prefix queries\n",
              survey.member_queries, survey.prefix_queries);
  std::printf("total cost c = %zu queries (naive: %zu, %.1fx reduction)\n",
              survey.queries, survey.naive_queries,
              static_cast<double>(survey.naive_queries) /
                  static_cast<double>(survey.queries));
  std::printf("at 1 query / 10 s: %.1f hours (paper: < 17 h for all IXPs)\n\n",
              survey.simulated_hours(10.0));

  // Steps 4-5: infer links and check against ground truth.
  core::MlpInferenceEngine engine(s.ixp_context(kIxp));
  for (const auto& observation : survey.observations)
    engine.add(observation);
  const auto links = engine.infer_links();
  std::size_t correct = 0;
  for (const auto& link : links)
    if (ixp.rs_links.count(link)) ++correct;
  std::printf("steps 4-5: %zu links inferred, %zu correct, ground truth %zu\n",
              links.size(), correct, ixp.rs_links.size());
  std::printf("precision %.1f%%, recall %.1f%%\n",
              links.empty() ? 100.0
                            : 100.0 * static_cast<double>(correct) /
                                  static_cast<double>(links.size()),
              ixp.rs_links.empty()
                  ? 100.0
                  : 100.0 * static_cast<double>(correct) /
                        static_cast<double>(ixp.rs_links.size()));
  return 0;
}
