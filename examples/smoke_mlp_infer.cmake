# ctest smoke: mlp_infer gen -> infer round trip in a scratch directory.
# Usage: cmake -DMLP_INFER=<path-to-binary> -DWORK_DIR=<dir> -P this-file
if(NOT MLP_INFER OR NOT WORK_DIR)
  message(FATAL_ERROR "MLP_INFER and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${MLP_INFER}" gen --out "${WORK_DIR}" --ases 600
  RESULT_VARIABLE gen_rc)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR "mlp_infer gen failed (rc=${gen_rc})")
endif()

file(GLOB archives "${WORK_DIR}/*.mrt")
if(NOT archives)
  message(FATAL_ERROR "mlp_infer gen produced no .mrt archives")
endif()

execute_process(
  COMMAND "${MLP_INFER}" infer --config "${WORK_DIR}/ixps.conf" --threads 4
          ${archives}
  OUTPUT_VARIABLE infer_out
  RESULT_VARIABLE infer_rc)
if(NOT infer_rc EQUAL 0)
  message(FATAL_ERROR "mlp_infer infer failed (rc=${infer_rc})")
endif()
if(NOT infer_out MATCHES "unique multilateral links: [1-9]")
  message(FATAL_ERROR "mlp_infer inferred no links:\n${infer_out}")
endif()
message(STATUS "mlp_infer smoke OK")
