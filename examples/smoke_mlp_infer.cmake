# ctest smoke: mlp_infer gen -> infer round trip in a scratch directory.
# Usage: cmake -DMLP_INFER=<path-to-binary> -DWORK_DIR=<dir> -P this-file
if(NOT MLP_INFER OR NOT WORK_DIR)
  message(FATAL_ERROR "MLP_INFER and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${MLP_INFER}" gen --out "${WORK_DIR}" --ases 600
  RESULT_VARIABLE gen_rc)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR "mlp_infer gen failed (rc=${gen_rc})")
endif()

file(GLOB archives "${WORK_DIR}/*.mrt")
if(NOT archives)
  message(FATAL_ERROR "mlp_infer gen produced no .mrt archives")
endif()

execute_process(
  COMMAND "${MLP_INFER}" infer --config "${WORK_DIR}/ixps.conf" --threads 4
          ${archives}
  OUTPUT_VARIABLE infer_out
  RESULT_VARIABLE infer_rc)
if(NOT infer_rc EQUAL 0)
  message(FATAL_ERROR "mlp_infer infer failed (rc=${infer_rc})")
endif()
if(NOT infer_out MATCHES "unique multilateral links: [1-9]")
  message(FATAL_ERROR "mlp_infer inferred no links:\n${infer_out}")
endif()

# Live path: regenerate with update archives, pipe one feed in two chunks
# through `follow`, and demand the same final link count as archive-mode
# `infer --updates --no-rels` (chunking independence, end to end).
if(UNIX)
  execute_process(
    COMMAND "${MLP_INFER}" gen --out "${WORK_DIR}" --ases 600 --updates
    RESULT_VARIABLE gen_rc OUTPUT_QUIET)
  if(NOT gen_rc EQUAL 0)
    message(FATAL_ERROR "mlp_infer gen --updates failed (rc=${gen_rc})")
  endif()
  file(GLOB update_archives "${WORK_DIR}/*-updates.mrt")
  if(NOT update_archives)
    message(FATAL_ERROR "mlp_infer gen produced no update archives")
  endif()
  list(GET update_archives 0 feed)
  execute_process(
    COMMAND sh -c "size=$(wc -c < '${feed}'); half=$((size / 2)); \
{ head -c $half '${feed}'; tail -c +$((half + 1)) '${feed}'; } | \
'${MLP_INFER}' follow --config '${WORK_DIR}/ixps.conf' \
--min-duration 600 --snapshot-every 2000 --threads 2"
    OUTPUT_VARIABLE follow_out
    RESULT_VARIABLE follow_rc)
  if(NOT follow_rc EQUAL 0)
    message(FATAL_ERROR "mlp_infer follow failed (rc=${follow_rc})")
  endif()
  execute_process(
    COMMAND "${MLP_INFER}" infer --config "${WORK_DIR}/ixps.conf"
            --updates --no-rels --min-duration 600 --threads 2 "${feed}"
    OUTPUT_VARIABLE updates_out
    RESULT_VARIABLE updates_rc)
  if(NOT updates_rc EQUAL 0)
    message(FATAL_ERROR "mlp_infer infer --updates failed (rc=${updates_rc})")
  endif()
  if(NOT follow_out MATCHES "snapshot: [0-9]+ bytes")
    message(FATAL_ERROR "mlp_infer follow emitted no snapshot lines:\n"
                        "${follow_out}")
  endif()
  string(REGEX MATCH "unique multilateral links: [0-9]+" follow_links
         "${follow_out}")
  string(REGEX MATCH "unique multilateral links: [0-9]+" updates_links
         "${updates_out}")
  if(NOT follow_links OR NOT follow_links STREQUAL updates_links)
    message(FATAL_ERROR
      "follow/infer link counts diverge: '${follow_links}' vs "
      "'${updates_links}'")
  endif()
  message(STATUS "mlp_infer follow smoke OK (${follow_links})")
endif()

message(STATUS "mlp_infer smoke OK")
