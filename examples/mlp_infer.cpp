// mlp_infer: end-to-end multilateral-peering inference from MRT archives.
//
// Two subcommands:
//
//   mlp_infer gen --out DIR [--seed S] [--ases N] [--updates]
//     Build the synthetic ecosystem and write its collector RIB snapshots
//     (TABLE_DUMP_V2, one .mrt file per collector) plus the matching
//     IXP-scheme configuration (ixps.conf) into DIR -- the same artefact
//     set a real measurement study starts from. With --updates, each
//     collector table is additionally replayed as a BGP4MP update stream
//     (<collector>-updates.mrt), the live-feed artefact.
//
//   mlp_infer infer --config FILE [--threads N] [--batch N]
//                   [--min-duration S] [--assume-open] [--no-rels]
//                   [--updates] ARCHIVE.mrt...
//     Run the parallel inference pipeline over the archives: one
//     streaming extraction task per archive, one inference shard per
//     configured IXP. AS relationships (setter case 3) are inferred from
//     the input paths themselves unless --no-rels is given. With
//     --updates the archives are BGP4MP update streams ingested through
//     the transient-filtering announce-window (pair with --min-duration).
//
// Typical round trips:
//   mlp_infer gen --out /tmp/mlp
//   mlp_infer infer --config /tmp/mlp/ixps.conf --threads 4 /tmp/mlp/*.mrt
//
//   mlp_infer gen --out /tmp/mlp --updates
//   mlp_infer infer --config /tmp/mlp/ixps.conf --updates
//       --min-duration 600 /tmp/mlp/*-updates.mrt   (one line)
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mrt/cursor.hpp"
#include "mrt/table_dump.hpp"
#include "pipeline/ixp_config.hpp"
#include "pipeline/pipeline.hpp"
#include "scenario/scenario.hpp"
#include "topology/relationship_inference.hpp"
#include "util/errors.hpp"

namespace {

using namespace mlp;

int usage() {
  std::fprintf(
      stderr,
      "usage: mlp_infer gen --out DIR [--seed S] [--ases N] [--updates]\n"
      "       mlp_infer infer --config FILE [--threads N] [--batch N]\n"
      "                       [--min-duration S] [--assume-open] [--no-rels]\n"
      "                       [--updates] ARCHIVE.mrt...\n");
  return 2;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InvalidArgument("cannot open " + path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const void* data,
                std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw InvalidArgument("cannot write " + path);
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

int run_gen(int argc, char** argv) {
  std::string out_dir;
  bool write_updates = false;
  scenario::ScenarioParams params;
  params.topology.n_ases = 1200;
  params.membership_scale = 0.2;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      params.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--ases" && i + 1 < argc) {
      params.topology.n_ases = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--updates") {
      write_updates = true;
    } else {
      return usage();
    }
  }
  if (out_dir.empty()) return usage();
  std::filesystem::create_directories(out_dir);

  std::printf("building synthetic ecosystem (seed %llu, %zu ASes)...\n",
              static_cast<unsigned long long>(params.seed),
              params.topology.n_ases);
  scenario::Scenario s(params);

  const auto config_text = pipeline::serialize_ixp_configs(s.ixp_contexts());
  write_file(out_dir + "/ixps.conf", config_text.data(), config_text.size());
  std::printf("wrote %s/ixps.conf (%zu IXPs)\n", out_dir.c_str(),
              s.ixps().size());

  for (auto& collector : s.collectors()) {
    const auto archive = collector.table_dump(1367366400);
    const std::string path = out_dir + "/" + collector.name() + ".mrt";
    write_file(path, archive.data(), archive.size());
    std::printf("wrote %s (%zu prefixes, %zu bytes)\n", path.c_str(),
                collector.rib().prefix_count(), archive.size());
    if (write_updates) {
      const auto updates = collector.update_dump(1367366400);
      const std::string update_path =
          out_dir + "/" + collector.name() + "-updates.mrt";
      write_file(update_path, updates.data(), updates.size());
      std::printf("wrote %s (%zu bytes, BGP4MP)\n", update_path.c_str(),
                  updates.size());
    }
  }
  return 0;
}

int run_infer(int argc, char** argv) {
  std::string config_path;
  std::vector<std::string> archives;
  pipeline::PipelineConfig config;
  // The CLI reports stats and links only; the engines would be dead
  // weight in the result.
  config.keep_engines = false;
  bool infer_rels = true;
  bool updates_mode = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      config.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--batch" && i + 1 < argc) {
      config.batch_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--min-duration" && i + 1 < argc) {
      config.passive.min_duration_s =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--assume-open") {
      config.assume_open_for_unobserved = true;
    } else if (arg == "--no-rels") {
      infer_rels = false;
    } else if (arg == "--updates") {
      updates_mode = true;
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else {
      archives.push_back(arg);
    }
  }
  if (config_path.empty() || archives.empty()) return usage();

  const auto config_bytes = read_file(config_path);
  const auto contexts = pipeline::parse_ixp_configs(
      std::string(config_bytes.begin(), config_bytes.end()));
  std::printf("%zu IXPs configured from %s\n", contexts.size(),
              config_path.c_str());

  pipeline::InferencePipeline pipe(config);
  for (const auto& context : contexts) pipe.add_ixp(context);

  std::vector<std::vector<std::uint8_t>> raw;
  raw.reserve(archives.size());
  for (const auto& path : archives) raw.push_back(read_file(path));

  // Relationship baseline for setter case 3, inferred from the very same
  // public paths (the paper uses CAIDA's inferred relationships). Decoding
  // for the baseline already yields every path, so the decoded routes are
  // fed to the pipeline directly instead of paying a second MRT decode;
  // with --no-rels the raw archives go in and decode inside the parallel
  // extraction tasks.
  //
  // `rels` must outlive pipe.run(): rel_fn() captures a pointer to it.
  topology::InferredRelationships rels;
  if (updates_mode) {
    // BGP4MP streams feed the pipeline as raw bytes so the parallel
    // extraction tasks apply the transient-filtering announce-window.
    // For the relationship baseline, a streaming cursor walk collects
    // just the AS paths -- no whole-archive materialization.
    std::vector<bgp::AsPath> paths;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      std::printf("update archive %s: %zu bytes\n", archives[i].c_str(),
                  raw[i].size());
      if (infer_rels) {
        mrt::MrtCursor cursor(raw[i], mrt::MrtCursor::Skip::TableDumpV2);
        for (;;) {
          const auto event = cursor.next();
          if (event == mrt::MrtCursor::Event::End) break;
          if (event != mrt::MrtCursor::Event::Update) continue;
          if (!cursor.update().update->nlri.empty())
            paths.push_back(cursor.update().update->attrs.as_path);
        }
      }
      pipe.add_update_stream(std::move(raw[i]));
    }
    if (infer_rels) {
      rels = topology::infer_relationships(paths);
      std::printf("relationship baseline: %zu links\n", rels.link_count());
      pipe.set_relationships(rels.rel_fn());
    }
  } else if (infer_rels) {
    std::vector<bgp::AsPath> paths;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      std::printf("archive %s: %zu bytes\n", archives[i].c_str(),
                  raw[i].size());
      const auto rib = mrt::parse_rib(raw[i]);
      // The raw bytes are not consumed again in this branch: release them
      // so only the decoded form stays resident.
      std::vector<std::uint8_t>().swap(raw[i]);
      std::vector<pipeline::RawPath> decoded;
      for (const auto& prefix : rib.prefixes()) {
        for (const auto& entry : rib.paths(prefix)) {
          paths.push_back(entry.route.attrs.as_path);
          decoded.push_back(pipeline::RawPath{
              entry.route.attrs.as_path, prefix,
              entry.route.attrs.communities, core::Source::Passive});
        }
      }
      pipe.add_paths(std::move(decoded));
    }
    rels = topology::infer_relationships(paths);
    std::printf("relationship baseline: %zu links\n", rels.link_count());
    pipe.set_relationships(rels.rel_fn());
  } else {
    for (std::size_t i = 0; i < raw.size(); ++i) {
      std::printf("archive %s: %zu bytes\n", archives[i].c_str(),
                  raw[i].size());
      pipe.add_table_dump(std::move(raw[i]));
    }
  }

  const auto result = pipe.run();

  const auto& stats = result.passive;
  std::printf("\npaths seen %zu | dirty %zu | no RS values %zu | ambiguous "
              "%zu | no setter %zu | observations %zu\n\n",
              stats.paths_seen, stats.paths_dirty, stats.paths_no_rs_values,
              stats.paths_ambiguous_ixp, stats.paths_no_setter,
              stats.observations);

  std::printf("%-10s %8s %8s %8s\n", "IXP", "members", "covered", "links");
  for (const auto& per_ixp : result.per_ixp)
    std::printf("%-10s %8zu %8zu %8zu\n", per_ixp.name.c_str(),
                per_ixp.stats.rs_members, per_ixp.stats.observed_members,
                per_ixp.links.size());
  std::printf("\nunique multilateral links: %zu\n", result.all_links.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "gen") == 0)
      return run_gen(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "infer") == 0)
      return run_infer(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mlp_infer: %s\n", e.what());
    return 1;
  }
  return usage();
}
