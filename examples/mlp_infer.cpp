// mlp_infer: end-to-end multilateral-peering inference from MRT archives.
//
// Three subcommands:
//
//   mlp_infer gen --out DIR [--seed S] [--ases N] [--updates]
//     Build the synthetic ecosystem and write its collector RIB snapshots
//     (TABLE_DUMP_V2, one .mrt file per collector) plus the matching
//     IXP-scheme configuration (ixps.conf) into DIR -- the same artefact
//     set a real measurement study starts from. With --updates, each
//     collector table is additionally replayed as a BGP4MP update stream
//     (<collector>-updates.mrt), the live-feed artefact.
//
//   mlp_infer infer --config FILE [--threads N] [--batch N]
//                   [--min-duration S] [--assume-open] [--no-rels]
//                   [--updates] ARCHIVE.mrt...
//     Run the parallel inference pipeline over the archives: one
//     streaming extraction task per archive, one inference shard per
//     configured IXP. AS relationships (setter case 3) are inferred from
//     the input paths themselves unless --no-rels is given. With
//     --updates the archives are BGP4MP update streams ingested through
//     the transient-filtering announce-window (pair with --min-duration).
//
//   mlp_infer follow --config FILE [--threads N] [--batch N]
//                    [--min-duration S] [--assume-open] [--tolerant]
//                    [--snapshot-every N] [--bmp] [--retry N]
//                    [--feed SPEC]... [--listen PORT] [FILE]
//     Live mode: frame one or more update feeds incrementally and drive
//     the inference engines message-by-message, printing a cheap
//     link-count snapshot every N records and the full summary at end of
//     stream. --feed is repeatable; each SPEC is one concurrent feed:
//       -                   stdin
//       PATH                a file replayed as a byte stream
//       listen:PORT         accept one TCP connection on 127.0.0.1:PORT
//       connect:HOST:PORT   dial out to a collector (IPv4)
//     Multiple feeds merge deterministically. --merge picks the policy:
//     watermark (default) interleaves observations by timestamp across
//     feeds, gated by the minimum per-feed watermark (--grace MS parks a
//     stalled feed's watermark after MS ms of silence so one idle feed
//     cannot hold the frontier); concat drains feeds in --feed order,
//     reproducing archive-mode `infer --updates` over the per-feed
//     archives. --bmp treats every feed as a BMP (RFC 7854) session and
//     unwraps Route Monitoring messages. --retry N survives collector
//     restarts on socket feeds: redial with bounded exponential backoff,
//     up to N consecutive failures, resuming at a record boundary.
//     --tolerant skips malformed records (counted) instead of aborting.
//     --checkpoint PATH makes the session durable: a crash-safe snapshot
//     of the full session (engines, announce-windows, watermarks, queue
//     contents, per-feed byte offsets) is written atomically every
//     --checkpoint-every N records (0: only at shutdown) and once more at
//     end of stream or on SIGINT/SIGTERM. --resume loads the newest valid
//     generation of PATH, seeks every re-dialed feed to its acknowledged
//     offset and continues exactly-once: the final link sets match an
//     uninterrupted run byte for byte. SIGINT/SIGTERM end the run
//     gracefully (final checkpoint + the normal summary).
//     Every feed is health-supervised (Healthy/Degraded/Quarantined/
//     Dead): a feed past its malformed-rate, dirty-disconnect, reconnect
//     or stall budget stops gating the cross-feed merge and the healthy
//     feeds keep going; transitions print to stderr. --stall-timeout,
//     --malformed-window, --dirty-budget and --probation tune the
//     budgets; --no-supervision turns the judgements off. --chaos SEED
//     wraps every feed in a seeded fault injector (corrupt bytes,
//     garbage, drops, stalls -- same seed, same failure sequence) to
//     soak-test that machinery.
//     `infer --follow` is an alias.
//
//   mlp_infer query --config FILE --query-port P [follow options...]
//     Follow mode plus a line-protocol query server (see
//     pipeline/query_server.hpp): while the feeds ingest, clients on
//     127.0.0.1:P ask `stats <ixp>`, `link <ixp> <a> <b>`,
//     `links <ixp> <asn>`, ... and every answer comes from the latest
//     published epoch -- one atomic load, never an ingest lock, so
//     queries cost the feeds nothing. After end of stream the process
//     lingers (final epochs stay queryable) until SIGINT/SIGTERM, then
//     prints the usual summary. `--query-port 0` picks an ephemeral
//     port (printed to stderr). Plain `follow --query-port P` serves
//     queries during ingest but exits at end of stream as usual.
//
//   mlp_infer serve --port P [--bmp] [--chunk N] [--accepts K] FILE
//     Replay an update archive over TCP: listen on 127.0.0.1:P, accept K
//     connections in turn and stream the file to each (wrapped as a BMP
//     session with --bmp). The test/demo peer for `follow` socket feeds.
//     --chaos SEED[:PLAN] serves each connection through a seeded fault
//     injector; a drop fault really severs the TCP connection and
//     re-accepts, so a `follow --retry` client rehearses real collector
//     flaps end to end.
//
// Typical round trips:
//   mlp_infer gen --out /tmp/mlp
//   mlp_infer infer --config /tmp/mlp/ixps.conf --threads 4 /tmp/mlp/*.mrt
//
//   mlp_infer gen --out /tmp/mlp --updates
//   mlp_infer infer --config /tmp/mlp/ixps.conf --updates
//       --min-duration 600 /tmp/mlp/*-updates.mrt   (one line)
//
//   cat /tmp/mlp/*-updates.mrt | mlp_infer follow
//       --config /tmp/mlp/ixps.conf --min-duration 600   (one line)
//
//   mlp_infer serve --port 11019 /tmp/mlp/rrc00-updates.mrt &
//   mlp_infer serve --port 11020 /tmp/mlp/rrc01-updates.mrt &
//   mlp_infer follow --config /tmp/mlp/ixps.conf --retry 20
//       --feed connect:127.0.0.1:11019
//       --feed connect:127.0.0.1:11020   (one line)
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <pthread.h>
#include <signal.h>
#endif

#include "mrt/cursor.hpp"
#include "mrt/table_dump.hpp"
#include "pipeline/checkpoint.hpp"
#include "pipeline/ixp_config.hpp"
#include "pipeline/live_session.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/query_server.hpp"
#include "scenario/scenario.hpp"
#include "stream/bmp_framer.hpp"
#include "stream/fault.hpp"
#include "stream/reconnect.hpp"
#include "stream/source.hpp"
#include "topology/relationship_inference.hpp"
#include "util/errors.hpp"
#include "util/strings.hpp"

namespace {

using namespace mlp;

/// Graceful-shutdown flag, set by SIGINT/SIGTERM. The handlers are
/// installed WITHOUT SA_RESTART so blocked reads and accepts wake with
/// EINTR; the stream layer (stream::set_interrupt_flag) then turns the
/// EINTR into a normal end of stream, every reader unwinds, and follow
/// writes its final checkpoint and summary instead of dying mid-write.
std::atomic<bool> g_stop{false};

#ifndef _WIN32
void handle_stop_signal(int) { g_stop.store(true); }

void install_stop_handlers() {
  stream::set_interrupt_flag(&g_stop);
  struct sigaction action{};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocked syscalls must EINTR
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

void ignore_sigpipe() {
  struct sigaction action{};
  action.sa_handler = SIG_IGN;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGPIPE, &action, nullptr);
}
#else
void install_stop_handlers() {}
void ignore_sigpipe() {}
#endif

/// Resume support: discard the first `skip` bytes of a re-dialed
/// transport (the checkpoint already acknowledges them), then pass
/// through. Wraps the reconnect layer, so serve-style peers that replay
/// from byte zero on every accept line up with the checkpoint offset.
class SkipSource final : public stream::StreamSource {
 public:
  SkipSource(std::unique_ptr<stream::StreamSource> inner, std::uint64_t skip)
      : inner_(std::move(inner)), remaining_(skip) {}

  std::size_t read(std::span<std::uint8_t> out) override {
    std::vector<std::uint8_t> scratch;
    while (remaining_ > 0) {
      scratch.resize(static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining_, 65536)));
      const std::size_t n = inner_->read(scratch);
      if (n == 0) return 0;  // stream ended inside the skipped prefix
      remaining_ -= n;
    }
    return inner_->read(out);
  }

 private:
  std::unique_ptr<stream::StreamSource> inner_;
  std::uint64_t remaining_;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: mlp_infer gen --out DIR [--seed S] [--ases N] [--updates]\n"
      "       mlp_infer infer --config FILE [--threads N] [--batch N]\n"
      "                       [--min-duration S] [--assume-open] [--no-rels]\n"
      "                       [--updates] ARCHIVE.mrt...\n"
      "       mlp_infer follow --config FILE [--threads N] [--batch N]\n"
      "                        [--min-duration S] [--assume-open]\n"
      "                        [--tolerant] [--window N] [--bmp]\n"
      "                        [--merge watermark|concat] [--grace MS]\n"
      "                        [--retry N] [--snapshot-every N]\n"
      "                        [--chaos SEED[:PLAN]] [--no-supervision]\n"
      "                        [--stall-timeout MS] [--malformed-window N]\n"
      "                        [--dirty-budget N] [--probation N]\n"
      "                        [--checkpoint PATH [--checkpoint-every N]\n"
      "                         [--resume]]\n"
      "                        [--feed SPEC]... [--listen PORT]\n"
      "                        [--query-port P]\n"
      "                        [FILE]   (default: one stdin feed)\n"
      "         SPEC: '-' | PATH | listen:PORT | connect:HOST:PORT\n"
      "         PLAN: corrupt@OFF[xMASK] | garbage@OFF[xN] | drop@OFF[xN]\n"
      "               | stall@OFF[xMS] | trunc@OFF | shatter (','-joined)\n"
      "       mlp_infer query --config FILE --query-port P\n"
      "                       [follow options...]   (lingers after EOF)\n"
      "       mlp_infer serve --port P [--bmp] [--chunk N] [--accepts K]\n"
      "                       [--chaos SEED[:PLAN]] UPDATES.mrt\n");
  return 2;
}

/// Shared tail of `infer` and `follow`: the merged passive stats, the
/// per-IXP table and the global link count, in one format so the two
/// modes can be diffed against each other.
void print_summary(const core::PassiveStats& stats,
                   const std::vector<pipeline::IxpResult>& per_ixp,
                   std::size_t all_links) {
  std::printf("\npaths seen %zu | dirty %zu | no RS values %zu | ambiguous "
              "%zu | no setter %zu | observations %zu\n\n",
              stats.paths_seen, stats.paths_dirty, stats.paths_no_rs_values,
              stats.paths_ambiguous_ixp, stats.paths_no_setter,
              stats.observations);
  std::printf("%-10s %8s %8s %8s\n", "IXP", "members", "covered", "links");
  for (const auto& ixp : per_ixp)
    std::printf("%-10s %8zu %8zu %8zu\n", ixp.name.c_str(),
                ixp.stats.rs_members, ixp.stats.observed_members,
                ixp.links.size());
  std::printf("\nunique multilateral links: %zu\n", all_links);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InvalidArgument("cannot open " + path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const void* data,
                std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw InvalidArgument("cannot write " + path);
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

int run_gen(int argc, char** argv) {
  std::string out_dir;
  bool write_updates = false;
  scenario::ScenarioParams params;
  params.topology.n_ases = 1200;
  params.membership_scale = 0.2;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      params.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--ases" && i + 1 < argc) {
      params.topology.n_ases = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--updates") {
      write_updates = true;
    } else {
      return usage();
    }
  }
  if (out_dir.empty()) return usage();
  std::filesystem::create_directories(out_dir);

  std::printf("building synthetic ecosystem (seed %llu, %zu ASes)...\n",
              static_cast<unsigned long long>(params.seed),
              params.topology.n_ases);
  scenario::Scenario s(params);

  const auto config_text = pipeline::serialize_ixp_configs(s.ixp_contexts());
  write_file(out_dir + "/ixps.conf", config_text.data(), config_text.size());
  std::printf("wrote %s/ixps.conf (%zu IXPs)\n", out_dir.c_str(),
              s.ixps().size());

  for (auto& collector : s.collectors()) {
    const auto archive = collector.table_dump(1367366400);
    const std::string path = out_dir + "/" + collector.name() + ".mrt";
    write_file(path, archive.data(), archive.size());
    std::printf("wrote %s (%zu prefixes, %zu bytes)\n", path.c_str(),
                collector.rib().prefix_count(), archive.size());
    if (write_updates) {
      const auto updates = collector.update_dump(1367366400);
      const std::string update_path =
          out_dir + "/" + collector.name() + "-updates.mrt";
      write_file(update_path, updates.data(), updates.size());
      std::printf("wrote %s (%zu bytes, BGP4MP)\n", update_path.c_str(),
                  updates.size());
    }
  }
  return 0;
}

int run_follow(int argc, char** argv, bool query_mode = false);

int run_infer(int argc, char** argv) {
  // `infer --follow` is an alias for the follow subcommand (the flag
  // itself is tolerated and ignored by run_follow's parser).
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], "--follow") == 0) return run_follow(argc, argv);
  std::string config_path;
  std::vector<std::string> archives;
  pipeline::PipelineConfig config;
  // The CLI reports stats and links only; the engines would be dead
  // weight in the result.
  config.keep_engines = false;
  bool infer_rels = true;
  bool updates_mode = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      config.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--batch" && i + 1 < argc) {
      config.batch_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--min-duration" && i + 1 < argc) {
      config.passive.min_duration_s =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--assume-open") {
      config.assume_open_for_unobserved = true;
    } else if (arg == "--no-rels") {
      infer_rels = false;
    } else if (arg == "--updates") {
      updates_mode = true;
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else {
      archives.push_back(arg);
    }
  }
  if (config_path.empty() || archives.empty()) return usage();

  const auto config_bytes = read_file(config_path);
  const auto contexts = pipeline::parse_ixp_configs(
      std::string(config_bytes.begin(), config_bytes.end()));
  std::printf("%zu IXPs configured from %s\n", contexts.size(),
              config_path.c_str());

  pipeline::InferencePipeline pipe(config);
  for (const auto& context : contexts) pipe.add_ixp(context);

  std::vector<std::vector<std::uint8_t>> raw;
  raw.reserve(archives.size());
  for (const auto& path : archives) raw.push_back(read_file(path));

  // Relationship baseline for setter case 3, inferred from the very same
  // public paths (the paper uses CAIDA's inferred relationships). Decoding
  // for the baseline already yields every path, so the decoded routes are
  // fed to the pipeline directly instead of paying a second MRT decode;
  // with --no-rels the raw archives go in and decode inside the parallel
  // extraction tasks.
  //
  // `rels` must outlive pipe.run(): rel_fn() captures a pointer to it.
  topology::InferredRelationships rels;
  if (updates_mode) {
    // BGP4MP streams feed the pipeline as raw bytes so the parallel
    // extraction tasks apply the transient-filtering announce-window.
    // For the relationship baseline, a streaming cursor walk collects
    // just the AS paths -- no whole-archive materialization.
    std::vector<bgp::AsPath> paths;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      std::printf("update archive %s: %zu bytes\n", archives[i].c_str(),
                  raw[i].size());
      if (infer_rels) {
        mrt::MrtCursor cursor(raw[i], mrt::MrtCursor::Skip::TableDumpV2);
        for (;;) {
          const auto event = cursor.next();
          if (event == mrt::MrtCursor::Event::End) break;
          if (event != mrt::MrtCursor::Event::Update) continue;
          if (!cursor.update().update->nlri.empty())
            paths.push_back(cursor.update().update->attrs.as_path);
        }
      }
      pipe.add_update_stream(std::move(raw[i]));
    }
    if (infer_rels) {
      rels = topology::infer_relationships(paths);
      std::printf("relationship baseline: %zu links\n", rels.link_count());
      pipe.set_relationships(rels.rel_fn());
    }
  } else if (infer_rels) {
    std::vector<bgp::AsPath> paths;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      std::printf("archive %s: %zu bytes\n", archives[i].c_str(),
                  raw[i].size());
      const auto rib = mrt::parse_rib(raw[i]);
      // The raw bytes are not consumed again in this branch: release them
      // so only the decoded form stays resident.
      std::vector<std::uint8_t>().swap(raw[i]);
      std::vector<pipeline::RawPath> decoded;
      for (const auto& prefix : rib.prefixes()) {
        for (const auto& entry : rib.paths(prefix)) {
          paths.push_back(entry.route.attrs.as_path);
          decoded.push_back(pipeline::RawPath{
              entry.route.attrs.as_path, prefix,
              entry.route.attrs.communities, core::Source::Passive});
        }
      }
      pipe.add_paths(std::move(decoded));
    }
    rels = topology::infer_relationships(paths);
    std::printf("relationship baseline: %zu links\n", rels.link_count());
    pipe.set_relationships(rels.rel_fn());
  } else {
    for (std::size_t i = 0; i < raw.size(); ++i) {
      std::printf("archive %s: %zu bytes\n", archives[i].c_str(),
                  raw[i].size());
      pipe.add_table_dump(std::move(raw[i]));
    }
  }

  const auto result = pipe.run();
  print_summary(result.passive, result.per_ixp, result.all_links.size());
  return 0;
}

/// One `--feed SPEC` (or legacy FILE / --listen) operand.
struct FeedSpec {
  enum class Kind { Stdin, File, Listen, Connect };
  Kind kind = Kind::Stdin;
  std::string raw;   // verbatim spec, used as the feed label
  std::string path;  // File
  std::string host;  // Connect
  std::uint16_t port = 0;  // Listen / Connect
};

bool parse_feed_spec(const std::string& raw, FeedSpec& out) {
  out.raw = raw;
  if (raw.empty() || raw == "-") {
    out.kind = FeedSpec::Kind::Stdin;
    return true;
  }
  if (raw.rfind("listen:", 0) == 0) {
    const auto port = parse_u32(raw.substr(7));
    if (!port || *port == 0 || *port > 65535) return false;
    out.kind = FeedSpec::Kind::Listen;
    out.port = static_cast<std::uint16_t>(*port);
    return true;
  }
  const bool connect = raw.rfind("connect:", 0) == 0;
  if (connect || raw.rfind("tcp:", 0) == 0) {
    const std::string rest = raw.substr(connect ? 8 : 4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos) return false;
    const auto port = parse_u32(rest.substr(colon + 1));
    if (!port || *port == 0 || *port > 65535) return false;
    out.kind = FeedSpec::Kind::Connect;
    out.host = rest.substr(0, colon);
    out.port = static_cast<std::uint16_t>(*port);
    return !out.host.empty();
  }
  out.kind = FeedSpec::Kind::File;
  out.path = raw;
  return true;
}

/// Build the transport for one feed. With `retry` > 0, socket feeds are
/// wrapped in a ReconnectingSource (bounded exponential backoff) whose
/// on_reconnect resets the feed's framing state through `handle`.
std::unique_ptr<stream::StreamSource> open_feed_source(
    const FeedSpec& spec, std::size_t retry, pipeline::FeedHandle handle) {
  switch (spec.kind) {
    case FeedSpec::Kind::Stdin:
      return std::make_unique<stream::FdSource>(0, /*owned=*/false);
    case FeedSpec::Kind::File:
      return std::make_unique<stream::MemorySource>(read_file(spec.path));
    case FeedSpec::Kind::Listen:
    case FeedSpec::Kind::Connect: {
      auto dial = [spec]() -> std::unique_ptr<stream::StreamSource> {
        if (spec.kind == FeedSpec::Kind::Listen) {
          std::fprintf(stderr, "%s: listening on 127.0.0.1:%u...\n",
                       spec.raw.c_str(), spec.port);
          return std::make_unique<stream::FdSource>(
              stream::tcp_listen_accept(spec.port));
        }
        return std::make_unique<stream::FdSource>(
            stream::tcp_connect(spec.host, spec.port));
      };
      if (retry == 0) return dial();
      stream::ReconnectPolicy policy;
      policy.max_attempts = retry;
      auto source = std::make_unique<stream::ReconnectingSource>(
          std::move(dial), policy);
      source->set_on_reconnect([handle]() mutable {
        pipeline::FeedHandle h = handle;
        h.note_disconnect();
      });
      return source;
    }
  }
  return nullptr;  // unreachable
}

/// An exhausted dial budget ends the stream quietly at the source level;
/// surface it so "collector gone" is distinguishable from "feed done".
/// Returns true when the budget was in fact exhausted (the caller then
/// fails the feed so it stops gating the merge frontier).
bool warn_if_exhausted(const std::string& name,
                       const stream::ReconnectingSource* reconnecting) {
  if (reconnecting == nullptr || !reconnecting->exhausted()) return false;
  std::fprintf(stderr, "%s: dial budget exhausted after %llu attempts%s%s\n",
               name.c_str(),
               static_cast<unsigned long long>(reconnecting->dial_attempts()),
               reconnecting->last_error().empty() ? "" : ": ",
               reconnecting->last_error().c_str());
  return true;
}

/// --chaos in follow mode: size hint for materializing a bare-seed
/// random plan (fault offsets land inside the stream when its length is
/// knowable, and inside the first MiB of an open-ended socket feed).
std::uint64_t chaos_stream_hint(const FeedSpec& spec) {
  if (spec.kind == FeedSpec::Kind::File) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(spec.path, ec);
    if (!ec) return size;
  }
  return 1u << 20;
}

/// Wrap one follow-mode feed in its fault injector. A bare-seed plan is
/// materialized per feed (seed + index: each feed fails differently but
/// reproducibly); an explicit plan applies to every feed verbatim. A
/// drop fault notifies the feed's framing layer exactly like a real
/// transport reconnect.
std::unique_ptr<stream::StreamSource> wrap_chaos(
    std::unique_ptr<stream::StreamSource> source,
    const stream::FaultPlan& plan, std::size_t feed_index,
    std::uint64_t stream_hint, pipeline::FeedHandle handle) {
  stream::FaultPlan feed_plan = plan;
  if (plan.empty())
    feed_plan = stream::FaultPlan::random(plan.seed + feed_index, stream_hint);
  std::fprintf(stderr, "feed %zu: chaos plan %s\n", feed_index,
               feed_plan.to_string().c_str());
  auto injected = std::make_unique<stream::FaultInjectingSource>(
      std::move(source), std::move(feed_plan));
  injected->set_on_fault([handle](const stream::Fault& fault) mutable {
    if (fault.kind != stream::Fault::Kind::Disconnect) return;
    pipeline::FeedHandle h = handle;
    h.note_disconnect();
  });
  return injected;
}

void print_live_snapshot(const pipeline::LiveSnapshot& snap,
                         const std::vector<std::string>& names) {
  std::size_t links = 0;
  for (const std::size_t count : snap.links_per_ixp) links += count;
  std::printf("snapshot: %llu bytes, %llu records (%zu malformed, "
              "%zu skipped), %zu observations (%zu queued), watermark %lu, "
              "links/IXP",
              static_cast<unsigned long long>(snap.bytes_fed),
              static_cast<unsigned long long>(snap.records),
              snap.passive.records_malformed, snap.records_skipped,
              snap.passive.observations, snap.queue_depth,
              static_cast<unsigned long>(snap.min_watermark));
  for (std::size_t i = 0; i < snap.links_per_ixp.size(); ++i)
    std::printf(" %s=%zu", names[i].c_str(), snap.links_per_ixp[i]);
  std::printf(" (sum %zu)\n", links);
  std::fflush(stdout);
}

int run_follow(int argc, char** argv, bool query_mode) {
  std::string config_path;
  std::vector<FeedSpec> specs;
  pipeline::LiveConfig config;
  std::uint64_t snapshot_every = 0;
  std::size_t retry = 0;
  bool bmp = false;
  bool saw_positional = false;
  std::optional<std::uint16_t> query_port;
  std::optional<stream::FaultPlan> chaos;
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;  // 0: only at end of stream/signal
  bool resume = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      config.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--batch" && i + 1 < argc) {
      config.batch_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--min-duration" && i + 1 < argc) {
      config.passive.min_duration_s =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--assume-open") {
      config.assume_open_for_unobserved = true;
    } else if (arg == "--tolerant") {
      config.passive.tolerate_malformed = true;
    } else if (arg == "--window" && i + 1 < argc) {
      // Cap the announce-window: stable announcements then surface
      // continuously through FIFO eviction instead of only at end of
      // stream, so mid-stream snapshots track the live link set.
      config.passive.max_pending_announcements =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--snapshot-every" && i + 1 < argc) {
      snapshot_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--feed" && i + 1 < argc) {
      FeedSpec spec;
      if (!parse_feed_spec(argv[++i], spec)) return usage();
      specs.push_back(std::move(spec));
    } else if (arg == "--listen" && i + 1 < argc) {
      // Legacy sugar for --feed listen:PORT.
      FeedSpec spec;
      if (!parse_feed_spec("listen:" + std::string(argv[++i]), spec))
        return usage();
      specs.push_back(std::move(spec));
    } else if (arg == "--bmp") {
      bmp = true;
    } else if (arg == "--merge" && i + 1 < argc) {
      const std::string policy = argv[++i];
      if (policy == "watermark") {
        config.merge = pipeline::MergePolicy::Watermark;
      } else if (policy == "concat") {
        config.merge = pipeline::MergePolicy::Concatenate;
      } else {
        return usage();
      }
    } else if (arg == "--grace" && i + 1 < argc) {
      config.idle_feed_grace_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--retry" && i + 1 < argc) {
      retry = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--chaos" && i + 1 < argc) {
      chaos = stream::FaultPlan::parse(argv[++i]);
    } else if (arg == "--no-supervision") {
      config.supervision.enabled = false;
    } else if (arg == "--stall-timeout" && i + 1 < argc) {
      config.supervision.stall_timeout_ms =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--malformed-window" && i + 1 < argc) {
      config.supervision.malformed_window =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--dirty-budget" && i + 1 < argc) {
      config.supervision.dirty_disconnect_budget =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--probation" && i + 1 < argc) {
      config.supervision.probation_records =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      checkpoint_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--query-port" && i + 1 < argc) {
      const auto parsed = parse_u32(argv[++i]);
      if (!parsed || *parsed > 65535) return usage();  // 0 = ephemeral
      query_port = static_cast<std::uint16_t>(*parsed);
    } else if (arg == "--follow") {
      // tolerated so `infer --follow ...` forwards verbatim
    } else if (!arg.empty() && arg.front() == '-' && arg != "-") {
      return usage();
    } else if (!saw_positional) {
      // Legacy FILE operand (or "-"): one feed.
      saw_positional = true;
      FeedSpec spec;
      if (!parse_feed_spec(arg, spec)) return usage();
      specs.push_back(std::move(spec));
    } else {
      return usage();
    }
  }
  if (config_path.empty()) return usage();
  if (resume && checkpoint_path.empty()) return usage();
  if (query_mode && !query_port) return usage();
  if (specs.empty()) specs.push_back(FeedSpec{});  // stdin
  std::size_t stdin_feeds = 0;
  for (const auto& spec : specs)
    if (spec.kind == FeedSpec::Kind::Stdin) ++stdin_feeds;
  if (stdin_feeds > 1) return usage();  // one stdin, obviously

  const auto config_bytes = read_file(config_path);
  auto contexts = pipeline::parse_ixp_configs(
      std::string(config_bytes.begin(), config_bytes.end()));
  std::fprintf(stderr, "%zu IXPs configured from %s\n", contexts.size(),
               config_path.c_str());

  // In live mode no relationship baseline can be prescanned from the
  // input (setter case 3 then fails as "no setter", matching
  // `infer --updates --no-rels`).
  std::vector<std::string> names;
  names.reserve(contexts.size());
  for (const auto& context : contexts) names.push_back(context.name);
  // Health transitions go to stderr as they fire (the summary repeats the
  // final state per feed). Runs under the transitioning lane's mutex:
  // print and return, nothing else.
  config.on_health_change = [](const pipeline::HealthChange& change) {
    std::fprintf(stderr, "feed %s: %s -> %s%s%s%s\n", change.name.c_str(),
                 pipeline::to_string(change.from),
                 pipeline::to_string(change.to),
                 change.reason.empty() ? "" : " (", change.reason.c_str(),
                 change.reason.empty() ? "" : ")");
  };
  pipeline::LiveSession session(config, std::move(contexts));

  // The query server answers from published epochs only (one atomic load
  // per query), so starting it before any feed exists is safe: clients
  // just see epoch 1, the empty engines.
  std::optional<pipeline::QueryServer> query_server;
  if (query_port) {
    query_server.emplace(session,
                         pipeline::QueryServer::Options{*query_port});
    std::fprintf(stderr, "query server listening on 127.0.0.1:%u\n",
                 query_server->port());
  }

  std::vector<pipeline::FeedHandle> handles;
  handles.reserve(specs.size());
  for (const auto& spec : specs) {
    pipeline::FeedOptions options;
    options.name = spec.raw.empty() ? "stdin" : spec.raw;
    options.transport =
        bmp ? pipeline::Transport::Bmp : pipeline::Transport::RawMrt;
    handles.push_back(session.add_feed(options));
  }

  install_stop_handlers();

  // --resume: load the newest valid checkpoint generation into the
  // freshly wired session, then seek every feed's transport to its
  // acknowledged offset (the peer replays from byte zero; SkipSource
  // discards the prefix the checkpoint already covers).
  std::vector<std::uint64_t> resume_offsets(specs.size(), 0);
  if (resume) {
    const auto loaded =
        pipeline::restore_checkpoint(session, checkpoint_path);
    resume_offsets = session.acknowledged_offsets();
    std::uint64_t acked = 0;
    for (const std::uint64_t off : resume_offsets) acked += off;
    std::fprintf(stderr,
                 "resumed from %s%s: %llu records, %llu acknowledged "
                 "bytes across %zu feed(s)\n",
                 checkpoint_path.c_str(),
                 loaded.from_previous_generation ? " (previous generation)"
                                                 : "",
                 static_cast<unsigned long long>(session.records()),
                 static_cast<unsigned long long>(acked), specs.size());
  }
  std::uint64_t last_checkpoint_records = session.records();
  const auto checkpoint_due = [&]() {
    return !checkpoint_path.empty() && checkpoint_every > 0 &&
           session.records() - last_checkpoint_records >= checkpoint_every;
  };
  const auto take_checkpoint = [&]() {
    pipeline::save_checkpoint(session, checkpoint_path);
    last_checkpoint_records = session.records();
  };

  bool feed_failed = false;
  if (specs.size() == 1) {
    // Single feed: drain on this thread so --snapshot-every fires at
    // deterministic chunk boundaries (the scriptable shape).
    auto source = open_feed_source(specs[0], retry, handles[0]);
    // Grab the reconnect layer before chaos wraps it: exhaustion must
    // stay observable through the fault injector.
    const auto* reconnecting =
        dynamic_cast<const stream::ReconnectingSource*>(source.get());
    if (resume_offsets[0] > 0)
      source = std::make_unique<SkipSource>(std::move(source),
                                            resume_offsets[0]);
    if (chaos)
      source = wrap_chaos(std::move(source), *chaos, 0,
                          chaos_stream_hint(specs[0]), handles[0]);
    std::vector<std::uint8_t> buffer(config.read_chunk);
    std::uint64_t last_snapshot_records = 0;
    for (;;) {
      if (g_stop.load()) break;
      const std::size_t n = source->read(buffer);
      if (n == 0) break;
      handles[0].feed(std::span<const std::uint8_t>(buffer.data(), n));
      if (checkpoint_due()) take_checkpoint();
      if (snapshot_every == 0) continue;
      // The framed-record count is free to read; only take the (batch
      // flush + pool settle) snapshot once the cadence is due.
      if (session.records() - last_snapshot_records < snapshot_every)
        continue;
      const auto snap = session.snapshot();
      last_snapshot_records = snap.records;
      print_live_snapshot(snap, names);
    }
    // An interrupted run exhausts its dial budget by design; only an
    // organic exhaustion is a feed failure.
    if (!g_stop.load() && warn_if_exhausted(specs[0].raw, reconnecting))
      handles[0].fail("reconnect budget exhausted");
  } else {
    // Multi-feed: one reader thread per feed (lanes are independent; the
    // cross-feed merge is deterministic regardless of arrival order).
    // Snapshots come from this thread on the record-count cadence.
    std::vector<std::thread> readers;
    std::atomic<std::size_t> live{specs.size()};
    std::atomic<bool> any_failed{false};
    readers.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      readers.emplace_back([&, i] {
        try {
          auto source = open_feed_source(specs[i], retry, handles[i]);
          const auto* reconnecting =
              dynamic_cast<const stream::ReconnectingSource*>(source.get());
          if (resume_offsets[i] > 0)
            source = std::make_unique<SkipSource>(std::move(source),
                                                  resume_offsets[i]);
          if (chaos)
            source = wrap_chaos(std::move(source), *chaos, i,
                                chaos_stream_hint(specs[i]), handles[i]);
          handles[i].drain(*source);
          if (!g_stop.load() &&
              warn_if_exhausted(specs[i].raw, reconnecting))
            handles[i].fail("reconnect budget exhausted");
        } catch (const std::exception& e) {
          // A shutdown signal unwinds blocked dials/accepts with an
          // "interrupted" error; that is the graceful path, not a
          // failure.
          if (!g_stop.load()) {
            std::fprintf(stderr, "%s: %s\n", specs[i].raw.c_str(),
                         e.what());
            any_failed.store(true);
          }
        }
        handles[i].close();
        live.fetch_sub(1);
      });
    }
    std::uint64_t last_snapshot_records = 0;
    while (live.load() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
#ifndef _WIN32
      // A stop signal lands on ONE thread; readers parked in read() or
      // accept() need their own EINTR to notice the flag. Re-poke them
      // each tick until they unwind (idempotent: the handler only sets
      // the already-set flag).
      if (g_stop.load())
        for (auto& reader : readers)
          ::pthread_kill(reader.native_handle(), SIGTERM);
#endif
      if (checkpoint_due()) take_checkpoint();
      if (snapshot_every == 0) continue;
      if (session.records() - last_snapshot_records < snapshot_every)
        continue;
      const auto snap = session.snapshot();
      last_snapshot_records = snap.records;
      print_live_snapshot(snap, names);
    }
    for (auto& reader : readers) reader.join();
    feed_failed = any_failed.load();
  }

  // `query` mode: keep the final epochs queryable after end of stream.
  // snapshot() settles the world and publishes, so from here every
  // client reads exactly the final state until a signal ends the linger.
  if (query_mode && !g_stop.load()) {
    // Close every feed first (idempotent; finish() would do it anyway):
    // a closed source stops constraining the merge frontier, so the
    // settle below drains everything and the lingering epochs answer
    // with exactly the final link sets.
    for (auto& handle : handles) handle.close();
    const auto snap = session.snapshot();
    print_live_snapshot(snap, names);
    std::fprintf(stderr,
                 "end of stream: serving queries on 127.0.0.1:%u until "
                 "SIGINT/SIGTERM (%llu served so far)\n",
                 query_server->port(),
                 static_cast<unsigned long long>(
                     query_server->queries_served()));
    while (!g_stop.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (query_server) {
    query_server->stop();
    std::fprintf(stderr, "query server: %llu queries served\n",
                 static_cast<unsigned long long>(
                     query_server->queries_served()));
  }

  // The final checkpoint covers everything ingested, interrupted or not;
  // it must land before finish() tears the session down.
  if (!checkpoint_path.empty()) {
    pipeline::save_checkpoint(session, checkpoint_path);
    std::fprintf(stderr, "%scheckpoint written to %s\n",
                 g_stop.load() ? "interrupted: final " : "",
                 checkpoint_path.c_str());
  }

  const auto result = session.finish();
  std::printf("end of stream: %llu records (%zu malformed, %zu skipped)\n",
              static_cast<unsigned long long>(result.records),
              result.passive.records_malformed, result.records_skipped);
  for (const auto& feed : result.per_feed)
    std::printf("feed %s: %llu bytes, %llu records, %zu malformed, "
                "%llu clean / %llu dirty disconnects, %llu partials "
                "dropped, watermark %lu, %zu queued, %llu peer ups / "
                "%llu downs, health %s, %llu transitions, "
                "%llu quarantines, %llu observations discarded\n",
                feed.name.c_str(),
                static_cast<unsigned long long>(feed.bytes_fed),
                static_cast<unsigned long long>(feed.records),
                feed.passive.records_malformed,
                static_cast<unsigned long long>(feed.clean_disconnects),
                static_cast<unsigned long long>(feed.dirty_disconnects),
                static_cast<unsigned long long>(
                    feed.partial_records_dropped),
                static_cast<unsigned long>(feed.watermark),
                feed.queue_depth,
                static_cast<unsigned long long>(feed.bmp_peer_ups),
                static_cast<unsigned long long>(feed.bmp_peer_downs),
                pipeline::to_string(feed.health),
                static_cast<unsigned long long>(feed.health_transitions),
                static_cast<unsigned long long>(feed.times_quarantined),
                static_cast<unsigned long long>(
                    feed.observations_discarded));
  print_summary(result.passive, result.per_ixp, result.all_links.size());
  if (feed_failed) {
    std::fprintf(stderr,
                 "mlp_infer: one or more feeds failed; the summary above "
                 "covers only what arrived\n");
    return 1;
  }
  return 0;
}

int run_serve(int argc, char** argv) {
  std::string path;
  long port = -1;
  std::size_t chunk = 65536;
  std::size_t accepts = 1;
  bool bmp = false;
  std::optional<stream::FaultPlan> chaos;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      const auto parsed = parse_u32(argv[++i]);
      if (!parsed || *parsed == 0 || *parsed > 65535) return usage();
      port = static_cast<long>(*parsed);
    } else if (arg == "--chunk" && i + 1 < argc) {
      chunk = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--accepts" && i + 1 < argc) {
      accepts = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--bmp") {
      bmp = true;
    } else if (arg == "--chaos" && i + 1 < argc) {
      chaos = stream::FaultPlan::parse(argv[++i]);
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (port < 0 || path.empty() || chunk == 0 || accepts == 0)
    return usage();

  std::vector<std::uint8_t> data = read_file(path);
  if (bmp) data = stream::bmp_wrap_updates(data);
  if (chaos && chaos->empty())
    chaos = stream::FaultPlan::random(chaos->seed, data.size());
  if (chaos)
    std::fprintf(stderr, "chaos plan: %s\n", chaos->to_string().c_str());
  // A client may vanish mid-stream (crashed, SIGKILLed in a kill/resume
  // rehearsal): with SIGPIPE ignored the write fails with EPIPE instead
  // of killing the server, and the accept loop moves on to the next
  // client. SIGINT/SIGTERM end the accept loop gracefully.
  install_stop_handlers();
  ignore_sigpipe();
  const auto listener =
      stream::open_tcp_listener(static_cast<std::uint16_t>(port));
  std::fprintf(stderr, "serving %s (%zu bytes%s) on 127.0.0.1:%u, %zu "
               "accept(s)\n",
               path.c_str(), data.size(), bmp ? ", BMP" : "",
               listener.port, accepts);
  for (std::size_t k = 0; k < accepts && !g_stop.load(); ++k) {
    int fd = stream::tcp_accept(listener.fd);
    if (fd < 0) break;  // interrupted while waiting for a client
    try {
      if (!chaos) {
        for (std::size_t at = 0; at < data.size(); at += chunk)
          stream::write_all(fd, std::span<const std::uint8_t>(
                                    data.data() + at,
                                    std::min(chunk, data.size() - at)));
      } else {
        // Chaos replay: serve the archive through the fault injector.
        // The same plan replays per accept turn, so every client sees
        // the same failure sequence. A drop fault really severs the TCP
        // connection and re-accepts (not counted against --accepts: it
        // is one turn's mid-stream flap), resuming past the dropped
        // bytes -- a real collector restart as seen from
        // `follow --retry`.
        stream::FaultInjectingSource injected(
            std::make_unique<stream::MemorySource>(data, chunk), *chaos);
        bool drop_pending = false;
        injected.set_on_fault([&](const stream::Fault& fault) {
          if (fault.kind == stream::Fault::Kind::Disconnect)
            drop_pending = true;
        });
        std::vector<std::uint8_t> buffer(chunk);
        for (;;) {
          if (drop_pending) {
            drop_pending = false;
            stream::close_fd(fd);
            fd = stream::tcp_accept(listener.fd);
            if (fd < 0) break;
          }
          const std::size_t n = injected.read(buffer);
          if (n == 0) break;
          stream::write_all(
              fd, std::span<const std::uint8_t>(buffer.data(), n));
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "serve: client connection lost: %s\n",
                   e.what());
    }
    if (fd >= 0) stream::close_fd(fd);
  }
  stream::close_fd(listener.fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "gen") == 0)
      return run_gen(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "infer") == 0)
      return run_infer(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "follow") == 0)
      return run_follow(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "query") == 0)
      return run_follow(argc - 2, argv + 2, /*query_mode=*/true);
    if (std::strcmp(argv[1], "serve") == 0)
      return run_serve(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mlp_infer: %s\n", e.what());
    return 1;
  }
  return usage();
}
