// Quickstart: the paper's algorithm on the figure-3 example, in ~60 lines.
//
// Four ASes (A, B, C, D) connect to a DE-CIX-style route server. A tags
// its routes so only B and D receive them; everyone else is open. The
// inference pipeline must find every p2p link except A-C.
//
//   build/examples/quickstart
#include <cstdio>

#include "pipeline/pipeline.hpp"
#include "routeserver/route_server.hpp"

int main() {
  using namespace mlp;
  using bgp::Community;
  using routeserver::SchemeStyle;

  constexpr bgp::Asn A = 64496, B = 64497, C = 64498, D = 64499;

  // 1. An IXP route server with the DE-CIX community dialect (table 1).
  auto scheme = routeserver::IxpCommunityScheme::make(
      "DEMO-IX", 6695, SchemeStyle::RsAsnBased);
  routeserver::RouteServer rs(scheme);
  for (bgp::Asn member : {A, B, C, D}) rs.connect(member, member);

  // 2. Members announce routes. A uses NONE+INCLUDE to reach only B and D
  //    (figure 2a); the rest rely on the default ALL behaviour.
  auto announce = [&](bgp::Asn member, const char* prefix,
                      std::vector<Community> communities) {
    bgp::Route route;
    route.prefix = *bgp::IpPrefix::parse(prefix);
    route.attrs.as_path = bgp::AsPath({member});
    route.attrs.next_hop = member;
    route.attrs.communities = std::move(communities);
    rs.announce(member, std::move(route));
  };
  announce(A, "198.51.100.0/24",
           {scheme.none_community(), scheme.include_community(B),
            scheme.include_community(D)});
  announce(B, "203.0.113.0/24", {scheme.all_community()});
  announce(C, "192.0.2.0/24", {});
  announce(D, "198.18.0.0/24", {scheme.all_community()});

  // 3. Run the inference pipeline: connectivity (A_RS) + reachability (the
  //    communities) + the reciprocity assumption = multilateral links.
  //    The RS RIB is read directly, so the observations are pre-attributed.
  core::IxpContext ctx;
  ctx.name = "DEMO-IX";
  ctx.scheme = scheme;
  ctx.rs_members = {A, B, C, D};

  pipeline::InferencePipeline pipe;
  pipe.add_ixp(ctx);
  std::vector<core::Observation> observations;
  for (const auto& session : rs.members()) {
    for (const auto& entry : rs.rib().entries_from_peer(session.asn)) {
      core::Observation obs;
      obs.setter = session.asn;
      obs.prefix = entry.route.prefix;
      obs.communities = entry.route.attrs.communities;
      observations.push_back(std::move(obs));
    }
  }
  pipe.add_observations("DEMO-IX", std::move(observations));
  const auto result = pipe.run();

  std::printf("inferred multilateral peering links:\n");
  for (const auto& link : result.all_links)
    std::printf("  AS%u -- AS%u\n", link.a, link.b);
  std::printf("(A-C is correctly absent: A's filter excludes C)\n");
  return result.all_links.size() == 5 ? 0 : 1;
}
