#!/usr/bin/env python3
"""Invariant linter: greppable architectural rules the type system cannot see.

The Clang thread-safety annotations (util/annotations.hpp) prove the lock
discipline and [[clang::lifetimebound]] proves the borrow lifetimes, but a
handful of this codebase's invariants live above the type system -- which
decode helper the streaming path may call, which lane may push to which
queue source, when the checkpoint version must be bumped. This linter pins
those down as source-level rules so CI catches a regression the reviewer
would otherwise have to remember.

Rules (each suppressible per line with `// invariant-lint: allow(<rule>)`
on the offending line or the line directly above):

  no-materializing-decode   The extraction path (src/pipeline, src/stream,
                            src/core) must stay on the O(1)-scratch cursor/
                            framer decoders; parse_rib()/parse_updates()/
                            decode_all() materialize the whole archive and
                            belong to offline tools and tests only.
  bmp-resync-guard          MrtFramer::resync() scans raw MRT bytes for a
                            plausible header. A BMP lane's record
                            boundaries come from BMP framing -- resyncing
                            inside a synthesized record would anchor on
                            garbage. Every framer.resync() in src/pipeline
                            must sit within a visible `bmp` lane-kind
                            check (same line or the 10 lines above).
  queue-push-own-source     A lane/producer may push only under its OWN
                            source index (`source`, `s`, or `index`); a
                            literal or foreign index would interleave two
                            feeds' observations and break the
                            deterministic merge.
  no-naked-mutex            src/pipeline and src/stream must use the
                            annotated util::Mutex/MutexLock/CondVar shim;
                            naked std:: synchronization primitives are
                            invisible to -Wthread-safety.
  escape-hatch-comment      Every thread-safety escape hatch
                            (MLP_NO_THREAD_SAFETY_ANALYSIS, assert_held())
                            must carry an explanatory comment on the same
                            line or within the 6 lines above: an
                            unexplained hole in the proof is a future bug.
  checkpoint-version-bump   (only with --base REF) If the diff against REF
                            changes serialized-payload encode/decode lines
                            in checkpoint.cpp/live_session.cpp without
                            touching kCheckpointVersion, fail: a loader
                            that speaks the old layout would misparse the
                            new one.

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

ALLOW_RE = re.compile(r"//\s*invariant-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Rule scopes, relative to the repo root.
EXTRACTION_DIRS = ("src/pipeline", "src/stream", "src/core")
SHIM_DIRS = ("src/pipeline", "src/stream")
PIPELINE_DIR = "src/pipeline"

MATERIALIZING_RE = re.compile(r"\b(parse_rib|parse_updates|decode_all)\s*\(")
MRT_RESYNC_RE = re.compile(r"\bframer\.resync\s*\(")
QUEUE_PUSH_RE = re.compile(r"(?:\bqueue\.|queues?\[[^\]]+\]->|\.queue\.)push\s*\(\s*([A-Za-z_][A-Za-z0-9_.]*|\d+)\s*,")
NAKED_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")
ESCAPE_HATCH_RE = re.compile(r"MLP_NO_THREAD_SAFETY_ANALYSIS|\.assert_held\s*\(")
COMMENT_RE = re.compile(r"^\s*//|//")

ALLOWED_PUSH_SOURCES = {"source", "s", "index"}


class Finding:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed(lines: list[str], idx: int, rule: str) -> bool:
    """True when line idx (0-based) carries or inherits an allow pragma."""
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m and rule in {r.strip() for r in m.group(1).split(",")}:
                return True
    return False


def in_scope(rel: str, scopes: tuple[str, ...]) -> bool:
    return any(rel == s or rel.startswith(s + "/") for s in scopes)


def lint_file(rel: str, text: str) -> list[Finding]:
    findings: list[Finding] = []
    lines = text.splitlines()
    is_header_or_source = rel.endswith((".hpp", ".cpp", ".h", ".cc"))
    if not is_header_or_source:
        return findings

    for i, line in enumerate(lines):
        lineno = i + 1
        # Strip trailing comments for code-token rules, but keep the raw
        # line for comment-aware ones.
        code = line.split("//", 1)[0]

        if in_scope(rel, EXTRACTION_DIRS):
            m = MATERIALIZING_RE.search(code)
            # Declarations/definitions in mrt/ itself are the helpers.
            if m and not allowed(lines, i, "no-materializing-decode"):
                findings.append(Finding(
                    "no-materializing-decode", rel, lineno,
                    f"{m.group(1)}() materializes the whole archive; the "
                    "extraction path must stay on MrtCursor/MrtFramer"))

        if in_scope(rel, (PIPELINE_DIR,)) and rel.endswith(".cpp"):
            if MRT_RESYNC_RE.search(code) and not allowed(lines, i, "bmp-resync-guard"):
                window = "\n".join(lines[max(0, i - 10):i + 1])
                if "bmp" not in window:
                    findings.append(Finding(
                        "bmp-resync-guard", rel, lineno,
                        "MrtFramer::resync() without a visible bmp lane-kind "
                        "check; BMP lanes must reset(), never resync()"))

            m = QUEUE_PUSH_RE.search(code)
            if m and not allowed(lines, i, "queue-push-own-source"):
                first_arg = m.group(1)
                if first_arg not in ALLOWED_PUSH_SOURCES:
                    findings.append(Finding(
                        "queue-push-own-source", rel, lineno,
                        f"queue push under index '{first_arg}'; a producer may "
                        "only push under its own source index "
                        f"({'/'.join(sorted(ALLOWED_PUSH_SOURCES))})"))

        if in_scope(rel, SHIM_DIRS):
            m = NAKED_MUTEX_RE.search(code)
            if m and not allowed(lines, i, "no-naked-mutex"):
                findings.append(Finding(
                    "no-naked-mutex", rel, lineno,
                    f"naked std::{m.group(1)}; use the annotated util::Mutex/"
                    "MutexLock/CondVar shim (util/annotations.hpp)"))

        if rel.startswith("src/") and not rel.endswith("annotations.hpp"):
            if ESCAPE_HATCH_RE.search(code) and not allowed(lines, i, "escape-hatch-comment"):
                window = lines[max(0, i - 6):i] + [line]
                if not any(COMMENT_RE.search(w) for w in window):
                    findings.append(Finding(
                        "escape-hatch-comment", rel, lineno,
                        "thread-safety escape hatch without an explanatory "
                        "comment on the line or the 6 lines above"))

    return findings


PAYLOAD_FILES = ("src/pipeline/checkpoint.cpp", "src/pipeline/live_session.cpp",
                 "src/pipeline/observation_queue.cpp", "src/core/engine.cpp",
                 "src/pipeline/feed_supervisor.cpp")
PAYLOAD_LINE_RE = re.compile(r"\b(writer|reader)\.(u8|u16|u32|u64|bytes|sub)\s*\(")
VERSION_RE = re.compile(r"kCheckpointVersion\s*=")


def lint_checkpoint_version(root: Path, base: str) -> list[Finding]:
    """Fail when the diff vs `base` edits payload encode/decode lines in a
    serialize/restore/encode/decode function without bumping
    kCheckpointVersion."""
    try:
        diff = subprocess.run(
            ["git", "diff", "--unified=0", base, "--", *PAYLOAD_FILES,
             "src/pipeline/checkpoint.hpp"],
            cwd=root, capture_output=True, text=True, check=True).stdout
    except (subprocess.CalledProcessError, FileNotFoundError) as e:
        print(f"invariant_lint: git diff against {base!r} failed: {e}",
              file=sys.stderr)
        sys.exit(2)

    version_bumped = False
    payload_edits: list[tuple[str, str]] = []
    current_file = ""
    in_serializer_hunk = False
    for line in diff.splitlines():
        if line.startswith("+++ b/"):
            current_file = line[6:]
        elif line.startswith("@@"):
            # The function-context tail of the hunk header names the
            # enclosing function for most edits.
            context = line.split("@@")[-1]
            in_serializer_hunk = bool(re.search(
                r"serialize_state|restore_state|apply_payload|"
                r"encode_checkpoint|decode_checkpoint", context))
        elif line.startswith(("+", "-")) and not line.startswith(("+++", "---")):
            body = line[1:]
            if VERSION_RE.search(body):
                version_bumped = True
            if in_serializer_hunk and PAYLOAD_LINE_RE.search(body):
                if ALLOW_RE.search(body) and "checkpoint-version-bump" in ALLOW_RE.search(body).group(1):
                    continue
                payload_edits.append((current_file, body.strip()))

    if payload_edits and not version_bumped:
        sample = payload_edits[0]
        return [Finding(
            "checkpoint-version-bump", sample[0], 0,
            f"{len(payload_edits)} payload encode/decode line(s) changed vs "
            f"{base} (e.g. `{sample[1][:60]}`) without bumping "
            "kCheckpointVersion in checkpoint.hpp")]
    return []


# ---------------------------------------------------------------------------
# Self test: every rule must fire on its bad fixture and stay quiet on the
# good one (and on the allow-pragma'd bad one).

SELF_TESTS = [
    ("no-materializing-decode", "src/pipeline/x.cpp",
     "auto rib = mrt::parse_rib(data);\n", True),
    ("no-materializing-decode", "src/pipeline/x.cpp",
     "cursor.next();  // streaming\n", False),
    ("no-materializing-decode", "src/pipeline/x.cpp",
     "// invariant-lint: allow(no-materializing-decode)\n"
     "auto rib = mrt::parse_rib(data);\n", False),
    ("no-materializing-decode", "tools/dump.cpp",
     "auto rib = mrt::parse_rib(data);\n", False),  # out of scope
    ("bmp-resync-guard", "src/pipeline/x.cpp",
     "void f(Lane& t) {\n  t.framer.resync();\n}\n", True),
    ("bmp-resync-guard", "src/pipeline/x.cpp",
     "void f(Lane& t) {\n  if (!t.bmp) t.framer.resync();\n}\n", False),
    ("queue-push-own-source", "src/pipeline/x.cpp",
     "queue.push(other_lane, std::move(batch));\n", True),
    ("queue-push-own-source", "src/pipeline/x.cpp",
     "queue.push(0, std::move(batch));\n", True),
    ("queue-push-own-source", "src/pipeline/x.cpp",
     "shards_[ixp]->queue.push(index, std::move(batch));\n", False),
    ("no-naked-mutex", "src/stream/x.hpp",
     "std::mutex mu_;\n", True),
    ("no-naked-mutex", "src/stream/x.hpp",
     "util::Mutex mu_;\n", False),
    ("no-naked-mutex", "src/util/annotations.hpp",
     "std::mutex inner_;\n", False),  # the shim itself is out of scope
    ("escape-hatch-comment", "src/pipeline/x.cpp",
     "void f() MLP_NO_THREAD_SAFETY_ANALYSIS;\n", True),
    ("escape-hatch-comment", "src/pipeline/x.cpp",
     "// Dynamic lock set: proven by assert_held at each use site.\n"
     "void f() MLP_NO_THREAD_SAFETY_ANALYSIS;\n", False),
]


def self_test() -> int:
    failures = 0
    for rule, path, text, should_fire in SELF_TESTS:
        fired = any(f.rule == rule for f in lint_file(path, text))
        if fired != should_fire:
            failures += 1
            print(f"SELF-TEST FAIL: {rule} on {path!r}: expected "
                  f"{'finding' if should_fire else 'clean'}, got "
                  f"{'finding' if fired else 'clean'}", file=sys.stderr)
    if failures:
        return 1
    print(f"invariant_lint: self-test OK ({len(SELF_TESTS)} cases)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent's parent)")
    parser.add_argument("--base", default=None,
                        help="git ref to diff against for checkpoint-version-bump")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded rule fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    if not (root / "src").is_dir():
        print(f"invariant_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in sorted(root.glob("src/**/*")):
        if path.suffix not in {".hpp", ".cpp", ".h", ".cc"}:
            continue
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_file(rel, path.read_text(encoding="utf-8")))

    if args.base:
        findings.extend(lint_checkpoint_version(root, args.base))

    for finding in findings:
        print(finding)
    if findings:
        print(f"invariant_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("invariant_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
