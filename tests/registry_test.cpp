// Tests for the PeeringDB-like registry.
#include <gtest/gtest.h>

#include "registry/peeringdb.hpp"
#include "util/errors.hpp"

namespace mlp::registry {
namespace {

NetworkRecord record(Asn asn, std::optional<PeeringPolicy> policy,
                     GeoScope scope, std::string lg = "",
                     std::vector<std::string> ixps = {}) {
  NetworkRecord r;
  r.asn = asn;
  r.name = "AS" + std::to_string(asn) + "-NET";
  r.policy = policy;
  r.scope = scope;
  r.looking_glass = std::move(lg);
  r.ixps = std::move(ixps);
  return r;
}

TEST(PeeringDb, UpsertAndFind) {
  PeeringDb db;
  db.upsert(record(8359, PeeringPolicy::Open, GeoScope::Europe));
  ASSERT_NE(db.find(8359), nullptr);
  EXPECT_EQ(db.find(8359)->policy, PeeringPolicy::Open);
  EXPECT_EQ(db.find(1234), nullptr);
  db.upsert(record(8359, PeeringPolicy::Selective, GeoScope::Global));
  EXPECT_EQ(db.find(8359)->policy, PeeringPolicy::Selective);
  EXPECT_EQ(db.size(), 1u);
}

TEST(PeeringDb, PolicyAndLgSelectors) {
  PeeringDb db;
  db.upsert(record(1, PeeringPolicy::Open, GeoScope::Global, "lg.one.net"));
  db.upsert(record(2, std::nullopt, GeoScope::NotDisclosed));
  db.upsert(record(3, PeeringPolicy::Restrictive, GeoScope::Regional));
  EXPECT_EQ(db.with_policy().size(), 2u);
  EXPECT_EQ(db.with_looking_glass().size(), 1u);
  EXPECT_EQ(db.with_looking_glass()[0]->asn, 1u);
  EXPECT_EQ(db.asns(), (std::vector<Asn>{1, 2, 3}));
}

TEST(PeeringDb, DumpParseRoundTrip) {
  PeeringDb db;
  db.upsert(record(8359, PeeringPolicy::Open, GeoScope::Europe,
                   "lg.mts.ru", {"DE-CIX", "MSK-IX"}));
  db.upsert(record(15169, PeeringPolicy::Open, GeoScope::Global));
  db.upsert(record(42, std::nullopt, GeoScope::NotDisclosed));
  const PeeringDb copy = PeeringDb::parse(db.dump());
  EXPECT_EQ(copy.size(), 3u);
  ASSERT_NE(copy.find(8359), nullptr);
  EXPECT_EQ(copy.find(8359)->ixps,
            (std::vector<std::string>{"DE-CIX", "MSK-IX"}));
  EXPECT_EQ(copy.find(8359)->looking_glass, "lg.mts.ru");
  EXPECT_EQ(copy.find(42)->policy, std::nullopt);
  EXPECT_EQ(copy.find(42)->scope, GeoScope::NotDisclosed);
}

TEST(PeeringDb, ParseRejectsMalformed) {
  EXPECT_THROW(PeeringDb::parse("1|x|Open\n"), ParseError);
  EXPECT_THROW(PeeringDb::parse("abc|x|Open|Global||\n"), ParseError);
  EXPECT_THROW(PeeringDb::parse("1|x|Sneaky|Global||\n"), ParseError);
  EXPECT_THROW(PeeringDb::parse("1|x|Open|Atlantis||\n"), ParseError);
}

TEST(PeeringDb, EnumStringRoundTrip) {
  for (auto p : {PeeringPolicy::Open, PeeringPolicy::Selective,
                 PeeringPolicy::Restrictive})
    EXPECT_EQ(parse_policy(to_string(p)), p);
  for (auto s : {GeoScope::Global, GeoScope::Europe, GeoScope::Regional,
                 GeoScope::NotDisclosed})
    EXPECT_EQ(parse_scope(to_string(s)), s);
  EXPECT_FALSE(parse_policy("sometimes"));
  EXPECT_FALSE(parse_scope("moon"));
}

TEST(PeeringDb, EmptyDump) {
  PeeringDb db;
  EXPECT_EQ(db.dump(), "");
  EXPECT_EQ(PeeringDb::parse("").size(), 0u);
}

}  // namespace
}  // namespace mlp::registry
