// Tests for the looking-glass server/client: command rendering, response
// parsing, best-path-only hiding, member hiding and query accounting.
#include <gtest/gtest.h>

#include "lg/lg_client.hpp"
#include "lg/lg_server.hpp"
#include "util/errors.hpp"

namespace mlp::lg {
namespace {

using bgp::AsPath;
using bgp::Community;
using bgp::IpPrefix;

bgp::Rib sample_rib() {
  bgp::Rib rib;
  bgp::Route r1;
  r1.prefix = *IpPrefix::parse("10.0.0.0/24");
  r1.attrs.as_path = AsPath({8359, 15169});
  r1.attrs.next_hop = 0xC0000201;
  r1.attrs.communities = {Community(0, 6695), Community(6695, 8447)};
  rib.announce(8359, 0xC0000201, r1);

  bgp::Route r2;
  r2.prefix = *IpPrefix::parse("10.0.0.0/24");
  r2.attrs.as_path = AsPath({3356, 1299, 15169});
  r2.attrs.next_hop = 0xC0000202;
  rib.announce(3356, 0xC0000202, r2);

  bgp::Route r3;
  r3.prefix = *IpPrefix::parse("10.7.0.0/16");
  r3.attrs.as_path = AsPath({8359, 8447});
  r3.attrs.next_hop = 0xC0000201;
  rib.announce(8359, 0xC0000201, r3);
  return rib;
}

LgConfig config_named(const std::string& name) {
  LgConfig c;
  c.name = name;
  c.operator_asn = 6695;
  return c;
}

TEST(LgServer, SummaryListsSessions) {
  const bgp::Rib rib = sample_rib();
  LookingGlassServer server(config_named("rs1.de-cix"), &rib);
  const std::string out = server.execute("show ip bgp summary");
  EXPECT_NE(out.find("192.0.2.1 8359 2"), std::string::npos);
  EXPECT_NE(out.find("192.0.2.2 3356 1"), std::string::npos);
  EXPECT_NE(out.find("Total neighbors: 2"), std::string::npos);
}

TEST(LgServer, BareShowIpBgpAliasesSummary) {
  const bgp::Rib rib = sample_rib();
  LookingGlassServer server(config_named("lg"), &rib);
  EXPECT_EQ(server.execute("show ip bgp"),
            server.execute("show ip bgp summary"));
}

TEST(LgServer, NeighborRoutes) {
  const bgp::Rib rib = sample_rib();
  LookingGlassServer server(config_named("lg"), &rib);
  const std::string out =
      server.execute("show ip bgp neighbors 192.0.2.1 routes");
  EXPECT_NE(out.find("10.0.0.0/24"), std::string::npos);
  EXPECT_NE(out.find("10.7.0.0/16"), std::string::npos);
  EXPECT_NE(out.find("Total: 2"), std::string::npos);
}

TEST(LgServer, PrefixDetailAllPaths) {
  const bgp::Rib rib = sample_rib();
  LookingGlassServer server(config_named("lg"), &rib);
  const std::string out = server.execute("show ip bgp 10.0.0.0/24");
  EXPECT_NE(out.find("Paths: (2 available)"), std::string::npos);
  EXPECT_NE(out.find("8359 15169"), std::string::npos);
  EXPECT_NE(out.find("3356 1299 15169"), std::string::npos);
  EXPECT_NE(out.find("communities: 0:6695 6695:8447"), std::string::npos);
  EXPECT_NE(out.find("best"), std::string::npos);
}

TEST(LgServer, BestPathOnlyHidesAlternatives) {
  const bgp::Rib rib = sample_rib();
  LgConfig config = config_named("lg");
  config.show_all_paths = false;
  LookingGlassServer server(config, &rib);
  const std::string out = server.execute("show ip bgp 10.0.0.0/24");
  EXPECT_NE(out.find("Paths: (1 available)"), std::string::npos);
  // The shorter path 8359 15169 is best; 3356's path must be hidden.
  EXPECT_NE(out.find("8359 15169"), std::string::npos);
  EXPECT_EQ(out.find("3356 1299 15169"), std::string::npos);
}

TEST(LgServer, CommunitiesSuppressed) {
  const bgp::Rib rib = sample_rib();
  LgConfig config = config_named("france-ix-style");
  config.show_communities = false;
  LookingGlassServer server(config, &rib);
  const std::string out = server.execute("show ip bgp 10.0.0.0/24");
  EXPECT_EQ(out.find("communities"), std::string::npos);
}

TEST(LgServer, HiddenMembersInvisibleEverywhere) {
  const bgp::Rib rib = sample_rib();
  LgConfig config = config_named("dtel-ix-style");
  config.hidden_members = {8359};
  LookingGlassServer server(config, &rib);
  EXPECT_EQ(server.execute("show ip bgp summary").find("8359"),
            std::string::npos);
  EXPECT_NE(server.execute("show ip bgp 10.0.0.0/24").find("3356"),
            std::string::npos);
  EXPECT_EQ(server.execute("show ip bgp 10.0.0.0/24").find("8359"),
            std::string::npos);
  // 10.7.0.0/16 only had the hidden member's path.
  EXPECT_NE(server.execute("show ip bgp 10.7.0.0/16").find("% Network"),
            std::string::npos);
}

TEST(LgServer, ErrorsForBadInput) {
  const bgp::Rib rib = sample_rib();
  LookingGlassServer server(config_named("lg"), &rib);
  EXPECT_NE(server.execute("show version").find("% Unknown"),
            std::string::npos);
  EXPECT_NE(server.execute("show ip bgp 10.0.0.0").find("% Invalid prefix"),
            std::string::npos);
  EXPECT_NE(server.execute("show ip bgp neighbors nope routes")
                .find("% Invalid neighbor"),
            std::string::npos);
  EXPECT_NE(server.execute("show ip bgp 99.0.0.0/24").find("% Network"),
            std::string::npos);
}

TEST(LgServer, QueryAccounting) {
  const bgp::Rib rib = sample_rib();
  LgConfig config = config_named("lg");
  config.min_query_interval_s = 10.0;
  LookingGlassServer server(config, &rib);
  server.execute("show ip bgp summary");
  server.execute("show ip bgp 10.0.0.0/24");
  EXPECT_EQ(server.queries_served(), 2u);
  EXPECT_DOUBLE_EQ(server.simulated_elapsed_s(), 20.0);
}

// ---------------------------------------------------------------- client

TEST(LgClient, NeighborsRoundTrip) {
  const bgp::Rib rib = sample_rib();
  LookingGlassServer server(config_named("lg"), &rib);
  LookingGlassClient client(server);
  const auto neighbors = client.neighbors();
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].ip, 0xC0000201u);
  EXPECT_EQ(neighbors[0].asn, 8359u);
  EXPECT_EQ(neighbors[0].prefixes_received, 2u);
  EXPECT_EQ(neighbors[1].asn, 3356u);
  EXPECT_EQ(client.queries_issued(), 1u);
}

TEST(LgClient, NeighborRoutesRoundTrip) {
  const bgp::Rib rib = sample_rib();
  LookingGlassServer server(config_named("lg"), &rib);
  LookingGlassClient client(server);
  const auto routes = client.neighbor_routes(0xC0000201);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[0], *IpPrefix::parse("10.0.0.0/24"));
  EXPECT_EQ(routes[1], *IpPrefix::parse("10.7.0.0/16"));
}

TEST(LgClient, PrefixDetailRoundTrip) {
  const bgp::Rib rib = sample_rib();
  LookingGlassServer server(config_named("lg"), &rib);
  LookingGlassClient client(server);
  const auto paths = client.prefix_detail(*IpPrefix::parse("10.0.0.0/24"));
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].as_path, AsPath({8359, 15169}));
  EXPECT_EQ(paths[0].from_asn, 8359u);
  EXPECT_EQ(paths[0].from_ip, 0xC0000201u);
  EXPECT_EQ(paths[0].next_hop, 0xC0000201u);
  ASSERT_EQ(paths[0].communities.size(), 2u);
  EXPECT_EQ(paths[0].communities[0], Community(0, 6695));
  EXPECT_TRUE(paths[0].best);
  EXPECT_FALSE(paths[1].best);
  EXPECT_EQ(paths[1].as_path, AsPath({3356, 1299, 15169}));
}

TEST(LgClient, MissingPrefixYieldsEmpty) {
  const bgp::Rib rib = sample_rib();
  LookingGlassServer server(config_named("lg"), &rib);
  LookingGlassClient client(server);
  EXPECT_TRUE(client.prefix_detail(*IpPrefix::parse("99.0.0.0/24")).empty());
}

TEST(LgClient, ParserRejectsErrorBanner) {
  EXPECT_THROW(parse_summary("% Unknown command\n"), ParseError);
  EXPECT_THROW(parse_summary("no table here\n"), ParseError);
  EXPECT_THROW(parse_neighbor_routes("% Invalid neighbor address: x\n"),
               ParseError);
}

TEST(LgClient, ParserToleratesDecoration) {
  const std::string text =
      "Some banner line\n"
      "BGP router identifier lg, local AS number 6695\n"
      "Neighbor         AS        PfxRcd\n"
      "192.0.2.1 8359 2\n"
      "--- separator ---\n"
      "192.0.2.2 3356 1\n"
      "Total neighbors: 2\n";
  const auto neighbors = parse_summary(text);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[1].asn, 3356u);
}

TEST(LgClient, PrefixDetailParserHandlesNoCommunities) {
  const std::string text =
      "BGP routing table entry for 10.0.0.0/24\n"
      "Paths: (1 available)\n"
      "  3356 15169\n"
      "    from 192.0.2.2 (AS3356)\n"
      "    next-hop 192.0.2.2, localpref 100\n"
      "    best\n";
  const auto paths = parse_prefix_detail(text);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].communities.empty());
  EXPECT_TRUE(paths[0].best);
  EXPECT_EQ(paths[0].local_pref, 100u);
}

}  // namespace
}  // namespace mlp::lg
