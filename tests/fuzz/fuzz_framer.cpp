// Fuzz target for the live-stream framing/decoding front end.
//
// Drives MrtFramer, BmpFramer and UpdateDecoder in tolerant mode over
// arbitrary bytes, delivered in adversarial chunkings derived from the
// input itself. The target asserts the properties a live session depends
// on:
//
//   - no crash/UB for any byte sequence (ASan/UBSan catch the rest)
//   - ParseError is the only escape hatch, and resync() always recovers
//   - the one-partial-record memory invariant: after a full drain the
//     framer buffers at most one capped record, whatever was fed
//   - the FeedSupervisor state machine holds its invariants (Dead is
//     absorbing, bounded transition log, rate in [0,1]) under arbitrary
//     event interleavings and edge-case budget configs
//   - the checkpoint loader rejects arbitrary bytes cleanly (ParseError/
//     InvalidArgument only) and NEVER leaves a session partially
//     applied: after a failed restore the session is pristine and fully
//     usable
//
// Built with -DMLP_FUZZ=ON. Under Clang the real libFuzzer entry point
// is linked (-fsanitize=fuzzer, MLP_FUZZ_LIBFUZZER); elsewhere a
// self-driving main() replays corpus files and a fixed budget of
// deterministic pseudo-random inputs -- the mode the ASan CI job runs --
// and is AFL-compatible (one input file per invocation also works).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "mrt/record_codec.hpp"
#include "pipeline/checkpoint.hpp"
#include "routeserver/scheme.hpp"
#include "pipeline/feed_supervisor.hpp"
#include "pipeline/live_session.hpp"
#include "stream/bmp_framer.hpp"
#include "stream/decoder.hpp"
#include "stream/framer.hpp"
#include "util/errors.hpp"

namespace {

using namespace mlp;

// Small caps keep the worst-case buffered record (and the fuzzer's
// memory) bounded while still exercising the cap-violation paths.
constexpr std::uint32_t kRecordCap = 1u << 16;
constexpr std::uint32_t kBmpCap = 1u << 16;

void check(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "fuzz_framer: invariant violated: %s\n", what);
  std::abort();
}

std::uint64_t next_rand(std::uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  return state >> 33;
}

/// Chunk sizes are derived from the input so the fuzzer controls the
/// boundary placement too.
std::size_t next_chunk(std::uint64_t& state, std::size_t remaining) {
  const std::size_t chunk = 1 + next_rand(state) % 67;
  return chunk < remaining ? chunk : remaining;
}

void drive_mrt(const std::uint8_t* data, std::size_t size) {
  stream::MrtFramer::Config config;
  config.max_record_bytes = kRecordCap;
  stream::MrtFramer framer(config);
  stream::UpdateDecoder decoder;
  std::uint64_t state = size ^ (size != 0 ? data[0] * 2654435761ULL : 1);
  std::size_t at = 0;
  while (at < size) {
    const std::size_t chunk = next_chunk(state, size - at);
    framer.feed(std::span<const std::uint8_t>(data + at, chunk));
    at += chunk;
    for (;;) {
      std::optional<std::span<const std::uint8_t>> record;
      try {
        record = framer.next();
      } catch (const ParseError&) {  // absurd length field
        framer.resync();
        continue;
      }
      if (!record) break;
      try {
        decoder.decode(*record);
      } catch (const ParseError&) {  // malformed record body
        framer.resync();
      }
    }
    // The memory contract behind BM_LiveFraming's flat heap profile.
    check(framer.buffered() <=
              mrt::detail::kMrtHeaderBytes + kRecordCap,
          "MrtFramer buffers more than one partial record");
  }
  check(framer.bytes_fed() == size, "MrtFramer lost track of bytes_fed");
}

void drive_bmp(const std::uint8_t* data, std::size_t size) {
  stream::BmpFramer::Config bmp_config;
  bmp_config.max_message_bytes = kBmpCap;
  stream::BmpFramer bmp(bmp_config);
  stream::MrtFramer framer;
  stream::UpdateDecoder decoder;
  std::uint64_t state = size ^ (size != 0 ? data[size - 1] * 40503ULL : 7);
  std::size_t at = 0;
  while (at < size) {
    const std::size_t chunk = next_chunk(state, size - at);
    bmp.feed(std::span<const std::uint8_t>(data + at, chunk));
    at += chunk;
    for (;;) {
      std::optional<stream::BmpEvent> event;
      try {
        event = bmp.next();
      } catch (const ParseError&) {
        bmp.resync();
        continue;
      }
      if (!event) break;
      if (event->kind != stream::BmpEvent::Kind::Update) {
        // PeerUp/PeerDown: the parsed header is all a consumer reads;
        // the record span must stay empty.
        check(event->record.empty(),
              "BmpFramer attached a record to a session event");
        continue;
      }
      // A synthesized record must always frame and survive decoding
      // (decode may reject the PDU, never crash).
      framer.feed(event->record);
      const auto record = framer.next();
      check(record.has_value(), "BmpFramer synthesized a torn record");
      check(framer.buffered() == 0,
            "BmpFramer synthesized trailing garbage");
      try {
        decoder.decode(*record);
      } catch (const ParseError&) {
      }
    }
    check(bmp.buffered() <= 6 + kBmpCap,
          "BmpFramer buffers more than one partial message");
  }
  check(bmp.bytes_fed() == size, "BmpFramer lost track of bytes_fed");
}

/// Drive the FeedSupervisor state machine with a byte-derived event
/// stream: arbitrary interleavings of record outcomes, disconnects,
/// stall polls and fatal failures must keep its invariants:
///
///   - Dead is absorbing (no transition ever leaves it)
///   - the recorded transition list is capped, the rate stays in [0,1]
///   - the action returned is consistent with the health it lands on
void drive_supervisor(const std::uint8_t* data, std::size_t size) {
  using pipeline::FeedHealth;
  using pipeline::FeedSupervisor;
  pipeline::SupervisorConfig config;
  // Budgets derived from the input so the fuzzer explores edge configs
  // (zero windows, zero budgets, disabled supervision) too.
  std::uint64_t state = size ^ (size != 0 ? data[0] * 48271ULL : 3);
  config.enabled = next_rand(state) % 4 != 0;
  config.malformed_window = next_rand(state) % 16;
  config.min_window_records = next_rand(state) % 8;
  config.quarantine_malformed_rate = 0.5;
  config.degraded_malformed_rate = 0.05;
  config.dirty_disconnect_budget = next_rand(state) % 5;
  config.max_quarantines = next_rand(state) % 3;
  config.probation_records = next_rand(state) % 4;
  config.stall_timeout_ms = next_rand(state) % 50;
  config.allow_readmission = next_rand(state) % 2 != 0;
  FeedSupervisor supervisor(config);

  std::uint64_t now_ms = 0;
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint8_t b = data[i];
    const FeedHealth before = supervisor.health();
    FeedSupervisor::Action action;
    switch (b % 16) {
      case 0:
        action = supervisor.note_disconnect((b & 0x10) != 0);
        break;
      case 1:
        now_ms += b;
        action = supervisor.check_stall(now_ms);
        break;
      case 2:
        supervisor.note_activity(now_ms);
        action = FeedSupervisor::Action::None;
        break;
      case 3:
        action = supervisor.note_fatal("fuzzed fatal");
        check(supervisor.health() == FeedHealth::Dead,
              "note_fatal left the feed alive");
        break;
      default:
        action = supervisor.note_record(b % 3 == 0);
        break;
    }
    const FeedHealth after = supervisor.health();
    check(before != FeedHealth::Dead || after == FeedHealth::Dead,
          "Dead is not absorbing");
    if (action == FeedSupervisor::Action::Quarantine)
      check(after == FeedHealth::Quarantined, "Quarantine action mismatch");
    if (action == FeedSupervisor::Action::Die)
      check(after == FeedHealth::Dead, "Die action mismatch");
    if (action == FeedSupervisor::Action::Readmit)
      check(after == FeedHealth::Healthy, "Readmit action mismatch");
    check(!supervisor.merging() || supervisor.ingesting(),
          "merging feed that is not ingesting");
    const double rate = supervisor.malformed_rate();
    check(rate >= 0.0 && rate <= 1.0, "malformed rate out of [0,1]");
    check(supervisor.transitions().size() <=
              FeedSupervisor::kMaxRecordedTransitions,
          "recorded transitions exceed the cap");
    check(supervisor.transitions().size() <= supervisor.transition_count(),
          "recorded more transitions than fired");
  }
}

/// Feed arbitrary bytes to the checkpoint loader, at both layers: the
/// file-image validator (decode_checkpoint) and the session restorer
/// (restore_state). The contract: ParseError/InvalidArgument are the
/// only escape hatches, and a failed restore leaves the session exactly
/// as wired -- zero records, zero acknowledged bytes, fully usable.
void drive_checkpoint_loader(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::uint8_t> input(data, size);

  // encode/decode must round-trip any payload bit-exactly.
  const auto image = pipeline::encode_checkpoint(input);
  const auto back = pipeline::decode_checkpoint(image);
  check(back.size() == size &&
            (size == 0 || std::memcmp(back.data(), data, size) == 0),
        "checkpoint image round trip lost bytes");

  // Arbitrary bytes through the validator: reject or return a payload,
  // never crash.
  std::vector<std::uint8_t> payload;
  bool decoded = false;
  try {
    payload = pipeline::decode_checkpoint(input);
    decoded = true;
  } catch (const ParseError&) {
  }

  core::IxpContext ixp;
  ixp.name = "FUZZ-IX";
  ixp.scheme = routeserver::IxpCommunityScheme::make(
      "FUZZ-IX", 6695, routeserver::SchemeStyle::RsAsnBased);
  ixp.rs_members = {10, 20, 30, 40};
  pipeline::LiveConfig config;
  config.threads = 1;
  config.passive.tolerate_malformed = true;
  pipeline::LiveSession session(config, {ixp});
  pipeline::FeedOptions options;
  options.name = "feed0";
  auto handle = session.add_feed(options);

  bool restored = false;
  try {
    session.restore_state(decoded ? std::span<const std::uint8_t>(payload)
                                  : input);
    restored = true;
  } catch (const ParseError&) {
  } catch (const InvalidArgument&) {
  }
  if (!restored) {
    // All-or-nothing: a rejected payload must not have advanced the
    // session at all.
    check(session.records() == 0, "failed restore advanced the session");
    for (const std::uint64_t off : session.acknowledged_offsets())
      check(off == 0, "failed restore left acknowledged bytes behind");
  }
  // Restored or rejected, the session must remain fully usable.
  handle.feed(input.subspan(0, size < 64 ? size : 64));
  session.snapshot();
  session.finish();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  drive_mrt(data, size);
  drive_bmp(data, size);
  drive_supervisor(data, size);
  drive_checkpoint_loader(data, size);
  return 0;
}

#ifndef MLP_FUZZ_LIBFUZZER

// Self-driving fallback for toolchains without libFuzzer (the ASan CI
// job): replay every corpus file given on the command line (files or
// directories), then run a fixed budget of deterministic pseudo-random
// inputs, including headers spliced from the corpus so framing paths are
// reached far more often than pure noise would.
#include <filesystem>
#include <fstream>
#include <string>

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t runs = 0;
  std::vector<std::vector<std::uint8_t>> corpus;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--runs" && i + 1 < argc) {
      runs = std::strtoull(argv[++i], nullptr, 10);
      continue;
    }
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg))
        if (entry.is_regular_file()) corpus.push_back(read_file(entry));
    } else {
      corpus.push_back(read_file(arg));
    }
  }
  for (const auto& input : corpus)
    LLVMFuzzerTestOneInput(input.data(), input.size());
  std::printf("fuzz_framer: %zu corpus inputs replayed\n", corpus.size());

  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  std::vector<std::uint8_t> input;
  for (std::size_t run = 0; run < runs; ++run) {
    input.clear();
    if (!corpus.empty() && run % 2 == 0) {
      // Mutate a corpus seed: copy, then flip a handful of bytes.
      input = corpus[next_rand(state) % corpus.size()];
      const std::size_t flips = 1 + next_rand(state) % 8;
      for (std::size_t f = 0; f < flips && !input.empty(); ++f)
        input[next_rand(state) % input.size()] =
            static_cast<std::uint8_t>(next_rand(state));
    } else {
      const std::size_t size = next_rand(state) % 2048;
      input.reserve(size);
      for (std::size_t b = 0; b < size; ++b)
        input.push_back(static_cast<std::uint8_t>(next_rand(state)));
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("fuzz_framer: %zu random/mutated runs clean\n", runs);
  return 0;
}

#endif  // MLP_FUZZ_LIBFUZZER
