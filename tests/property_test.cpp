// Property-based tests: randomised sweeps (TEST_P over seeds) asserting
// the invariants the system's correctness rests on.
#include <gtest/gtest.h>

#include "bgp/rib.hpp"
#include "bgp/valley.hpp"
#include "bgp/wire.hpp"
#include "core/engine.hpp"
#include "mrt/table_dump.hpp"
#include "propagation/routing.hpp"
#include "routeserver/route_server.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace mlp {
namespace {

using bgp::AsPath;
using bgp::Community;
using bgp::IpPrefix;

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ---- Export policies encode/decode losslessly under random schemes.

TEST_P(SeededProperty, ExportPolicyCommunityRoundTrip) {
  Rng rng(GetParam());
  const auto style = rng.chance(0.5)
                         ? routeserver::SchemeStyle::RsAsnBased
                         : routeserver::SchemeStyle::PrivateRangeBased;
  auto scheme = routeserver::IxpCommunityScheme::make(
      "prop", static_cast<bgp::Asn>(rng.uniform(1000, 64000)), style);

  std::vector<bgp::Asn> members;
  for (int i = 0; i < 40; ++i)
    members.push_back(static_cast<bgp::Asn>(rng.uniform(1, 60000)));

  for (int round = 0; round < 20; ++round) {
    const bool allowlist = rng.chance(0.5);
    std::set<bgp::Asn> peers;
    const std::size_t n = rng.uniform(0, 6);
    for (std::size_t k = 0; k < n; ++k) peers.insert(rng.pick(members));
    const routeserver::ExportPolicy policy(
        allowlist ? routeserver::ExportPolicy::Mode::NoneExcept
                  : routeserver::ExportPolicy::Mode::AllExcept,
        peers);
    const auto communities = policy.to_communities(scheme, rng.chance(0.5));
    const auto decoded =
        routeserver::ExportPolicy::from_communities(communities, scheme);
    if (!allowlist && peers.empty()) {
      // Pure default: decodes to nothing or the explicit ALL.
      if (decoded) {
        EXPECT_EQ(*decoded, policy);
      }
    } else {
      ASSERT_TRUE(decoded);
      EXPECT_EQ(*decoded, policy);
    }
    // The decoded policy must agree with the original on every member.
    if (decoded) {
      for (const auto member : members)
        EXPECT_EQ(decoded->allows(member), policy.allows(member));
    }
  }
}

// ---- The inference engine reproduces the route server's ground truth
// when fed the very communities the members announced (precision and
// recall 1.0 with import filters mirroring exports).

TEST_P(SeededProperty, EngineMatchesRouteServerGroundTruth) {
  Rng rng(GetParam() ^ 0xbeef);
  auto scheme = routeserver::IxpCommunityScheme::make(
      "prop", 64321, routeserver::SchemeStyle::RsAsnBased);
  routeserver::RouteServer rs(scheme);

  std::vector<bgp::Asn> members;
  for (int i = 0; i < 25; ++i)
    members.push_back(static_cast<bgp::Asn>(2000 + i));
  for (const auto member : members) rs.connect(member, member);

  core::IxpContext ctx;
  ctx.name = "prop";
  ctx.scheme = scheme;
  ctx.rs_members = {members.begin(), members.end()};
  core::MlpInferenceEngine engine(ctx);

  for (const auto member : members) {
    std::set<bgp::Asn> peers;
    const std::size_t n = rng.uniform(0, 5);
    for (std::size_t k = 0; k < n; ++k) {
      const auto peer = rng.pick(members);
      if (peer != member) peers.insert(peer);
    }
    const routeserver::ExportPolicy policy(
        rng.chance(0.25) ? routeserver::ExportPolicy::Mode::NoneExcept
                         : routeserver::ExportPolicy::Mode::AllExcept,
        peers);
    const std::size_t prefixes = rng.uniform(1, 3);
    for (std::size_t p = 0; p < prefixes; ++p) {
      bgp::Route route;
      route.prefix =
          IpPrefix(0x0A000000 + (static_cast<std::uint32_t>(member) << 12) +
                       (static_cast<std::uint32_t>(p) << 8),
                   24);
      route.attrs.as_path = AsPath({member});
      route.attrs.next_hop = member;
      route.attrs.communities = policy.to_communities(scheme, rng.chance(0.3));
      rs.announce(member, route);

      core::Observation obs;
      obs.setter = member;
      obs.prefix = route.prefix;
      obs.communities = route.attrs.communities;
      engine.add(obs);
    }
  }
  EXPECT_EQ(engine.infer_links(), rs.reciprocal_links());
}

// ---- The bitset reciprocity pass is byte-identical to a naive reference
// implementation of steps 4-5 (per-member allow-sets as node-based
// std::set, pairwise reciprocity by lookup), on randomised scenarios with
// inconsistent per-prefix policies, unobserved members, self-targeted and
// non-member-targeted communities.

TEST_P(SeededProperty, InferLinksMatchesNaiveReference) {
  Rng rng(GetParam() ^ 0xfeed);
  auto scheme = routeserver::IxpCommunityScheme::make(
      "prop", 64321, routeserver::SchemeStyle::RsAsnBased);

  const std::size_t n_members = rng.uniform(20, 60);
  std::vector<bgp::Asn> members;
  for (std::size_t i = 0; i < n_members; ++i)
    members.push_back(static_cast<bgp::Asn>(3000 + 3 * i));

  core::IxpContext ctx;
  ctx.name = "prop";
  ctx.scheme = scheme;
  ctx.rs_members = {members.begin(), members.end()};
  core::MlpInferenceEngine engine(ctx);

  // Per member: 0 prefixes (unobserved) or 1-3 prefixes with independently
  // drawn policies. The reference keeps the raw policy list.
  std::map<bgp::Asn, std::vector<routeserver::ExportPolicy>> truth;
  for (const auto member : members) {
    if (rng.chance(0.25)) continue;  // unobserved
    const std::size_t prefixes = rng.uniform(1, 3);
    for (std::size_t p = 0; p < prefixes; ++p) {
      util::FlatAsnSet peers;
      const std::size_t n_peers = rng.uniform(0, 6);
      for (std::size_t k = 0; k < n_peers; ++k) {
        if (rng.chance(0.15)) {
          peers.insert(member);  // self-targeted: must never self-link
        } else if (rng.chance(0.15)) {
          // Target outside A_RS: ignored by reciprocity either way.
          peers.insert(static_cast<bgp::Asn>(rng.uniform(100, 2000)));
        } else {
          peers.insert(rng.pick(members));
        }
      }
      const routeserver::ExportPolicy policy(
          rng.chance(0.3) ? routeserver::ExportPolicy::Mode::NoneExcept
                          : routeserver::ExportPolicy::Mode::AllExcept,
          peers);
      core::Observation obs;
      obs.setter = member;
      obs.prefix = bgp::IpPrefix(
          0x0A000000 + (static_cast<std::uint32_t>(member) << 12) +
              (static_cast<std::uint32_t>(p) << 8),
          24);
      obs.communities = policy.to_communities(scheme, rng.chance(0.5));
      engine.add(obs);
      // An AllExcept policy with no peers encodes to nothing (or the bare
      // ALL value): the engine records default-open, which allows() agrees
      // with, so the raw policy doubles as the reference.
      truth[member].push_back(policy);
    }
  }

  for (const bool assume_open : {false, true}) {
    // Reference step 4+5 over node-based sets.
    std::map<bgp::Asn, std::set<bgp::Asn>> allow;
    for (const auto member : members) {
      const auto it = truth.find(member);
      if (it == truth.end() && !assume_open) continue;
      std::set<bgp::Asn> allowed;
      for (const auto other : members) {
        if (other == member) continue;
        bool ok = true;
        if (it != truth.end()) {
          for (const auto& policy : it->second)
            if (!policy.allows(other)) ok = false;
        }
        if (ok) allowed.insert(other);
      }
      allow.emplace(member, std::move(allowed));
    }
    std::set<bgp::AsLink> expected;
    for (const auto& [a, allowed_a] : allow) {
      for (const auto& [b, allowed_b] : allow) {
        if (a >= b) continue;
        if (allowed_a.count(b) && allowed_b.count(a))
          expected.insert(bgp::AsLink(a, b));
      }
    }

    const auto inferred = engine.infer_links(assume_open);
    EXPECT_EQ(inferred, expected) << "assume_open=" << assume_open;
    EXPECT_EQ(engine.count_links(assume_open), expected.size())
        << "assume_open=" << assume_open;
  }
}

// ---- The delta-maintained reciprocity bitset equals the from-scratch
// memoisation after EVERY prefix of a shuffled observation sequence:
// once a query materialises the bitset, add() patches it in place, and
// that fast path must never drift from what ensure_derived() would
// rebuild. invalidate_derived() on the twin engine forces the full
// re-memoisation every step.

TEST_P(SeededProperty, IncrementalDeltaMatchesFromScratch) {
  Rng rng(GetParam() ^ 0xde17a);
  auto scheme = routeserver::IxpCommunityScheme::make(
      "prop", 64321, routeserver::SchemeStyle::RsAsnBased);

  const std::size_t n_members = rng.uniform(10, 40);
  std::vector<bgp::Asn> members;
  for (std::size_t i = 0; i < n_members; ++i)
    members.push_back(static_cast<bgp::Asn>(3000 + 3 * i));
  core::IxpContext ctx;
  ctx.name = "prop";
  ctx.scheme = scheme;
  ctx.rs_members = {members.begin(), members.end()};

  const auto random_policy = [&]() {
    util::FlatAsnSet peers;
    const std::size_t n_peers = rng.uniform(0, 6);
    for (std::size_t k = 0; k < n_peers; ++k) {
      if (rng.chance(0.15)) {
        peers.insert(static_cast<bgp::Asn>(rng.uniform(100, 2000)));
      } else {
        peers.insert(rng.pick(members));
      }
    }
    return routeserver::ExportPolicy(
        rng.chance(0.3) ? routeserver::ExportPolicy::Mode::NoneExcept
                        : routeserver::ExportPolicy::Mode::AllExcept,
        peers);
  };

  std::vector<core::Observation> observations;
  for (const auto member : members) {
    if (rng.chance(0.25)) continue;  // unobserved
    const std::size_t prefixes = rng.uniform(1, 3);
    for (std::size_t p = 0; p < prefixes; ++p) {
      core::Observation obs;
      obs.setter = member;
      obs.prefix = bgp::IpPrefix(
          0x0A000000 + (static_cast<std::uint32_t>(member) << 12) +
              (static_cast<std::uint32_t>(p) << 8),
          24);
      obs.communities = random_policy().to_communities(scheme,
                                                       rng.chance(0.5));
      observations.push_back(std::move(obs));
    }
  }
  if (observations.empty()) return;  // nothing to compare this seed
  // Re-announcements of already-queued prefixes with freshly drawn
  // policies exercise the replaced-intersectand branch (N_a rebuild) and
  // the identical-policy no-op branch of add().
  const std::size_t replays = rng.uniform(0, observations.size() / 2);
  for (std::size_t r = 0; r < replays; ++r) {
    core::Observation obs =
        observations[rng.uniform(0, observations.size() - 1)];
    if (rng.chance(0.5))
      obs.communities = random_policy().to_communities(scheme,
                                                       rng.chance(0.5));
    observations.push_back(std::move(obs));
  }
  // Shuffle: the equivalence must hold for ANY add order.
  for (std::size_t i = observations.size(); i > 1; --i)
    std::swap(observations[i - 1], observations[rng.uniform(0, i - 1)]);

  core::MlpInferenceEngine incremental(ctx);
  core::MlpInferenceEngine scratch(ctx);
  // Materialise the incremental engine's bitset up front so every add()
  // below takes the delta path (no member observed yet: no links).
  EXPECT_EQ(incremental.count_links(false), 0u);
  for (std::size_t i = 0; i < observations.size(); ++i) {
    incremental.add(observations[i]);
    scratch.add(observations[i]);
    scratch.invalidate_derived();  // force the full re-memoisation
    for (const bool assume_open : {false, true}) {
      EXPECT_EQ(incremental.infer_links(assume_open),
                scratch.infer_links(assume_open))
          << "after " << i + 1 << " observations, assume_open="
          << assume_open;
      EXPECT_EQ(incremental.count_links(assume_open),
                scratch.count_links(assume_open))
          << "after " << i + 1 << " observations, assume_open="
          << assume_open;
    }
  }
}

// ---- Wire/MRT round trips on randomised inputs.

TEST_P(SeededProperty, UpdateWireRoundTrip) {
  Rng rng(GetParam() ^ 0x77);
  for (int round = 0; round < 25; ++round) {
    bgp::UpdateMessage update;
    const std::size_t path_len = rng.uniform(1, 8);
    std::vector<bgp::Asn> asns;
    for (std::size_t i = 0; i < path_len; ++i)
      asns.push_back(static_cast<bgp::Asn>(rng.uniform(1, 4000000)));
    update.attrs.as_path = AsPath(asns);
    update.attrs.next_hop =
        static_cast<std::uint32_t>(rng.uniform(1, 1u << 31));
    if (rng.chance(0.5)) {
      update.attrs.has_local_pref = true;
      update.attrs.local_pref = static_cast<std::uint32_t>(rng.uniform(0, 500));
    }
    const std::size_t n_comm = rng.uniform(0, 10);
    for (std::size_t i = 0; i < n_comm; ++i)
      update.attrs.communities.push_back(Community(
          static_cast<std::uint16_t>(rng.uniform(0, 0xffff)),
          static_cast<std::uint16_t>(rng.uniform(0, 0xffff))));
    const std::size_t n_nlri = rng.uniform(1, 4);
    for (std::size_t i = 0; i < n_nlri; ++i)
      update.nlri.push_back(
          IpPrefix(static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff)),
                   static_cast<std::uint8_t>(rng.uniform(8, 32))));
    const auto bytes = bgp::encode_update(update, true);
    EXPECT_EQ(bgp::decode_update(bytes, true), update);
  }
}

TEST_P(SeededProperty, MrtRibRoundTrip) {
  Rng rng(GetParam() ^ 0x99);
  bgp::Rib rib;
  const std::size_t n = rng.uniform(5, 40);
  for (std::size_t i = 0; i < n; ++i) {
    bgp::Route route;
    route.prefix =
        IpPrefix(static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff)),
                 static_cast<std::uint8_t>(rng.uniform(8, 28)));
    route.attrs.as_path =
        AsPath({static_cast<bgp::Asn>(rng.uniform(1, 70000)),
                static_cast<bgp::Asn>(rng.uniform(1, 70000))});
    route.attrs.next_hop = 1;
    if (rng.chance(0.7))
      route.attrs.communities.push_back(
          Community(static_cast<std::uint16_t>(rng.uniform(0, 0xffff)),
                    static_cast<std::uint16_t>(rng.uniform(0, 0xffff))));
    rib.announce(static_cast<bgp::Asn>(rng.uniform(1, 70000)),
                 static_cast<std::uint32_t>(rng.uniform(1, 1000)),
                 std::move(route));
  }
  const auto archive = mrt::dump_rib(rib, 7, 9, "prop");
  const bgp::Rib parsed = mrt::parse_rib(archive);
  EXPECT_EQ(parsed.path_count(), rib.path_count());
  for (const auto& prefix : rib.prefixes()) {
    const auto& want = rib.paths(prefix);
    const auto& got = parsed.paths(prefix);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(got[i].route, want[i].route);
  }
}

// ---- Every path selected by the propagation model is valley-free, on
// random topologies.

TEST_P(SeededProperty, RoutingPathsAreValleyFree) {
  topology::TopologyParams params;
  params.n_ases = 150;
  params.n_clique = 4;
  Rng rng(GetParam() ^ 0x1234);
  const auto topo = topology::generate_topology(params, rng);
  const auto rel = topo.graph.rel_fn();

  Rng pick(GetParam());
  const auto ases = topo.graph.ases();
  for (int round = 0; round < 6; ++round) {
    const auto origin = pick.pick(ases);
    const auto tree = propagation::compute_routes(topo.graph, origin);
    for (const auto asn : ases) {
      auto path = tree.path_from(asn);
      if (!path) continue;
      EXPECT_TRUE(bgp::is_valley_free(*path, rel))
          << "origin " << origin << " path " << path->to_string();
      EXPECT_EQ(path->origin(), origin);
      EXPECT_EQ(path->head(), asn);
      EXPECT_FALSE(path->has_cycle());
    }
  }
}

// ---- RIB best-path is maximal under the decision process.

TEST_P(SeededProperty, RibBestIsMaximal) {
  Rng rng(GetParam() ^ 0x4242);
  bgp::Rib rib;
  const IpPrefix prefix(0x0A000000, 16);
  const std::size_t n = rng.uniform(2, 10);
  for (std::size_t i = 0; i < n; ++i) {
    bgp::Route route;
    route.prefix = prefix;
    std::vector<bgp::Asn> asns;
    const std::size_t len = rng.uniform(1, 5);
    for (std::size_t k = 0; k < len; ++k)
      asns.push_back(static_cast<bgp::Asn>(rng.uniform(1, 9999)));
    route.attrs.as_path = AsPath(asns);
    route.attrs.next_hop = static_cast<std::uint32_t>(i);
    if (rng.chance(0.5)) {
      route.attrs.has_local_pref = true;
      route.attrs.local_pref = static_cast<std::uint32_t>(rng.uniform(50, 200));
    }
    rib.announce(static_cast<bgp::Asn>(100 + i), static_cast<std::uint32_t>(i),
                 std::move(route));
  }
  const auto best = rib.best(prefix);
  ASSERT_TRUE(best);
  for (const auto& entry : rib.paths(prefix)) {
    EXPECT_FALSE(bgp::Rib::better(entry, *best))
        << "entry from AS" << entry.peer_asn << " beats the chosen best";
  }
}

// ---- Customer cones are monotone: a provider's cone contains each
// customer's cone.

TEST_P(SeededProperty, CustomerConesAreMonotone) {
  topology::TopologyParams params;
  params.n_ases = 120;
  params.n_clique = 4;
  Rng rng(GetParam() ^ 0x5150);
  const auto topo = topology::generate_topology(params, rng);
  for (const auto asn : topo.transits) {
    const auto cone = topo.graph.customer_cone(asn);
    for (const auto customer : topo.graph.customers(asn)) {
      for (const auto member : topo.graph.customer_cone(customer))
        EXPECT_TRUE(cone.count(member))
            << "AS" << member << " in cone of customer AS" << customer
            << " but not of provider AS" << asn;
    }
  }
}

}  // namespace
}  // namespace mlp
