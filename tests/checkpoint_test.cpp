// Checkpoint/restore: the file image (CRC32C, torn-write rejection,
// generation fallback) and the session round trip (serialize mid-stream,
// restore into a fresh session, continue from the acknowledged offsets,
// finish byte-identical to the uninterrupted run -- the exactly-once
// resume contract).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/passive.hpp"
#include "pipeline/checkpoint.hpp"
#include "pipeline/live_session.hpp"
#include "scenario/scenario.hpp"
#include "stream/bmp_framer.hpp"
#include "util/errors.hpp"

namespace mlp::pipeline {
namespace {

// ------------------------------------------------------------- fixtures

scenario::Scenario make_scenario(std::uint64_t seed = 424242) {
  scenario::ScenarioParams params;
  params.topology.n_ases = 400;
  params.membership_scale = 0.15;
  params.seed = seed;
  return scenario::Scenario(params);
}

std::vector<std::uint8_t> random_payload(std::size_t size,
                                         std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> payload(size);
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng());
  return payload;
}

/// Scratch directory for the file-layer tests, removed on destruction.
struct TempDir {
  TempDir() {
    path = (std::filesystem::temp_directory_path() /
            ("mlp_ckpt_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string file(const std::string& name) const {
    return path + "/" + name;
  }
  std::string path;
  static inline int counter = 0;
};

void write_raw(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

std::vector<std::uint8_t> read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

// ------------------------------------------------------ CRC + file image

TEST(Crc32c, KnownAnswers) {
  // The canonical CRC32C check value (iSCSI test vector).
  const std::string nine = "123456789";
  EXPECT_EQ(crc32c(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(nine.data()),
                nine.size())),
            0xE3069283u);
  EXPECT_EQ(crc32c({}), 0x00000000u);
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);  // RFC 3720 B.4 vector
}

TEST(CheckpointImage, EncodeDecodeRoundTrip) {
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{63}, std::size_t{4096}}) {
    const auto payload = random_payload(size, 7 + size);
    const auto image = encode_checkpoint(payload);
    EXPECT_EQ(image.size(), payload.size() + 24);
    EXPECT_EQ(decode_checkpoint(image), payload);
  }
}

TEST(CheckpointImage, TruncationAtEvery64ByteBoundaryRejected) {
  // A torn write can stop at any point; no prefix may decode. Every
  // 64-byte boundary plus the off-by-one edges around the header.
  const auto payload = random_payload(4096 + 17, 99);
  const auto image = encode_checkpoint(payload);
  std::vector<std::size_t> cuts = {0, 1, 23, 24, 25, image.size() - 1};
  for (std::size_t cut = 64; cut < image.size(); cut += 64)
    cuts.push_back(cut);
  for (const std::size_t cut : cuts) {
    EXPECT_THROW(
        decode_checkpoint(std::span<const std::uint8_t>(image.data(), cut)),
        ParseError)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(CheckpointImage, EveryByteFlipRejected) {
  // Flip each byte of a small image in turn (all 8 bits): magic, version,
  // length, CRC and payload corruption must all surface as ParseError.
  const auto payload = random_payload(256, 3);
  const auto image = encode_checkpoint(payload);
  for (std::size_t at = 0; at < image.size(); ++at) {
    auto corrupt = image;
    corrupt[at] ^= 0xFF;
    EXPECT_THROW(decode_checkpoint(corrupt), ParseError)
        << "flip at byte " << at << " decoded";
  }
  // A single-bit flip in the payload must be caught too.
  auto one_bit = image;
  one_bit[24 + 100] ^= 0x01;
  EXPECT_THROW(decode_checkpoint(one_bit), ParseError);
}

TEST(CheckpointImage, VersionMismatchRejected) {
  const auto payload = random_payload(64, 5);
  auto image = encode_checkpoint(payload);
  image[11] = kCheckpointVersion + 1;  // version u32 lives at bytes 8..11
  EXPECT_THROW(decode_checkpoint(image), ParseError);
}

// -------------------------------------------------- generation rotation

TEST(CheckpointFile, RotationKeepsPreviousGeneration) {
  TempDir dir;
  const std::string path = dir.file("ckpt.bin");
  const auto gen1 = random_payload(512, 1);
  const auto gen2 = random_payload(700, 2);

  write_checkpoint_file(path, gen1);
  EXPECT_EQ(read_checkpoint_file(path).payload, gen1);
  EXPECT_FALSE(std::filesystem::exists(path + ".1"));

  write_checkpoint_file(path, gen2);
  const auto loaded = read_checkpoint_file(path);
  EXPECT_EQ(loaded.payload, gen2);
  EXPECT_FALSE(loaded.from_previous_generation);
  // The previous generation survives, itself a complete valid image.
  EXPECT_EQ(decode_checkpoint(read_raw(path + ".1")), gen1);
}

TEST(CheckpointFile, FallsBackOneGenerationOnCorruption) {
  TempDir dir;
  const std::string path = dir.file("ckpt.bin");
  const auto gen1 = random_payload(512, 1);
  const auto gen2 = random_payload(700, 2);
  write_checkpoint_file(path, gen1);
  write_checkpoint_file(path, gen2);

  // Corrupt the newest generation at every 64-byte truncation point:
  // the loader must serve the previous generation every time.
  const auto image = read_raw(path);
  for (std::size_t cut = 0; cut < image.size(); cut += 64) {
    write_raw(path, std::span<const std::uint8_t>(image.data(), cut));
    const auto loaded = read_checkpoint_file(path);
    EXPECT_EQ(loaded.payload, gen1) << "truncated to " << cut;
    EXPECT_TRUE(loaded.from_previous_generation);
  }
  // Bit rot instead of truncation: same fallback.
  auto flipped = image;
  flipped[flipped.size() / 2] ^= 0x10;
  write_raw(path, flipped);
  EXPECT_EQ(read_checkpoint_file(path).payload, gen1);

  // Both generations bad: loud failure, never garbage.
  write_raw(path + ".1", std::span<const std::uint8_t>(flipped.data(), 8));
  EXPECT_THROW((void)read_checkpoint_file(path), CheckpointError);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  EXPECT_THROW((void)read_checkpoint_file(path), CheckpointError);
}

// ------------------------------------------------- session round trips

struct RunResult {
  std::vector<std::set<bgp::AsLink>> links;
  std::set<bgp::AsLink> all_links;
  std::size_t paths_seen = 0;
  std::size_t observations = 0;
  std::uint64_t records = 0;
};

RunResult digest(const LiveResult& result) {
  RunResult digest;
  for (const auto& ixp : result.per_ixp) digest.links.push_back(ixp.links);
  digest.all_links = result.all_links;
  digest.paths_seen = result.passive.paths_seen;
  digest.observations = result.passive.observations;
  digest.records = result.records;
  return digest;
}

void expect_same(const RunResult& got, const RunResult& want,
                 const std::string& label) {
  ASSERT_EQ(got.links.size(), want.links.size()) << label;
  for (std::size_t i = 0; i < want.links.size(); ++i)
    EXPECT_EQ(got.links[i], want.links[i]) << label << " ixp " << i;
  EXPECT_EQ(got.all_links, want.all_links) << label;
  EXPECT_EQ(got.paths_seen, want.paths_seen) << label;
  EXPECT_EQ(got.observations, want.observations) << label;
  EXPECT_EQ(got.records, want.records) << label;
}

LiveConfig session_config(std::size_t threads) {
  LiveConfig config;
  config.threads = threads;
  config.batch_size = 64;
  return config;
}

std::vector<FeedHandle> add_feeds(LiveSession& session, std::size_t count,
                                  Transport transport) {
  std::vector<FeedHandle> handles;
  for (std::size_t i = 0; i < count; ++i) {
    FeedOptions options;
    options.name = "feed" + std::to_string(i);
    options.transport = transport;
    handles.push_back(session.add_feed(options));
  }
  return handles;
}

void feed_range(FeedHandle& handle, std::span<const std::uint8_t> data,
                std::size_t chunk, std::mt19937* jitter = nullptr) {
  std::size_t at = 0;
  while (at < data.size()) {
    std::size_t n = std::min(chunk, data.size() - at);
    if (jitter != nullptr)
      n = std::min<std::size_t>(data.size() - at,
                                1 + (*jitter)() % (2 * chunk));
    handle.feed(data.subspan(at, n));
    at += n;
  }
}

TEST(SessionCheckpoint, ResumeMatchesUninterruptedRunMatrix) {
  // The exactly-once contract, as a property over {threads} x {chunking}
  // x {split point}: serialize mid-stream, restore into a fresh session,
  // re-feed from the acknowledged offset with a DIFFERENT chunking, and
  // the finished result must be byte-identical to the uninterrupted run.
  auto s = make_scenario();
  const auto ixps = s.ixp_contexts();
  const auto data = s.collectors().front().update_dump(1367366400);
  ASSERT_GT(data.size(), 2048u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    LiveSession uninterrupted(session_config(threads), ixps);
    auto ref_handles = add_feeds(uninterrupted, 1, Transport::RawMrt);
    feed_range(ref_handles[0], data, 4096);
    const RunResult want = digest(uninterrupted.finish());
    ASSERT_FALSE(want.all_links.empty());

    std::mt19937 rng(1000 + threads);
    const std::vector<std::size_t> splits = {
        1, 13, data.size() / 3, data.size() / 2, data.size() - 1};
    for (const std::size_t split : splits) {
      for (const std::size_t chunk : {std::size_t{1 + rng() % 97},
                                      std::size_t{4096}}) {
        LiveSession first(session_config(threads), ixps);
        auto first_handles = add_feeds(first, 1, Transport::RawMrt);
        feed_range(first_handles[0],
                   std::span<const std::uint8_t>(data.data(), split), chunk,
                   &rng);
        const auto payload = first.serialize_state();
        const auto acked = first.acknowledged_offsets();
        ASSERT_EQ(acked.size(), 1u);
        // The acked offset never exceeds what was fed, and everything
        // before it is covered by the payload.
        ASSERT_LE(acked[0], split);

        LiveSession second(session_config(threads), ixps);
        auto second_handles = add_feeds(second, 1, Transport::RawMrt);
        second.restore_state(payload);
        // The resumed transport replays from the acknowledged offset.
        feed_range(second_handles[0],
                   std::span<const std::uint8_t>(data).subspan(acked[0]),
                   1 + rng() % 512, &rng);
        expect_same(digest(second.finish()), want,
                    "threads " + std::to_string(threads) + " split " +
                        std::to_string(split) + " chunk " +
                        std::to_string(chunk));
      }
    }
  }
}

TEST(SessionCheckpoint, MultiFeedWatermarkResumeMatches) {
  // Two concurrent feeds under the watermark merge, each interrupted at
  // its own offset. Engine/queue contents at the split depend on the
  // interleaving; the restored union must still finish identically.
  auto s = make_scenario(77);
  const auto ixps = s.ixp_contexts();
  ASSERT_GE(s.collectors().size(), 2u);
  const auto data0 = s.collectors()[0].update_dump(1367366400);
  const auto data1 = s.collectors()[1].update_dump(1367366400);

  LiveSession uninterrupted(session_config(2), ixps);
  auto ref_handles = add_feeds(uninterrupted, 2, Transport::RawMrt);
  feed_range(ref_handles[0], data0, 4096);
  feed_range(ref_handles[1], data1, 4096);
  const RunResult want = digest(uninterrupted.finish());

  std::mt19937 rng(5);
  for (int round = 0; round < 4; ++round) {
    const std::size_t split0 = 1 + rng() % (data0.size() - 1);
    const std::size_t split1 = 1 + rng() % (data1.size() - 1);
    LiveSession first(session_config(2), ixps);
    auto first_handles = add_feeds(first, 2, Transport::RawMrt);
    // Interleave the two feeds' prefixes in alternating slices.
    std::size_t at0 = 0, at1 = 0;
    while (at0 < split0 || at1 < split1) {
      if (at0 < split0) {
        const std::size_t n =
            std::min<std::size_t>(split0 - at0, 1 + rng() % 1024);
        first_handles[0].feed(
            std::span<const std::uint8_t>(data0.data() + at0, n));
        at0 += n;
      }
      if (at1 < split1) {
        const std::size_t n =
            std::min<std::size_t>(split1 - at1, 1 + rng() % 1024);
        first_handles[1].feed(
            std::span<const std::uint8_t>(data1.data() + at1, n));
        at1 += n;
      }
    }
    const auto payload = first.serialize_state();
    const auto acked = first.acknowledged_offsets();
    ASSERT_EQ(acked.size(), 2u);

    LiveSession second(session_config(2), ixps);
    auto second_handles = add_feeds(second, 2, Transport::RawMrt);
    second.restore_state(payload);
    feed_range(second_handles[0],
               std::span<const std::uint8_t>(data0).subspan(acked[0]), 777,
               &rng);
    feed_range(second_handles[1],
               std::span<const std::uint8_t>(data1).subspan(acked[1]), 777,
               &rng);
    expect_same(digest(second.finish()), want,
                "round " + std::to_string(round));
  }
}

TEST(SessionCheckpoint, BmpFeedResumeMatches) {
  // The BMP transport serializes both framing layers; the acknowledged
  // offset counts BMP transport bytes.
  auto s = make_scenario(99);
  const auto ixps = s.ixp_contexts();
  const auto data =
      stream::bmp_wrap_updates(s.collectors().front().update_dump(1367366400));

  LiveSession uninterrupted(session_config(1), ixps);
  auto ref_handles = add_feeds(uninterrupted, 1, Transport::Bmp);
  feed_range(ref_handles[0], data, 4096);
  const RunResult want = digest(uninterrupted.finish());

  std::mt19937 rng(6);
  for (const std::size_t split :
       {data.size() / 4, data.size() / 2, data.size() - 3}) {
    LiveSession first(session_config(1), ixps);
    auto first_handles = add_feeds(first, 1, Transport::Bmp);
    feed_range(first_handles[0],
               std::span<const std::uint8_t>(data.data(), split), 997, &rng);
    const auto payload = first.serialize_state();
    const auto acked = first.acknowledged_offsets();

    LiveSession second(session_config(1), ixps);
    auto second_handles = add_feeds(second, 1, Transport::Bmp);
    second.restore_state(payload);
    feed_range(second_handles[0],
               std::span<const std::uint8_t>(data).subspan(acked[0]), 313,
               &rng);
    expect_same(digest(second.finish()), want,
                "bmp split " + std::to_string(split));
  }
}

TEST(SessionCheckpoint, RestoreRejectsMismatchedWiringAndStaysUsable) {
  auto s = make_scenario(11);
  const auto ixps = s.ixp_contexts();
  const auto data = s.collectors().front().update_dump(1367366400);

  LiveSession source(session_config(1), ixps);
  auto source_handles = add_feeds(source, 2, Transport::RawMrt);
  feed_range(source_handles[0],
             std::span<const std::uint8_t>(data.data(), data.size() / 2),
             4096);
  const auto payload = source.serialize_state();

  // Wrong feed count.
  {
    LiveSession session(session_config(1), ixps);
    add_feeds(session, 1, Transport::RawMrt);
    EXPECT_THROW(session.restore_state(payload), InvalidArgument);
  }
  // Wrong transport.
  {
    LiveSession session(session_config(1), ixps);
    add_feeds(session, 2, Transport::Bmp);
    EXPECT_THROW(session.restore_state(payload), InvalidArgument);
  }
  // Wrong feed name.
  {
    LiveSession session(session_config(1), ixps);
    FeedOptions options;
    options.name = "other";
    session.add_feed(options);
    session.add_feed(FeedOptions{});
    EXPECT_THROW(session.restore_state(payload), InvalidArgument);
  }
  // Wrong merge policy.
  {
    auto config = session_config(1);
    config.merge = MergePolicy::Concatenate;
    LiveSession session(config, ixps);
    add_feeds(session, 2, Transport::RawMrt);
    EXPECT_THROW(session.restore_state(payload), InvalidArgument);
  }
  // A session that already ingested bytes cannot be restored over.
  {
    LiveSession session(session_config(1), ixps);
    auto handles = add_feeds(session, 2, Transport::RawMrt);
    handles[0].feed(std::span<const std::uint8_t>(data.data(), 8));
    EXPECT_THROW(session.restore_state(payload), InvalidArgument);
  }
  // After a rejected restore the session is untouched and fully usable:
  // a fresh-session run must equal the never-restored reference.
  {
    LiveSession reference(session_config(1), ixps);
    auto ref_handles = add_feeds(reference, 1, Transport::RawMrt);
    feed_range(ref_handles[0], data, 4096);
    const RunResult want = digest(reference.finish());

    LiveSession session(session_config(1), ixps);
    auto handles = add_feeds(session, 1, Transport::RawMrt);
    EXPECT_THROW(session.restore_state({}), ParseError);
    EXPECT_THROW(session.restore_state(payload), InvalidArgument);
    feed_range(handles[0], data, 4096);
    expect_same(digest(session.finish()), want, "post-rejection run");
  }
}

TEST(SessionCheckpoint, RestoreRejectsGarbageNeverPartiallyApplied) {
  auto s = make_scenario(13);
  const auto ixps = s.ixp_contexts();
  const auto data = s.collectors().front().update_dump(1367366400);

  LiveSession source(session_config(1), ixps);
  auto source_handles = add_feeds(source, 1, Transport::RawMrt);
  feed_range(source_handles[0],
             std::span<const std::uint8_t>(data.data(), data.size() / 2),
             4096);
  const auto payload = source.serialize_state();

  LiveSession reference(session_config(1), ixps);
  auto ref_handles = add_feeds(reference, 1, Transport::RawMrt);
  feed_range(ref_handles[0], data, 4096);
  const RunResult want = digest(reference.finish());

  LiveSession session(session_config(1), ixps);
  auto handles = add_feeds(session, 1, Transport::RawMrt);
  // Truncated payloads, trailing bytes, and random garbage: every
  // rejection must leave the session exactly as wired.
  std::mt19937 rng(21);
  for (std::size_t cut = 0; cut < payload.size();
       cut += 1 + payload.size() / 37) {
    EXPECT_THROW(session.restore_state(
                     std::span<const std::uint8_t>(payload.data(), cut)),
                 std::exception)
        << "truncated payload of " << cut << " bytes applied";
  }
  auto trailing = payload;
  trailing.push_back(0);
  EXPECT_THROW(session.restore_state(trailing), ParseError);
  for (int round = 0; round < 16; ++round) {
    const auto garbage = random_payload(1 + rng() % 512, rng());
    EXPECT_THROW(session.restore_state(garbage), std::exception);
  }
  feed_range(handles[0], data, 4096);
  expect_same(digest(session.finish()), want, "post-garbage run");
}

TEST(SessionCheckpoint, SaveRestoreThroughFilesEndToEnd) {
  TempDir dir;
  const std::string path = dir.file("session.ckpt");
  auto s = make_scenario(31);
  const auto ixps = s.ixp_contexts();
  const auto data = s.collectors().front().update_dump(1367366400);

  LiveSession uninterrupted(session_config(2), ixps);
  auto ref_handles = add_feeds(uninterrupted, 1, Transport::RawMrt);
  feed_range(ref_handles[0], data, 4096);
  const RunResult want = digest(uninterrupted.finish());

  LiveSession first(session_config(2), ixps);
  auto first_handles = add_feeds(first, 1, Transport::RawMrt);
  feed_range(first_handles[0],
             std::span<const std::uint8_t>(data.data(), data.size() / 3),
             2048);
  save_checkpoint(first, path);
  // A later, further-along checkpoint rotates the first one out...
  feed_range(first_handles[0],
             std::span<const std::uint8_t>(data)
                 .subspan(data.size() / 3, data.size() / 3),
             2048);
  save_checkpoint(first, path);
  const auto acked = first.acknowledged_offsets();

  // ...and a torn newest generation falls back to the older snapshot,
  // whose restore still finishes identically (just replaying more).
  {
    LiveSession resumed(session_config(2), ixps);
    auto handles = add_feeds(resumed, 1, Transport::RawMrt);
    const auto loaded = restore_checkpoint(resumed, path);
    EXPECT_FALSE(loaded.from_previous_generation);
    feed_range(handles[0],
               std::span<const std::uint8_t>(data).subspan(acked[0]), 4096);
    expect_same(digest(resumed.finish()), want, "newest generation");
  }
  {
    const auto image = read_raw(path);
    write_raw(path, std::span<const std::uint8_t>(image.data(),
                                                  image.size() / 2));
    LiveSession resumed(session_config(2), ixps);
    auto handles = add_feeds(resumed, 1, Transport::RawMrt);
    const auto loaded = restore_checkpoint(resumed, path);
    EXPECT_TRUE(loaded.from_previous_generation);
    const auto old_acked = resumed.acknowledged_offsets();
    ASSERT_LE(old_acked[0], acked[0]);
    feed_range(handles[0],
               std::span<const std::uint8_t>(data).subspan(old_acked[0]),
               4096);
    expect_same(digest(resumed.finish()), want, "fallback generation");
  }
}

TEST(SessionCheckpoint, EpochCounterSurvivesRestore) {
  // The per-shard epoch counter is part of the v2 payload: a restored
  // session republishes PAST the serialized counter before any pump
  // runs, so a reader comparing epochs across a crash/resume never sees
  // the scale move backwards (or read pre-crash state as fresh).
  auto s = make_scenario(51);
  const auto ixps = s.ixp_contexts();
  const auto data = s.collectors().front().update_dump(1367366400);

  LiveSession first(session_config(1), ixps);
  auto first_handles = add_feeds(first, 1, Transport::RawMrt);
  feed_range(first_handles[0],
             std::span<const std::uint8_t>(data.data(), data.size() / 2),
             1024);
  (void)first.snapshot();  // settle + publish a fresh epoch per shard
  std::vector<std::uint64_t> epochs_before;
  for (std::size_t i = 0; i < ixps.size(); ++i)
    epochs_before.push_back(first.epoch_snapshot(i)->epoch());
  const auto payload = first.serialize_state();
  const auto acked = first.acknowledged_offsets();

  LiveSession second(session_config(1), ixps);
  auto second_handles = add_feeds(second, 1, Transport::RawMrt);
  // A fresh session has published exactly its construction epoch.
  for (std::size_t i = 0; i < ixps.size(); ++i)
    EXPECT_EQ(second.epoch_snapshot(i)->epoch(), 1u) << "ixp " << i;
  second.restore_state(payload);
  for (std::size_t i = 0; i < ixps.size(); ++i) {
    const auto snap = second.epoch_snapshot(i);
    EXPECT_GT(snap->epoch(), epochs_before[i]) << "ixp " << i;
    // The republished snapshot answers from the restored engine, not the
    // fresh one: same link count the source session had published.
    EXPECT_EQ(snap->link_count(), first.epoch_snapshot(i)->link_count())
        << "ixp " << i;
  }
  // Epochs stay monotone through the remaining ingest and the final
  // settle.
  std::vector<std::uint64_t> after_restore;
  for (std::size_t i = 0; i < ixps.size(); ++i)
    after_restore.push_back(second.epoch_snapshot(i)->epoch());
  feed_range(second_handles[0],
             std::span<const std::uint8_t>(data).subspan(acked[0]), 2048);
  (void)second.snapshot();
  for (std::size_t i = 0; i < ixps.size(); ++i)
    EXPECT_GE(second.epoch_snapshot(i)->epoch(), after_restore[i])
        << "ixp " << i;
  (void)second.finish();
}

TEST(SessionCheckpoint, QueueDepthSurfacesInStats) {
  // Under the watermark merge, one feed far behind the other leaves the
  // leading feed's observations queued; the snapshot must expose that
  // backlog, and finish() must drain it to zero.
  auto s = make_scenario(41);
  const auto ixps = s.ixp_contexts();
  const auto data0 = s.collectors()[0].update_dump(1367366400);

  auto config = session_config(1);
  // Bound the announce-window so stable announcements surface as
  // observations mid-stream (FIFO eviction) instead of only at close.
  config.passive.max_pending_announcements = 50;
  LiveSession session(config, ixps);
  auto handles = add_feeds(session, 2, Transport::RawMrt);
  handles[0].feed(data0);  // feed 1 never speaks: frontier stays at 0
  const auto snap = session.snapshot();
  EXPECT_GT(snap.queue_depth, 0u);
  ASSERT_EQ(snap.per_feed.size(), 2u);
  EXPECT_EQ(snap.per_feed[0].queue_depth, snap.queue_depth);
  EXPECT_EQ(snap.per_feed[1].queue_depth, 0u);
  const auto result = session.finish();
  EXPECT_EQ(result.queue_depth, 0u);
}

}  // namespace
}  // namespace mlp::pipeline
