// Tests for the active LG survey (sections 4.1/4.3) and the validation
// framework (section 5.1), both running against simulated looking glasses.
#include <gtest/gtest.h>

#include "core/active.hpp"
#include "core/engine.hpp"
#include "core/validation.hpp"
#include "routeserver/route_server.hpp"

namespace mlp::core {
namespace {

using bgp::AsPath;
using bgp::Community;
using routeserver::ExportPolicy;
using routeserver::IxpCommunityScheme;
using routeserver::RouteServer;
using routeserver::SchemeStyle;

/// A small route server with four members; members 1 and 2 both announce
/// a shared prefix (multi-origin, like an anycast or multihomed customer)
/// to exercise the shared-query optimisation.
class ActiveSurveyTest : public ::testing::Test {
 protected:
  ActiveSurveyTest()
      : rs_(IxpCommunityScheme::make("DE-CIX", 6695,
                                     SchemeStyle::RsAsnBased)) {
    for (Asn member : {kA, kB, kC, kD}) rs_.connect(member, 0xC0000200 + member);
    announce(kA, "10.1.0.0/16", {Community(0, kC)});  // A excludes C
    announce(kA, "10.9.0.0/16", {Community(0, kC)});
    announce(kB, "10.2.0.0/16", {Community(6695, 6695)});
    announce(kB, "10.9.0.0/16", {Community(6695, 6695)});  // shared prefix
    announce(kC, "10.3.0.0/16", {});
    announce(kD, "10.4.0.0/16", {Community(0, 6695), Community(6695, kA)});
  }

  void announce(Asn member, const std::string& prefix,
                std::vector<Community> communities) {
    bgp::Route route;
    route.prefix = *IpPrefix::parse(prefix);
    route.attrs.as_path = AsPath({member});
    route.attrs.next_hop = member;
    route.attrs.communities = std::move(communities);
    rs_.announce(member, std::move(route));
  }

  lg::LgConfig lg_config() {
    lg::LgConfig config;
    config.name = "lg.de-cix";
    config.operator_asn = 6695;
    return config;
  }

  static constexpr Asn kA = 11, kB = 12, kC = 13, kD = 14;
  RouteServer rs_;
};

TEST_F(ActiveSurveyTest, Step1FindsAllMembers) {
  lg::LookingGlassServer lg(lg_config(), &rs_.rib());
  const auto result = run_active_survey(lg);
  EXPECT_EQ(result.rs_members, (std::set<Asn>{kA, kB, kC, kD}));
}

TEST_F(ActiveSurveyTest, ObservationsFeedEngineCorrectly) {
  lg::LookingGlassServer lg(lg_config(), &rs_.rib());
  ActiveConfig config;
  config.prefix_sample_fraction = 1.0;  // exhaustive for correctness check
  const auto result = run_active_survey(lg, config);

  IxpContext ctx;
  ctx.name = "DE-CIX";
  ctx.scheme = rs_.scheme();
  ctx.rs_members = result.rs_members;
  MlpInferenceEngine engine(ctx);
  for (const auto& observation : result.observations)
    engine.add(observation);

  // Expected: A excludes C; D allows only A (NONE+INCLUDE);
  // B, C open. Reciprocity: A-B, A-D, B-C. Not A-C (blocked), not B-D /
  // C-D (D's allow-list holds only A).
  const auto links = engine.infer_links();
  EXPECT_TRUE(links.count(AsLink(kA, kB)));
  EXPECT_TRUE(links.count(AsLink(kA, kD)));
  EXPECT_TRUE(links.count(AsLink(kB, kC)));
  EXPECT_FALSE(links.count(AsLink(kA, kC)));
  EXPECT_FALSE(links.count(AsLink(kB, kD)));
  EXPECT_FALSE(links.count(AsLink(kC, kD)));
  EXPECT_EQ(links.size(), 3u);
}

TEST_F(ActiveSurveyTest, CostAccounting) {
  lg::LookingGlassServer lg(lg_config(), &rs_.rib());
  const auto result = run_active_survey(lg);
  // 1 summary + 4 neighbor queries + prefix queries.
  EXPECT_EQ(result.queries,
            1 + result.member_queries + result.prefix_queries);
  EXPECT_EQ(result.member_queries, 4u);
  // naive = 1 + |A_RS| + sum |P_a| = 1 + 4 + 6 = 11.
  EXPECT_EQ(result.naive_queries, 11u);
  EXPECT_LE(result.queries, result.naive_queries);
  EXPECT_DOUBLE_EQ(result.simulated_hours(3600.0),
                   static_cast<double>(result.queries));
}

TEST_F(ActiveSurveyTest, SharedPrefixQueryCoversTwoMembers) {
  lg::LookingGlassServer lg(lg_config(), &rs_.rib());
  ActiveConfig shared;
  shared.multiplicity_sort = true;
  shared.share_prefix_queries = true;
  const auto with = run_active_survey(lg, shared);

  lg::LookingGlassServer lg2(lg_config(), &rs_.rib());
  ActiveConfig unshared;
  unshared.multiplicity_sort = false;
  unshared.share_prefix_queries = false;
  const auto without = run_active_survey(lg2, unshared);

  EXPECT_LE(with.prefix_queries, without.prefix_queries);
  // 10.9.0.0/16 is advertised by A and B; with sorting it is queried
  // first for A and covers B too.
  EXPECT_LT(with.prefix_queries, 1u + without.prefix_queries);
}

TEST_F(ActiveSurveyTest, SkipMembersReducesCost) {
  lg::LookingGlassServer lg(lg_config(), &rs_.rib());
  const auto full = run_active_survey(lg);
  lg::LookingGlassServer lg2(lg_config(), &rs_.rib());
  const auto reduced = run_active_survey(lg2, {}, {kA, kB});
  EXPECT_LT(reduced.queries, full.queries);
  EXPECT_EQ(reduced.member_queries, 2u);
  // Observations only cover setters whose prefixes got queried; A and B
  // may still appear via shared prefixes of C/D, but none exist here.
  for (const auto& observation : reduced.observations)
    EXPECT_TRUE(observation.setter == kC || observation.setter == kD);
}

TEST_F(ActiveSurveyTest, SampleCapRespected) {
  lg::LookingGlassServer lg(lg_config(), &rs_.rib());
  ActiveConfig config;
  config.prefix_sample_fraction = 1.0;
  config.prefix_sample_cap = 1;  // at most one prefix per member
  const auto result = run_active_survey(lg, config);
  EXPECT_LE(result.prefix_queries, 4u);
}

// ------------------------------------------------------------ validation

TEST(Validation, PathConfirmsLink) {
  EXPECT_TRUE(
      path_confirms_link(AsPath({5, 10, 20}), AsLink(10, 20), {}));
  EXPECT_TRUE(
      path_confirms_link(AsPath({5, 10, 20}), AsLink(5, 10), {}));
  EXPECT_FALSE(
      path_confirms_link(AsPath({5, 10, 20}), AsLink(5, 20), {}));
  // Interposed route-server ASN tolerated.
  EXPECT_TRUE(path_confirms_link(AsPath({5, 10, 6695, 20}), AsLink(10, 20),
                                 {6695}));
  EXPECT_FALSE(path_confirms_link(AsPath({5, 10, 6695, 20}), AsLink(10, 20),
                                  {}));
  // Prepending collapsed.
  EXPECT_TRUE(
      path_confirms_link(AsPath({5, 10, 10, 20}), AsLink(10, 20), {}));
}

TEST(Validation, BestPathOnlyLgMissesAlternatePath) {
  // RIB at the LG: two paths to 10.0.0.0/16; the best avoids link 30-40.
  bgp::Rib rib;
  bgp::Route best;
  best.prefix = *IpPrefix::parse("10.0.0.0/16");
  best.attrs.as_path = AsPath({20, 40});
  best.attrs.next_hop = 1;
  rib.announce(20, 1, best);
  bgp::Route alt;
  alt.prefix = *IpPrefix::parse("10.0.0.0/16");
  alt.attrs.as_path = AsPath({30, 30, 40});  // longer: not best
  alt.attrs.next_hop = 2;
  rib.announce(30, 2, alt);

  lg::LgConfig all_config{"lg-all", 99, /*show_all_paths=*/true, true, 10.0,
                          {}};
  lg::LgConfig best_config{"lg-best", 99, /*show_all_paths=*/false, true,
                           10.0, {}};
  lg::LookingGlassServer lg_all(all_config, &rib);
  lg::LookingGlassServer lg_best(best_config, &rib);

  const std::set<AsLink> links = {AsLink(30, 40)};
  auto relevant = [](const ValidationLg&, const AsLink&) { return true; };
  auto prefixes = [](Asn) {
    return std::vector<IpPrefix>{*IpPrefix::parse("10.0.0.0/16")};
  };
  ValidationConfig config;

  std::vector<ValidationLg> lgs_all = {{"lg-all", 99, &lg_all}};
  const auto report_all =
      validate_links(links, lgs_all, relevant, prefixes, config);
  EXPECT_EQ(report_all.links_confirmed, 1u);

  std::vector<ValidationLg> lgs_best = {{"lg-best", 99, &lg_best}};
  const auto report_best =
      validate_links(links, lgs_best, relevant, prefixes, config);
  EXPECT_EQ(report_best.links_tested, 1u);
  EXPECT_EQ(report_best.links_confirmed, 0u);
  ASSERT_EQ(report_best.per_lg.size(), 1u);
  EXPECT_FALSE(report_best.per_lg[0].shows_all_paths);
}

TEST(Validation, IrrelevantLgsSkipped) {
  bgp::Rib rib;
  lg::LgConfig config{"lg", 99, true, true, 10.0, {}};
  lg::LookingGlassServer lg(config, &rib);
  std::vector<ValidationLg> lgs = {{"lg", 99, &lg}};
  const std::set<AsLink> links = {AsLink(1, 2)};
  const auto report = validate_links(
      links, lgs, [](const ValidationLg&, const AsLink&) { return false; },
      [](Asn) { return std::vector<IpPrefix>{}; }, ValidationConfig{});
  EXPECT_EQ(report.links_tested, 0u);
  EXPECT_EQ(report.queries, 0u);
  EXPECT_DOUBLE_EQ(report.confirm_rate(), 1.0);
}

TEST(Validation, PrefixBudgetRespected) {
  bgp::Rib rib;  // empty: nothing ever confirms
  lg::LgConfig config{"lg", 99, true, true, 10.0, {}};
  lg::LookingGlassServer lg(config, &rib);
  std::vector<ValidationLg> lgs = {{"lg", 7, &lg}};
  const std::set<AsLink> links = {AsLink(7, 8)};
  std::vector<IpPrefix> many;
  for (int i = 0; i < 20; ++i)
    many.push_back(IpPrefix(0x0A000000 + (i << 16), 16));
  ValidationConfig vconfig;
  vconfig.prefixes_per_link = 6;
  const auto report = validate_links(
      links, lgs, [](const ValidationLg&, const AsLink&) { return true; },
      [&](Asn) { return many; }, vconfig);
  // Operator 7 is an endpoint: only the far side (8) is queried, capped
  // at 6 prefixes.
  EXPECT_EQ(report.queries, 6u);
  EXPECT_EQ(report.links_confirmed, 0u);
  EXPECT_EQ(report.unconfirmed_links.size(), 1u);
}

}  // namespace
}  // namespace mlp::core
