#!/usr/bin/env python3
"""Regenerate the golden binary fixtures in this directory.

The fixtures are hand-assembled from the RFC wire formats (RFC 4271 BGP
UPDATE, RFC 6396 MRT, RFC 7854 BMP) on purpose -- they do NOT go through
the repository's own encoders, so a codec regression cannot silently
re-pin itself. The decode-side expectations live in mrt_test.cpp and
stream_test.cpp (GoldenCorpus suites); if you change these bytes, update
those pins in the same commit.

Usage: python3 tests/data/make_golden.py
"""
import struct
import pathlib

HERE = pathlib.Path(__file__).resolve().parent


def prefix_bytes(addr: str, plen: int) -> bytes:
    """RFC 4271 NLRI encoding: length byte + minimal address bytes."""
    octets = [int(x) for x in addr.split(".")]
    need = (plen + 7) // 8
    return bytes([plen] + octets[:need])


def path_attrs(as_path, four_octet_as, communities=(), next_hop=0x0A0A0A0A):
    out = b""
    # ORIGIN (flags 0x40, type 1): IGP
    out += bytes([0x40, 1, 1, 0])
    # AS_PATH (flags 0x40, type 2): one AS_SEQUENCE segment
    fmt = ">I" if four_octet_as else ">H"
    seg = bytes([2, len(as_path)]) + b"".join(
        struct.pack(fmt, a) for a in as_path)
    out += bytes([0x40, 2, len(seg)]) + seg
    # NEXT_HOP (flags 0x40, type 3)
    out += bytes([0x40, 3, 4]) + struct.pack(">I", next_hop)
    # COMMUNITIES (flags 0xC0, type 8)
    if communities:
        body = b"".join(struct.pack(">HH", hi, lo) for hi, lo in communities)
        out += bytes([0xC0, 8, len(body)]) + body
    return out


def bgp_update(nlri=(), withdrawn=(), as_path=(), four_octet_as=True,
               communities=()):
    withdrawn_b = b"".join(prefix_bytes(a, p) for a, p in withdrawn)
    attrs_b = path_attrs(as_path, four_octet_as, communities) if nlri else b""
    nlri_b = b"".join(prefix_bytes(a, p) for a, p in nlri)
    body = (struct.pack(">H", len(withdrawn_b)) + withdrawn_b +
            struct.pack(">H", len(attrs_b)) + attrs_b + nlri_b)
    total = 19 + len(body)
    return b"\xff" * 16 + struct.pack(">H", total) + b"\x02" + body


def mrt_record(timestamp, mrt_type, subtype, body):
    return struct.pack(">IHHI", timestamp, mrt_type, subtype,
                       len(body)) + body


def bgp4mp_body(peer_asn, peer_ip, pdu, four_octet_as=True):
    fmt = ">IIHHII" if four_octet_as else ">HHHHII"
    return struct.pack(fmt, peer_asn, 0, 0, 1, peer_ip, 0) + pdu


def ip(a, b, c, d):
    return (a << 24) | (b << 16) | (c << 8) | d


def golden_updates() -> bytes:
    out = b""
    # 1: AS4 announce 10.1.0.0/16, path 5 10 20, DE-CIX ALL community
    out += mrt_record(1000, 16, 4, bgp4mp_body(5, ip(10, 0, 0, 5), bgp_update(
        nlri=[("10.1.0.0", 16)], as_path=[5, 10, 20],
        communities=[(6695, 6695)])))
    # 2: AS4 announce 10.2.0.0/16, reversed member order (setter 10)
    out += mrt_record(1010, 16, 4, bgp4mp_body(5, ip(10, 0, 0, 5), bgp_update(
        nlri=[("10.2.0.0", 16)], as_path=[5, 20, 10],
        communities=[(6695, 6695)])))
    # 3: 2-byte-AS subtype announce 10.3.0.0/16, MSK-IX community
    out += mrt_record(1020, 16, 1, bgp4mp_body(5, ip(10, 0, 0, 5), bgp_update(
        nlri=[("10.3.0.0", 16)], as_path=[5, 10, 20],
        communities=[(8631, 8631)], four_octet_as=False),
        four_octet_as=False))
    # 4: AS4 withdrawal of 10.1.0.0/16 (settles the pending announcement)
    out += mrt_record(1100, 16, 4, bgp4mp_body(5, ip(10, 0, 0, 5), bgp_update(
        withdrawn=[("10.1.0.0", 16)])))
    # 5: PEER_INDEX_TABLE (update consumers step over it)
    peer_table = (struct.pack(">I", ip(192, 0, 2, 1)) +
                  struct.pack(">H", 6) + b"golden" +
                  struct.pack(">H", 1) +
                  bytes([0x02]) + struct.pack(">III", ip(10, 0, 0, 5),
                                              ip(10, 0, 0, 5), 5))
    out += mrt_record(1150, 13, 1, peer_table)
    # 6: AS4 announce 10.4.0.0/24 from a second vantage peer
    out += mrt_record(1200, 16, 4, bgp4mp_body(7, ip(10, 0, 0, 7), bgp_update(
        nlri=[("10.4.0.0", 24)], as_path=[7, 20, 10],
        communities=[(8631, 8631)])))
    return out


def bmp_message(msg_type, payload):
    return bytes([3]) + struct.pack(">I", 6 + len(payload)) + \
        bytes([msg_type]) + payload


def bmp_per_peer(peer_asn, peer_ip, timestamp, flags=0, addr16=None):
    """RFC 7854 4.2 per-peer header. `addr16` overrides the 16-byte peer
    address field (IPv6 peers); otherwise peer_ip goes in the low 4 bytes."""
    addr = addr16 if addr16 is not None else b"\x00" * 12 + \
        struct.pack(">I", peer_ip)
    assert len(addr) == 16
    return (bytes([0, flags]) + b"\x00" * 8 + addr +
            struct.pack(">I", peer_asn) +
            struct.pack(">I", peer_ip) + struct.pack(">II", timestamp, 0))


def bgp_open(bgp_id):
    """Minimal OPEN PDU for Peer Up bodies (not parsed by the pipeline)."""
    body = bytes([4]) + struct.pack(">HH", 0, 180) + \
        struct.pack(">I", bgp_id) + bytes([0])
    return b"\xff" * 16 + struct.pack(">H", 19 + len(body)) + b"\x01" + body


def bmp_peer_up(peer_asn, peer_ip, timestamp):
    """Peer Up (type 3): per-peer header, local address/ports, two OPENs."""
    body = b"\x00" * 16 + struct.pack(">HH", 179, 179) + \
        bgp_open(ip(192, 0, 2, 1)) + bgp_open(peer_ip)
    return bmp_message(3, bmp_per_peer(peer_asn, peer_ip, timestamp) + body)


def bmp_peer_down(peer_asn, peer_ip, timestamp, reason=1):
    """Peer Down (type 2): per-peer header + reason code."""
    return bmp_message(2, bmp_per_peer(peer_asn, peer_ip, timestamp) +
                       bytes([reason]))


def golden_bmp() -> bytes:
    out = b""
    # Initiation with a sysDescr TLV
    out += bmp_message(4, struct.pack(">HH", 1, 6) + b"golden")
    # Peer Up: the monitored router's session with peer 5 establishes
    out += bmp_peer_up(5, ip(10, 0, 0, 5), 1995)
    # Route Monitoring: announce 10.1.0.0/16, path 5 10 20, DE-CIX ALL
    out += bmp_message(0, bmp_per_peer(5, ip(10, 0, 0, 5), 2000) + bgp_update(
        nlri=[("10.1.0.0", 16)], as_path=[5, 10, 20],
        communities=[(6695, 6695)]))
    # Route Monitoring wrapping a KEEPALIVE (type 4): stepped over
    keepalive = b"\xff" * 16 + struct.pack(">H", 19) + b"\x04"
    out += bmp_message(0, bmp_per_peer(5, ip(10, 0, 0, 5), 2005) + keepalive)
    # Route Monitoring for an IPv6 peer (V flag): synthesizes an AFI-2
    # BGP4MP record end-to-end
    v6 = bytes([0x20, 0x01, 0x0d, 0xb8]) + b"\x00" * 11 + bytes([5])
    out += bmp_message(0, bmp_per_peer(5, 0, 2010, flags=0x80, addr16=v6) +
                       bgp_update(
        nlri=[("10.9.0.0", 16)], as_path=[5, 10, 20],
        communities=[(6695, 6695)]))
    # Stats Report (type 1): per-peer header + count of 0 TLVs
    out += bmp_message(1, bmp_per_peer(5, ip(10, 0, 0, 5), 2015) +
                       struct.pack(">I", 0))
    # Route Monitoring: announce 10.2.0.0/16, reversed member order
    out += bmp_message(0, bmp_per_peer(5, ip(10, 0, 0, 5), 2020) + bgp_update(
        nlri=[("10.2.0.0", 16)], as_path=[5, 20, 10],
        communities=[(6695, 6695)]))
    # Route Monitoring from a legacy peer (A flag, RFC 7854 4.2): the PDU
    # carries 2-octet AS_PATH segments and the MSK-IX community
    out += bmp_message(0, bmp_per_peer(5, ip(10, 0, 0, 5), 2025, flags=0x20)
                       + bgp_update(
        nlri=[("10.3.0.0", 16)], as_path=[5, 10, 20],
        communities=[(8631, 8631)], four_octet_as=False))
    # Peer Down (reason 1: local system closed): evicts peer 5's four
    # still-pending announcements at stream time 2030
    out += bmp_peer_down(5, ip(10, 0, 0, 5), 2030)
    # Termination with a reason TLV
    out += bmp_message(5, struct.pack(">HHH", 1, 2, 0))
    return out


def main():
    (HERE / "golden_updates.mrt").write_bytes(golden_updates())
    (HERE / "golden_session.bmp").write_bytes(golden_bmp())
    print("wrote", HERE / "golden_updates.mrt")
    print("wrote", HERE / "golden_session.bmp")


if __name__ == "__main__":
    main()
