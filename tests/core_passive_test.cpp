// Tests for the passive pipeline (section 4.2): IXP attribution,
// RS-setter identification cases 1-3, transient filtering, MRT intake.
#include <gtest/gtest.h>

#include "core/passive.hpp"
#include "mrt/table_dump.hpp"

namespace mlp::core {
namespace {

using bgp::Community;
using routeserver::IxpCommunityScheme;
using routeserver::SchemeStyle;

// Two IXPs with distinct schemes; members overlap partially so the
// EXCLUDE-only disambiguation has something to chew on.
std::vector<IxpContext> two_ixps() {
  IxpContext decix;
  decix.name = "DE-CIX";
  decix.scheme =
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  decix.rs_members = {10, 20, 30, 40};

  IxpContext mskix;
  mskix.name = "MSK-IX";
  mskix.scheme =
      IxpCommunityScheme::make("MSK-IX", 8631, SchemeStyle::RsAsnBased);
  mskix.rs_members = {10, 20, 50, 60};
  return {decix, mskix};
}

/// Ground-truth relationships for setter case 3: path 99 -> 10 -> 20 where
/// 99 is customer of 10 and 10~20 peer.
bgp::RelFn simple_rels() {
  return [](Asn from, Asn to) -> std::optional<bgp::Rel> {
    if (from == 99 && to == 10) return bgp::Rel::C2P;
    if (from == 10 && to == 99) return bgp::Rel::P2C;
    if ((from == 10 && to == 20) || (from == 20 && to == 10))
      return bgp::Rel::P2P;
    if (from == 20 && to == 30) return bgp::Rel::P2C;
    if (from == 30 && to == 20) return bgp::Rel::C2P;
    return std::nullopt;
  };
}

IpPrefix pfx(const std::string& text) { return *IpPrefix::parse(text); }

TEST(Passive, DirectAttributionByRsAsn) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  // Path E(5) D(10) A(20): two members, setter = 20 (closest to origin);
  // community 6695:6695 pins DE-CIX.
  extractor.consume_path(bgp::AsPath({5, 10, 20}), pfx("10.0.0.0/16"),
                         {Community(6695, 6695)});
  const auto& obs = extractor.observations();
  ASSERT_EQ(obs.count("DE-CIX"), 1u);
  ASSERT_EQ(obs.at("DE-CIX").size(), 1u);
  EXPECT_EQ(obs.at("DE-CIX")[0].setter, 20u);
  EXPECT_EQ(extractor.stats().observations, 1u);
}

TEST(Passive, ExcludeOnlyDisambiguatedByMembership) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  // 0:50 -- AS50 is only a member at MSK-IX, so the EXCLUDE-only set
  // attributes there despite both schemes sharing the 0:peer pattern.
  extractor.consume_path(bgp::AsPath({5, 10, 20}), pfx("10.0.0.0/16"),
                         {Community(0, 50)});
  const auto& obs = extractor.observations();
  EXPECT_EQ(obs.count("DE-CIX"), 0u);
  ASSERT_EQ(obs.count("MSK-IX"), 1u);
  EXPECT_EQ(obs.at("MSK-IX")[0].setter, 20u);
}

TEST(Passive, ExcludeOnlyAmbiguousDropped) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  // 0:10 -- AS10 is a member at both IXPs: unresolvable.
  extractor.consume_path(bgp::AsPath({5, 10, 20}), pfx("10.0.0.0/16"),
                         {Community(0, 10)});
  EXPECT_TRUE(extractor.observations().empty());
  EXPECT_EQ(extractor.stats().paths_ambiguous_ixp, 1u);
}

TEST(Passive, NoRsValues) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  extractor.consume_path(bgp::AsPath({5, 10, 20}), pfx("10.0.0.0/16"),
                         {Community(3356, 100)});
  EXPECT_EQ(extractor.stats().paths_no_rs_values, 1u);
  extractor.consume_path(bgp::AsPath({5, 10, 20}), pfx("10.0.0.0/16"), {});
  EXPECT_EQ(extractor.stats().paths_no_rs_values, 2u);
}

TEST(Passive, SetterCase1TooFewMembers) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  // Only one RS member (20) in the path: cannot pinpoint the setter.
  extractor.consume_path(bgp::AsPath({5, 7, 20}), pfx("10.0.0.0/16"),
                         {Community(6695, 6695)});
  EXPECT_EQ(extractor.stats().paths_no_setter, 1u);
  EXPECT_TRUE(extractor.observations().empty());
}

TEST(Passive, SetterCase2NonAdjacentMembersRejected) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  // Members 10 and 20 separated by non-member 7: no RS crossing.
  extractor.consume_path(bgp::AsPath({5, 10, 7, 20}), pfx("10.0.0.0/16"),
                         {Community(6695, 6695)});
  EXPECT_EQ(extractor.stats().paths_no_setter, 1u);
}

TEST(Passive, SetterCase3UsesRelationships) {
  PassiveExtractor extractor(two_ixps(), simple_rels());
  // Path 99 10 20 30: members 10, 20, 30 (three members). 10~20 is the
  // p2p step; the setter is 20 (p2p side closest to the prefix).
  extractor.consume_path(bgp::AsPath({99, 10, 20, 30}), pfx("10.0.0.0/16"),
                         {Community(6695, 6695)});
  const auto& obs = extractor.observations();
  ASSERT_EQ(obs.count("DE-CIX"), 1u);
  EXPECT_EQ(obs.at("DE-CIX")[0].setter, 20u);
}

TEST(Passive, SetterCase3FailsWithoutRelationships) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  extractor.consume_path(bgp::AsPath({99, 10, 20, 30}), pfx("10.0.0.0/16"),
                         {Community(6695, 6695)});
  EXPECT_EQ(extractor.stats().paths_no_setter, 1u);
}

TEST(Passive, DirtyPathsDropped) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  extractor.consume_path(bgp::AsPath({5, 10, 5, 20}), pfx("10.0.0.0/16"),
                         {Community(6695, 6695)});  // cycle
  extractor.consume_path(bgp::AsPath({5, 23456, 20}), pfx("10.0.0.0/16"),
                         {Community(6695, 6695)});  // reserved ASN
  EXPECT_EQ(extractor.stats().paths_dirty, 2u);
  EXPECT_TRUE(extractor.observations().empty());
}

TEST(Passive, OnlySchemeCommunitiesRecorded) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  extractor.consume_path(
      bgp::AsPath({5, 10, 20}), pfx("10.0.0.0/16"),
      {Community(6695, 6695), Community(3356, 42), Community(0, 30)});
  const auto& obs = extractor.observations().at("DE-CIX");
  ASSERT_EQ(obs.size(), 1u);
  // 3356:42 is unrelated and must not leak into the observation.
  EXPECT_EQ(obs[0].communities.size(), 2u);
  EXPECT_EQ(obs[0].communities[0], Community(6695, 6695));
  EXPECT_EQ(obs[0].communities[1], Community(0, 30));
}

TEST(Passive, TableDumpIntake) {
  // Build a collector RIB with one RS-community-tagged path and parse the
  // genuine MRT bytes end to end.
  bgp::Rib rib;
  bgp::Route route;
  route.prefix = pfx("10.0.0.0/16");
  route.attrs.as_path = bgp::AsPath({5, 10, 20});
  route.attrs.next_hop = 1;
  route.attrs.communities = {Community(6695, 6695)};
  rib.announce(5, 0x0505, route);
  const auto archive = mrt::dump_rib(rib, 1367366400, 1, "bview");

  PassiveExtractor extractor(two_ixps(), nullptr);
  extractor.consume_table_dump(archive);
  EXPECT_EQ(extractor.stats().observations, 1u);
  EXPECT_EQ(extractor.observations().at("DE-CIX")[0].setter, 20u);
}

TEST(Passive, TransientAnnouncementsFiltered) {
  PassiveConfig config;
  config.min_duration_s = 600;
  PassiveExtractor extractor(two_ixps(), nullptr, config);

  std::vector<mrt::ObservedUpdate> updates;
  auto announce = [&](std::uint32_t t, const std::string& prefix) {
    mrt::ObservedUpdate u;
    u.timestamp = t;
    u.peer_asn = 5;
    u.peer_ip = 0x0505;
    u.update.nlri = {pfx(prefix)};
    u.update.attrs.as_path = bgp::AsPath({5, 10, 20});
    u.update.attrs.next_hop = 1;
    u.update.attrs.communities = {Community(6695, 6695)};
    updates.push_back(std::move(u));
  };
  auto withdraw = [&](std::uint32_t t, const std::string& prefix) {
    mrt::ObservedUpdate u;
    u.timestamp = t;
    u.peer_asn = 5;
    u.peer_ip = 0x0505;
    u.update.withdrawn = {pfx(prefix)};
    updates.push_back(std::move(u));
  };

  announce(1000, "10.0.0.0/16");   // withdrawn after 100s: transient
  withdraw(1100, "10.0.0.0/16");
  announce(1000, "10.1.0.0/16");   // withdrawn after 2000s: stable
  withdraw(3000, "10.1.0.0/16");
  announce(5000, "10.2.0.0/16");   // never withdrawn: stable

  const auto archive = mrt::dump_updates(updates, 65000, 1);
  extractor.consume_update_stream(archive);
  EXPECT_EQ(extractor.stats().paths_transient, 1u);
  EXPECT_EQ(extractor.stats().observations, 2u);
}

TEST(Passive, SinkModeStreamsBatchesByDenseIndex) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  std::vector<std::pair<std::size_t, std::size_t>> batches;  // (ixp, size)
  std::size_t during_consume = 0;
  extractor.set_sink(
      [&](std::size_t ixp, std::vector<Observation>&& batch) {
        batches.emplace_back(ixp, batch.size());
      },
      /*batch_size=*/2);

  // Three DE-CIX (dense index 0) observations: a full batch of 2 must be
  // emitted while input is still being consumed, the remainder on
  // finish().
  for (int i = 0; i < 3; ++i) {
    extractor.consume_path(bgp::AsPath({5, 10, 20}), pfx("10.0.0.0/16"),
                           {Community(6695, 6695)});
    if (i == 1) during_consume = batches.size();
  }
  EXPECT_EQ(during_consume, 1u);  // emitted mid-stream, not at the end
  // One MSK-IX (dense index 1) observation stays below the batch size.
  extractor.consume_path(bgp::AsPath({5, 10, 20}), pfx("10.1.0.0/16"),
                         {Community(8631, 8631)});
  extractor.finish();

  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0], (std::pair<std::size_t, std::size_t>{0, 2}));
  EXPECT_EQ(batches[1], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(batches[2], (std::pair<std::size_t, std::size_t>{1, 1}));
  EXPECT_EQ(extractor.stats().observations, 4u);
  // The accumulate-mode accessors are off limits in streaming mode.
  EXPECT_THROW(extractor.observations(), InvalidArgument);
}

TEST(Passive, IncrementalUpdatesMatchArchiveConsumption) {
  // consume_update fed message by message must equal consume_update_stream
  // over the serialized archive (same announce-window, same flush).
  PassiveConfig config;
  config.min_duration_s = 600;

  std::vector<mrt::ObservedUpdate> updates;
  auto announce = [&](std::uint32_t t, const std::string& prefix) {
    mrt::ObservedUpdate u;
    u.timestamp = t;
    u.peer_asn = 5;
    u.update.nlri = {pfx(prefix)};
    u.update.attrs.as_path = bgp::AsPath({5, 10, 20});
    u.update.attrs.next_hop = 1;
    u.update.attrs.communities = {Community(6695, 6695)};
    updates.push_back(std::move(u));
  };
  auto withdraw = [&](std::uint32_t t, const std::string& prefix) {
    mrt::ObservedUpdate u;
    u.timestamp = t;
    u.peer_asn = 5;
    u.update.withdrawn = {pfx(prefix)};
    updates.push_back(std::move(u));
  };
  announce(1000, "10.0.0.0/16");
  withdraw(1100, "10.0.0.0/16");   // transient
  announce(1000, "10.1.0.0/16");
  withdraw(3000, "10.1.0.0/16");   // stable
  announce(2000, "10.2.0.0/16");
  announce(2100, "10.2.0.0/16");   // fast re-announcement: transient
  announce(5000, "10.3.0.0/16");   // standing at end: stable

  PassiveExtractor streamed(two_ixps(), nullptr, config);
  const auto archive = mrt::dump_updates(updates, 65000, 1);
  streamed.consume_update_stream(archive);

  PassiveExtractor incremental(two_ixps(), nullptr, config);
  for (const auto& u : updates)
    incremental.consume_update(u.timestamp, u.peer_asn, u.update);
  incremental.finish();

  EXPECT_EQ(streamed.stats().paths_transient,
            incremental.stats().paths_transient);
  EXPECT_EQ(streamed.stats().observations, incremental.stats().observations);
  EXPECT_EQ(streamed.stats().paths_seen, incremental.stats().paths_seen);
  EXPECT_EQ(incremental.stats().paths_transient, 2u);
  EXPECT_EQ(incremental.stats().observations, 3u);
}

TEST(Passive, UpdateStreamToleratesOrphanedRibRecord) {
  // A stray TABLE_DUMP_V2 record (even one with no preceding peer table)
  // must not abort an update ingest, matching the old parse_updates
  // tolerance.
  mrt::MrtWriter w;
  mrt::RibRecord orphan;
  orphan.sequence = 1;
  orphan.prefix = pfx("10.9.0.0/16");
  w.write_rib(1, orphan);
  mrt::Bgp4mpMessage m;
  m.peer_asn = 5;
  m.local_asn = 65000;
  m.four_octet_as = true;
  m.update.nlri = {pfx("10.0.0.0/16")};
  m.update.attrs.as_path = bgp::AsPath({5, 10, 20});
  m.update.attrs.next_hop = 1;
  m.update.attrs.communities = {Community(6695, 6695)};
  w.write_bgp4mp(2, m);

  PassiveExtractor extractor(two_ixps(), nullptr);
  extractor.consume_update_stream(w.data());
  EXPECT_EQ(extractor.stats().observations, 1u);
}

TEST(Passive, BoundedAnnounceWindowEvictsOldest) {
  PassiveConfig config;
  config.min_duration_s = 600;
  config.max_pending_announcements = 2;
  PassiveExtractor extractor(two_ixps(), nullptr, config);

  bgp::UpdateMessage announce;
  announce.attrs.as_path = bgp::AsPath({5, 10, 20});
  announce.attrs.next_hop = 1;
  announce.attrs.communities = {Community(6695, 6695)};

  // Three standing announcements with a window of two: the oldest is
  // evicted through the age test at the third announcement's timestamp.
  announce.nlri = {pfx("10.0.0.0/16")};
  extractor.consume_update(1000, 5, announce);
  announce.nlri = {pfx("10.1.0.0/16")};
  extractor.consume_update(1100, 5, announce);
  announce.nlri = {pfx("10.2.0.0/16")};
  extractor.consume_update(2000, 5, announce);
  // 10.0/16 was evicted at t=2000 with age 1000 >= 600: stable.
  EXPECT_EQ(extractor.stats().observations, 1u);
  EXPECT_EQ(extractor.stats().paths_transient, 0u);

  // A fourth announcement 100s later evicts 10.1/16 at age 1000: stable
  // again; then one 10s later evicts 10.2/16 at age 110 < 600: transient.
  announce.nlri = {pfx("10.3.0.0/16")};
  extractor.consume_update(2100, 5, announce);
  EXPECT_EQ(extractor.stats().observations, 2u);
  announce.nlri = {pfx("10.4.0.0/16")};
  extractor.consume_update(2110, 5, announce);
  EXPECT_EQ(extractor.stats().paths_transient, 1u);

  // The two survivors flush as stable at end of stream.
  extractor.finish();
  EXPECT_EQ(extractor.stats().observations, 4u);
  EXPECT_EQ(extractor.stats().paths_transient, 1u);
}

TEST(Passive, TakeObservationsDrainsAndViewRebuilds) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  extractor.consume_path(bgp::AsPath({5, 10, 20}), pfx("10.0.0.0/16"),
                         {Community(6695, 6695)});
  EXPECT_EQ(extractor.observations().at("DE-CIX").size(), 1u);
  // More input after a read: the lazily-built view must refresh.
  extractor.consume_path(bgp::AsPath({5, 10, 20}), pfx("10.1.0.0/16"),
                         {Community(6695, 6695)});
  EXPECT_EQ(extractor.observations().at("DE-CIX").size(), 2u);
  auto taken = extractor.take_observations();
  EXPECT_EQ(taken.at("DE-CIX").size(), 2u);
  EXPECT_TRUE(extractor.observations().empty());
}

TEST(Passive, MultipleStrongAttributionsBothRecorded) {
  // A route carrying both IXPs' ALL values (member of both, tagging all
  // sessions identically): each IXP receives an observation.
  PassiveExtractor extractor(two_ixps(), nullptr);
  extractor.consume_path(bgp::AsPath({5, 10, 20}), pfx("10.0.0.0/16"),
                         {Community(6695, 6695), Community(8631, 8631)});
  EXPECT_EQ(extractor.observations().count("DE-CIX"), 1u);
  EXPECT_EQ(extractor.observations().count("MSK-IX"), 1u);
}

// ------------------------------------------------------ tolerant mode

/// One attributable BGP4MP update record (path 5 10 20, DE-CIX ALL).
std::vector<std::uint8_t> good_update_record(std::uint32_t timestamp,
                                             const std::string& prefix) {
  mrt::MrtWriter w;
  mrt::Bgp4mpMessage m;
  m.peer_asn = 5;
  m.local_asn = 65000;
  m.four_octet_as = true;
  m.update.nlri = {pfx(prefix)};
  m.update.attrs.as_path = bgp::AsPath({5, 10, 20});
  m.update.attrs.next_hop = 1;
  m.update.attrs.communities = {Community(6695, 6695)};
  w.write_bgp4mp(timestamp, m);
  return w.take();
}

/// good record + garbage + good record + truncated tail.
std::vector<std::uint8_t> corrupted_update_stream() {
  auto data = good_update_record(1000, "10.0.0.0/16");
  data.insert(data.end(), 16, std::uint8_t{0xFF});  // bogus record
  const auto second = good_update_record(2000, "10.1.0.0/16");
  data.insert(data.end(), second.begin(), second.end());
  data.insert(data.end(), 7, std::uint8_t{0});  // truncated header
  return data;
}

TEST(Passive, StrictModeAbortsOnMalformedRecordWithOffset) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  try {
    extractor.consume_update_stream(corrupted_update_stream());
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(extractor.stats().records_malformed, 0u);
}

TEST(Passive, TolerantModeSkipsAndCountsMalformedRecords) {
  PassiveConfig config;
  config.tolerate_malformed = true;
  PassiveExtractor extractor(two_ixps(), nullptr, config);
  extractor.consume_update_stream(corrupted_update_stream());
  // Both well-formed updates made it through the garbage...
  EXPECT_EQ(extractor.stats().paths_seen, 2u);
  EXPECT_EQ(extractor.stats().observations, 2u);
  // ...and the garbage run plus the truncated tail were counted.
  EXPECT_EQ(extractor.stats().records_malformed, 2u);
}

TEST(Passive, TolerantModeTableDumpSkipsBadPeerIndex) {
  // A RIB record referencing a peer index the table does not have: the
  // record is skipped, the rest of the archive still contributes.
  bgp::Rib rib;
  bgp::Route route;
  route.prefix = pfx("10.0.0.0/16");
  route.attrs.as_path = bgp::AsPath({5, 10, 20});
  route.attrs.next_hop = 1;
  route.attrs.communities = {Community(6695, 6695)};
  rib.announce(5, 0x0505, route);
  auto archive = mrt::dump_rib(rib, 1367366400, 1, "bview");

  mrt::MrtWriter bad;
  mrt::RibRecord broken;
  broken.sequence = 2;
  broken.prefix = pfx("10.5.0.0/16");
  mrt::RibEntryRecord entry;
  entry.peer_index = 77;  // out of range
  broken.entries = {entry};
  bad.write_rib(3, broken);
  archive.insert(archive.end(), bad.data().begin(), bad.data().end());

  route.prefix = pfx("10.1.0.0/16");
  bgp::Rib rib2;
  rib2.announce(5, 0x0505, route);
  const auto tail = mrt::dump_rib(rib2, 1367366401, 1, "bview");
  archive.insert(archive.end(), tail.begin(), tail.end());

  PassiveConfig config;
  config.tolerate_malformed = true;
  PassiveExtractor extractor(two_ixps(), nullptr, config);
  extractor.consume_table_dump(archive);
  EXPECT_EQ(extractor.stats().records_malformed, 1u);
  EXPECT_EQ(extractor.stats().observations, 2u);
}

TEST(Passive, StatsMergeIncludesRecordsMalformed) {
  PassiveStats a;
  a.records_malformed = 2;
  PassiveStats b;
  b.records_malformed = 3;
  a += b;
  EXPECT_EQ(a.records_malformed, 5u);
}

TEST(Passive, StatsAccumulate) {
  PassiveExtractor extractor(two_ixps(), nullptr);
  extractor.consume_path(bgp::AsPath({5, 10, 20}), pfx("10.0.0.0/16"),
                         {Community(6695, 6695)});
  extractor.consume_path(bgp::AsPath({5, 10, 20}), pfx("10.1.0.0/16"), {});
  const auto& stats = extractor.stats();
  EXPECT_EQ(stats.paths_seen, 2u);
  EXPECT_EQ(stats.observations, 1u);
  EXPECT_EQ(stats.paths_no_rs_values, 1u);
}

}  // namespace
}  // namespace mlp::core
