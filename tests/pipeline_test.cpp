// Tests for the parallel multi-IXP inference pipeline: thread pool and
// ordered queue primitives, IXP-scheme config round-trip, determinism
// under 1 vs N threads, merged-stats correctness, and edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/passive.hpp"
#include "pipeline/ixp_config.hpp"
#include "pipeline/observation_queue.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/thread_pool.hpp"
#include "scenario/scenario.hpp"
#include "topology/relationship_inference.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace mlp::pipeline {
namespace {

using bgp::Community;
using routeserver::IxpCommunityScheme;
using routeserver::SchemeStyle;

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, FifoStartOrderWithOneWorker) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    pool.submit([&order, i] { order.push_back(i); });
  pool.wait_idle();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ResolveDefaults) {
  EXPECT_EQ(ThreadPool::resolve(3), 3u);
  EXPECT_GE(ThreadPool::resolve(0), 1u);
}

TEST(ThreadPool, ThrowingTaskSurfacesFromWaitIdleNotTerminate) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("task boom"); });
  // Tasks after the throwing one still run: the worker survives, and the
  // in-flight count was released by the RAII guard (no wedged wait_idle).
  for (int i = 0; i < 8; ++i) pool.submit([&ran] { ++ran; });
  try {
    pool.wait_idle();
    FAIL() << "expected the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
  EXPECT_EQ(ran.load(), 8);
  // The error was consumed: the pool is reusable and clean afterwards.
  pool.submit([&ran] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 9);
}

TEST(ThreadPool, FirstOfSeveralEscapedExceptionsWins) {
  ThreadPool pool(1);  // single worker serializes the tasks
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::runtime_error("second"); });
  try {
    pool.wait_idle();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  pool.wait_idle();  // later losers are dropped, not replayed
}

// ------------------------------------------------------------ queue

core::Observation make_obs(core::Asn setter, const char* prefix) {
  core::Observation obs;
  obs.setter = setter;
  obs.prefix = *bgp::IpPrefix::parse(prefix);
  return obs;
}

TEST(ObservationQueue, DrainsSourcesInIndexOrder) {
  ObservationQueue queue(3);
  // Sources push out of order; the consumer must still see 0, then 1,
  // then 2.
  queue.push(2, {make_obs(3, "10.3.0.0/16")});
  queue.close(2);
  queue.push(0, {make_obs(1, "10.1.0.0/16")});
  queue.close(0);
  queue.push(1, {make_obs(2, "10.2.0.0/16")});
  queue.close(1);

  std::vector<core::Asn> setters;
  std::vector<core::Observation> batch;
  while (queue.pop(batch))
    for (const auto& obs : batch) setters.push_back(obs.setter);
  ASSERT_EQ(setters.size(), 3u);
  EXPECT_EQ(setters[0], 1u);
  EXPECT_EQ(setters[1], 2u);
  EXPECT_EQ(setters[2], 3u);
}

TEST(ObservationQueue, BlockingConsumerFinishesAfterClose) {
  ObservationQueue queue(1);
  std::vector<core::Asn> seen;
  std::thread consumer([&] {
    std::vector<core::Observation> batch;
    while (queue.pop(batch))
      for (const auto& obs : batch) seen.push_back(obs.setter);
  });
  queue.push(0, {make_obs(7, "10.0.0.0/16")});
  queue.close(0);
  consumer.join();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 7u);
}

TEST(ObservationQueue, EmptyBatchesDropped) {
  ObservationQueue queue(1);
  queue.push(0, {});
  queue.close(0);
  std::vector<core::Observation> batch;
  EXPECT_FALSE(queue.pop(batch));
}

// ------------------------------------------------------------ config

TEST(IxpConfig, RoundTrip) {
  const char* text =
      "# comment\n"
      "ixp DE-CIX rs-asn 6695 style rs-asn members 64496 64497 64498\n"
      "ixp ECIX rs-asn 9033 style private-range members 64500 4200000001\n"
      "alias ECIX 4200000001 64512\n";
  const auto contexts = parse_ixp_configs(text);
  ASSERT_EQ(contexts.size(), 2u);
  EXPECT_EQ(contexts[0].name, "DE-CIX");
  EXPECT_EQ(contexts[0].scheme.rs_asn(), 6695u);
  EXPECT_EQ(contexts[0].scheme.style(), SchemeStyle::RsAsnBased);
  EXPECT_EQ(contexts[0].rs_members.size(), 3u);
  EXPECT_EQ(contexts[1].scheme.style(), SchemeStyle::PrivateRangeBased);
  EXPECT_EQ(contexts[1].scheme.encode_peer(4200000001u),
            std::optional<std::uint16_t>(64512));

  // Serialize and re-parse: identical structure.
  const auto reparsed = parse_ixp_configs(serialize_ixp_configs(contexts));
  ASSERT_EQ(reparsed.size(), 2u);
  EXPECT_EQ(reparsed[0].rs_members, contexts[0].rs_members);
  EXPECT_EQ(reparsed[1].scheme.encode_peer(4200000001u),
            std::optional<std::uint16_t>(64512));
}

TEST(IxpConfig, ErrorsCarryLineNumbers) {
  EXPECT_THROW(parse_ixp_configs("bogus directive\n"), ParseError);
  EXPECT_THROW(parse_ixp_configs("ixp X rs-asn nope style rs-asn members\n"),
               ParseError);
  EXPECT_THROW(
      parse_ixp_configs("ixp X rs-asn 1 style weird members 2\n"),
      ParseError);
  EXPECT_THROW(parse_ixp_configs("alias NOIXP 1 2\n"), ParseError);
  try {
    parse_ixp_configs("\n\nnope\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(IxpConfig, InvalidNamesRejected) {
  // Names the textual form cannot represent must fail loudly instead of
  // producing a document that cannot be parsed back.
  EXPECT_THROW(validate_ixp_name(""), InvalidArgument);
  EXPECT_THROW(validate_ixp_name("DE CIX"), InvalidArgument);
  EXPECT_THROW(validate_ixp_name("DE\tCIX"), InvalidArgument);
  EXPECT_THROW(validate_ixp_name("#DECIX"), InvalidArgument);
  validate_ixp_name("DE-CIX");  // no throw

  // The parser rejects a leading-'#' name (whitespace cannot reach it:
  // field splitting already ate it).
  EXPECT_THROW(parse_ixp_configs("ixp #X rs-asn 1 style rs-asn members 2\n"),
               ParseError);

  // The serializer refuses to emit a round-trip-breaking name raw.
  core::IxpContext bad;
  bad.name = "A B";
  bad.scheme = IxpCommunityScheme::make("A B", 6695, SchemeStyle::RsAsnBased);
  EXPECT_THROW(serialize_ixp_configs({bad}), InvalidArgument);
  bad.name = "#A";
  EXPECT_THROW(serialize_ixp_configs({bad}), InvalidArgument);
}

TEST(IxpConfig, RoundTripPropertyOverGeneratedConfigs) {
  // serialize -> parse must reproduce every structural field for any
  // valid config; names draw from the full accepted alphabet.
  const std::string alphabet =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789.-_";
  Rng rng(20260728);
  for (int round = 0; round < 50; ++round) {
    std::vector<core::IxpContext> contexts;
    const std::size_t n_ixps = 1 + rng.uniform(0, 5);
    for (std::size_t i = 0; i < n_ixps; ++i) {
      std::string name;
      const std::size_t len = 1 + rng.uniform(0, 11);
      for (std::size_t c = 0; c < len; ++c)
        name.push_back(alphabet[static_cast<std::size_t>(
            rng.uniform(0, alphabet.size() - 1))]);
      name += std::to_string(i);  // uniqueness
      if (name.front() == '#') name.front() = 'X';

      const auto style = rng.chance(0.5) ? SchemeStyle::RsAsnBased
                                         : SchemeStyle::PrivateRangeBased;
      const bgp::Asn rs_asn = 1 + rng.uniform(0, 64000);
      core::IxpContext context;
      context.name = name;
      context.scheme = IxpCommunityScheme::make(name, rs_asn, style);
      const std::size_t n_members = rng.uniform(0, 20);
      for (std::size_t m = 0; m < n_members; ++m)
        context.rs_members.insert(
            static_cast<core::Asn>(1 + rng.uniform(0, 70000)));
      // Aliases apply to 32-bit members only (values in the private
      // range), so generate a few dedicated wide members.
      const std::size_t n_aliases = rng.uniform(0, 3);
      for (std::size_t a = 0; a < n_aliases; ++a) {
        const core::Asn wide =
            4200000000u + static_cast<core::Asn>(round * 100 + i * 10 + a);
        context.rs_members.insert(wide);
        // Disjoint per-alias value ranges: add_alias rejects collisions.
        context.scheme.add_alias(
            wide,
            static_cast<std::uint16_t>(64512 + a * 40 + rng.uniform(0, 30)));
      }
      contexts.push_back(std::move(context));
    }

    const auto reparsed = parse_ixp_configs(serialize_ixp_configs(contexts));
    ASSERT_EQ(reparsed.size(), contexts.size()) << "round " << round;
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      EXPECT_EQ(reparsed[i].name, contexts[i].name);
      EXPECT_EQ(reparsed[i].scheme.rs_asn(), contexts[i].scheme.rs_asn());
      EXPECT_EQ(reparsed[i].scheme.style(), contexts[i].scheme.style());
      EXPECT_EQ(reparsed[i].rs_members, contexts[i].rs_members);
      EXPECT_EQ(reparsed[i].scheme.aliases(), contexts[i].scheme.aliases())
          << "round " << round << " ixp " << i;
    }
  }
}

// ------------------------------------------------------------ pipeline

core::IxpContext demo_context(const std::string& name, bgp::Asn rs_asn,
                              std::set<core::Asn> members) {
  core::IxpContext ctx;
  ctx.name = name;
  ctx.scheme = IxpCommunityScheme::make(name, rs_asn, SchemeStyle::RsAsnBased);
  ctx.rs_members = std::move(members);
  return ctx;
}

TEST(Pipeline, PreattributedObservationsInferLinks) {
  InferencePipeline pipe;
  pipe.add_ixp(demo_context("DEMO", 6695, {1, 2, 3}));
  std::vector<core::Observation> observations;
  for (core::Asn member : {1u, 2u, 3u}) {
    core::Observation obs;
    obs.setter = member;
    obs.prefix = *bgp::IpPrefix::parse("10.0.0.0/16");
    observations.push_back(obs);
  }
  pipe.add_observations("DEMO", std::move(observations));
  const auto result = pipe.run();
  EXPECT_EQ(result.all_links.size(), 3u);
  EXPECT_EQ(result.per_ixp[0].stats.observed_members, 3u);
  EXPECT_EQ(result.totals.observations, 3u);
}

TEST(Pipeline, UnknownIxpNameRejected) {
  InferencePipeline pipe;
  pipe.add_ixp(demo_context("DEMO", 6695, {1}));
  EXPECT_THROW(pipe.add_observations("NOPE", {}), InvalidArgument);
  EXPECT_THROW(pipe.add_ixp(demo_context("DEMO", 6695, {1})),
               InvalidArgument);
}

TEST(Pipeline, RunTwiceRejected) {
  InferencePipeline pipe;
  pipe.add_ixp(demo_context("DEMO", 6695, {1}));
  pipe.run();
  EXPECT_THROW(pipe.run(), InvalidArgument);
}

TEST(Pipeline, MalformedArchiveThrowsWithoutHanging) {
  InferencePipeline pipe;
  pipe.add_ixp(demo_context("DEMO", 6695, {1, 2}));
  pipe.add_table_dump({0xde, 0xad, 0xbe, 0xef});
  EXPECT_THROW(pipe.run(), ParseError);
}

TEST(Pipeline, EmptyIxpAndNoObservations) {
  // No feeds at all: every IXP yields an empty link set, including an IXP
  // with no members, and the merged stats stay zero.
  PipelineConfig config;
  config.threads = 3;
  InferencePipeline pipe(config);
  pipe.add_ixp(demo_context("EMPTY", 6695, {}));
  pipe.add_ixp(demo_context("UNOBSERVED", 9033, {1, 2, 3}));
  const auto result = pipe.run();
  ASSERT_EQ(result.per_ixp.size(), 2u);
  EXPECT_TRUE(result.all_links.empty());
  EXPECT_TRUE(result.per_ixp[0].links.empty());
  EXPECT_TRUE(result.per_ixp[1].links.empty());
  EXPECT_EQ(result.totals.observations, 0u);
  EXPECT_EQ(result.totals.observed_members, 0u);
  EXPECT_EQ(result.totals.rs_members, 3u);
  EXPECT_EQ(result.passive.paths_seen, 0u);
}

/// Full scenario run (passive archives + active LG surveys over every
/// IXP) with a given thread count.
PipelineResult scenario_run(scenario::Scenario& s,
                            const topology::InferredRelationships& rels,
                            std::size_t threads) {
  PipelineConfig config;
  config.threads = threads;
  InferencePipeline pipe(config);
  for (std::size_t i = 0; i < s.ixps().size(); ++i) {
    auto* lg = s.ixps()[i].spec.lg_shows_communities ? s.rs_lg(i) : nullptr;
    pipe.add_ixp(s.ixp_context(i), lg);
  }
  pipe.set_relationships(rels.rel_fn());
  for (auto& collector : s.collectors())
    pipe.add_table_dump(collector.table_dump(1367366400));
  return pipe.run();
}

scenario::ScenarioParams small_params() {
  scenario::ScenarioParams params;
  params.topology.n_ases = 700;
  params.membership_scale = 0.15;
  params.seed = 424242;
  return params;
}

TEST(Pipeline, DeterministicAcrossThreadCounts) {
  // N >= 2 IXPs, 1 vs 4 threads: byte-identical link sets and stats.
  scenario::Scenario s1(small_params());
  scenario::Scenario s4(small_params());
  const auto rels1 = topology::infer_relationships(s1.collector_paths());
  const auto rels4 = topology::infer_relationships(s4.collector_paths());

  const auto run1 = scenario_run(s1, rels1, 1);
  const auto run4 = scenario_run(s4, rels4, 4);

  ASSERT_GE(run1.per_ixp.size(), 2u);
  EXPECT_FALSE(run1.all_links.empty());
  EXPECT_EQ(run1.all_links, run4.all_links);
  ASSERT_EQ(run1.per_ixp.size(), run4.per_ixp.size());
  for (std::size_t i = 0; i < run1.per_ixp.size(); ++i) {
    EXPECT_EQ(run1.per_ixp[i].links, run4.per_ixp[i].links) << "ixp " << i;
    EXPECT_EQ(run1.per_ixp[i].stats.observed_members,
              run4.per_ixp[i].stats.observed_members);
    EXPECT_EQ(run1.per_ixp[i].stats.observations,
              run4.per_ixp[i].stats.observations);
    EXPECT_EQ(run1.per_ixp[i].active_queries, run4.per_ixp[i].active_queries);
  }
  EXPECT_EQ(run1.passive.paths_seen, run4.passive.paths_seen);
  EXPECT_EQ(run1.passive.observations, run4.passive.observations);
  EXPECT_EQ(run1.total_active_queries, run4.total_active_queries);
}

TEST(Pipeline, MergedStatsMatchSequentialExtraction) {
  // The passive stats merged over per-archive extraction tasks must equal
  // one extractor consuming every archive sequentially; the engine totals
  // must be the field-wise sum over IXPs.
  scenario::Scenario s(small_params());
  const auto rels = topology::infer_relationships(s.collector_paths());

  std::vector<std::vector<std::uint8_t>> archives;
  for (auto& collector : s.collectors())
    archives.push_back(collector.table_dump(1367366400));

  core::PassiveExtractor sequential(s.ixp_contexts(), rels.rel_fn());
  for (const auto& archive : archives)
    sequential.consume_table_dump(archive);
  const auto& expected = sequential.stats();

  PipelineConfig config;
  config.threads = 4;
  InferencePipeline pipe(config);
  for (std::size_t i = 0; i < s.ixps().size(); ++i)
    pipe.add_ixp(s.ixp_context(i));
  pipe.set_relationships(rels.rel_fn());
  for (auto& archive : archives) pipe.add_table_dump(std::move(archive));
  const auto result = pipe.run();

  EXPECT_EQ(result.passive.paths_seen, expected.paths_seen);
  EXPECT_EQ(result.passive.paths_dirty, expected.paths_dirty);
  EXPECT_EQ(result.passive.paths_no_rs_values, expected.paths_no_rs_values);
  EXPECT_EQ(result.passive.paths_ambiguous_ixp,
            expected.paths_ambiguous_ixp);
  EXPECT_EQ(result.passive.paths_no_setter, expected.paths_no_setter);
  EXPECT_EQ(result.passive.observations, expected.observations);

  core::EngineStats sum;
  std::set<bgp::AsLink> all;
  for (const auto& per_ixp : result.per_ixp) {
    sum += per_ixp.stats;
    all.insert(per_ixp.links.begin(), per_ixp.links.end());
  }
  EXPECT_EQ(result.totals.observations, sum.observations);
  EXPECT_EQ(result.totals.observed_members, sum.observed_members);
  EXPECT_EQ(result.totals.links, sum.links);
  EXPECT_EQ(result.all_links, all);
}

TEST(Pipeline, BatchSizeDoesNotChangeResults) {
  scenario::Scenario sa(small_params());
  scenario::Scenario sb(small_params());
  const auto rels_a = topology::infer_relationships(sa.collector_paths());
  const auto rels_b = topology::infer_relationships(sb.collector_paths());

  PipelineConfig tiny;
  tiny.threads = 2;
  tiny.batch_size = 1;
  InferencePipeline pa(tiny);
  for (std::size_t i = 0; i < sa.ixps().size(); ++i)
    pa.add_ixp(sa.ixp_context(i));
  pa.set_relationships(rels_a.rel_fn());
  for (auto& collector : sa.collectors())
    pa.add_table_dump(collector.table_dump(1367366400));

  PipelineConfig huge;
  huge.threads = 2;
  huge.batch_size = 100000;
  InferencePipeline pb(huge);
  for (std::size_t i = 0; i < sb.ixps().size(); ++i)
    pb.add_ixp(sb.ixp_context(i));
  pb.set_relationships(rels_b.rel_fn());
  for (auto& collector : sb.collectors())
    pb.add_table_dump(collector.table_dump(1367366400));

  EXPECT_EQ(pa.run().all_links, pb.run().all_links);
}

TEST(Pipeline, StreamedIngestMatchesPerSourceFlushReference) {
  // The streamed ingest path (batches pushed mid-decode) must reproduce
  // the pre-streaming contract byte for byte: extract every source fully,
  // flush its observations per IXP in source order, feed each IXP's
  // engine that concatenation. Any thread count and any batch size must
  // match the reference exactly.
  scenario::Scenario s(small_params());
  const auto rels = topology::infer_relationships(s.collector_paths());
  std::vector<std::vector<std::uint8_t>> archives;
  for (auto& collector : s.collectors())
    archives.push_back(collector.table_dump(1367366400));

  // Reference: one extractor per source, materialized per-source flush.
  std::vector<std::set<bgp::AsLink>> want_links;
  {
    std::map<std::string, std::vector<core::Observation>> per_ixp;
    for (const auto& archive : archives) {
      core::PassiveExtractor extractor(s.ixp_contexts(), rels.rel_fn());
      extractor.consume_table_dump(archive);
      for (auto& [name, observations] : extractor.take_observations()) {
        auto& sink = per_ixp[name];
        sink.insert(sink.end(),
                    std::make_move_iterator(observations.begin()),
                    std::make_move_iterator(observations.end()));
      }
    }
    for (std::size_t i = 0; i < s.ixps().size(); ++i) {
      core::MlpInferenceEngine engine(s.ixp_context(i));
      auto it = per_ixp.find(s.ixp_context(i).name);
      if (it != per_ixp.end())
        for (const auto& observation : it->second) engine.add(observation);
      want_links.push_back(engine.infer_links());
    }
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{7}, std::size_t{100000}}) {
      PipelineConfig config;
      config.threads = threads;
      config.batch_size = batch;
      InferencePipeline pipe(config);
      for (std::size_t i = 0; i < s.ixps().size(); ++i)
        pipe.add_ixp(s.ixp_context(i));
      pipe.set_relationships(rels.rel_fn());
      for (const auto& archive : archives) pipe.add_table_dump(archive);
      const auto result = pipe.run();
      ASSERT_EQ(result.per_ixp.size(), want_links.size());
      for (std::size_t i = 0; i < want_links.size(); ++i)
        EXPECT_EQ(result.per_ixp[i].links, want_links[i])
            << "ixp " << i << " threads " << threads << " batch " << batch;
    }
  }
}

TEST(Pipeline, UpdateStreamIngestDeterministicAcrossConfigs) {
  // The BGP4MP live path end to end: the same update archives must yield
  // byte-identical link sets for any thread count and batch size, and
  // match a sequential extractor running the same announce-window.
  scenario::Scenario s(small_params());
  std::vector<std::vector<std::uint8_t>> archives;
  for (auto& collector : s.collectors())
    archives.push_back(collector.update_dump(1367366400));

  core::PassiveConfig passive;
  passive.min_duration_s = 600;

  auto run_with = [&](std::size_t threads, std::size_t batch) {
    PipelineConfig config;
    config.threads = threads;
    config.batch_size = batch;
    config.passive = passive;
    InferencePipeline pipe(config);
    for (std::size_t i = 0; i < s.ixps().size(); ++i)
      pipe.add_ixp(s.ixp_context(i));
    for (const auto& archive : archives) pipe.add_update_stream(archive);
    return pipe.run();
  };

  const auto base = run_with(1, 256);
  EXPECT_FALSE(base.all_links.empty());

  core::PassiveStats sequential_stats;
  {
    core::PassiveStats merged;
    for (const auto& archive : archives) {
      core::PassiveExtractor extractor(s.ixp_contexts(), nullptr, passive);
      extractor.consume_update_stream(archive);
      merged += extractor.stats();
    }
    sequential_stats = merged;
  }
  EXPECT_EQ(base.passive.paths_seen, sequential_stats.paths_seen);
  EXPECT_EQ(base.passive.observations, sequential_stats.observations);
  EXPECT_EQ(base.passive.paths_transient, sequential_stats.paths_transient);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{512}}) {
      const auto result = run_with(threads, batch);
      EXPECT_EQ(result.all_links, base.all_links)
          << "threads " << threads << " batch " << batch;
      ASSERT_EQ(result.per_ixp.size(), base.per_ixp.size());
      for (std::size_t i = 0; i < base.per_ixp.size(); ++i)
        EXPECT_EQ(result.per_ixp[i].links, base.per_ixp[i].links);
    }
  }
}

TEST(Pipeline, KeepEnginesOffMatchesDefault) {
  // keep_engines=false must change only what the result carries, never
  // what it contains.
  scenario::Scenario sa(small_params());
  scenario::Scenario sb(small_params());
  auto run_with = [](scenario::Scenario& s, bool keep) {
    PipelineConfig config;
    config.threads = 2;
    config.keep_engines = keep;
    InferencePipeline pipe(config);
    for (std::size_t i = 0; i < s.ixps().size(); ++i)
      pipe.add_ixp(s.ixp_context(i));
    for (auto& collector : s.collectors())
      pipe.add_table_dump(collector.table_dump(1367366400));
    return pipe.run();
  };
  const auto with = run_with(sa, true);
  const auto without = run_with(sb, false);
  EXPECT_EQ(with.engines.size(), with.per_ixp.size());
  EXPECT_TRUE(without.engines.empty());
  EXPECT_EQ(with.all_links, without.all_links);
  ASSERT_EQ(with.per_ixp.size(), without.per_ixp.size());
  for (std::size_t i = 0; i < with.per_ixp.size(); ++i) {
    EXPECT_EQ(with.per_ixp[i].links, without.per_ixp[i].links);
    EXPECT_EQ(with.per_ixp[i].observed_members,
              without.per_ixp[i].observed_members);
    // The kept engine agrees with the per-IXP observed-member product.
    EXPECT_EQ(core::FlatAsnSet(with.engines[i].observed_members()),
              with.per_ixp[i].observed_members);
  }
}

TEST(Pipeline, ReciprocityPassRunsWhenIrrAttached) {
  scenario::Scenario s(small_params());
  PipelineConfig config;
  config.threads = 2;
  InferencePipeline pipe(config);
  for (std::size_t i = 0; i < s.ixps().size(); ++i)
    pipe.add_ixp(s.ixp_context(i));
  for (auto& collector : s.collectors())
    pipe.add_table_dump(collector.table_dump(1367366400));
  pipe.set_irr(&s.irr());
  const auto result = pipe.run();
  ASSERT_TRUE(result.reciprocity.has_value());
  // Section 4.4: the assumption is conservative against IRR filters.
  EXPECT_EQ(result.reciprocity->violations, 0u);
}

}  // namespace
}  // namespace mlp::pipeline
