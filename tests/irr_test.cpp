// Tests for the IRR substrate: RPSL parsing/serialisation, as-set
// expansion, and aut-num import/export filter extraction.
#include <gtest/gtest.h>

#include "irr/database.hpp"
#include "irr/rpsl.hpp"
#include "util/errors.hpp"

namespace mlp::irr {
namespace {

constexpr const char* kSampleDb = R"(% RIPE-style comment header

aut-num:        AS8359
as-name:        MTS
import:         from AS6777 accept ANY
import:         from AS8447 accept ANY
export:         to AS6777 announce AS8359
export:         to AS8447 announce AS8359
mnt-by:         TEST-MNT

as-set:         AS6695:AS-MEMBERS
descr:          DE-CIX route server members
members:        AS8359, AS8447
members:        AS5410
members:        AS6695:AS-NESTED

as-set:         AS6695:AS-NESTED
members:        AS12389 AS9002

aut-num:        AS15169
as-name:        CONTENT
import:         from ANY accept ANY
export:         to ANY announce AS15169
)";

TEST(Rpsl, ParsesObjectsAndClasses) {
  const auto objects = parse_rpsl(kSampleDb);
  ASSERT_EQ(objects.size(), 4u);
  EXPECT_EQ(objects[0].class_name(), "aut-num");
  EXPECT_EQ(objects[0].primary_key(), "AS8359");
  EXPECT_EQ(objects[1].class_name(), "as-set");
  EXPECT_EQ(objects[1].primary_key(), "AS6695:AS-MEMBERS");
}

TEST(Rpsl, AttributeAccessors) {
  const auto objects = parse_rpsl(kSampleDb);
  const auto& autnum = objects[0];
  EXPECT_EQ(autnum.first("as-name"), "MTS");
  EXPECT_EQ(autnum.first("missing"), std::nullopt);
  EXPECT_EQ(autnum.all("import").size(), 2u);
  EXPECT_EQ(autnum.all("export").size(), 2u);
  // Keys are case-insensitive.
  EXPECT_EQ(autnum.first("AS-NAME"), "MTS");
}

TEST(Rpsl, ContinuationLines) {
  const auto objects = parse_rpsl(
      "as-set: AS-X\n"
      "members: AS1,\n"
      "         AS2\n"
      "+        AS3\n");
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].first("members"), "AS1, AS2 AS3");
}

TEST(Rpsl, CommentsStripped) {
  const auto objects = parse_rpsl(
      "% full line comment\n"
      "aut-num: AS1 # trailing comment\n");
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].primary_key(), "AS1");
}

TEST(Rpsl, MalformedInputThrows) {
  EXPECT_THROW(parse_rpsl("this line has no colon\n"), ParseError);
  EXPECT_THROW(parse_rpsl("   dangling continuation\n"), ParseError);
  EXPECT_THROW(parse_rpsl(":empty key\n"), ParseError);
}

TEST(Rpsl, SerializeParsesBack) {
  const auto objects = parse_rpsl(kSampleDb);
  const std::string text = serialize(objects);
  const auto reparsed = parse_rpsl(text);
  EXPECT_EQ(reparsed, objects);
}

TEST(Rpsl, EmptyInput) {
  EXPECT_TRUE(parse_rpsl("").empty());
  EXPECT_TRUE(parse_rpsl("\n\n% only comments\n\n").empty());
}

// ---------------------------------------------------------------- database

TEST(IrrDb, FindByClassAndKey) {
  IrrDatabase db;
  db.load(kSampleDb);
  EXPECT_EQ(db.object_count(), 4u);
  ASSERT_NE(db.find("aut-num", "AS8359"), nullptr);
  // Lookup is case-insensitive.
  ASSERT_NE(db.find("AUT-NUM", "as8359"), nullptr);
  EXPECT_EQ(db.find("aut-num", "AS9999"), nullptr);
  EXPECT_EQ(db.find("as-set", "AS8359"), nullptr);
}

TEST(IrrDb, LaterObjectsReplaceEarlier) {
  IrrDatabase db;
  db.load("aut-num: AS1\nas-name: OLD\n");
  db.load("aut-num: AS1\nas-name: NEW\n");
  EXPECT_EQ(db.object_count(), 1u);
  EXPECT_EQ(db.find("aut-num", "AS1")->first("as-name"), "NEW");
}

TEST(IrrDb, AsSetExpansionRecursive) {
  IrrDatabase db;
  db.load(kSampleDb);
  const auto members = db.expand_as_set("AS6695:AS-MEMBERS");
  ASSERT_TRUE(members);
  EXPECT_EQ(*members,
            (std::set<Asn>{8359, 8447, 5410, 12389, 9002}));
}

TEST(IrrDb, AsSetExpansionHandlesCycles) {
  IrrDatabase db;
  db.load(
      "as-set: AS-A\nmembers: AS1, AS-B\n\n"
      "as-set: AS-B\nmembers: AS2, AS-A\n");
  const auto members = db.expand_as_set("AS-A");
  ASSERT_TRUE(members);
  EXPECT_EQ(*members, (std::set<Asn>{1, 2}));
}

TEST(IrrDb, AsSetUnknownNestedIgnored) {
  IrrDatabase db;
  db.load("as-set: AS-A\nmembers: AS1, AS-MISSING\n");
  const auto members = db.expand_as_set("AS-A");
  ASSERT_TRUE(members);
  EXPECT_EQ(*members, std::set<Asn>{1});
}

TEST(IrrDb, MissingAsSetIsNullopt) {
  IrrDatabase db;
  EXPECT_FALSE(db.expand_as_set("AS-NOPE"));
}

TEST(IrrDb, ImportExportFilters) {
  IrrDatabase db;
  db.load(kSampleDb);
  const auto imports = db.import_filter(8359);
  ASSERT_TRUE(imports);
  EXPECT_FALSE(imports->any);
  EXPECT_EQ(imports->peers, (std::set<Asn>{6777, 8447}));
  EXPECT_TRUE(imports->allows(6777));
  EXPECT_FALSE(imports->allows(15169));

  const auto exports = db.export_filter(8359);
  ASSERT_TRUE(exports);
  EXPECT_EQ(exports->peers, (std::set<Asn>{6777, 8447}));
}

TEST(IrrDb, AnyFilters) {
  IrrDatabase db;
  db.load(kSampleDb);
  const auto imports = db.import_filter(15169);
  ASSERT_TRUE(imports);
  EXPECT_TRUE(imports->any);
  EXPECT_TRUE(imports->allows(1));
  const auto exports = db.export_filter(15169);
  ASSERT_TRUE(exports);
  EXPECT_TRUE(exports->any);
}

TEST(IrrDb, MissingAutNumFilters) {
  IrrDatabase db;
  db.load(kSampleDb);
  EXPECT_FALSE(db.import_filter(4242));
  // aut-num without import lines:
  db.load("aut-num: AS4242\nas-name: NOFILTER\n");
  EXPECT_FALSE(db.import_filter(4242));
  EXPECT_FALSE(db.export_filter(4242));
}

TEST(IrrDb, DumpReloadsIdentically) {
  IrrDatabase db;
  db.load(kSampleDb);
  IrrDatabase copy;
  copy.load(db.dump());
  EXPECT_EQ(copy.object_count(), db.object_count());
  EXPECT_EQ(copy.expand_as_set("AS6695:AS-MEMBERS"),
            db.expand_as_set("AS6695:AS-MEMBERS"));
  EXPECT_EQ(copy.import_filter(8359), db.import_filter(8359));
}

TEST(IrrDb, ParseAsReference) {
  EXPECT_EQ(parse_as_reference("AS8359"), 8359u);
  EXPECT_EQ(parse_as_reference("as8359"), 8359u);
  EXPECT_FALSE(parse_as_reference("AS-SET-NAME"));
  EXPECT_FALSE(parse_as_reference("8359"));
  EXPECT_FALSE(parse_as_reference("ASmany"));
}

}  // namespace
}  // namespace mlp::irr
