// Unit tests for the util library: rng, strings, bytes, stats, table,
// flat ASN sets.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/bytes.hpp"
#include "util/errors.hpp"
#include "util/flat_set.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace mlp {
namespace {

using util::FlatAsnSet;

// --------------------------------------------------------- FlatAsnSet

TEST(FlatAsnSet, EmptyBehaviour) {
  FlatAsnSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.count(1), 0u);
  EXPECT_EQ(s.index_of(1), FlatAsnSet::npos);
  EXPECT_FALSE(s.erase(1));
  EXPECT_EQ(s, FlatAsnSet{});
  EXPECT_TRUE(FlatAsnSet::set_union(s, s).empty());
  EXPECT_TRUE(FlatAsnSet::set_intersection(s, s).empty());
  EXPECT_TRUE(FlatAsnSet::set_difference(s, s).empty());
}

TEST(FlatAsnSet, InsertKeepsSortedUniqueOrder) {
  FlatAsnSet s;
  EXPECT_TRUE(s.insert(30));
  EXPECT_TRUE(s.insert(10));
  EXPECT_TRUE(s.insert(20));
  EXPECT_FALSE(s.insert(20));  // duplicate insert is a no-op
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.values(), (std::vector<std::uint32_t>{10, 20, 30}));
  EXPECT_EQ(s.index_of(10), 0u);
  EXPECT_EQ(s.index_of(20), 1u);
  EXPECT_EQ(s.index_of(30), 2u);
  EXPECT_EQ(s.index_of(15), FlatAsnSet::npos);
  EXPECT_TRUE(s.erase(20));
  EXPECT_FALSE(s.erase(20));
  EXPECT_EQ(s.values(), (std::vector<std::uint32_t>{10, 30}));
}

TEST(FlatAsnSet, ConstructorsNormalise) {
  const FlatAsnSet from_list{5, 3, 5, 1};
  EXPECT_EQ(from_list.values(), (std::vector<std::uint32_t>{1, 3, 5}));
  const FlatAsnSet from_vector(std::vector<std::uint32_t>{9, 7, 9, 7});
  EXPECT_EQ(from_vector.values(), (std::vector<std::uint32_t>{7, 9}));
  const std::set<std::uint32_t> node_set{4, 2, 6};
  const FlatAsnSet from_set = node_set;
  EXPECT_EQ(from_set.values(), (std::vector<std::uint32_t>{2, 4, 6}));
  EXPECT_EQ(from_set, node_set);       // mixed comparison, both directions
  EXPECT_EQ(node_set, from_set);
  const std::vector<std::uint32_t> raw{8, 8, 2};
  const FlatAsnSet from_iters(raw.begin(), raw.end());
  EXPECT_EQ(from_iters.values(), (std::vector<std::uint32_t>{2, 8}));
}

TEST(FlatAsnSet, DisjointAlgebra) {
  const FlatAsnSet a{1, 3, 5};
  const FlatAsnSet b{2, 4, 6};
  EXPECT_EQ(FlatAsnSet::set_union(a, b), (FlatAsnSet{1, 2, 3, 4, 5, 6}));
  EXPECT_TRUE(FlatAsnSet::set_intersection(a, b).empty());
  EXPECT_EQ(FlatAsnSet::set_difference(a, b), a);
  EXPECT_EQ(FlatAsnSet::set_difference(b, a), b);
}

TEST(FlatAsnSet, SubsetAlgebra) {
  const FlatAsnSet all{1, 2, 3, 4, 5};
  const FlatAsnSet sub{2, 4};
  EXPECT_EQ(FlatAsnSet::set_union(all, sub), all);
  EXPECT_EQ(FlatAsnSet::set_intersection(all, sub), sub);
  EXPECT_EQ(FlatAsnSet::set_difference(all, sub), (FlatAsnSet{1, 3, 5}));
  EXPECT_TRUE(FlatAsnSet::set_difference(sub, all).empty());
}

TEST(FlatAsnSet, OverlappingAlgebra) {
  const FlatAsnSet a{1, 2, 3};
  const FlatAsnSet b{2, 3, 4};
  EXPECT_EQ(FlatAsnSet::set_union(a, b), (FlatAsnSet{1, 2, 3, 4}));
  EXPECT_EQ(FlatAsnSet::set_intersection(a, b), (FlatAsnSet{2, 3}));
  EXPECT_EQ(FlatAsnSet::set_difference(a, b), (FlatAsnSet{1}));
  EXPECT_EQ(FlatAsnSet::set_difference(b, a), (FlatAsnSet{4}));
}

TEST(FlatAsnSet, MatchesNodeSetOnRandomisedOperations) {
  Rng rng(77);
  FlatAsnSet flat;
  std::set<std::uint32_t> reference;
  for (int round = 0; round < 2000; ++round) {
    const auto value = static_cast<std::uint32_t>(rng.uniform(0, 200));
    if (rng.chance(0.3)) {
      EXPECT_EQ(flat.erase(value), reference.erase(value) == 1);
    } else {
      EXPECT_EQ(flat.insert(value), reference.insert(value).second);
    }
    EXPECT_EQ(flat.contains(value), reference.count(value) == 1);
  }
  EXPECT_EQ(flat, reference);
}

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform(0, 1000000) == b.uniform(0, 1000000)) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(6, 5), InvalidArgument);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(1.5));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(123);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ParetoRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.pareto(1, 1000, 1.1);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
  }
}

TEST(Rng, ParetoIsHeavyTailedTowardLow) {
  Rng rng(9);
  int low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    if (rng.pareto(1, 1000, 1.5) <= 3) ++low;
  // A bounded Pareto with alpha 1.5 concentrates most mass at small values.
  EXPECT_GT(low, n / 2);
}

TEST(Rng, ParetoRejectsBadArgs) {
  Rng rng(9);
  EXPECT_THROW(rng.pareto(0, 10, 1.0), InvalidArgument);
  EXPECT_THROW(rng.pareto(5, 4, 1.0), InvalidArgument);
  EXPECT_THROW(rng.pareto(1, 10, 0.0), InvalidArgument);
}

TEST(Rng, ZipfBoundsAndSkew) {
  Rng rng(11);
  int first = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    auto v = rng.zipf(100, 1.0);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
    if (v == 1) ++first;
  }
  EXPECT_GT(first, n / 20);  // rank 1 must be far above uniform (1%)
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(13);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[1]), 3.0, 0.5);
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  Rng rng(13);
  std::vector<double> empty;
  EXPECT_THROW(rng.weighted_index(empty), InvalidArgument);
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), InvalidArgument);
}

TEST(Rng, PickAndSample) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5};
  for (int i = 0; i < 50; ++i) {
    int x = rng.pick(v);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 5);
  }
  auto s = rng.sample(v, 3);
  EXPECT_EQ(s.size(), 3u);
  std::set<int> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 3u);
  EXPECT_EQ(rng.sample(v, 99).size(), v.size());
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(99);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  Rng a2 = Rng(99).fork(1);
  EXPECT_EQ(a.uniform(0, 1 << 30), a2.uniform(0, 1 << 30));
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform(0, 1 << 30) == b.uniform(0, 1 << 30)) ++same;
  EXPECT_LT(same, 5);
}

// ---------------------------------------------------------------- strings

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a::b:", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  auto parts = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, SplitWsEmptyInput) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t\n ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, IequalsAndLower) {
  EXPECT_TRUE(iequals("DE-CIX", "de-cix"));
  EXPECT_FALSE(iequals("DE-CIX", "de-cix "));
  EXPECT_EQ(to_lower("AS-Set"), "as-set");
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ULL);
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12x"));
  EXPECT_FALSE(parse_u64("-1"));
}

TEST(Strings, ParseU32Bounds) {
  EXPECT_EQ(parse_u32("4294967295"), 4294967295u);
  EXPECT_FALSE(parse_u32("4294967296"));
}

// ---------------------------------------------------------------- bytes

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[1], 0x02);
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0);
  EXPECT_THROW(r.u32(), ParseError);
}

TEST(Bytes, SubReaderConsumesExactly) {
  ByteWriter w;
  w.u32(0x01020304);
  w.u8(0x99);
  ByteReader r(w.data());
  ByteReader sub = r.sub(4);
  EXPECT_EQ(sub.u16(), 0x0102);
  EXPECT_EQ(sub.u16(), 0x0304);
  EXPECT_TRUE(sub.done());
  EXPECT_EQ(r.u8(), 0x99);
}

TEST(Bytes, PlaceholderPatch) {
  ByteWriter w;
  auto off = w.placeholder(2);
  w.u8(0x77);
  w.patch_u16(off, 0xbeef);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u8(), 0x77);
  EXPECT_THROW(w.patch_u16(2, 1), InvalidArgument);
}

// ---------------------------------------------------------------- stats

TEST(Stats, MeanMinMaxPercentile) {
  EmpiricalDistribution d;
  for (double x : {1.0, 2.0, 3.0, 4.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 4.0);
  EXPECT_DOUBLE_EQ(d.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(d.percentile(100), 4.0);
  EXPECT_DOUBLE_EQ(d.percentile(50), 2.5);
}

TEST(Stats, EmptyDistributionThrows) {
  EmpiricalDistribution d;
  EXPECT_THROW(d.mean(), InvalidArgument);
  EXPECT_THROW(d.percentile(50), InvalidArgument);
}

TEST(Stats, Fractions) {
  EmpiricalDistribution d;
  for (double x : {1.0, 1.0, 2.0, 5.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.fraction_at_most(1.0), 0.5);
  EXPECT_DOUBLE_EQ(d.fraction_at_least(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.fraction_at_most(10.0), 1.0);
}

TEST(Stats, CdfAndCcdfConsistency) {
  EmpiricalDistribution d;
  for (double x : {1.0, 1.0, 2.0, 3.0}) d.add(x);
  auto cdf = d.cdf();
  ASSERT_EQ(cdf.size(), 3u);  // distinct values 1, 2, 3
  EXPECT_DOUBLE_EQ(cdf[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
  auto ccdf = d.ccdf();
  for (std::size_t i = 0; i < ccdf.size(); ++i)
    EXPECT_DOUBLE_EQ(ccdf[i].fraction, 1.0 - cdf[i].fraction);
}

TEST(Stats, HistogramTotals) {
  Histogram h;
  h.add(1);
  h.add(1, 2);
  h.add(-5);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets().at(1), 3u);
  EXPECT_EQ(h.buckets().at(-5), 1u);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  TablePrinter t({"IXP", "Links"});
  t.add_row({"DE-CIX", "54082"});
  t.add_row({"BIX.BG", "950"});
  const std::string out = t.render();
  EXPECT_NE(out.find("IXP"), std::string::npos);
  EXPECT_NE(out.find("54082"), std::string::npos);
  // Numeric column is right-aligned: "950" must be preceded by spaces.
  EXPECT_NE(out.find("  950"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.render());
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(206667), "206,667");
  EXPECT_EQ(fmt_percent(0.984), "98.4%");
  EXPECT_EQ(fmt_percent(0.5, 0), "50%");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace mlp
