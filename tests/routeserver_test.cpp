// Tests for the route-server substrate: community schemes (Table 1),
// export policies, and the route server's filtering/reflection behaviour.
#include <gtest/gtest.h>

#include "routeserver/export_policy.hpp"
#include "routeserver/route_server.hpp"
#include "routeserver/scheme.hpp"
#include "util/errors.hpp"

namespace mlp::routeserver {
namespace {

using bgp::AsPath;
using bgp::Community;
using bgp::IpPrefix;

// ---------------------------------------------------------------- scheme

TEST(Scheme, DecixStylePatterns) {
  // Table 1, DE-CIX column: RS-ASN 6695, ALL 6695:6695, EXCLUDE 0:peer,
  // NONE 0:6695, INCLUDE 6695:peer.
  const auto s =
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  EXPECT_EQ(s.all_community(), Community(6695, 6695));
  EXPECT_EQ(s.none_community(), Community(0, 6695));
  EXPECT_EQ(s.exclude_community(8359), Community(0, 8359));
  EXPECT_EQ(s.include_community(8359), Community(6695, 8359));
}

TEST(Scheme, EcixStylePatterns) {
  // Table 1, ECIX column: RS-ASN 9033, ALL 9033:9033, EXCLUDE 64960:peer,
  // NONE 65000:0, INCLUDE 65000:peer.
  const auto s =
      IxpCommunityScheme::make("ECIX", 9033, SchemeStyle::PrivateRangeBased);
  EXPECT_EQ(s.all_community(), Community(9033, 9033));
  EXPECT_EQ(s.none_community(), Community(65000, 0));
  EXPECT_EQ(s.exclude_community(8447), Community(64960, 8447));
  EXPECT_EQ(s.include_community(8447), Community(65000, 8447));
}

TEST(Scheme, ClassifyDecix) {
  const auto s =
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  bgp::Asn peer = 0;
  EXPECT_EQ(s.classify(Community(6695, 6695)), CommunityTag::All);
  // NONE takes precedence over EXCLUDE-of-the-RS reading.
  EXPECT_EQ(s.classify(Community(0, 6695)), CommunityTag::None);
  EXPECT_EQ(s.classify(Community(0, 8359), &peer), CommunityTag::Exclude);
  EXPECT_EQ(peer, 8359u);
  EXPECT_EQ(s.classify(Community(6695, 8447), &peer), CommunityTag::Include);
  EXPECT_EQ(peer, 8447u);
  EXPECT_EQ(s.classify(Community(3356, 100)), CommunityTag::Unrelated);
  EXPECT_EQ(s.classify(bgp::kNoExport), CommunityTag::Unrelated);
}

TEST(Scheme, RsAsnBasedNeeds16BitAsn) {
  EXPECT_THROW(
      IxpCommunityScheme::make("X", 196608, SchemeStyle::RsAsnBased),
      InvalidArgument);
}

TEST(Scheme, AliasRoundTrip32Bit) {
  auto s = IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  s.add_alias(196629, 64512);
  EXPECT_EQ(s.encode_peer(196629), 64512);
  EXPECT_EQ(s.decode_peer(64512), 196629u);
  EXPECT_EQ(s.exclude_community(196629), Community(0, 64512));
  bgp::Asn peer = 0;
  EXPECT_EQ(s.classify(Community(0, 64512), &peer), CommunityTag::Exclude);
  EXPECT_EQ(peer, 196629u);
}

TEST(Scheme, UnaliasedPrivateLowIsUnrelated) {
  const auto s =
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  EXPECT_EQ(s.classify(Community(0, 64999)), CommunityTag::Unrelated);
  EXPECT_FALSE(s.decode_peer(64999));
}

TEST(Scheme, AliasValidation) {
  auto s = IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  EXPECT_THROW(s.add_alias(8359, 64512), InvalidArgument);    // fits 16 bits
  EXPECT_THROW(s.add_alias(196629, 1000), InvalidArgument);   // not private
  s.add_alias(196629, 64512);
  EXPECT_THROW(s.add_alias(196629, 64513), InvalidArgument);  // dup member
  EXPECT_THROW(s.add_alias(196630, 64512), InvalidArgument);  // dup alias
}

TEST(Scheme, Unaliased32BitCannotBeTargeted) {
  const auto s =
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  EXPECT_FALSE(s.can_target(196629));
  EXPECT_THROW(s.exclude_community(196629), InvalidArgument);
  EXPECT_TRUE(s.can_target(8359));
}

TEST(Scheme, EncodesRsAsn) {
  const auto s =
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  EXPECT_TRUE(s.encodes_rs_asn(Community(6695, 6695)));
  EXPECT_TRUE(s.encodes_rs_asn(Community(0, 6695)));
  EXPECT_TRUE(s.encodes_rs_asn(Community(6695, 8359)));
  EXPECT_FALSE(s.encodes_rs_asn(Community(0, 8359)));
}

// ---------------------------------------------------------------- policy

TEST(ExportPolicy, OpenAllowsEveryone) {
  const auto p = ExportPolicy::open();
  EXPECT_TRUE(p.allows(1));
  EXPECT_TRUE(p.allows(999999));
  EXPECT_DOUBLE_EQ(p.allowed_fraction(100), 1.0);
}

TEST(ExportPolicy, AllExceptBlocksListed) {
  const ExportPolicy p(ExportPolicy::Mode::AllExcept, {5410, 8732});
  EXPECT_FALSE(p.allows(5410));
  EXPECT_FALSE(p.allows(8732));
  EXPECT_TRUE(p.allows(8359));
  EXPECT_DOUBLE_EQ(p.allowed_fraction(10), 0.8);
}

TEST(ExportPolicy, NoneExceptAllowsListed) {
  const ExportPolicy p(ExportPolicy::Mode::NoneExcept, {8359, 8447});
  EXPECT_TRUE(p.allows(8359));
  EXPECT_FALSE(p.allows(5410));
  EXPECT_DOUBLE_EQ(p.allowed_fraction(10), 0.2);
}

TEST(ExportPolicy, ToCommunitiesFigure2a) {
  // Figure 2(a): NONE + INCLUDE toward 8359 and 8447 at DE-CIX.
  const auto s =
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  const ExportPolicy p(ExportPolicy::Mode::NoneExcept, {8359, 8447});
  const auto communities = p.to_communities(s);
  ASSERT_EQ(communities.size(), 3u);
  EXPECT_EQ(communities[0], Community(0, 6695));
  EXPECT_EQ(communities[1], Community(6695, 8359));
  EXPECT_EQ(communities[2], Community(6695, 8447));
}

TEST(ExportPolicy, ToCommunitiesFigure2b) {
  // Figure 2(b): ALL + EXCLUDE of 5410 and 8732.
  const auto s =
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  const ExportPolicy p(ExportPolicy::Mode::AllExcept, {5410, 8732});
  const auto with_all = p.to_communities(s, /*explicit_all=*/true);
  ASSERT_EQ(with_all.size(), 3u);
  EXPECT_EQ(with_all[0], Community(6695, 6695));
  EXPECT_EQ(with_all[1], Community(0, 5410));
  EXPECT_EQ(with_all[2], Community(0, 8732));
  // The ALL community is the default and is often omitted (section 4.2).
  EXPECT_EQ(p.to_communities(s, false).size(), 2u);
}

TEST(ExportPolicy, FromCommunitiesRoundTrip) {
  const auto s =
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  for (const auto& p :
       {ExportPolicy(ExportPolicy::Mode::AllExcept, {5410, 8732}),
        ExportPolicy(ExportPolicy::Mode::NoneExcept, {8359}),
        ExportPolicy::open()}) {
    const auto decoded =
        ExportPolicy::from_communities(p.to_communities(s, true), s);
    ASSERT_TRUE(decoded) << p.to_string();
    EXPECT_EQ(*decoded, p) << p.to_string();
  }
}

TEST(ExportPolicy, FromCommunitiesNoSchemeValues) {
  const auto s =
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  EXPECT_FALSE(ExportPolicy::from_communities({}, s));
  EXPECT_FALSE(
      ExportPolicy::from_communities({Community(3356, 100)}, s));
}

TEST(ExportPolicy, FromCommunitiesExcludeWithoutAll) {
  // An EXCLUDE-only list (ALL omitted) still means AllExcept.
  const auto s =
      IxpCommunityScheme::make("MSK-IX", 8631, SchemeStyle::RsAsnBased);
  const auto p =
      ExportPolicy::from_communities({Community(0, 2854)}, s);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->mode(), ExportPolicy::Mode::AllExcept);
  EXPECT_FALSE(p->allows(2854));
  EXPECT_TRUE(p->allows(12389));
}

TEST(ExportPolicy, IntersectSameModes) {
  const std::set<bgp::Asn> universe = {1, 2, 3, 4, 5};
  const ExportPolicy a(ExportPolicy::Mode::AllExcept, {1});
  const ExportPolicy b(ExportPolicy::Mode::AllExcept, {2});
  const auto ab = ExportPolicy::intersect(a, b, universe);
  EXPECT_FALSE(ab.allows(1));
  EXPECT_FALSE(ab.allows(2));
  EXPECT_TRUE(ab.allows(3));

  const ExportPolicy c(ExportPolicy::Mode::NoneExcept, {1, 2, 3});
  const ExportPolicy d(ExportPolicy::Mode::NoneExcept, {2, 3, 4});
  const auto cd = ExportPolicy::intersect(c, d, universe);
  EXPECT_FALSE(cd.allows(1));
  EXPECT_TRUE(cd.allows(2));
  EXPECT_TRUE(cd.allows(3));
  EXPECT_FALSE(cd.allows(4));
}

TEST(ExportPolicy, IntersectMixedModes) {
  const std::set<bgp::Asn> universe = {1, 2, 3, 4};
  const ExportPolicy all_except(ExportPolicy::Mode::AllExcept, {2});
  const ExportPolicy none_except(ExportPolicy::Mode::NoneExcept, {2, 3});
  const auto both =
      ExportPolicy::intersect(all_except, none_except, universe);
  EXPECT_FALSE(both.allows(1));
  EXPECT_FALSE(both.allows(2));  // excluded by one side
  EXPECT_TRUE(both.allows(3));   // allowed by both
  EXPECT_FALSE(both.allows(4));
}

// ---------------------------------------------------------------- server

bgp::Route member_route(const std::string& prefix, bgp::Asn origin,
                        std::vector<Community> communities) {
  bgp::Route r;
  r.prefix = *IpPrefix::parse(prefix);
  r.attrs.as_path = AsPath({origin});
  r.attrs.next_hop = origin;
  r.attrs.communities = std::move(communities);
  return r;
}

class RouteServerTest : public ::testing::Test {
 protected:
  RouteServerTest()
      : rs_(IxpCommunityScheme::make("DE-CIX", 6695,
                                     SchemeStyle::RsAsnBased)) {
    // Figure 3: A, B, C, D connected; A excludes C; others open.
    rs_.connect(kA, 0xC0000201);
    rs_.connect(kB, 0xC0000202);
    rs_.connect(kC, 0xC0000203);
    rs_.connect(kD, 0xC0000204);
    rs_.announce(kA, member_route("10.1.0.0/16", kA,
                                  {Community(0, 6695), Community(6695, kB),
                                   Community(6695, kD)}));
    rs_.announce(kB, member_route("10.2.0.0/16", kB,
                                  {Community(0, 6695), Community(6695, kA),
                                   Community(6695, kC), Community(6695, kD)}));
    rs_.announce(kC, member_route("10.3.0.0/16", kC,
                                  {Community(6695, 6695)}));
    rs_.announce(kD, member_route("10.4.0.0/16", kD,
                                  {Community(6695, 6695)}));
  }

  static constexpr bgp::Asn kA = 1111, kB = 2222, kC = 3333, kD = 4444;
  RouteServer rs_;
};

TEST_F(RouteServerTest, MembersTracked) {
  EXPECT_EQ(rs_.member_count(), 4u);
  EXPECT_TRUE(rs_.is_member(kA));
  EXPECT_FALSE(rs_.is_member(9999));
}

TEST_F(RouteServerTest, AnnounceRequiresSession) {
  EXPECT_THROW(rs_.announce(9999, member_route("10.9.0.0/16", 9999, {})),
               InvalidArgument);
}

TEST_F(RouteServerTest, EffectivePolicies) {
  const auto pa = rs_.effective_policy(kA);
  EXPECT_EQ(pa.mode(), ExportPolicy::Mode::NoneExcept);
  EXPECT_TRUE(pa.allows(kB));
  EXPECT_TRUE(pa.allows(kD));
  EXPECT_FALSE(pa.allows(kC));
  const auto pc = rs_.effective_policy(kC);
  EXPECT_TRUE(pc.allows(kA));
  EXPECT_TRUE(pc.allows(kB));
}

TEST_F(RouteServerTest, ExportsFilterBySetterPolicy) {
  // C receives routes from B and D but not from A (A's policy omits C).
  const auto to_c = rs_.exports_to(kC);
  std::set<bgp::Asn> setters;
  for (const auto& e : to_c) setters.insert(e.peer_asn);
  EXPECT_EQ(setters, (std::set<bgp::Asn>{kB, kD}));
  // A receives from B, C, D (all allow A).
  const auto to_a = rs_.exports_to(kA);
  setters.clear();
  for (const auto& e : to_a) setters.insert(e.peer_asn);
  EXPECT_EQ(setters, (std::set<bgp::Asn>{kB, kC, kD}));
}

TEST_F(RouteServerTest, ReciprocalLinksFigure3) {
  // Figure 3(b): every pair except A-C.
  const auto links = rs_.reciprocal_links();
  EXPECT_EQ(links.size(), 5u);
  EXPECT_FALSE(links.count(bgp::AsLink(kA, kC)));
  EXPECT_TRUE(links.count(bgp::AsLink(kA, kB)));
  EXPECT_TRUE(links.count(bgp::AsLink(kA, kD)));
  EXPECT_TRUE(links.count(bgp::AsLink(kB, kC)));
  EXPECT_TRUE(links.count(bgp::AsLink(kB, kD)));
  EXPECT_TRUE(links.count(bgp::AsLink(kC, kD)));
}

TEST_F(RouteServerTest, ImportFiltersCanOnlyRestrict) {
  // D refuses routes from B on import: D-B link disappears.
  rs_.set_import_filter(kD,
                        ExportPolicy(ExportPolicy::Mode::AllExcept, {kB}));
  const auto links = rs_.reciprocal_links();
  EXPECT_FALSE(links.count(bgp::AsLink(kB, kD)));
  EXPECT_TRUE(links.count(bgp::AsLink(kA, kD)));
  const auto to_d = rs_.exports_to(kD);
  for (const auto& e : to_d) EXPECT_NE(e.peer_asn, kB);
}

TEST_F(RouteServerTest, DisconnectDropsRoutesAndLinks) {
  rs_.disconnect(kD);
  EXPECT_EQ(rs_.member_count(), 3u);
  EXPECT_TRUE(rs_.exports_to(kD).empty());
  const auto links = rs_.reciprocal_links();
  EXPECT_FALSE(links.count(bgp::AsLink(kA, kD)));
  EXPECT_EQ(links.size(), 2u);  // A-B, B-C
}

TEST_F(RouteServerTest, PolicyIntersectedAcrossPrefixes) {
  // A announces a second prefix excluding B: N_A = intersection, so the
  // A-B link must disappear (step 4 of the algorithm).
  rs_.announce(kA, member_route("10.11.0.0/16", kA,
                                {Community(0, 6695), Community(6695, kD)}));
  const auto pa = rs_.effective_policy(kA);
  EXPECT_FALSE(pa.allows(kB));
  EXPECT_TRUE(pa.allows(kD));
  const auto links = rs_.reciprocal_links();
  EXPECT_FALSE(links.count(bgp::AsLink(kA, kB)));
  EXPECT_TRUE(links.count(bgp::AsLink(kA, kD)));
}

TEST_F(RouteServerTest, StripCommunitiesOption) {
  RouteServer::Options options;
  options.strip_communities = true;
  RouteServer netnod(
      IxpCommunityScheme::make("Netnod", 52005, SchemeStyle::RsAsnBased),
      options);
  netnod.connect(kA, 1);
  netnod.connect(kB, 2);
  netnod.announce(kA, member_route("10.1.0.0/16", kA,
                                   {Community(52005, 52005)}));
  const auto to_b = netnod.exports_to(kB);
  ASSERT_EQ(to_b.size(), 1u);
  EXPECT_TRUE(to_b[0].route.attrs.communities.empty());
}

TEST_F(RouteServerTest, PrependRsAsnOption) {
  RouteServer::Options options;
  options.prepend_rs_asn = true;
  RouteServer visible(
      IxpCommunityScheme::make("X-IX", 64700, SchemeStyle::RsAsnBased),
      options);
  visible.connect(kA, 1);
  visible.connect(kB, 2);
  visible.announce(kA, member_route("10.1.0.0/16", kA, {}));
  const auto to_b = visible.exports_to(kB);
  ASSERT_EQ(to_b.size(), 1u);
  EXPECT_EQ(to_b[0].route.attrs.as_path, AsPath({64700, kA}));
}

TEST_F(RouteServerTest, WithdrawRemovesRoute) {
  rs_.withdraw(kC, *IpPrefix::parse("10.3.0.0/16"));
  const auto to_a = rs_.exports_to(kA);
  for (const auto& e : to_a) EXPECT_NE(e.peer_asn, kC);
}

TEST(RouteServerEdge, NoAnnouncementsMeansDefaultOpen) {
  RouteServer rs(
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased));
  rs.connect(1, 1);
  rs.connect(2, 2);
  // Members with sessions but no routes default to open policies; with no
  // routes there is still reciprocal willingness.
  EXPECT_TRUE(rs.effective_policy(1).allows(2));
  EXPECT_EQ(rs.reciprocal_links().size(), 1u);
}

}  // namespace
}  // namespace mlp::routeserver
