// Tests for the MLP inference engine (algorithm steps 4-5) and for the
// reciprocity checker (section 4.4).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/engine_snapshot.hpp"
#include "core/reciprocity.hpp"
#include "util/bytes.hpp"

namespace mlp::core {
namespace {

using bgp::Community;
using routeserver::IxpCommunityScheme;
using routeserver::SchemeStyle;

IxpContext decix_context(std::set<Asn> members) {
  IxpContext ctx;
  ctx.name = "DE-CIX";
  ctx.scheme = IxpCommunityScheme::make("DE-CIX", 6695,
                                        SchemeStyle::RsAsnBased);
  ctx.rs_members = std::move(members);
  return ctx;
}

Observation obs(Asn setter, const std::string& prefix,
                std::vector<Community> communities,
                Source source = Source::Passive) {
  Observation o;
  o.setter = setter;
  o.prefix = *IpPrefix::parse(prefix);
  o.communities = std::move(communities);
  o.source = source;
  return o;
}

TEST(Engine, Figure3Links) {
  // Paper figure 3: A(1) blocks C(3); B(2), C, D(4) open.
  MlpInferenceEngine engine(decix_context({1, 2, 3, 4}));
  engine.add(obs(1, "10.1.0.0/16",
                 {Community(0, 6695), Community(6695, 2), Community(6695, 4)}));
  engine.add(obs(2, "10.2.0.0/16", {Community(6695, 6695)}));
  engine.add(obs(3, "10.3.0.0/16", {Community(6695, 6695)}));
  engine.add(obs(4, "10.4.0.0/16", {}));  // no communities: default ALL

  const auto links = engine.infer_links();
  EXPECT_EQ(links.size(), 5u);
  EXPECT_FALSE(links.count(AsLink(1, 3)));
  EXPECT_TRUE(links.count(AsLink(1, 2)));
  EXPECT_TRUE(links.count(AsLink(1, 4)));
  EXPECT_TRUE(links.count(AsLink(2, 3)));
  EXPECT_TRUE(links.count(AsLink(2, 4)));
  EXPECT_TRUE(links.count(AsLink(3, 4)));
}

TEST(Engine, ReciprocityRequiresBothDirections) {
  MlpInferenceEngine engine(decix_context({1, 2}));
  // 1 excludes 2, 2 allows everyone: no link (one-way willingness).
  engine.add(obs(1, "10.1.0.0/16", {Community(0, 2)}));
  engine.add(obs(2, "10.2.0.0/16", {Community(6695, 6695)}));
  EXPECT_TRUE(engine.infer_links().empty());
}

TEST(Engine, UnobservedMembersExcludedByDefault) {
  MlpInferenceEngine engine(decix_context({1, 2, 3}));
  engine.add(obs(1, "10.1.0.0/16", {}));
  engine.add(obs(2, "10.2.0.0/16", {}));
  // 3 never observed: participates only with assume-open.
  EXPECT_EQ(engine.infer_links().size(), 1u);
  EXPECT_EQ(engine.infer_links(true).size(), 3u);
}

TEST(Engine, NonMemberObservationsRejected) {
  MlpInferenceEngine engine(decix_context({1, 2}));
  engine.add(obs(99, "10.1.0.0/16", {}));
  EXPECT_EQ(engine.rejected_observations(), 1u);
  EXPECT_TRUE(engine.observed_members().empty());
}

TEST(Engine, PolicyIntersectionAcrossPrefixes) {
  // Step 4: N_a intersected across prefixes. First prefix allows {2,3},
  // second allows {2,4}: member 1 effectively allows only 2.
  MlpInferenceEngine engine(decix_context({1, 2, 3, 4}));
  engine.add(obs(1, "10.1.0.0/16",
                 {Community(0, 6695), Community(6695, 2), Community(6695, 3)}));
  engine.add(obs(1, "10.2.0.0/16",
                 {Community(0, 6695), Community(6695, 2), Community(6695, 4)}));
  const auto policy = engine.policy_of(1);
  ASSERT_TRUE(policy);
  EXPECT_TRUE(policy->allows(2));
  EXPECT_FALSE(policy->allows(3));
  EXPECT_FALSE(policy->allows(4));
}

TEST(Engine, ReannouncementReplacesPolicyForPrefix) {
  MlpInferenceEngine engine(decix_context({1, 2}));
  engine.add(obs(1, "10.1.0.0/16", {Community(0, 2)}));  // exclude 2
  engine.add(obs(1, "10.1.0.0/16", {Community(6695, 6695)}));  // now open
  const auto policy = engine.policy_of(1);
  ASSERT_TRUE(policy);
  EXPECT_TRUE(policy->allows(2));
}

TEST(Engine, StatsBreakdown) {
  MlpInferenceEngine engine(decix_context({1, 2, 3, 4}));
  engine.add(obs(1, "10.1.0.0/16", {}, Source::Passive));
  engine.add(obs(2, "10.2.0.0/16", {}, Source::ActiveLg));
  engine.add(obs(2, "10.3.0.0/16", {Community(0, 4)}, Source::ActiveLg));
  const auto stats = engine.stats();
  EXPECT_EQ(stats.rs_members, 4u);
  EXPECT_EQ(stats.observed_members, 2u);
  EXPECT_EQ(stats.passive_members, 1u);
  EXPECT_EQ(stats.active_members, 1u);
  EXPECT_EQ(stats.observations, 3u);
  EXPECT_EQ(stats.inconsistent_members, 1u);  // member 2 differs per prefix
  EXPECT_EQ(stats.links, 1u);                 // 1-2 only (2 blocks 4)
}

TEST(Engine, PolicyOfUnknownMember) {
  MlpInferenceEngine engine(decix_context({1}));
  EXPECT_FALSE(engine.policy_of(1));
  EXPECT_FALSE(engine.policy_of(42));
}

TEST(Engine, GenerationTracksAcceptedMutations) {
  MlpInferenceEngine engine(decix_context({1, 2}));
  EXPECT_EQ(engine.generation(), 0u);
  engine.add(obs(1, "10.1.0.0/16", {}));
  EXPECT_EQ(engine.generation(), 1u);
  // A rejected observation changes no state, so the generation holds.
  engine.add(obs(99, "10.9.0.0/16", {}));
  EXPECT_EQ(engine.generation(), 1u);
  engine.add(obs(2, "10.2.0.0/16", {}));
  EXPECT_EQ(engine.generation(), 2u);
}

TEST(Engine, RestoreInvalidatesMemoisedPolicies) {
  // Regression: restore_state() must drop the memoised merged policies
  // (N_a) and the incremental reciprocity bitset UNCONDITIONALLY -- a
  // memo warmed by pre-restore queries must never leak into
  // post-restore answers. Interleaving: add -> stats (memo warm) ->
  // restore -> stats, pinned against a fresh engine fed the restored
  // observations directly.
  MlpInferenceEngine donor(decix_context({1, 2, 3}));
  donor.add(obs(1, "10.1.0.0/16", {Community(0, 2)}));  // 1 excludes 2
  donor.add(obs(2, "10.2.0.0/16", {}));
  donor.add(obs(3, "10.3.0.0/16", {}));
  ByteWriter writer;
  donor.serialize_state(writer);
  const auto image = writer.take();

  // Warm the victim's memo and bitset with a DIFFERENT state (everyone
  // open: 3 links).
  MlpInferenceEngine engine(decix_context({1, 2, 3}));
  engine.add(obs(1, "10.1.0.0/16", {}));
  engine.add(obs(2, "10.2.0.0/16", {}));
  engine.add(obs(3, "10.3.0.0/16", {}));
  EXPECT_EQ(engine.stats().links, 3u);
  ByteReader reader(image);
  engine.restore_state(reader);

  MlpInferenceEngine fresh(decix_context({1, 2, 3}));
  fresh.add(obs(1, "10.1.0.0/16", {Community(0, 2)}));
  fresh.add(obs(2, "10.2.0.0/16", {}));
  fresh.add(obs(3, "10.3.0.0/16", {}));
  EXPECT_EQ(fresh.stats().links, 2u);  // 1-3 and 2-3 only
  EXPECT_EQ(engine.stats().links, fresh.stats().links);
  EXPECT_EQ(engine.infer_links(), fresh.infer_links());
  EXPECT_EQ(engine.infer_links(true), fresh.infer_links(true));
  const auto* policy = engine.policy_of(1);
  ASSERT_TRUE(policy != nullptr);
  EXPECT_FALSE(policy->allows(2));
}

TEST(Engine, PrecomputedStatsAgreeWithinQuiescedWindow) {
  // The documented contract of stats(precomputed_links): computed and
  // consumed with no mutation in between, it must equal the
  // self-counting overload exactly.
  MlpInferenceEngine engine(decix_context({1, 2, 3, 4}));
  engine.add(obs(1, "10.1.0.0/16", {Community(0, 3)}));
  engine.add(obs(2, "10.2.0.0/16", {}));
  engine.add(obs(3, "10.3.0.0/16", {}));
  const auto links = engine.infer_links();
  const auto with_precomputed = engine.stats(links.size());
  const auto self_counted = engine.stats();
  EXPECT_EQ(with_precomputed.links, self_counted.links);
  EXPECT_EQ(with_precomputed.observed_members,
            self_counted.observed_members);
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(EngineDeathTest, PrecomputedStatsAssertOnStaleMemo) {
  // Mutating between the link computation and stats(precomputed) is a
  // contract violation; debug builds must catch the stale memo.
  MlpInferenceEngine engine(decix_context({1, 2, 3}));
  engine.add(obs(1, "10.1.0.0/16", {}));
  engine.add(obs(2, "10.2.0.0/16", {}));
  const auto links = engine.infer_links();
  engine.add(obs(3, "10.3.0.0/16", {}));  // stale: generation moved
  EXPECT_DEATH((void)engine.stats(links.size()), "");
}
#endif

// ---------------------------------------------------------- freeze/snapshot

TEST(EngineSnapshot, AgreesWithEngineAtFreezeTime) {
  MlpInferenceEngine engine(decix_context({1, 2, 3, 4}));
  engine.add(obs(1, "10.1.0.0/16", {Community(0, 3)}));  // 1 excludes 3
  engine.add(obs(2, "10.2.0.0/16", {}));
  engine.add(obs(3, "10.3.0.0/16", {}));
  const auto snap = engine.freeze(/*assume_open_for_unobserved=*/false,
                                  /*epoch=*/7);
  EXPECT_EQ(snap->epoch(), 7u);
  EXPECT_EQ(snap->generation(), engine.generation());
  EXPECT_EQ(snap->ixp(), "DE-CIX");
  EXPECT_FALSE(snap->assume_open_for_unobserved());
  EXPECT_EQ(snap->links(), engine.infer_links());
  EXPECT_EQ(snap->link_count(), engine.count_links());
  EXPECT_EQ(snap->stats().links, engine.stats().links);
  EXPECT_EQ(snap->rejected_observations(), engine.rejected_observations());
  EXPECT_TRUE(snap->has_link(1, 2));
  EXPECT_FALSE(snap->has_link(1, 3));
  EXPECT_FALSE(snap->has_link(1, 4));  // unobserved: masked out
  EXPECT_FALSE(snap->has_link(1, 1));  // no self links
  EXPECT_FALSE(snap->has_link(1, 99));  // not a member
  EXPECT_TRUE(snap->is_member(4));
  EXPECT_FALSE(snap->is_observed(4));
  EXPECT_FALSE(snap->is_member(99));
  // links_of agrees with the pairwise view.
  EXPECT_EQ(snap->links_of(1), std::vector<Asn>{2});
  EXPECT_EQ(snap->links_of(2), (std::vector<Asn>{1, 3}));
  EXPECT_TRUE(snap->links_of(99).empty());
}

TEST(EngineSnapshot, ImmutableAcrossEngineMutation) {
  // The snapshot owns everything it answers from: further adds (and even
  // a restore) on the engine must not change it -- the property the
  // lock-free readers rely on.
  MlpInferenceEngine engine(decix_context({1, 2, 3}));
  engine.add(obs(1, "10.1.0.0/16", {}));
  engine.add(obs(2, "10.2.0.0/16", {}));
  const auto snap = engine.freeze(false, 1);
  const auto links_before = snap->links();
  const auto count_before = snap->link_count();
  engine.add(obs(3, "10.3.0.0/16", {}));
  engine.add(obs(1, "10.9.0.0/16", {Community(0, 2)}));  // now excludes 2
  EXPECT_EQ(snap->links(), links_before);
  EXPECT_EQ(snap->link_count(), count_before);
  EXPECT_TRUE(snap->has_link(1, 2));
  EXPECT_FALSE(snap->is_observed(3));
  // The engine itself moved on.
  EXPECT_FALSE(engine.infer_links().count(AsLink(1, 2)));
  // A later freeze sees the new state under a new epoch.
  const auto snap2 = engine.freeze(false, 2);
  EXPECT_EQ(snap2->epoch(), 2u);
  EXPECT_FALSE(snap2->has_link(1, 2));
  EXPECT_TRUE(snap2->is_observed(3));
}

TEST(EngineSnapshot, AssumeOpenVariant) {
  MlpInferenceEngine engine(decix_context({1, 2, 3}));
  engine.add(obs(1, "10.1.0.0/16", {}));
  engine.add(obs(2, "10.2.0.0/16", {}));
  const auto open = engine.freeze(true, 1);
  EXPECT_TRUE(open->assume_open_for_unobserved());
  EXPECT_EQ(open->links(), engine.infer_links(true));
  EXPECT_EQ(open->link_count(), 3u);  // unobserved 3 participates
  EXPECT_TRUE(open->has_link(1, 3));
  EXPECT_EQ(open->links_of(3), (std::vector<Asn>{1, 2}));
  const auto conservative = engine.freeze(false, 2);
  EXPECT_EQ(conservative->link_count(), 1u);
  EXPECT_FALSE(conservative->has_link(1, 3));
}

// ------------------------------------------------------------ reciprocity

TEST(Reciprocity, ConservativeFiltersPass) {
  irr::IrrDatabase db;
  // AS1 exports to {2,3}, imports from {2,3,4}: more permissive import.
  db.load(
      "aut-num: AS1\n"
      "import: from AS2 accept ANY\nimport: from AS3 accept ANY\n"
      "import: from AS4 accept ANY\n"
      "export: to AS2 announce AS1\nexport: to AS3 announce AS1\n"
      "\n"
      "aut-num: AS2\n"
      "import: from AS1 accept ANY\n"
      "export: to AS1 announce AS2\n");
  const auto report =
      check_reciprocity(db, {1, 2}, {1, 2, 3, 4});
  EXPECT_EQ(report.members_checked, 2u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.more_permissive_imports, 1u);
  EXPECT_EQ(report.equal_filters, 1u);
  EXPECT_DOUBLE_EQ(report.violation_rate(), 0.0);
}

TEST(Reciprocity, ViolationDetected) {
  irr::IrrDatabase db;
  // AS1 exports to 2 but does not import from 2: violation.
  db.load(
      "aut-num: AS1\n"
      "import: from AS3 accept ANY\n"
      "export: to AS2 announce AS1\n");
  const auto report = check_reciprocity(db, {1}, {2, 3});
  EXPECT_EQ(report.violations, 1u);
  ASSERT_EQ(report.violating_members.size(), 1u);
  EXPECT_EQ(report.violating_members[0], 1u);
}

TEST(Reciprocity, AnyImportNeverViolates) {
  irr::IrrDatabase db;
  db.load(
      "aut-num: AS1\n"
      "import: from ANY accept ANY\n"
      "export: to AS2 announce AS1\n");
  const auto report = check_reciprocity(db, {1}, {2, 3, 4});
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.more_permissive_imports, 1u);
}

TEST(Reciprocity, MissingObjectsCounted) {
  irr::IrrDatabase db;
  db.load("aut-num: AS1\nexport: to AS2 announce AS1\n");  // no import
  const auto report = check_reciprocity(db, {1, 5}, {2});
  EXPECT_EQ(report.members_checked, 0u);
  EXPECT_EQ(report.members_missing, 2u);
}

}  // namespace
}  // namespace mlp::core
