// Tests for the section-5 analyses and the global estimate model.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/estimate.hpp"

namespace mlp::core {
namespace {

using bgp::Community;
using routeserver::IxpCommunityScheme;
using routeserver::SchemeStyle;

TEST(Visibility, CountsAndOverlap) {
  const std::set<AsLink> mlp = {AsLink(1, 2), AsLink(1, 3), AsLink(2, 3)};
  const std::set<AsLink> passive = {AsLink(1, 2), AsLink(1, 9)};
  const std::set<AsLink> active = {AsLink(2, 3), AsLink(5, 6)};
  const auto cmp = compare_visibility(mlp, passive, active);
  EXPECT_EQ(cmp.mlp_links, 3u);
  EXPECT_EQ(cmp.overlap_mlp_passive, 1u);
  EXPECT_EQ(cmp.overlap_mlp_active, 1u);
  ASSERT_EQ(cmp.rows.size(), 3u);
  // Rows sorted by MLP count desc; all three members have 2 MLP links.
  EXPECT_EQ(cmp.rows[0].mlp, 2u);
  // Member 1 has passive count 2 (links 1-2 and 1-9 touch it).
  const auto& row1 = *std::find_if(
      cmp.rows.begin(), cmp.rows.end(),
      [](const VisibilityRow& r) { return r.member == 1; });
  EXPECT_EQ(row1.passive, 2u);
  EXPECT_EQ(row1.active, 0u);
}

TEST(Visibility, EmptySets) {
  const auto cmp = compare_visibility({}, {}, {});
  EXPECT_TRUE(cmp.rows.empty());
  EXPECT_EQ(cmp.mlp_links, 0u);
}

TEST(Degrees, StubFractions) {
  // Degrees: 1->0 (stub), 2->0 (stub), 3->15, 4->50.
  auto degree = [](Asn asn) -> std::size_t {
    switch (asn) {
      case 3:
        return 15;
      case 4:
        return 50;
      default:
        return 0;
    }
  };
  const std::set<AsLink> links = {AsLink(1, 2), AsLink(1, 3), AsLink(3, 4),
                                  AsLink(2, 4)};
  const auto analysis = analyze_link_degrees(links, degree);
  EXPECT_DOUBLE_EQ(analysis.frac_stub_stub, 0.25);  // only 1-2
  EXPECT_DOUBLE_EQ(analysis.frac_one_stub, 0.75);   // all but 3-4
  EXPECT_DOUBLE_EQ(analysis.frac_small, 0.75);      // min degree <= 10
  ASSERT_EQ(analysis.smallest.size(), 4u);
  EXPECT_EQ(*std::max_element(analysis.largest.begin(),
                              analysis.largest.end()),
            50u);
}

TEST(Density, PerMemberFractions) {
  const std::set<Asn> members = {1, 2, 3, 4};
  // 1 peers with everyone; 4 with nobody.
  const std::set<AsLink> links = {AsLink(1, 2), AsLink(1, 3), AsLink(2, 3)};
  const auto analysis = peering_density(links, members);
  ASSERT_EQ(analysis.per_member.size(), 4u);
  EXPECT_DOUBLE_EQ(analysis.per_member[0], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(analysis.per_member[3], 0.0);
  EXPECT_NEAR(analysis.mean, (2 + 2 + 2 + 0) / 3.0 / 4.0, 1e-9);
}

TEST(Density, DegenerateMemberSet) {
  EXPECT_TRUE(peering_density({}, {}).per_member.empty());
  EXPECT_TRUE(peering_density({}, {1}).per_member.empty());
}

TEST(Repellers, CountsConeAndCustomerBlocks) {
  IxpContext ctx;
  ctx.name = "DE-CIX";
  ctx.scheme =
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  ctx.rs_members = {1, 2, 3, 4};
  MlpInferenceEngine engine(ctx);
  auto obs = [&](Asn setter, const std::string& prefix,
                 std::vector<Community> communities) {
    Observation o;
    o.setter = setter;
    o.prefix = *IpPrefix::parse(prefix);
    o.communities = std::move(communities);
    engine.add(o);
  };
  // 1 excludes 2 (its customer) and 3; 4 excludes 3.
  obs(1, "10.1.0.0/16", {Community(0, 2), Community(0, 3)});
  obs(4, "10.4.0.0/16", {Community(0, 3)});

  auto cone = [](Asn asn) -> std::set<Asn> {
    if (asn == 1) return {1, 2};  // 2 in 1's cone
    return {asn};
  };
  auto is_customer = [](Asn provider, Asn customer) {
    return provider == 1 && customer == 2;
  };
  const std::vector<const MlpInferenceEngine*> engines = {&engine};
  const auto report = analyze_repellers(engines, cone, is_customer);
  EXPECT_EQ(report.exclude_applications, 3u);
  EXPECT_EQ(report.repelled_members, 2u);       // targets 2 and 3
  EXPECT_EQ(report.blocked_count.at(3), 2u);    // 3 blocked twice
  EXPECT_EQ(report.cone_blocks, 1u);            // 1 blocks cone member 2
  EXPECT_EQ(report.provider_blocks_customer, 1u);
}

TEST(Repellers, NonMemberTargetsIgnored) {
  IxpContext ctx;
  ctx.name = "DE-CIX";
  ctx.scheme =
      IxpCommunityScheme::make("DE-CIX", 6695, SchemeStyle::RsAsnBased);
  ctx.rs_members = {1, 2};
  MlpInferenceEngine engine(ctx);
  Observation o;
  o.setter = 1;
  o.prefix = *IpPrefix::parse("10.0.0.0/16");
  o.communities = {Community(0, 999)};  // 999 not a member
  engine.add(o);
  const std::vector<const MlpInferenceEngine*> engines = {&engine};
  const auto report = analyze_repellers(engines, nullptr, nullptr);
  EXPECT_EQ(report.exclude_applications, 0u);
}

TEST(Hybrid, DetectsC2pLabelledMlpLinks) {
  const std::set<AsLink> mlp = {AsLink(1, 2), AsLink(3, 4)};
  const std::set<AsLink> passive = {AsLink(1, 2), AsLink(3, 4),
                                    AsLink(5, 6)};
  auto rel = [](Asn a, Asn b) -> std::optional<bgp::Rel> {
    if (AsLink(a, b) == AsLink(1, 2)) return bgp::Rel::C2P;
    if (AsLink(a, b) == AsLink(3, 4)) return bgp::Rel::P2P;
    return std::nullopt;
  };
  const auto report = find_hybrid_relationships(mlp, passive, rel);
  EXPECT_EQ(report.candidates, 1u);
  ASSERT_EQ(report.links.size(), 1u);
  EXPECT_EQ(report.links[0], AsLink(1, 2));
}

// ------------------------------------------------------------- estimate

IxpCensusEntry census(const std::string& name, std::set<bgp::Asn> members,
                      bool rs, PricingModel pricing, bool na = false) {
  IxpCensusEntry e;
  e.name = name;
  e.members = std::move(members);
  e.has_route_server = rs;
  e.pricing = pricing;
  e.north_american = na;
  return e;
}

TEST(Estimate, DensityRules) {
  EstimateAssumptions a;
  EXPECT_DOUBLE_EQ(
      assumed_density(census("x", {}, true, PricingModel::FlatFee), a, false),
      0.70);
  EXPECT_DOUBLE_EQ(
      assumed_density(census("x", {}, true, PricingModel::UsageBased), a,
                      false),
      0.60);
  EXPECT_DOUBLE_EQ(
      assumed_density(census("x", {}, false, PricingModel::FlatFee), a,
                      false),
      0.50);
  EXPECT_DOUBLE_EQ(
      assumed_density(
          census("x", {}, true, PricingModel::FlatFee, /*na=*/true), a,
          false),
      0.40);
  // Conservative cap.
  EXPECT_DOUBLE_EQ(
      assumed_density(census("x", {}, true, PricingModel::FlatFee), a, true),
      0.60);
}

TEST(Estimate, TotalsAndPerIxp) {
  // 5 members, flat fee + RS: C(5,2)=10 pairs * 0.7 = 7 links.
  const std::vector<IxpCensusEntry> entries = {
      census("A", {1, 2, 3, 4, 5}, true, PricingModel::FlatFee)};
  const auto estimate = estimate_global_peerings(entries, {});
  EXPECT_EQ(estimate.total_links, 7u);
  EXPECT_EQ(estimate.unique_links, 7u);
  EXPECT_EQ(estimate.distinct_ases, 5u);
  ASSERT_EQ(estimate.per_ixp.size(), 1u);
  EXPECT_EQ(estimate.per_ixp[0].second, 7u);
}

TEST(Estimate, OverlapReducesUniqueLinks) {
  // Two identical 5-member IXPs: total 14, but the same pairs can host
  // both IXPs' links, so the unique lower bound stays at 7... with
  // budgets 7+7 over 10 pairs the greedy overlaps 7 pairs fully and
  // needs 0 extra: unique = 7.
  const std::set<bgp::Asn> members = {1, 2, 3, 4, 5};
  const std::vector<IxpCensusEntry> entries = {
      census("A", members, true, PricingModel::FlatFee),
      census("B", members, true, PricingModel::FlatFee)};
  const auto estimate = estimate_global_peerings(entries, {});
  EXPECT_EQ(estimate.total_links, 14u);
  EXPECT_EQ(estimate.unique_links, 7u);
  EXPECT_EQ(estimate.distinct_ases, 5u);
}

TEST(Estimate, DisjointIxpsDoNotOverlap) {
  const std::vector<IxpCensusEntry> entries = {
      census("A", {1, 2, 3, 4, 5}, true, PricingModel::FlatFee),
      census("B", {6, 7, 8, 9, 10}, true, PricingModel::UsageBased)};
  const auto estimate = estimate_global_peerings(entries, {});
  EXPECT_EQ(estimate.total_links, 7u + 6u);
  EXPECT_EQ(estimate.unique_links, 13u);
  EXPECT_EQ(estimate.distinct_ases, 10u);
}

TEST(Estimate, ConservativeVariantLowersTotals) {
  const std::set<bgp::Asn> members = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<IxpCensusEntry> entries = {
      census("A", members, true, PricingModel::FlatFee)};
  const auto normal = estimate_global_peerings(entries, {}, false);
  const auto conservative = estimate_global_peerings(entries, {}, true);
  EXPECT_LT(conservative.total_links, normal.total_links);
}

}  // namespace
}  // namespace mlp::core
