// Epoch publishing and the query front end: published snapshots are
// immutable, epochs are monotone, concurrent readers never block ingest
// (the TSan target for the lock-free swap), the snapshot/result flag
// plumbing agrees end to end, and the QueryServer line protocol answers
// over loopback TCP.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_snapshot.hpp"
#include "pipeline/live_session.hpp"
#include "pipeline/query_server.hpp"
#include "scenario/scenario.hpp"
#include "stream/source.hpp"
#include "util/errors.hpp"

namespace mlp::pipeline {
namespace {

scenario::Scenario make_scenario(std::uint64_t seed = 515151) {
  scenario::ScenarioParams params;
  params.topology.n_ases = 400;
  params.membership_scale = 0.15;
  params.seed = seed;
  return scenario::Scenario(params);
}

LiveConfig make_config(std::size_t threads,
                       MergePolicy merge = MergePolicy::Concatenate) {
  LiveConfig config;
  config.threads = threads;
  config.batch_size = 64;
  // Concatenate by default: no watermark gate, so observations reach the
  // engines (and epochs advance) DURING ingest, not only at close.
  config.merge = merge;
  return config;
}

FeedHandle add_feed(LiveSession& session, const std::string& name) {
  FeedOptions options;
  options.name = name;
  return session.add_feed(options);
}

void feed_chunks(FeedHandle handle, std::span<const std::uint8_t> data,
                 std::size_t chunk) {
  std::size_t at = 0;
  while (at < data.size()) {
    const std::size_t n = std::min(chunk, data.size() - at);
    handle.feed(data.subspan(at, n));
    at += n;
  }
}

// --------------------------------------------------------- epoch basics

TEST(EpochPublishing, ConstructionPublishesEpochOne) {
  auto s = make_scenario();
  const auto ixps = s.ixp_contexts();
  LiveSession session(make_config(1), ixps);
  ASSERT_EQ(session.ixp_count(), ixps.size());
  for (std::size_t i = 0; i < ixps.size(); ++i) {
    const auto snap = session.epoch_snapshot(i);
    ASSERT_TRUE(snap != nullptr);
    EXPECT_EQ(snap->epoch(), 1u);
    EXPECT_EQ(snap->generation(), 0u);
    EXPECT_EQ(snap->ixp(), ixps[i].name);
    EXPECT_EQ(snap->link_count(), 0u);
  }
  // Name-addressed lookups hit the same snapshots; unknown names throw.
  EXPECT_EQ(session.epoch_snapshot(ixps[0].name)->ixp(), ixps[0].name);
  EXPECT_EQ(session.ixp_index(ixps.back().name), ixps.size() - 1);
  EXPECT_THROW((void)session.epoch_snapshot("no-such-ixp"),
               InvalidArgument);
  EXPECT_THROW((void)session.ixp_index("no-such-ixp"), InvalidArgument);
  EXPECT_EQ(session.epoch_snapshots().size(), ixps.size());
  (void)session.finish();
}

TEST(EpochPublishing, EpochsAdvanceMonotonicallyDuringIngest) {
  auto s = make_scenario();
  const auto ixps = s.ixp_contexts();
  const auto data = s.collectors().front().update_dump(1367366400);

  auto config = make_config(2);
  config.publish_every_batches = 1;  // publish as eagerly as possible
  // Bound the announce-window so stable announcements surface as
  // observations mid-stream (FIFO eviction) instead of only at close --
  // otherwise nothing would reach the engines before finish().
  config.passive.max_pending_announcements = 50;
  LiveSession session(config, ixps);
  auto handle = add_feed(session, "feed0");

  std::vector<std::uint64_t> last_epoch(ixps.size(), 0);
  std::vector<std::uint64_t> last_generation(ixps.size(), 0);
  std::size_t at = 0;
  while (at < data.size()) {
    const std::size_t n = std::min<std::size_t>(2048, data.size() - at);
    handle.feed(std::span<const std::uint8_t>(data.data() + at, n));
    at += n;
    for (std::size_t i = 0; i < ixps.size(); ++i) {
      const auto snap = session.epoch_snapshot(i);
      EXPECT_GE(snap->epoch(), last_epoch[i]) << "ixp " << i;
      EXPECT_GE(snap->generation(), last_generation[i]) << "ixp " << i;
      // Internally consistent regardless of when it was frozen.
      EXPECT_EQ(snap->link_count(), snap->links().size()) << "ixp " << i;
      last_epoch[i] = snap->epoch();
      last_generation[i] = snap->generation();
    }
  }
  // The settled snapshot publishes a current epoch everywhere: after it,
  // published state reflects every accepted observation so far.
  const auto snap = session.snapshot();
  std::size_t published_links = 0;
  for (std::size_t i = 0; i < ixps.size(); ++i) {
    const auto epoch_snap = session.epoch_snapshot(i);
    EXPECT_GE(epoch_snap->epoch(), last_epoch[i]);
    EXPECT_EQ(epoch_snap->link_count(), snap.links_per_ixp[i]);
    published_links += epoch_snap->link_count();
  }
  EXPECT_GT(published_links, 0u);
  (void)session.finish();
}

TEST(EpochPublishing, FinishPublishesTheFinalState) {
  auto s = make_scenario();
  const auto ixps = s.ixp_contexts();
  const auto data = s.collectors().front().update_dump(1367366400);
  // Watermark policy here: the gate means most observations reach the
  // engines only at finish(), exactly the case where a stale published
  // epoch would be visible afterwards if finish() forgot to publish.
  LiveSession session(make_config(1, MergePolicy::Watermark), ixps);
  feed_chunks(add_feed(session, "feed0"), data, 4096);
  const auto result = session.finish();
  ASSERT_EQ(result.per_ixp.size(), ixps.size());
  for (std::size_t i = 0; i < ixps.size(); ++i) {
    const auto snap = session.epoch_snapshot(i);
    EXPECT_EQ(snap->link_count(), result.per_ixp[i].links.size())
        << "ixp " << i;
    EXPECT_EQ(snap->links(), result.per_ixp[i].links) << "ixp " << i;
    EXPECT_EQ(snap->stats().observations,
              result.per_ixp[i].stats.observations)
        << "ixp " << i;
  }
}

// ------------------------------------------- snapshot/result flag plumbing

TEST(EpochPublishing, SnapshotAndResultAgreeForBothFlagValues) {
  // assume_open_for_unobserved is plumbed through LiveConfig ->
  // publish_epoch -> EngineSnapshot (the LiveSnapshot numbers) and
  // through finish() -> infer_links (the LiveResult sets). The two paths
  // must agree at the same settled state, for BOTH flag values.
  auto s = make_scenario();
  const auto ixps = s.ixp_contexts();
  const auto data = s.collectors().front().update_dump(1367366400);
  for (const bool assume_open : {false, true}) {
    auto config = make_config(2);
    config.assume_open_for_unobserved = assume_open;
    LiveSession session(config, ixps);
    auto handle = add_feed(session, "feed0");
    feed_chunks(handle, data, 4096);
    // Close first: the announce-window flushes, so the settled snapshot
    // and the final result describe the same observation set.
    handle.close();
    const auto snap = session.snapshot();
    const auto result = session.finish();
    ASSERT_EQ(snap.links_per_ixp.size(), result.per_ixp.size());
    std::size_t total = 0;
    for (std::size_t i = 0; i < result.per_ixp.size(); ++i) {
      EXPECT_EQ(snap.links_per_ixp[i], result.per_ixp[i].links.size())
          << "assume_open=" << assume_open << " ixp " << i;
      const auto epoch_snap = session.epoch_snapshot(i);
      EXPECT_EQ(epoch_snap->assume_open_for_unobserved(), assume_open);
      EXPECT_EQ(epoch_snap->links(), result.per_ixp[i].links)
          << "assume_open=" << assume_open << " ixp " << i;
      total += snap.links_per_ixp[i];
    }
    // The flag must actually change the answer on this scenario (every
    // IXP has unobserved members), or the equality above proves nothing.
    if (assume_open) {
      EXPECT_GT(total, 0u);
    }
  }
}

// ------------------------------------------------- concurrent readers

TEST(EpochPublishing, LockFreeReadersRaceIngest) {
  // The TSan target: N reader threads hammer epoch_snapshot() while the
  // feed thread ingests and pumps publish. Readers assert only
  // thread-local invariants (per-reader epoch monotonicity, internal
  // snapshot consistency) -- any data race on the swap or on frozen
  // state is the sanitizer's to catch.
  auto s = make_scenario();
  const auto ixps = s.ixp_contexts();
  const auto data = s.collectors().front().update_dump(1367366400);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto config = make_config(threads);
    config.publish_every_batches = 1;
    // Surface observations mid-stream so the readers race real epoch
    // swaps, not thirteen reads of the construction epoch.
    config.passive.max_pending_announcements = 50;
    LiveSession session(config, ixps);
    auto handle = add_feed(session, "feed0");

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};
    std::vector<std::thread> readers;
    for (std::size_t r = 0; r < 4; ++r) {
      readers.emplace_back([&, r] {
        std::vector<std::uint64_t> last(ixps.size(), 0);
        std::uint64_t local = 0;
        while (!stop.load(std::memory_order_acquire)) {
          const std::size_t i = (r + local) % ixps.size();
          const auto snap = session.epoch_snapshot(i);
          ASSERT_TRUE(snap != nullptr);
          ASSERT_GE(snap->epoch(), last[i]);
          last[i] = snap->epoch();
          // Touch the frozen payload: counts, pairwise bits, rows.
          const auto links = snap->links();
          ASSERT_EQ(snap->link_count(), links.size());
          for (const auto& link : links) {
            ASSERT_TRUE(snap->has_link(link.a, link.b));
            ASSERT_TRUE(snap->has_link(link.b, link.a));
          }
          if (!snap->participants().empty()) {
            const core::Asn member = snap->participants().values().front();
            (void)snap->links_of(member);
            (void)snap->is_observed(member);
          }
          ++local;
        }
        reads.fetch_add(local, std::memory_order_relaxed);
      });
    }
    feed_chunks(handle, data, 1024);
    const auto snap = session.snapshot();
    stop.store(true, std::memory_order_release);
    for (auto& reader : readers) reader.join();
    EXPECT_GT(reads.load(), 0u);
    // A snapshot pointer grabbed before finish() stays valid and
    // answers identically after the session is torn down.
    const auto held = session.epoch_snapshot(0);
    const auto held_links = held->links();
    const auto result = session.finish();
    EXPECT_EQ(held->links(), held_links);
    ASSERT_FALSE(result.per_ixp.empty());
    (void)snap;
  }
}

// ------------------------------------------------------- query server

/// Minimal line-protocol client over the stream-layer TCP helpers.
class QueryClient {
 public:
  explicit QueryClient(std::uint16_t port)
      : fd_(stream::tcp_connect("127.0.0.1", port)) {}
  ~QueryClient() { stream::close_fd(fd_); }

  std::string ask(const std::string& request) {
    const std::string line = request + "\n";
    stream::write_all(fd_, std::span<const std::uint8_t>(
                               reinterpret_cast<const std::uint8_t*>(
                                   line.data()),
                               line.size()));
    std::string response;
    char byte = 0;
    while (::read(fd_, &byte, 1) == 1) {
      if (byte == '\n') return response;
      response.push_back(byte);
    }
    return response;  // EOF mid-line: return what arrived
  }

 private:
  int fd_;
};

TEST(QueryServer, AnswersProtocolOverLoopback) {
  auto s = make_scenario();
  const auto ixps = s.ixp_contexts();
  const auto data = s.collectors().front().update_dump(1367366400);
  LiveSession session(make_config(2), ixps);
  auto handle = add_feed(session, "feed0");
  feed_chunks(handle, data, 4096);
  handle.close();
  const auto snap = session.snapshot();  // settle + publish

  QueryServer server(session, QueryServer::Options{/*port=*/0});
  ASSERT_NE(server.port(), 0);
  QueryClient client(server.port());

  // ixps enumerates every configured IXP in construction order.
  std::string expected_ixps = "ok " + std::to_string(ixps.size());
  for (const auto& ixp : ixps) expected_ixps += " " + ixp.name;
  EXPECT_EQ(client.ask("ixps"), expected_ixps);

  // Per-IXP answers match the settled session exactly.
  for (std::size_t i = 0; i < ixps.size(); ++i) {
    const auto epoch_snap = session.epoch_snapshot(i);
    const auto& name = ixps[i].name;
    EXPECT_EQ(client.ask("epoch " + name),
              "ok epoch=" + std::to_string(epoch_snap->epoch()) +
                  " generation=" +
                  std::to_string(epoch_snap->generation()));
    const auto stats_line = client.ask("stats " + name);
    EXPECT_TRUE(stats_line.rfind("ok rs_members=", 0) == 0) << stats_line;
    EXPECT_NE(stats_line.find(
                  " links=" + std::to_string(epoch_snap->link_count())),
              std::string::npos)
        << stats_line;
    EXPECT_NE(stats_line.find(" backlog="), std::string::npos);
    const auto links = epoch_snap->links();
    if (!links.empty()) {
      const auto& link = *links.begin();
      EXPECT_EQ(client.ask("link " + name + " " +
                           std::to_string(link.a) + " " +
                           std::to_string(link.b)),
                "ok true");
      const auto partners = epoch_snap->links_of(link.a);
      std::string expected = "ok " + std::to_string(partners.size());
      for (const auto partner : partners)
        expected += " " + std::to_string(partner);
      EXPECT_EQ(client.ask("links " + name + " " +
                           std::to_string(link.a)),
                expected);
      EXPECT_EQ(client.ask("member " + name + " " +
                           std::to_string(link.a)),
                "ok observed");
    }
    EXPECT_EQ(client.ask("link " + name + " 999999 999998"), "ok false");
    EXPECT_EQ(client.ask("member " + name + " 999999"), "ok non-member");
  }

  // Malformed requests: errors, never a dropped connection.
  EXPECT_EQ(client.ask("bogus"), "err unknown verb bogus");
  EXPECT_EQ(client.ask("epoch nope"), "err unknown ixp nope");
  EXPECT_EQ(client.ask("stats"), "err stats: missing ixp");
  EXPECT_EQ(client.ask("link " + ixps[0].name + " x y"),
            "err link: want `link <ixp> <asn> <asn>`");
  EXPECT_EQ(client.ask(""), "err empty request");
  EXPECT_EQ(client.ask("quit"), "ok bye");
  EXPECT_GT(server.queries_served(), 0u);

  // Sequential connections: a second client is served after the first.
  QueryClient second(server.port());
  EXPECT_EQ(second.ask("ixps"), expected_ixps);
  EXPECT_EQ(second.ask("quit"), "ok bye");

  server.stop();
  (void)session.finish();
  (void)snap;
}

TEST(QueryServer, ServesDuringIngestAndMatchesFinalState) {
  // Queries answered while the feed thread ingests must be valid
  // (well-formed, internally consistent); after the final settle the
  // served numbers equal the session's own snapshot.
  auto s = make_scenario();
  const auto ixps = s.ixp_contexts();
  const auto data = s.collectors().front().update_dump(1367366400);
  auto config = make_config(2);
  config.publish_every_batches = 1;
  config.passive.max_pending_announcements = 50;
  LiveSession session(config, ixps);
  auto handle = add_feed(session, "feed0");

  QueryServer server(session, QueryServer::Options{/*port=*/0});
  std::atomic<bool> stop{false};
  std::thread client_thread([&] {
    QueryClient client(server.port());
    std::uint64_t last_epoch = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto line = client.ask("epoch " + ixps[0].name);
      ASSERT_TRUE(line.rfind("ok epoch=", 0) == 0) << line;
      const std::uint64_t epoch =
          std::strtoull(line.c_str() + 9, nullptr, 10);
      ASSERT_GE(epoch, last_epoch);
      last_epoch = epoch;
      const auto stats = client.ask("stats " + ixps[0].name);
      ASSERT_TRUE(stats.rfind("ok rs_members=", 0) == 0) << stats;
    }
    client.ask("quit");
  });

  feed_chunks(handle, data, 1024);
  handle.close();
  const auto snap = session.snapshot();
  stop.store(true, std::memory_order_release);
  client_thread.join();

  QueryClient verifier(server.port());
  for (std::size_t i = 0; i < ixps.size(); ++i) {
    const auto stats_line = verifier.ask("stats " + ixps[i].name);
    EXPECT_NE(
        stats_line.find(" links=" +
                        std::to_string(snap.links_per_ixp[i]) + " "),
        std::string::npos)
        << ixps[i].name << ": " << stats_line;
  }
  verifier.ask("quit");
  EXPECT_GT(server.queries_served(), 0u);
  server.stop();
  (void)session.finish();
}

}  // namespace
}  // namespace mlp::pipeline
